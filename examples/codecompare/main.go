// Codecompare walks through the paper's worked example (Sec. 4-5): a ternary
// half cave with three nanowires and four doping regions, first with the
// tree-code patterns of Example 1 and then with the Gray patterns of
// Example 5, printing every matrix (P, V, D, S, ν) and both cost functions.
// It then compares all five code families on the full platform.
package main

import (
	"fmt"
	"log"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/textplot"
)

func main() {
	q := physics.PaperExampleQuantizer()
	doses, err := mspt.DoseLevels(q, 1e18) // matrices in 10^18 cm^-3 units
	if err != nil {
		log.Fatal(err)
	}

	tree := []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 0, 1, 2),
	}
	gray := []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 2, 1, 0),
	}
	for _, c := range []struct {
		name    string
		pattern []code.Word
	}{
		{"tree code (paper Examples 1-4)", tree},
		{"Gray code (paper Examples 5-6)", gray},
	} {
		plan, err := mspt.NewPlan(c.pattern, 3, doses)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", c.name)
		show(plan, q)
		fmt.Println()
	}

	// Full-platform comparison of all five families at one length each.
	tb := textplot.NewTable("full 16 kbit platform, best length per family",
		"code", "M", "Φ", "yield", "bit area [nm²]")
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		d, err := core.NewDesign(core.Config{CodeType: tp, CodeLength: m})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRowf(tp.String(), m, d.Phi,
			fmt.Sprintf("%.1f%%", 100*d.Yield()), d.BitArea())
	}
	fmt.Print(tb.String())
}

func show(plan *mspt.Plan, q *physics.Quantizer) {
	fmt.Println("pattern matrix P:")
	for _, w := range plan.Pattern() {
		fmt.Printf("  %s", w)
		fmt.Print("   VT:")
		for _, d := range w {
			fmt.Printf(" %.1fV", q.VTOf(d))
		}
		fmt.Println()
	}
	fmt.Println("final doping D [10^18 cm^-3]:")
	printI64(plan.D())
	fmt.Println("step doping S [10^18 cm^-3]:")
	printI64(plan.S())
	fmt.Println("dose counts ν (Σ = σ_T²·ν):")
	for _, row := range plan.Nu() {
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("fabrication complexity Φ = %d (per step: %v)\n", plan.Phi(), plan.PhiPerStep())
	fmt.Printf("‖Σ‖₁ = %d·σ_T²\n", plan.NuSum())
}

func printI64(m [][]int64) {
	for _, row := range m {
		fmt.Print(" ")
		for _, v := range row {
			fmt.Printf(" %3d", v)
		}
		fmt.Println()
	}
}
