// Faultinjection stress-tests the decoder designs beyond the paper's
// operating point: it sweeps the per-dose variability σ_T, fabricates
// crossbar layers at each point and measures how the functional yield of the
// tree code and the balanced Gray code degrade — showing that the optimized
// arrangement keeps its advantage (and that the analytic model tracks the
// functional simulator) across the whole stress range.
package main

import (
	"fmt"
	"log"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

func main() {
	sigmas := []float64{0.02, 0.05, 0.08, 0.12}
	tb := textplot.NewTable(
		"functional layer yield under variability stress (N=20, M=10, 3 fabrications each)",
		"σ_T [mV]", "TC analytic", "TC functional", "BGC analytic", "BGC functional")

	for _, sigma := range sigmas {
		row := []interface{}{fmt.Sprintf("%.0f", 1000*sigma)}
		for _, tp := range []code.Type{code.TypeTree, code.TypeBalancedGray} {
			design, err := core.NewDesign(core.Config{CodeType: tp, CodeLength: 10, SigmaT: sigma})
			if err != nil {
				log.Fatal(err)
			}
			dec, err := crossbar.NewDecoder(design.Plan, design.Quantizer)
			if err != nil {
				log.Fatal(err)
			}
			rng := stats.NewRNG(uint64(1000 * sigma))
			const reps = 3
			sum := 0.0
			for rep := 0; rep < reps; rep++ {
				layer, err := crossbar.BuildLayer(dec, design.Layout.Contact,
					design.Layout.WiresPerLayer, sigma, rng)
				if err != nil {
					log.Fatal(err)
				}
				sum += layer.Yield()
			}
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*design.Yield()),
				fmt.Sprintf("%.1f%%", 100*sum/reps))
		}
		tb.AddRowf(row...)
	}
	fmt.Print(tb.String())

	fmt.Println("\nThe balanced Gray decoder stays ahead of the tree code at every")
	fmt.Println("stress level, and the functional (conduction-based) yield tracks")
	fmt.Println("the analytic Gaussian-margin model.")
}
