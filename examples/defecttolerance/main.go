// Defecttolerance demonstrates the full defect-tolerance stack over a
// fabricated crossbar: the decoder design, the mask-reuse analysis of its
// fabrication flow, the defect-avoiding logical address remap, and a
// Hamming(7,4) ECC layer that survives soft single-bit faults injected on
// top of the hard defect map.
package main

import (
	"fmt"
	"log"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/stats"
)

func main() {
	design, err := core.NewDesign(core.Config{CodeType: code.TypeArrangedHot, CodeLength: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Report())

	// Fabrication economics: distinct masks vs implant passes.
	set := design.Plan.Masks()
	fmt.Printf("\nmask economics: %d passes (Φ) served by %d distinct masks (reuse %.1fx)\n",
		set.Passes, set.DistinctMasks(), set.ReuseFactor())

	// Fabricate both layers.
	dec, err := crossbar.NewDecoder(design.Plan, design.Quantizer)
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(4242)
	rows, err := crossbar.BuildLayer(dec, design.Layout.Contact,
		design.Layout.WiresPerLayer, design.Config.SigmaT, rng)
	if err != nil {
		log.Fatal(err)
	}
	cols, err := crossbar.BuildLayer(dec, design.Layout.Contact,
		design.Layout.WiresPerLayer, design.Config.SigmaT, rng)
	if err != nil {
		log.Fatal(err)
	}
	mem := crossbar.NewMemory(rows, cols)
	fmt.Printf("\nfabricated: %.1f%% of crosspoints usable (hard defects mapped out)\n",
		100*mem.UsableFraction())

	// Level 1: defect-avoiding logical address space.
	lm := crossbar.NewLogicalMemory(mem)
	fmt.Printf("logical memory: %d contiguous bit addresses\n", lm.Capacity())

	// Level 2: ECC for soft faults.
	ecc := crossbar.NewECCMemory(lm)
	msg := []byte("The Gray code minimizes both the fabrication cost and the decoder variability.")
	if len(msg) > ecc.CapacityBytes() {
		log.Fatalf("message exceeds ECC capacity %d", ecc.CapacityBytes())
	}
	if err := ecc.StoreBytes(0, msg); err != nil {
		log.Fatal(err)
	}

	// Inject one soft single-bit fault into every stored codeword.
	faults := 0
	for cw := 0; cw < 2*len(msg); cw++ {
		if err := ecc.FlipRawBit(7*cw + int(rng.Intn(7))); err != nil {
			log.Fatal(err)
		}
		faults++
	}
	back, err := ecc.LoadBytes(0, len(msg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected %d soft faults; ECC corrected %d on read\n", faults, ecc.Corrected())
	fmt.Printf("recovered message: %q\n", back)
	if string(back) != string(msg) {
		log.Fatal("data corruption despite ECC")
	}
	fmt.Println("round trip intact.")
}
