// Quickstart: design an MSPT nanowire decoder for the paper's 16 kbit
// crossbar platform and print its full analysis, then let the optimizer pick
// the best code family and length.
package main

import (
	"context"
	"fmt"
	"log"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func main() {
	// 1. A single design: balanced Gray code, defaults for everything else
	//    (binary logic, M=10, 16 kbit crossbar, σ_T = 50 mV).
	design, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- single design -------------------------------------------")
	fmt.Print(design.Report())

	// 2. The decoder's code arrangement: the first few nanowire patterns.
	fmt.Println("\nfirst nanowire patterns (reflected balanced Gray words):")
	for i, w := range design.Plan.Pattern()[:6] {
		fmt.Printf("  wire %d: %s\n", i, w)
	}

	// 3. Design-space optimization: all five families, lengths 4..12.
	best, err := core.Optimize(context.Background(), core.Config{},
		code.AllTypes(), []int{4, 6, 8, 10, 12}, core.MinBitArea)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- optimizer: smallest effective bit area ------------------")
	fmt.Print(best.Report())
}
