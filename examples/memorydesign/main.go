// Memorydesign builds a complete 16 kbit crossbar memory: it designs the
// decoder, fabricates both layers with the Monte-Carlo process simulator,
// stores a bit pattern through the functional addressing path, reads it back
// and reports the usable capacity against the analytic prediction.
package main

import (
	"fmt"
	"log"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/stats"
)

func main() {
	design, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray, CodeLength: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Report())

	dec, err := crossbar.NewDecoder(design.Plan, design.Quantizer)
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(2009)
	rows, err := crossbar.BuildLayer(dec, design.Layout.Contact,
		design.Layout.WiresPerLayer, design.Config.SigmaT, rng)
	if err != nil {
		log.Fatal(err)
	}
	cols, err := crossbar.BuildLayer(dec, design.Layout.Contact,
		design.Layout.WiresPerLayer, design.Config.SigmaT, rng)
	if err != nil {
		log.Fatal(err)
	}
	mem := crossbar.NewMemory(rows, cols)

	nr, nc := mem.Size()
	fmt.Printf("\nfabricated memory: %dx%d crosspoints\n", nr, nc)
	fmt.Printf("row layer yield: %.1f%%, column layer yield: %.1f%%\n",
		100*rows.Yield(), 100*cols.Yield())
	fmt.Printf("usable bits: %d of %d (%.1f%%; analytic Y² predicts %.1f%%)\n",
		mem.UsableBits(), nr*nc, 100*mem.UsableFraction(),
		100*design.Yield()*design.Yield())

	// Store a diagonal-stripe pattern in every usable crosspoint.
	written := 0
	for r := 0; r < nr; r++ {
		for c := 0; c < nc; c++ {
			if !mem.Usable(r, c) {
				continue
			}
			if err := mem.Write(r, c, (r+c)%3 == 0); err != nil {
				log.Fatalf("write (%d,%d): %v", r, c, err)
			}
			written++
		}
	}
	// Verify the read path.
	errors := 0
	for r := 0; r < nr; r++ {
		for c := 0; c < nc; c++ {
			if !mem.Usable(r, c) {
				continue
			}
			bit, err := mem.Read(r, c)
			if err != nil {
				log.Fatalf("read (%d,%d): %v", r, c, err)
			}
			if bit != ((r+c)%3 == 0) {
				errors++
			}
		}
	}
	fmt.Printf("wrote and verified %d bits, %d read errors\n", written, errors)

	// Demonstrate defect handling: accessing an unaddressable wire fails
	// with a typed error instead of silently corrupting data.
	for r := 0; r < nr; r++ {
		if !mem.Rows.Wires[r].Addressable {
			err := mem.Write(r, 0, true)
			fmt.Printf("write through defective row %d: %v\n", r, err)
			break
		}
	}
}
