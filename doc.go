// Package nwdec is a production-quality Go reproduction of "Decoding
// Nanowire Arrays Fabricated with the Multi-Spacer Patterning Technique"
// (Ben Jamaa, Leblebici, De Micheli — DAC 2009).
//
// The library lives under internal/ (code, physics, mspt, geometry, yield,
// crossbar, readout, core, experiments, report, sweep, stats, par,
// textplot, viz); the root package carries the repository-level test and
// benchmark harness: integration tests across the full
// design-fabricate-operate pipeline, CLI smoke tests, and one benchmark per
// figure of the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
//
// Package par is the deterministic parallel execution engine: every sweep,
// experiment grid and Monte-Carlo driver fans out over its bounded worker
// pool, with jump-based RNG substreams (stats.RNG.Split/Streams) keeping
// the output bit-identical at every worker count.
package nwdec
