// Package nwdec is a production-quality Go reproduction of "Decoding
// Nanowire Arrays Fabricated with the Multi-Spacer Patterning Technique"
// (Ben Jamaa, Leblebici, De Micheli — DAC 2009).
//
// The library lives under internal/ (code, physics, mspt, geometry, yield,
// crossbar, readout, core, experiments, report, sweep, stats, textplot,
// viz); the root package carries the repository-level test and benchmark
// harness: integration tests across the full design-fabricate-operate
// pipeline, CLI smoke tests, and one benchmark per figure of the paper's
// evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package nwdec
