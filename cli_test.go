package nwdec

// CLI smoke tests: build each command once and drive it end to end the way
// a user would, asserting on real stdout. These are the regression net for
// the tools' flag surfaces.

import (
	"encoding/json"
	"encoding/xml"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var so, se strings.Builder
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, se.String())
	}
	return so.String(), se.String()
}

// runFail runs a command expected to exit non-zero and returns its exit
// code and stderr.
func runFail(t *testing.T, bin string, args ...string) (code int, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var se strings.Builder
	cmd.Stderr = &se
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got success", filepath.Base(bin), args)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", filepath.Base(bin), args, err)
	}
	return ee.ExitCode(), se.String()
}

// parseJSONDataset asserts out is a valid dataset JSON document and returns
// its parsed form.
func parseJSONDataset(t *testing.T, out string) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"name", "columns", "rows"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("dataset JSON missing %q:\n%s", key, out)
		}
	}
	return doc
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()

	t.Run("nwcodes", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwcodes")
		out, _ := run(t, bin, "-type", "gc", "-base", "2", "-length", "8", "-count", "6")
		for _, want := range []string{"GC", "Ω=16", "00001111", "2 digit changes", "transitions:"} {
			if !strings.Contains(out, want) {
				t.Errorf("nwcodes output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("nwdecoder", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwdecoder")
		out, _ := run(t, bin, "-type", "bgc", "-length", "10")
		for _, want := range []string{"BGC", "M=10", "cave yield", "bit area"} {
			if !strings.Contains(out, want) {
				t.Errorf("report missing %q", want)
			}
		}
		// JSON export parses and carries the paper-consistent Φ.
		out, _ = run(t, bin, "-type", "gc", "-length", "10", "-export", "json")
		var exp struct {
			Phi int `json:"phi"`
			N   int `json:"n"`
		}
		if err := json.Unmarshal([]byte(out), &exp); err != nil {
			t.Fatalf("export json: %v", err)
		}
		if exp.Phi != 2*exp.N {
			t.Errorf("exported Φ=%d for N=%d, want 2N", exp.Phi, exp.N)
		}
		// SVG export is well-formed XML.
		out, _ = run(t, bin, "-type", "bgc", "-length", "8", "-export", "svg")
		dec := xml.NewDecoder(strings.NewReader(out))
		for {
			_, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("svg export not well-formed: %v", err)
			}
		}
		if !strings.HasPrefix(out, "<svg") {
			t.Error("svg export missing root element")
		}
		// Optimizer path.
		out, _ = run(t, bin, "-optimize", "area")
		if !strings.Contains(out, "optimum over all families") {
			t.Error("optimizer banner missing")
		}
	})

	t.Run("nwsim", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwsim")
		out, _ := run(t, bin, "-exp", "fig5")
		for _, want := range []string{"Fig. 5", "ternary", "paper: 17%"} {
			if !strings.Contains(out, want) {
				t.Errorf("fig5 output missing %q", want)
			}
		}
		out, _ = run(t, bin, "-exp", "headline")
		if strings.Contains(out, "NO") {
			t.Errorf("headline claims failing:\n%s", out)
		}
	})

	t.Run("nwmem", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwmem")
		out, stderr := run(t, bin, "-data", "smoke test payload", "-seed", "7")
		if strings.TrimSpace(out) != "smoke test payload" {
			t.Errorf("payload round trip = %q", out)
		}
		if !strings.Contains(stderr, "March C-") || !strings.Contains(stderr, "ECC") {
			t.Errorf("controller log incomplete:\n%s", stderr)
		}
	})

	t.Run("nwsweep", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwsweep")
		out, _ := run(t, bin, "-types", "bgc", "-lengths", "10")
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 2 {
			t.Fatalf("want header + 1 row, got %d lines", len(lines))
		}
		if !strings.HasPrefix(lines[0], "code,length") || !strings.HasPrefix(lines[1], "BGC,10") {
			t.Errorf("sweep CSV wrong:\n%s", out)
		}
	})
}

// TestCLIObservability drives the -metrics/-metrics-out/-pprof surface:
// the snapshot renders as a dataset with a schema identical across worker
// counts, experiment stdout stays byte-identical with metrics on or off,
// profiles land in the requested directory, and a bad metrics format is a
// usage error.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "nwsim")

	base := []string{"-exp", "montecarlo", "-trials", "4", "-seed", "1"}
	baseOut, _ := run(t, bin, base...)

	metricNames := func(doc map[string]any) map[string]bool {
		rows, _ := doc["rows"].([]any)
		names := make(map[string]bool, len(rows))
		for _, r := range rows {
			cells, _ := r.([]any)
			if len(cells) > 0 {
				if name, ok := cells[0].(string); ok {
					names[name] = true
				}
			}
		}
		return names
	}

	var schemas []string
	for _, w := range []string{"1", "8"} {
		mfile := filepath.Join(dir, "metrics-"+w+".json")
		args := append([]string{"-workers", w, "-metrics", "json", "-metrics-out", mfile}, base...)
		out, _ := run(t, bin, args...)
		if out != baseOut {
			t.Errorf("workers=%s: stdout changed when -metrics is on", w)
		}
		data, err := os.ReadFile(mfile)
		if err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		doc := parseJSONDataset(t, string(data))
		if doc["name"] != "metrics" {
			t.Errorf("workers=%s: dataset name = %v, want metrics", w, doc["name"])
		}
		cols, err := json.Marshal(doc["columns"])
		if err != nil {
			t.Fatal(err)
		}
		schemas = append(schemas, string(cols))
		names := metricNames(doc)
		for _, want := range []string{
			"par/tasks", "par/worker/00/tasks", "par/task_ns",
			"experiments/runs", "experiments/montecarlo/runs",
			"span/experiment/montecarlo",
			"montecarlo/trials", "montecarlo/rng_substreams",
		} {
			if !names[want] {
				t.Errorf("workers=%s: metric %q missing from snapshot", w, want)
			}
		}
	}
	if schemas[0] != schemas[1] {
		t.Errorf("snapshot schema differs across worker counts:\n%s\n%s", schemas[0], schemas[1])
	}

	// Without -metrics-out the snapshot goes to stderr, keeping stdout a
	// clean data stream.
	out, stderr := run(t, bin, "-exp", "montecarlo", "-trials", "4", "-seed", "1", "-metrics", "json")
	if out != baseOut {
		t.Error("stdout changed when metrics render to stderr")
	}
	doc := parseJSONDataset(t, stderr)
	if doc["name"] != "metrics" {
		t.Errorf("stderr dataset name = %v, want metrics", doc["name"])
	}

	// -pprof captures CPU/heap profiles and an execution trace.
	pdir := filepath.Join(dir, "prof")
	run(t, bin, "-exp", "fig5", "-pprof", pdir)
	for _, name := range []string{"cpu.pprof", "heap.pprof", "trace.out"} {
		fi, err := os.Stat(filepath.Join(pdir, name))
		if err != nil {
			t.Errorf("-pprof artifact: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("-pprof artifact %s is empty", name)
		}
	}

	// An unknown metrics format is a usage error.
	if code, _ := runFail(t, bin, "-exp", "fig5", "-metrics", "yaml"); code != 2 {
		t.Errorf("bad -metrics format: exit %d, want 2", code)
	}
}

// TestCLIStructuredOutput drives the shared -format/-timeout surface of
// every binary: JSON parses as a dataset document, CSV carries the schema
// header, Markdown renders a pipe table, a bad format is a usage error
// (exit 2) and an expired -timeout is a runtime error (exit 1).
func TestCLIStructuredOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries; skipped in -short mode")
	}
	dir := t.TempDir()

	t.Run("nwsim-formats", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwsim")
		out, _ := run(t, bin, "-exp", "fig7", "-format", "json")
		doc := parseJSONDataset(t, out)
		if doc["name"] != "fig7" {
			t.Errorf("dataset name = %v", doc["name"])
		}
		meta, _ := doc["meta"].(map[string]any)
		if meta["experiment"] != "fig7" || meta["configHash"] == "" {
			t.Errorf("metadata incomplete: %v", meta)
		}
		out, _ = run(t, bin, "-exp", "fig7", "-format", "csv")
		if !strings.HasPrefix(out, "code,M,yield,") {
			t.Errorf("fig7 CSV header wrong:\n%s", out)
		}
		out, _ = run(t, bin, "-exp", "fig7", "-format", "md")
		if !strings.Contains(out, "| code | M | yield") || !strings.Contains(out, "|---|") {
			t.Errorf("fig7 markdown table wrong:\n%s", out)
		}
		// Run-all JSON is one array over all experiments.
		out, _ = run(t, bin, "-exp", "all", "-format", "json", "-trials", "1")
		var docs []map[string]any
		if err := json.Unmarshal([]byte(out), &docs); err != nil {
			t.Fatalf("run-all JSON: %v", err)
		}
		if len(docs) < 15 {
			t.Errorf("run-all JSON has only %d datasets", len(docs))
		}
	})

	t.Run("nwsweep-formats", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwsweep")
		out, _ := run(t, bin, "-types", "bgc", "-lengths", "10", "-format", "json")
		parseJSONDataset(t, out)
		out, _ = run(t, bin, "-types", "bgc", "-lengths", "10", "-format", "md")
		if !strings.Contains(out, "| code | length") {
			t.Errorf("sweep markdown wrong:\n%s", out)
		}
	})

	t.Run("nwdecoder-formats", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwdecoder")
		out, _ := run(t, bin, "-type", "bgc", "-length", "10", "-format", "json")
		doc := parseJSONDataset(t, out)
		if doc["name"] != "design" {
			t.Errorf("dataset name = %v", doc["name"])
		}
		out, _ = run(t, bin, "-type", "bgc", "-length", "10", "-format", "csv")
		if !strings.HasPrefix(out, "code,") || !strings.Contains(out, "BGC") {
			t.Errorf("design CSV wrong:\n%s", out)
		}
	})

	t.Run("nwcodes-formats", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwcodes")
		out, _ := run(t, bin, "-type", "gc", "-length", "8", "-format", "csv")
		if !strings.HasPrefix(out, "index,word,digitChanges") {
			t.Errorf("words CSV header wrong:\n%s", out)
		}
		out, _ = run(t, bin, "-type", "gc", "-length", "8", "-format", "json")
		parseJSONDataset(t, out)
	})

	t.Run("nwmem-formats", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwmem")
		out, _ := run(t, bin, "-data", "smoke test payload", "-seed", "7", "-format", "json")
		doc := parseJSONDataset(t, out)
		if doc["name"] != "nwmem" {
			t.Errorf("dataset name = %v", doc["name"])
		}
	})

	t.Run("nwlint", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwlint")

		// The tree itself must be clean: exit 0, no output.
		out, _ := run(t, bin, "./...")
		if out != "" {
			t.Errorf("clean tree produced output:\n%s", out)
		}

		// -list names the five rules.
		out, _ = run(t, bin, "-list")
		for _, rule := range []string{"determinism", "ctxfirst", "nogoroutine", "errcheck", "printbound"} {
			if !strings.Contains(out, rule) {
				t.Errorf("-list output missing %q:\n%s", rule, out)
			}
		}

		// A seeded fixture violation exits 1 with a positioned diagnostic.
		fixture := filepath.Join("internal", "lint", "testdata", "src", "errcheck")
		cmd := exec.Command(bin, fixture)
		var so, se strings.Builder
		cmd.Stdout = &so
		cmd.Stderr = &se
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("fixture run: err = %v (stderr %s), want exit 1", err, se.String())
		}
		if !strings.Contains(so.String(), "errcheck.go:12:2: errcheck:") {
			t.Errorf("diagnostic not positioned:\n%s", so.String())
		}

		// -json renders the diagnostics as a structured dataset.
		cmd = exec.Command(bin, "-json", fixture)
		so.Reset()
		cmd.Stdout = &so
		if err := cmd.Run(); err == nil {
			t.Fatal("json fixture run: expected exit 1")
		}
		doc := parseJSONDataset(t, so.String())
		if doc["name"] != "nwlint" {
			t.Errorf("dataset name = %v", doc["name"])
		}
		if rows, ok := doc["rows"].([]any); !ok || len(rows) == 0 {
			t.Errorf("json dataset has no rows:\n%s", so.String())
		}

		// An unknown rule is a usage error.
		if code, _ := runFail(t, bin, "-rules", "nope"); code != 2 {
			t.Errorf("unknown rule: exit %d, want 2", code)
		}
	})

	t.Run("exit-codes", func(t *testing.T) {
		bin := buildCmd(t, dir, "nwsim")
		code, stderr := runFail(t, bin, "-exp", "fig7", "-format", "yaml")
		if code != 2 {
			t.Errorf("bad format: exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "nwsim:") {
			t.Errorf("usage error not name-prefixed: %q", stderr)
		}
		code, stderr = runFail(t, bin, "-exp", "montecarlo", "-trials", "10000", "-timeout", "1ms")
		if code != 1 {
			t.Errorf("timeout: exit %d, want 1", code)
		}
		if !strings.Contains(stderr, "deadline") {
			t.Errorf("timeout error not reported: %q", stderr)
		}
		code, _ = runFail(t, bin, "-exp", "nope")
		if code != 1 {
			t.Errorf("unknown experiment: exit %d, want 1", code)
		}
	})
}
