// Package cli unifies the shared surface of the nwdec command-line tools:
// the -format, -timeout and -workers flags, context construction, list-flag
// parsing, structured-output emission and the exit-code convention.
//
// Exit codes: 0 on success, 1 on a runtime failure (ExitError), 2 on a
// usage error (ExitUsage — also what the flag package uses for unknown
// flags). Errors always go to stderr, prefixed with the command name, so
// stdout stays clean for piping.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
)

// Exit codes shared by every command.
const (
	// ExitOK reports success.
	ExitOK = 0
	// ExitError reports a runtime failure.
	ExitError = 1
	// ExitUsage reports a bad flag value or invocation.
	ExitUsage = 2
)

// Common holds the flags every command shares. Register installs them on
// the default flag set; the fields are valid after flag.Parse.
type Common struct {
	// Name prefixes error messages ("nwsim: ...").
	Name string
	// FormatName is the raw -format value; Format resolves it.
	FormatName string
	// Timeout is the -timeout value; Context applies it (0 = none).
	Timeout time.Duration
	// Workers is the -workers value (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// Register installs the shared -format, -timeout and -workers flags on the
// default flag set. defaultFormat is the command's native output form
// ("text" for the simulators, "csv" for the sweeper).
func Register(name, defaultFormat string) *Common {
	c := &Common{Name: name}
	flag.StringVar(&c.FormatName, "format", defaultFormat, "output format: "+dataset.Formats())
	flag.DurationVar(&c.Timeout, "timeout", 0, "abort the run after this duration, e.g. 30s (0 = no timeout)")
	flag.IntVar(&c.Workers, "workers", 0, "worker pool size for parallel stages (0 = GOMAXPROCS, 1 = serial)")
	return c
}

// Format resolves the -format flag; an unknown value is a usage error.
func (c *Common) Format() dataset.Format {
	f, err := dataset.ParseFormat(c.FormatName)
	if err != nil {
		c.Usage(err)
	}
	return f
}

// Context returns the command's root context, honoring -timeout. The
// caller must defer cancel.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Fail reports a runtime error to stderr and exits with ExitError.
func (c *Common) Fail(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
	os.Exit(ExitError)
}

// Usage reports a usage error to stderr and exits with ExitUsage.
func (c *Common) Usage(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
	os.Exit(ExitUsage)
}

// Emit renders one dataset to stdout in the selected format.
func (c *Common) Emit(ds *dataset.Dataset) {
	if err := ds.Render(os.Stdout, c.Format()); err != nil {
		c.Fail(err)
	}
}

// EmitAll renders a dataset sequence to stdout. Text output frames each
// dataset with a "==== name ====" banner (the historical run-all form);
// JSON emits one array; CSV and Markdown concatenate the per-dataset
// renderings separated by blank lines.
func (c *Common) EmitAll(dss []*dataset.Dataset) {
	if err := RenderAll(os.Stdout, c.Format(), dss); err != nil {
		c.Fail(err)
	}
}

// RenderAll writes a dataset sequence to w in the given format; see
// EmitAll for the per-format framing.
func RenderAll(w io.Writer, f dataset.Format, dss []*dataset.Dataset) error {
	switch f {
	case dataset.FormatText:
		for _, ds := range dss {
			name := ds.Meta.Experiment
			if name == "" {
				name = ds.Name
			}
			if _, err := fmt.Fprintf(w, "==== %s ====\n%s\n", name, ds.Text()); err != nil {
				return err
			}
		}
		return nil
	case dataset.FormatJSON:
		return dataset.WriteJSONArray(w, dss)
	default:
		for i, ds := range dss {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			if err := ds.Render(w, f); err != nil {
				return err
			}
		}
		return nil
	}
}

// Ints parses a comma-separated integer list; empty input is nil.
func Ints(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Floats parses a comma-separated number list; empty input is nil.
func Floats(arg string) ([]float64, error) {
	if arg == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Types parses a comma-separated code-family list; empty input is nil.
func Types(arg string) ([]code.Type, error) {
	if arg == "" {
		return nil, nil
	}
	var out []code.Type
	for _, s := range strings.Split(arg, ",") {
		tp, err := code.ParseType(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}
