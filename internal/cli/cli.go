// Package cli unifies the shared surface of the nwdec command-line tools:
// the -format, -timeout, -workers, -metrics and -pprof flags, context
// construction, list-flag parsing, structured-output emission and the
// exit-code convention.
//
// Exit codes: 0 on success, 1 on a runtime failure (ExitError), 2 on a
// usage error (ExitUsage — also what the flag package uses for unknown
// flags). Exit derives the code from the error's internal/nwerr class —
// Invalid means usage, Canceled and Internal mean runtime — so commands
// never branch on error strings. Errors always go to stderr, prefixed
// with the command name, so stdout stays clean for piping.
//
// The cli package is also the observability boundary: it is where the
// real monotonic clock is injected into the obs layer (the deterministic
// packages never read wall time themselves) and where the metrics
// snapshot is rendered — to stderr or the -metrics-out file, never
// stdout, so experiment output stays byte-identical with metrics on or
// off.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// Exit codes shared by every command.
const (
	// ExitOK reports success.
	ExitOK = 0
	// ExitError reports a runtime failure.
	ExitError = 1
	// ExitUsage reports a bad flag value or invocation.
	ExitUsage = 2
)

// Common holds the flags every command shares. Register installs them on
// the default flag set; the fields are valid after flag.Parse.
type Common struct {
	// Name prefixes error messages ("nwsim: ...").
	Name string
	// FormatName is the raw -format value; Format resolves it.
	FormatName string
	// Timeout is the -timeout value; Context applies it (0 = none).
	Timeout time.Duration
	// Workers is the -workers value (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// MetricsFormat is the -metrics value: the dataset format the
	// observability snapshot is rendered in on Close ("" = disabled).
	MetricsFormat string
	// MetricsPath is the -metrics-out value: the file the snapshot is
	// written to ("" = stderr).
	MetricsPath string
	// PprofDir is the -pprof value: the directory receiving cpu.pprof,
	// heap.pprof and trace.out ("" = disabled).
	PprofDir string

	reg    *obs.Registry
	prof   *obs.Profile
	closed bool
}

// Register installs the shared -format, -timeout, -workers, -metrics,
// -metrics-out and -pprof flags on the default flag set. defaultFormat is
// the command's native output form ("text" for the simulators, "csv" for
// the sweeper).
func Register(name, defaultFormat string) *Common {
	c := &Common{Name: name}
	flag.StringVar(&c.FormatName, "format", defaultFormat, "output format: "+dataset.Formats())
	flag.DurationVar(&c.Timeout, "timeout", 0, "abort the run after this duration, e.g. 30s (0 = no timeout)")
	flag.IntVar(&c.Workers, "workers", 0, "worker pool size for parallel stages (0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&c.MetricsFormat, "metrics", "", "emit an observability metrics snapshot on exit in this format ("+dataset.Formats()+"; empty = off)")
	flag.StringVar(&c.MetricsPath, "metrics-out", "", "write the metrics snapshot to this file instead of stderr")
	flag.StringVar(&c.PprofDir, "pprof", "", "capture cpu.pprof, heap.pprof and trace.out into this directory")
	return c
}

// Format resolves the -format flag; an unknown value is a usage error.
func (c *Common) Format() dataset.Format {
	f, err := dataset.ParseFormat(c.FormatName)
	if err != nil {
		c.Usage(err)
	}
	return f
}

// monotonicClock is the real clock of the obs layer, measured from
// process start. It lives here — at the command boundary — so the
// deterministic packages themselves never read wall time (the nwlint
// determinism rule enforces this).
type monotonicClock struct {
	base time.Time
}

// Now returns the monotonic time elapsed since the clock was created.
func (m monotonicClock) Now() time.Duration { return time.Since(m.base) }

// Context returns the command's root context, honoring -timeout, and
// activates the observability surface: with -metrics set it installs an
// obs.Registry (driven by the real monotonic clock) into the context, and
// with -pprof set it starts CPU/trace capture. The caller must defer
// cancel and defer Close.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if c.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), c.Timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	if c.MetricsFormat != "" {
		// Validate the format up front so a typo fails before the run,
		// not after it.
		if _, err := dataset.ParseFormat(c.MetricsFormat); err != nil {
			c.Usage(err)
		}
		c.reg = obs.New(monotonicClock{base: time.Now()})
		ctx = obs.Into(ctx, c.reg)
	}
	if c.PprofDir != "" {
		p, err := obs.StartProfile(c.PprofDir)
		if err != nil {
			c.Fail(err)
		}
		c.prof = p
	}
	return ctx, cancel
}

// Registry returns the command's metrics registry (nil unless -metrics
// was set and Context has run).
func (c *Common) Registry() *obs.Registry { return c.reg }

// Close finalizes the observability surface: it stops any pprof/trace
// capture and renders the metrics snapshot — through the dataset
// renderers, to stderr or the -metrics-out file, never stdout. It is
// idempotent and safe to call with observability disabled; commands defer
// it right after cancel, and Fail invokes it so profiles survive error
// exits.
func (c *Common) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.prof != nil {
		if err := c.prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
		}
		c.prof = nil
	}
	if c.reg == nil {
		return
	}
	f, err := dataset.ParseFormat(c.MetricsFormat)
	if err != nil {
		// Context validated the format already; fall back defensively.
		f = dataset.FormatText
	}
	var w io.Writer = os.Stderr
	if c.MetricsPath != "" {
		file, err := os.Create(c.MetricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
			return
		}
		defer func() {
			if err := file.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
			}
		}()
		w = file
	}
	if err := c.reg.Snapshot().Render(w, f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: rendering metrics: %v\n", c.Name, err)
	}
}

// Fail reports a runtime error to stderr and exits with ExitError. Any
// active profile capture and metrics snapshot are finalized first.
func (c *Common) Fail(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
	c.Close()
	os.Exit(ExitError)
}

// Usage reports a usage error to stderr and exits with ExitUsage.
func (c *Common) Usage(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
	c.Close()
	os.Exit(ExitUsage)
}

// Exit terminates the command according to the error's nwerr class
// instead of the caller deciding between Fail and Usage at every site:
// an Invalid error is a usage problem (ExitUsage), while Canceled and
// Internal are runtime failures (ExitError). A nil error is a no-op, so
// commands can route every error through one call.
func (c *Common) Exit(err error) {
	if err == nil {
		return
	}
	if nwerr.IsInvalid(err) {
		c.Usage(err)
	}
	c.Fail(err)
}

// Emit renders one dataset to stdout in the selected format.
func (c *Common) Emit(ds *dataset.Dataset) {
	if err := ds.Render(os.Stdout, c.Format()); err != nil {
		c.Fail(err)
	}
}

// EmitAll renders a dataset sequence to stdout. Text output frames each
// dataset with a "==== name ====" banner (the historical run-all form);
// JSON emits one array; CSV and Markdown concatenate the per-dataset
// renderings separated by blank lines.
func (c *Common) EmitAll(dss []*dataset.Dataset) {
	if err := RenderAll(os.Stdout, c.Format(), dss); err != nil {
		c.Fail(err)
	}
}

// RenderAll writes a dataset sequence to w in the given format; see
// EmitAll for the per-format framing.
func RenderAll(w io.Writer, f dataset.Format, dss []*dataset.Dataset) error {
	switch f {
	case dataset.FormatText:
		for _, ds := range dss {
			name := ds.Meta.Experiment
			if name == "" {
				name = ds.Name
			}
			if _, err := fmt.Fprintf(w, "==== %s ====\n%s\n", name, ds.Text()); err != nil {
				return err
			}
		}
		return nil
	case dataset.FormatJSON:
		return dataset.WriteJSONArray(w, dss)
	default:
		for i, ds := range dss {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			if err := ds.Render(w, f); err != nil {
				return err
			}
		}
		return nil
	}
}

// Ints parses a comma-separated integer list; empty input is nil.
func Ints(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, nwerr.Invalidf("invalid integer %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Floats parses a comma-separated number list; empty input is nil.
func Floats(arg string) ([]float64, error) {
	if arg == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, nwerr.Invalidf("invalid number %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Peers parses a -peers flag value: comma-separated ID=URL pairs naming
// the other nodes of a fleet ("b=http://host2:8607,c=http://host3:8607").
// Blank entries are skipped; duplicate ids and an entry without both
// halves are Invalid-class errors, as is a value naming no nodes at all.
func Peers(arg string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, nwerr.Invalidf("-peers entry %q: want ID=URL", part)
		}
		if _, dup := peers[id]; dup {
			return nil, nwerr.Invalidf("-peers names node %q twice", id)
		}
		peers[id] = url
	}
	if len(peers) == 0 {
		return nil, nwerr.Invalidf("-peers %q names no nodes", arg)
	}
	return peers, nil
}

// Types parses a comma-separated code-family list; empty input is nil.
func Types(arg string) ([]code.Type, error) {
	if arg == "" {
		return nil, nil
	}
	var out []code.Type
	for _, s := range strings.Split(arg, ",") {
		tp, err := code.ParseType(strings.TrimSpace(s))
		if err != nil {
			return nil, nwerr.Invalid(err)
		}
		out = append(out, tp)
	}
	return out, nil
}
