package cli

import (
	"strings"
	"testing"
	"time"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
)

func twoDatasets() []*dataset.Dataset {
	a := dataset.New("first", "First", dataset.Col("n", dataset.Int))
	a.AddRow(1)
	a.Meta.Experiment = "fig5"
	a.SetText(func() string { return "figure five\n" })
	b := dataset.New("second", "Second", dataset.Col("n", dataset.Int))
	b.AddRow(2)
	return []*dataset.Dataset{a, b}
}

func TestRenderAllTextFraming(t *testing.T) {
	var sb strings.Builder
	if err := RenderAll(&sb, dataset.FormatText, twoDatasets()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The banner uses Meta.Experiment when set, the dataset name otherwise —
	// the historical nwsim -exp all framing.
	if !strings.Contains(out, "==== fig5 ====\nfigure five\n") {
		t.Errorf("experiment banner wrong:\n%s", out)
	}
	if !strings.Contains(out, "==== second ====") {
		t.Errorf("name fallback banner missing:\n%s", out)
	}
}

func TestRenderAllJSONIsOneArray(t *testing.T) {
	var sb strings.Builder
	if err := RenderAll(&sb, dataset.FormatJSON, twoDatasets()); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.HasPrefix(out, "[") || !strings.HasSuffix(out, "]") {
		t.Errorf("JSON run-all output is not one array:\n%s", out)
	}
}

func TestRenderAllCSVSeparatesWithBlankLine(t *testing.T) {
	var sb strings.Builder
	if err := RenderAll(&sb, dataset.FormatCSV, twoDatasets()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1\n\nn\n2\n") {
		t.Errorf("CSV blocks not blank-line separated:\n%s", sb.String())
	}
}

func TestIntsFloatsTypes(t *testing.T) {
	ints, err := Ints(" 4, 6 ,8")
	if err != nil || len(ints) != 3 || ints[2] != 8 {
		t.Errorf("Ints = %v, %v", ints, err)
	}
	if _, err := Ints("4,x"); err == nil {
		t.Error("bad int accepted")
	}
	if v, err := Ints(""); v != nil || err != nil {
		t.Error("empty Ints not nil")
	}
	floats, err := Floats("0.4,1")
	if err != nil || len(floats) != 2 || floats[0] != 0.4 {
		t.Errorf("Floats = %v, %v", floats, err)
	}
	if _, err := Floats("0.4,"); err == nil {
		t.Error("bad float accepted")
	}
	types, err := Types("BGC, TC")
	if err != nil || len(types) != 2 || types[0] != code.TypeBalancedGray {
		t.Errorf("Types = %v, %v", types, err)
	}
	if _, err := Types("XYZ"); err == nil {
		t.Error("bad code family accepted")
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	c := &Common{Timeout: time.Nanosecond}
	ctx, cancel := c.Context()
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Error("timeout context never expired")
	}
	c = &Common{}
	ctx2, cancel2 := c.Context()
	select {
	case <-ctx2.Done():
		t.Error("no-timeout context already done")
	default:
	}
	cancel2()
}
