package par

import "context"

// Semaphore is the admission-control primitive of the execution engine: a
// fixed pool of slots that callers acquire before starting expensive work
// and release when done. It bounds *requests in flight* the way the worker
// pool bounds *tasks in flight* — the two compose, with the semaphore at
// the request boundary and ForEach/Map underneath.
//
// The implementation is a buffered channel, so Acquire needs no goroutines
// and respects cancellation: a caller blocked on a full semaphore returns
// as soon as its context is done.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n slots; n <= 0 selects
// Workers(0) (GOMAXPROCS), mirroring the pool-size convention.
func NewSemaphore(n int) *Semaphore {
	return &Semaphore{slots: make(chan struct{}, Workers(n))}
}

// Cap returns the slot count.
func (s *Semaphore) Cap() int { return cap(s.slots) }

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case. A nil return means the caller holds a slot and
// must Release it.
func (s *Semaphore) Acquire(ctx context.Context) error {
	// Prefer the context verdict when both are ready: an already-canceled
	// caller never starts new work, even with slots free.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot. Releasing more than was acquired is a
// programming error and panics rather than silently widening the bound.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("par: Semaphore.Release without matching Acquire")
	}
}

// InFlight returns the number of currently held slots.
func (s *Semaphore) InFlight() int { return len(s.slots) }
