// Package par is the deterministic parallel execution engine of the
// simulator: a bounded worker pool with order-preserving Map/ForEach
// primitives used by every sweep, experiment grid and Monte-Carlo driver in
// the repository.
//
// Determinism is the design constraint. The pool never changes *what* is
// computed, only *when*: work items are pure functions of their index, every
// result lands in its input slot, and any reduction over the results happens
// in index order on the caller's side. Combined with the jump-based RNG
// substreams of package stats (each shard owns an independent
// xoshiro256** stream derived from the experiment seed), a sweep produces
// bit-identical output at every worker count — the serial path is simply
// workers = 1.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nwdec/internal/obs"
)

// Workers resolves a requested worker count: any value <= 0 selects
// runtime.GOMAXPROCS(0), the default of every parallel API in the
// repository.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachN runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers. The first error observed cancels the remaining work via the
// derived context and is returned (with workers = 1 this is exactly the
// serial first error; at higher worker counts it is the lowest-index error
// among the items that ran before cancellation took effect). A nil return
// guarantees every index was processed.
//
// When the context carries an obs.Registry the engine records per-worker
// task counts ("par/worker/<k>/tasks"), total tasks ("par/tasks"), pool
// invocations and sizes, and — when the registry has a clock — per-task
// durations ("par/task_ns") plus per-worker busy and idle (queue-wait)
// nanoseconds. The metrics describe execution only; they never change
// what is computed, and with no registry installed the instrumentation is
// a handful of nil checks.
func ForEachN(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	reg := obs.From(ctx)
	clock := reg.Clock()
	if w == 1 {
		tasks := reg.Counter("par/tasks")
		wtasks := reg.Counter("par/worker/00/tasks")
		busy := reg.Counter("par/worker/00/busy_ns")
		taskNS := reg.Histogram("par/task_ns")
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			var t0 time.Duration
			if clock != nil {
				t0 = clock.Now()
			}
			if err := fn(ctx, i); err != nil {
				reg.Counter("par/errors").Add(1)
				return err
			}
			if clock != nil {
				d := int64(clock.Now() - t0)
				busy.Add(d)
				taskNS.Observe(d)
			}
			tasks.Add(1)
			wtasks.Add(1)
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reg.Counter("par/pools").Add(1)
	reg.Gauge("par/pool_size").Set(float64(w))
	tasks := reg.Counter("par/tasks")
	taskNS := reg.Histogram("par/task_ns")
	var poolStart time.Duration
	if clock != nil {
		poolStart = clock.Now()
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var done, busyNS int64
			for {
				i := int(next.Add(1) - 1)
				if i >= n || wctx.Err() != nil {
					break
				}
				var t0 time.Duration
				if clock != nil {
					t0 = clock.Now()
				}
				err := fn(wctx, i)
				if clock != nil {
					d := int64(clock.Now() - t0)
					busyNS += d
					taskNS.Observe(d)
				}
				if err != nil {
					reg.Counter("par/errors").Add(1)
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					break
				}
				done++
			}
			if reg != nil {
				prefix := fmt.Sprintf("par/worker/%02d/", k)
				tasks.Add(done)
				reg.Counter(prefix + "tasks").Add(done)
				if clock != nil {
					reg.Counter(prefix + "busy_ns").Add(busyNS)
					reg.Counter(prefix + "idle_ns").Add(int64(clock.Now()-poolStart) - busyNS)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ForEach runs fn over every element of items on a bounded worker pool with
// ForEachN's cancellation semantics.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) error) error {
	return ForEachN(ctx, workers, len(items), func(ctx context.Context, i int) error {
		return fn(ctx, i, items[i])
	})
}

// Map evaluates fn over every element of items on a bounded worker pool and
// returns the results in input order. On error the partial results are
// discarded and the first observed error is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachN(ctx, workers, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapN evaluates fn(ctx, i) for every i in [0, n) and returns the results
// in index order — Map for work items that are pure functions of their
// index.
func MapN[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	if n < 0 {
		n = 0
	}
	out := make([]R, n)
	err := ForEachN(ctx, workers, n, func(ctx context.Context, i int) error {
		r, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
