// Package par is the deterministic parallel execution engine of the
// simulator: a bounded worker pool with order-preserving Map/ForEach
// primitives used by every sweep, experiment grid and Monte-Carlo driver in
// the repository.
//
// Determinism is the design constraint. The pool never changes *what* is
// computed, only *when*: work items are pure functions of their index, every
// result lands in its input slot, and any reduction over the results happens
// in index order on the caller's side. Combined with the jump-based RNG
// substreams of package stats (each shard owns an independent
// xoshiro256** stream derived from the experiment seed), a sweep produces
// bit-identical output at every worker count — the serial path is simply
// workers = 1.
//
// Scheduling granularity is chunked: one dequeued unit of work is a
// contiguous index block [lo, hi), not a single item, so the per-task
// overhead (queue round-trip, clock reads, histogram observes) is amortized
// over ChunkSize items. Chunking never changes results — items inside a
// chunk run in ascending index order, chunks cover [0, n) exactly once —
// and every per-item API accepts an explicit chunk override for callers
// that know their granularity (1 reproduces the historical per-item
// scheduling exactly).
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nwdec/internal/obs"
)

// Workers resolves a requested worker count: any value <= 0 selects
// runtime.GOMAXPROCS(0), the default of every parallel API in the
// repository.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ChunkSize resolves a requested chunk size against the auto heuristic:
// any value <= 0 selects n/(workers*4) clamped to at least 1 — four chunks
// per worker balances load (stragglers can steal) against per-chunk
// scheduling overhead. The result never exceeds n (for n > 0).
func ChunkSize(chunk, n, workers int) int {
	if chunk <= 0 {
		chunk = n / (Workers(workers) * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	if chunk > n && n > 0 {
		chunk = n
	}
	return chunk
}

// Range is one contiguous index block [Lo, Hi) of a partitioned work
// space — the unit the chunked APIs schedule and the unit the job layer
// checkpoints.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Ranges partitions [0, n) into contiguous blocks of the given chunk size
// (<= 0 selects the ChunkSize heuristic at the default worker count). The
// blocks cover [0, n) exactly once in ascending order; the last block may
// be short. n <= 0 yields no blocks. The partition is a pure function of
// (n, chunk), which is what lets the job layer address each block by its
// index across process restarts.
func Ranges(n, chunk int) []Range {
	if n <= 0 {
		return nil
	}
	chunk = ChunkSize(chunk, n, 0)
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// ForEachChunks runs fn(ctx, lo, hi) over contiguous index blocks covering
// [0, n) exactly once, on a bounded pool of workers. chunk <= 0 selects the
// ChunkSize heuristic. Blocks are claimed in ascending order; the first
// error in block order cancels the remaining work via the derived context
// and is returned (with workers = 1 this is exactly the serial first error;
// at higher worker counts it is the lowest-block error among the blocks
// that ran before cancellation took effect). A nil return guarantees every
// index was processed.
//
// This is the scratch-arena primitive: a block callback may allocate
// buffers once and reuse them across every item of its block, with no
// synchronization — the buffers are confined to one callback invocation,
// which the race detector can verify.
//
// When the context carries an obs.Registry the engine records per-worker
// item counts ("par/worker/<k>/tasks"), total items ("par/tasks"), chunk
// counts ("par/chunks"), pool invocations and sizes, and — when the
// registry has a clock — per-chunk durations ("par/task_ns") plus
// per-worker busy and idle (queue-wait) nanoseconds. Instrumentation is
// per-chunk, not per-item, so it never dominates microsecond-scale items;
// the metrics describe execution only and never change what is computed.
func ForEachChunks(ctx context.Context, workers, n, chunk int, fn func(ctx context.Context, lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	chunk = ChunkSize(chunk, n, w)
	nchunks := (n + chunk - 1) / chunk
	if w > nchunks {
		w = nchunks
	}
	reg := obs.From(ctx)
	clock := reg.Clock()
	if w == 1 {
		tasks := reg.Counter("par/tasks")
		chunks := reg.Counter("par/chunks")
		wtasks := reg.Counter("par/worker/00/tasks")
		busy := reg.Counter("par/worker/00/busy_ns")
		chunkNS := reg.Histogram("par/task_ns")
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			var t0 time.Duration
			if clock != nil {
				t0 = clock.Now()
			}
			if err := fn(ctx, lo, hi); err != nil {
				reg.Counter("par/errors").Add(1)
				return err
			}
			if clock != nil {
				d := int64(clock.Now() - t0)
				busy.Add(d)
				chunkNS.Observe(d)
			}
			tasks.Add(int64(hi - lo))
			wtasks.Add(int64(hi - lo))
			chunks.Add(1)
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reg.Counter("par/pools").Add(1)
	reg.Gauge("par/pool_size").Set(float64(w))
	reg.Gauge("par/chunk_size").Set(float64(chunk))
	tasks := reg.Counter("par/tasks")
	chunks := reg.Counter("par/chunks")
	chunkNS := reg.Histogram("par/task_ns")
	var poolStart time.Duration
	if clock != nil {
		poolStart = clock.Now()
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstLo  = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var done, doneChunks, busyNS int64
			for {
				c := int(next.Add(1) - 1)
				if c >= nchunks || wctx.Err() != nil {
					break
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				var t0 time.Duration
				if clock != nil {
					t0 = clock.Now()
				}
				err := fn(wctx, lo, hi)
				if clock != nil {
					d := int64(clock.Now() - t0)
					busyNS += d
					chunkNS.Observe(d)
				}
				if err != nil {
					// A block that merely observed the pool's own
					// cancellation (another block failed, or the caller's
					// context expired) did not produce a new failure; the
					// canceling block recorded the real error, and a parent
					// cancellation is reported via ctx.Err() below.
					if cerr := wctx.Err(); cerr != nil && errors.Is(err, cerr) {
						break
					}
					reg.Counter("par/errors").Add(1)
					mu.Lock()
					if firstLo < 0 || lo < firstLo {
						firstLo, firstErr = lo, err
					}
					mu.Unlock()
					cancel()
					break
				}
				done += int64(hi - lo)
				doneChunks++
			}
			if reg != nil {
				prefix := fmt.Sprintf("par/worker/%02d/", k)
				tasks.Add(done)
				chunks.Add(doneChunks)
				reg.Counter(prefix + "tasks").Add(done)
				if clock != nil {
					reg.Counter(prefix + "busy_ns").Add(busyNS)
					reg.Counter(prefix + "idle_ns").Add(int64(clock.Now()-poolStart) - busyNS)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ForEachChunked runs fn(ctx, i) for every i in [0, n), scheduled in
// contiguous blocks of the given chunk size (<= 0 selects the ChunkSize
// heuristic). Items inside a block run in ascending order and stop at the
// block's first error or on cancellation, so the returned error follows
// ForEachChunks semantics: the lowest-index error among the items that ran,
// which for chunk = 1 (or workers = 1) is exactly the historical per-item
// behavior of ForEachN.
func ForEachChunked(ctx context.Context, workers, n, chunk int, fn func(ctx context.Context, i int) error) error {
	return ForEachChunks(ctx, workers, n, chunk, func(cctx context.Context, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := cctx.Err(); err != nil {
				return err
			}
			if err := fn(cctx, i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ForEachN runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers with the auto-chunked scheduling of ForEachChunked. The first
// error observed (lowest block, then lowest index within it) cancels the
// remaining work via the derived context and is returned; a nil return
// guarantees every index was processed.
func ForEachN(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	return ForEachChunked(ctx, workers, n, 0, fn)
}

// ForEach runs fn over every element of items on a bounded worker pool with
// ForEachN's cancellation semantics.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) error) error {
	return ForEachN(ctx, workers, len(items), func(ctx context.Context, i int) error {
		return fn(ctx, i, items[i])
	})
}

// Map evaluates fn over every element of items on a bounded worker pool and
// returns the results in input order. On error the partial results are
// discarded and the first observed error is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	return MapChunked(ctx, workers, 0, items, fn)
}

// MapChunked is Map with an explicit chunk size (<= 0 selects the ChunkSize
// heuristic): one dequeued unit is a contiguous block of items.
func MapChunked[T, R any](ctx context.Context, workers, chunk int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	return MapNChunked(ctx, workers, len(items), chunk, func(ctx context.Context, i int) (R, error) {
		return fn(ctx, i, items[i])
	})
}

// MapN evaluates fn(ctx, i) for every i in [0, n) and returns the results
// in index order — Map for work items that are pure functions of their
// index.
func MapN[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	return MapNChunked(ctx, workers, n, 0, fn)
}

// MapNChunked is MapN with an explicit chunk size (<= 0 selects the
// ChunkSize heuristic). On error the partial results are discarded and the
// first observed error is returned.
func MapNChunked[R any](ctx context.Context, workers, n, chunk int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	if n < 0 {
		n = 0
	}
	out := make([]R, n)
	err := ForEachChunked(ctx, workers, n, chunk, func(ctx context.Context, i int) error {
		r, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
