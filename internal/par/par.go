// Package par is the deterministic parallel execution engine of the
// simulator: a bounded worker pool with order-preserving Map/ForEach
// primitives used by every sweep, experiment grid and Monte-Carlo driver in
// the repository.
//
// Determinism is the design constraint. The pool never changes *what* is
// computed, only *when*: work items are pure functions of their index, every
// result lands in its input slot, and any reduction over the results happens
// in index order on the caller's side. Combined with the jump-based RNG
// substreams of package stats (each shard owns an independent
// xoshiro256** stream derived from the experiment seed), a sweep produces
// bit-identical output at every worker count — the serial path is simply
// workers = 1.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: any value <= 0 selects
// runtime.GOMAXPROCS(0), the default of every parallel API in the
// repository.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachN runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers. The first error observed cancels the remaining work via the
// derived context and is returned (with workers = 1 this is exactly the
// serial first error; at higher worker counts it is the lowest-index error
// among the items that ran before cancellation took effect). A nil return
// guarantees every index was processed.
func ForEachN(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := fn(wctx, i); err != nil {
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ForEach runs fn over every element of items on a bounded worker pool with
// ForEachN's cancellation semantics.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) error) error {
	return ForEachN(ctx, workers, len(items), func(ctx context.Context, i int) error {
		return fn(ctx, i, items[i])
	})
}

// Map evaluates fn over every element of items on a bounded worker pool and
// returns the results in input order. On error the partial results are
// discarded and the first observed error is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachN(ctx, workers, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapN evaluates fn(ctx, i) for every i in [0, n) and returns the results
// in index order — Map for work items that are pure functions of their
// index.
func MapN[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	if n < 0 {
		n = 0
	}
	out := make([]R, n)
	err := ForEachN(ctx, workers, n, func(ctx context.Context, i int) error {
		r, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
