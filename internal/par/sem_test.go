package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	const cap, callers = 3, 32
	s := NewSemaphore(cap)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer s.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeds semaphore cap %d", p, cap)
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d after all releases", s.InFlight())
	}
}

func TestSemaphoreAcquireHonorsCancel(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); err != context.DeadlineExceeded {
		t.Errorf("Acquire on full semaphore = %v, want DeadlineExceeded", err)
	}
	s.Release()

	// An already-canceled context never takes a slot, even with one free.
	done, stop := context.WithCancel(context.Background())
	stop()
	if err := s.Acquire(done); err != context.Canceled {
		t.Errorf("Acquire with canceled ctx = %v, want Canceled", err)
	}
	if s.InFlight() != 0 {
		t.Errorf("canceled Acquire leaked a slot: InFlight = %d", s.InFlight())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire on empty semaphore failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire on full semaphore succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
	s.Release()
}

func TestSemaphoreDefaultsAndMisuse(t *testing.T) {
	if got := NewSemaphore(0).Cap(); got != Workers(0) {
		t.Errorf("NewSemaphore(0).Cap() = %d, want GOMAXPROCS (%d)", got, Workers(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Release did not panic")
		}
	}()
	NewSemaphore(1).Release()
}
