package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestChunkSizeHeuristic(t *testing.T) {
	cases := []struct {
		chunk, n, workers, want int
	}{
		{0, 1000, 4, 62},   // n/(w*4)
		{0, 3, 4, 1},       // heuristic floors at 1
		{0, 0, 4, 1},       // n = 0 still resolves to a positive size
		{5, 100, 4, 5},     // explicit override wins
		{500, 100, 4, 100}, // chunk > n clamps to n
		{1, 100, 4, 1},     // per-item granularity on request
		{0, 64, 1, 16},     // serial auto chunk
	}
	for _, c := range cases {
		if got := ChunkSize(c.chunk, c.n, c.workers); got != c.want {
			t.Errorf("ChunkSize(%d, %d, %d) = %d, want %d", c.chunk, c.n, c.workers, got, c.want)
		}
	}
}

// TestForEachChunksCoversExactly verifies that every index is visited
// exactly once for chunk sizes around the boundaries: 1, a divisor, a
// non-divisor, n itself and chunk > n.
func TestForEachChunksCoversExactly(t *testing.T) {
	const n = 97
	for _, chunk := range []int{1, 2, 7, 32, n, n + 13} {
		for _, w := range []int{1, 3, 8} {
			var hits [n]atomic.Int32
			err := ForEachChunks(context.Background(), w, n, chunk,
				func(_ context.Context, lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						return fmt.Errorf("bad block [%d, %d)", lo, hi)
					}
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
					return nil
				})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, w, err)
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Errorf("chunk=%d workers=%d: index %d visited %d times", chunk, w, i, hits[i].Load())
				}
			}
		}
	}
}

// TestChunkOneMatchesPerItemSemantics pins the compatibility contract:
// chunk = 1 reproduces the historical per-item scheduling — serial first
// error, exact early-exit item count.
func TestChunkOneMatchesPerItemSemantics(t *testing.T) {
	var calls int
	err := ForEachChunked(context.Background(), 1, 10, 1, func(_ context.Context, i int) error {
		calls++
		if i >= 3 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 3" {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("chunk=1 serial path ran %d items after the error", calls)
	}
}

// TestFirstErrorAcrossChunkBoundaries fails two items in different blocks
// at every worker count and requires the lower-index failure to win: items
// in a block run in ascending order and blocks are reduced by ascending
// base index, so the winner is deterministic even in parallel.
func TestFirstErrorAcrossChunkBoundaries(t *testing.T) {
	const n = 64
	for _, w := range []int{1, 2, 8} {
		for _, chunk := range []int{1, 4, 16} {
			err := ForEachChunked(context.Background(), w, n, chunk, func(_ context.Context, i int) error {
				if i == 9 || i == 41 {
					return fmt.Errorf("fail %d", i)
				}
				return nil
			})
			if err == nil {
				t.Fatalf("workers=%d chunk=%d: expected an error", w, chunk)
			}
			var idx int
			if _, serr := fmt.Sscanf(err.Error(), "fail %d", &idx); serr != nil {
				t.Fatalf("workers=%d chunk=%d: err = %v", w, chunk, err)
			}
			// 41's block can only win if 9's block never ran before
			// cancellation — impossible serially, and in parallel the
			// reported error must still be one of the injected failures.
			if idx != 9 && idx != 41 {
				t.Errorf("workers=%d chunk=%d: err = %v, want an injected failure", w, chunk, err)
			}
			if w == 1 && idx != 9 {
				t.Errorf("workers=1 chunk=%d: err = %v, want the serial first error", chunk, err)
			}
		}
	}
}

// TestCancellationMidChunk cancels the caller's context while a block is in
// flight: the per-item loop must stop inside the block (not run it to
// completion) and the pool must report the context error, not a partial
// success.
func TestCancellationMidChunk(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEachChunked(ctx, 2, 1000, 250, func(ictx context.Context, i int) error {
			if i == 0 {
				cancel()
				close(release)
				return nil
			}
			<-release
			ran.Add(1)
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not observe mid-chunk cancellation")
	}
	// Item 0 cancelled before any other item of its 250-wide block ran to
	// completion; the per-item ctx check must have cut the block short.
	if n := ran.Load(); n >= 249 {
		t.Errorf("block ran %d items after cancellation", n)
	}
}

// TestChunkScratchArenaRaceClean is the contention test for the per-block
// scratch-arena pattern: every block allocates one buffer and reuses it
// across its items, many workers in flight. Run under -race this proves the
// arena confinement rule (scratch is block-local, results are index-slotted)
// needs no synchronization.
func TestChunkScratchArenaRaceClean(t *testing.T) {
	const n = 4096
	out := make([]int, n)
	err := ForEachChunks(context.Background(), runtime.GOMAXPROCS(0)*4, n, 0,
		func(_ context.Context, lo, hi int) error {
			scratch := make([]int, 0, hi-lo) // block-local arena, reused per item
			for i := lo; i < hi; i++ {
				scratch = append(scratch[:0], i, i*i)
				out[i] = scratch[0] + scratch[1]
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != i+i*i {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+i*i)
		}
	}
}

// TestChunkedEquivalence verifies bit-equality of MapNChunked results
// across worker counts and chunk sizes — the determinism contract the rest
// of the repository builds on.
func TestChunkedEquivalence(t *testing.T) {
	const n = 257
	ref, err := MapNChunked(context.Background(), 1, n, 1, func(_ context.Context, i int) (int, error) {
		return i*31 + 7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		for _, chunk := range []int{0, 1, 5, 64, n + 1} {
			got, err := MapNChunked(context.Background(), w, n, chunk, func(_ context.Context, i int) (int, error) {
				return i*31 + 7, nil
			})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", w, chunk, err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d chunk=%d: out[%d] = %d, want %d", w, chunk, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestMapChunkedPassesItems pins the item-slice variant.
func TestMapChunkedPassesItems(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	out, err := MapChunked(context.Background(), 2, 2, items,
		func(_ context.Context, i int, item string) (string, error) {
			return fmt.Sprintf("%d:%s", i, item), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		if want := fmt.Sprintf("%d:%s", i, item); out[i] != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want)
		}
	}
}
