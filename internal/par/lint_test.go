package par_test

import (
	"testing"

	"nwdec/internal/lint"
)

// TestParLintClean runs the full nwlint analyzer suite over this package
// and checks its registration: internal/par is the one place goroutine
// creation is allowed (the containment the nogoroutine rule enforces
// everywhere else, including for the chunked scheduling APIs), and its
// exported *Workers/chunked entry points must keep the context-first
// signature the ctxfirst rule checks.
func TestParLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package from source")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	if !cfg.GoroutineAllowed(loader.Module + "/internal/par") {
		t.Error("internal/par is not registered as the goroutine-containment package")
	}
	if cfg.GoroutineAllowed(loader.Module + "/internal/stats") {
		t.Error("internal/stats must not be allowed to create goroutines")
	}
	pkg, err := loader.Load(loader.Module + "/internal/par")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.All(), cfg) {
		t.Errorf("%s", d)
	}
}
