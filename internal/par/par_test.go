package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, w := range []int{1, 2, 4, 0} {
		out, err := Map(context.Background(), w, items,
			func(_ context.Context, i, item int) (int, error) { return item * item, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapNCoversEveryIndex(t *testing.T) {
	var hits [64]atomic.Int32
	out, err := MapN(context.Background(), 4, 64, func(_ context.Context, i int) (int, error) {
		hits[i].Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Errorf("index %d ran %d times", i, hits[i].Load())
		}
		if out[i] != i {
			t.Errorf("out[%d] = %d", i, out[i])
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	if err := ForEachN(context.Background(), 4, 0, nil); err != nil {
		t.Errorf("n=0: %v", err)
	}
	out, err := MapN(context.Background(), 4, -1, func(_ context.Context, _ int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("n=-1: out=%v err=%v", out, err)
	}
}

func TestSerialErrorIsFirstError(t *testing.T) {
	var calls int
	err := ForEachN(context.Background(), 1, 10, func(_ context.Context, i int) error {
		calls++
		if i >= 3 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 3" {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("serial path ran %d items after the error", calls)
	}
}

func TestParallelErrorIsObservedFailure(t *testing.T) {
	// Every item fails; whatever interleaving the scheduler picks, the
	// reported error must be one of the failures (the lowest index among
	// those that ran before cancellation).
	err := ForEachN(context.Background(), 8, 100, func(_ context.Context, i int) error {
		return fmt.Errorf("fail %d", i)
	})
	var idx int
	if err == nil {
		t.Fatal("expected an error")
	}
	if _, serr := fmt.Sscanf(err.Error(), "fail %d", &idx); serr != nil || idx < 0 || idx >= 100 {
		t.Fatalf("err = %v, want a propagated item failure", err)
	}
}

func TestErrorCancelsRemainingWork(t *testing.T) {
	sentinel := errors.New("stop")
	var ran atomic.Int32
	err := ForEachN(context.Background(), 2, 10000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		// Give cancellation a moment to propagate so the count below is
		// meaningful rather than a pure race.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d items after cancellation", n)
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, []int{1, 2, 3, 4}, func(_ context.Context, i, v int) (int, error) {
		if i == 2 {
			return 0, errors.New("bad item")
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("partial results leaked: %v", out)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachN(ctx, 4, 50, func(_ context.Context, _ int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachPassesItems(t *testing.T) {
	items := []string{"a", "b", "c"}
	got := make([]string, len(items))
	err := ForEach(context.Background(), 1, items, func(_ context.Context, i int, item string) error {
		got[i] = item
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if got[i] != items[i] {
			t.Errorf("item %d = %q", i, got[i])
		}
	}
}
