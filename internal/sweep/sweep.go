// Package sweep is the batch design-space exploration engine: it evaluates
// the decoder designer over the Cartesian product of parameter grids and
// emits tidy (long-format) rows suitable for CSV export and downstream
// statistical tooling — the kind of systematic data product the paper's
// evaluation implies but never shipped.
package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/obs"
	"nwdec/internal/par"
)

// Grid spans the design space to evaluate. Empty slices select the default
// grid for that axis.
type Grid struct {
	// Types are the code families (default: all five).
	Types []code.Type
	// Lengths are the code lengths M; structurally invalid (family, M)
	// pairs are skipped.
	Lengths []int
	// SigmaTs are the per-dose deviations in volts (default: 50 mV).
	SigmaTs []float64
	// MarginFactors scale the sensing margin (default: 1.0).
	MarginFactors []float64
	// HalfCaveWires are the cave populations N (default: 20).
	HalfCaveWires []int
}

// DefaultGrid returns the paper's Fig. 7/8 grid extended with one sigma and
// margin axis point each.
func DefaultGrid() Grid {
	return Grid{
		Types:         code.AllTypes(),
		Lengths:       []int{4, 6, 8, 10},
		SigmaTs:       []float64{0.05},
		MarginFactors: []float64{1.0},
		HalfCaveWires: []int{20},
	}
}

func (g Grid) withDefaults() Grid {
	d := DefaultGrid()
	if len(g.Types) == 0 {
		g.Types = d.Types
	}
	if len(g.Lengths) == 0 {
		g.Lengths = d.Lengths
	}
	if len(g.SigmaTs) == 0 {
		g.SigmaTs = d.SigmaTs
	}
	if len(g.MarginFactors) == 0 {
		g.MarginFactors = d.MarginFactors
	}
	if len(g.HalfCaveWires) == 0 {
		g.HalfCaveWires = d.HalfCaveWires
	}
	return g
}

// Size returns the number of grid points before validity filtering.
func (g Grid) Size() int {
	g = g.withDefaults()
	return len(g.Types) * len(g.Lengths) * len(g.SigmaTs) * len(g.MarginFactors) * len(g.HalfCaveWires)
}

// Row is one evaluated design point in long format.
type Row struct {
	Type          code.Type
	Length        int
	SigmaT        float64
	MarginFactor  float64
	HalfCaveWires int

	SpaceSize      int
	ContactGroups  int
	Phi            int
	AvgVariability float64
	Yield          float64
	EffectiveBits  float64
	BitArea        float64
}

// Point is one structurally valid grid point: the fully resolved platform
// configuration plus the axis values that produced it (kept alongside the
// config so rows and error messages can echo the grid coordinates without
// re-deriving them).
type Point struct {
	Config        core.Config
	Type          code.Type
	Length        int
	SigmaT        float64
	MarginFactor  float64
	HalfCaveWires int
}

// Points expands the grid over the base platform into its structurally
// valid design points, flattened in the grid's Cartesian order (types →
// lengths → sigmas → margins → wires). The expansion is a pure function
// of (base, grid) — the same inputs yield the same point list in the same
// order in every process — which is what lets the job layer partition the
// list into chunks and address each chunk by index across restarts.
func (g Grid) Points(base core.Config) []Point {
	g = g.withDefaults()
	var points []Point
	for _, tp := range g.Types {
		for _, m := range g.Lengths {
			for _, sigma := range g.SigmaTs {
				for _, mf := range g.MarginFactors {
					for _, n := range g.HalfCaveWires {
						cfg := base.WithDefaults()
						cfg.CodeType = tp
						cfg.CodeLength = m
						cfg.SigmaT = sigma
						cfg.MarginFactor = mf
						cfg.Spec.HalfCaveWires = n
						if !validLength(tp, cfg.Base, m) {
							continue
						}
						points = append(points, Point{
							Config:        cfg,
							Type:          tp,
							Length:        m,
							SigmaT:        sigma,
							MarginFactor:  mf,
							HalfCaveWires: n,
						})
					}
				}
			}
		}
	}
	return points
}

// EvalPoint resolves one grid point into its design row.
func EvalPoint(p Point) (Row, error) {
	d, err := core.NewDesign(p.Config)
	if err != nil {
		return Row{}, fmt.Errorf("sweep: %v M=%d σ=%g mf=%g N=%d: %w",
			p.Type, p.Length, p.SigmaT, p.MarginFactor, p.HalfCaveWires, err)
	}
	return Row{
		Type:           p.Type,
		Length:         p.Length,
		SigmaT:         p.SigmaT,
		MarginFactor:   p.MarginFactor,
		HalfCaveWires:  p.HalfCaveWires,
		SpaceSize:      d.Generator.SpaceSize(),
		ContactGroups:  d.Layout.Contact.Groups,
		Phi:            d.Phi,
		AvgVariability: d.AvgVariability,
		Yield:          d.Crossbar.Yield,
		EffectiveBits:  d.Crossbar.EffectiveBits,
		BitArea:        d.Crossbar.BitArea,
	}, nil
}

// EvalPoints evaluates a point slice on a bounded worker pool (workers
// <= 0 means GOMAXPROCS) and returns the rows in input order — the
// chunk-evaluation primitive shared by RunWorkers and the job layer.
// Cancelling ctx abandons unfinished points and returns ctx's error.
func EvalPoints(ctx context.Context, workers int, points []Point) ([]Row, error) {
	return par.Map(ctx, workers, points,
		func(_ context.Context, _ int, p Point) (Row, error) {
			return EvalPoint(p)
		})
}

// Run evaluates every structurally valid grid point on the base platform.
// It runs on the default worker pool; cancelling ctx aborts the sweep.
func Run(ctx context.Context, base core.Config, grid Grid) ([]Row, error) {
	return RunWorkers(ctx, base, grid, 0)
}

// RunWorkers is Run with a cancellation context and an explicit worker
// count (<= 0 means GOMAXPROCS). The valid grid points are flattened in the
// grid's Cartesian order (types → lengths → sigmas → margins → wires)
// before fanning out, and the rows come back in that same order, so the
// output is bit-identical at every worker count. Cancelling ctx abandons
// unfinished points and returns ctx's error.
func RunWorkers(ctx context.Context, base core.Config, grid Grid, workers int) ([]Row, error) {
	grid = grid.withDefaults()
	points := grid.Points(base)
	reg := obs.From(ctx)
	span := reg.StartSpan("sweep/run")
	defer span.End()
	reg.Gauge("sweep/grid_size").Set(float64(grid.Size()))
	reg.Counter("sweep/points").Add(int64(len(points)))
	rows, err := EvalPoints(ctx, workers, points)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("sweep: grid produced no valid design points")
	}
	return rows, nil
}

// validLength mirrors the structural rule of the core sweeps.
func validLength(tp code.Type, base, m int) bool {
	if base == 0 {
		base = 2
	}
	if m <= 0 {
		return false
	}
	if tp.Reflected() {
		return m%2 == 0
	}
	return m%base == 0
}

// Dataset packages sweep rows as a structured dataset whose columns match
// Header() in name and order, so every renderer (CSV included) emits the
// same tidy long format.
func Dataset(rows []Row) *dataset.Dataset {
	ds := dataset.New("sweep", "Design-space sweep (tidy long format)",
		dataset.Col("code", dataset.String),
		dataset.Col("length", dataset.Int),
		dataset.ColUnit("sigmaT_V", "V", dataset.Float),
		dataset.Col("marginFactor", dataset.Float),
		dataset.Col("halfCaveWires", dataset.Int),
		dataset.Col("spaceSize", dataset.Int),
		dataset.Col("contactGroups", dataset.Int),
		dataset.Col("phi", dataset.Int),
		dataset.ColUnit("avgVariability_V2", "V²", dataset.Float),
		dataset.Col("yield", dataset.Float),
		dataset.Col("effectiveBits", dataset.Float),
		dataset.ColUnit("bitArea_nm2", "nm²", dataset.Float),
	)
	for _, r := range rows {
		ds.AddRow(r.Type.String(), r.Length, r.SigmaT, r.MarginFactor,
			r.HalfCaveWires, r.SpaceSize, r.ContactGroups, r.Phi,
			r.AvgVariability, r.Yield, r.EffectiveBits, r.BitArea)
	}
	return ds
}

// Header lists the CSV column names, matching WriteCSV's output order.
func Header() []string {
	return []string{
		"code", "length", "sigmaT_V", "marginFactor", "halfCaveWires",
		"spaceSize", "contactGroups", "phi", "avgVariability_V2",
		"yield", "effectiveBits", "bitArea_nm2",
	}
}

// WriteCSV emits the rows in tidy long format.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Type.String(),
			strconv.Itoa(r.Length),
			formatFloat(r.SigmaT),
			formatFloat(r.MarginFactor),
			strconv.Itoa(r.HalfCaveWires),
			strconv.Itoa(r.SpaceSize),
			strconv.Itoa(r.ContactGroups),
			strconv.Itoa(r.Phi),
			formatFloat(r.AvgVariability),
			formatFloat(r.Yield),
			formatFloat(r.EffectiveBits),
			formatFloat(r.BitArea),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
