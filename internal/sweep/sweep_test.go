package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"runtime"
	"strconv"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func TestDefaultGridSize(t *testing.T) {
	g := DefaultGrid()
	if g.Size() != 5*4 {
		t.Errorf("Size = %d, want 20", g.Size())
	}
	// Empty grid inherits the defaults.
	if (Grid{}).Size() != g.Size() {
		t.Error("empty grid does not default")
	}
}

func TestRunDefaultGrid(t *testing.T) {
	rows, err := Run(context.Background(), core.Config{}, Grid{})
	if err != nil {
		t.Fatal(err)
	}
	// Tree families: lengths 4,6,8,10 (all even) -> 3x4; hot: 4,6,8,10 all
	// divisible by 2 -> 2x4. Total 20.
	if len(rows) != 20 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Yield <= 0 || r.Yield > 1 {
			t.Errorf("%v M=%d: yield %g", r.Type, r.Length, r.Yield)
		}
		if r.BitArea <= 0 || r.Phi <= 0 || r.SpaceSize <= 0 {
			t.Errorf("%v M=%d: incomplete row %+v", r.Type, r.Length, r)
		}
	}
}

func TestRunSkipsInvalidLengths(t *testing.T) {
	rows, err := Run(context.Background(), core.Config{}, Grid{
		Types:   []code.Type{code.TypeGray, code.TypeHot},
		Lengths: []int{5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Length == 5 {
			t.Error("odd length evaluated")
		}
	}
	if len(rows) != 2 {
		t.Errorf("got %d rows, want 2", len(rows))
	}
}

func TestRunAllInvalidErrors(t *testing.T) {
	_, err := Run(context.Background(), core.Config{}, Grid{
		Types:   []code.Type{code.TypeGray},
		Lengths: []int{3},
	})
	if err == nil {
		t.Error("empty result accepted")
	}
}

func TestRunMultiAxis(t *testing.T) {
	rows, err := Run(context.Background(), core.Config{}, Grid{
		Types:         []code.Type{code.TypeBalancedGray},
		Lengths:       []int{10},
		SigmaTs:       []float64{0.03, 0.05, 0.08},
		MarginFactors: []float64{0.8, 1.0},
		HalfCaveWires: []int{16, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*2 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	// Yield must fall with sigma at fixed margin/N.
	byKey := make(map[string]float64)
	for _, r := range rows {
		key := strconv.Itoa(r.HalfCaveWires) + "/" + strconv.FormatFloat(r.MarginFactor, 'g', -1, 64) +
			"/" + strconv.FormatFloat(r.SigmaT, 'g', -1, 64)
		byKey[key] = r.Yield
	}
	if !(byKey["20/1/0.03"] > byKey["20/1/0.05"] && byKey["20/1/0.05"] > byKey["20/1/0.08"]) {
		t.Error("yield not monotone in sigma")
	}
}

func TestWriteCSV(t *testing.T) {
	rows, err := Run(context.Background(), core.Config{}, Grid{
		Types:   []code.Type{code.TypeGray},
		Lengths: []int{8, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1+len(rows) {
		t.Fatalf("CSV has %d records", len(records))
	}
	if len(records[0]) != len(Header()) {
		t.Errorf("header has %d fields, want %d", len(records[0]), len(Header()))
	}
	if records[1][0] != "GC" || records[1][1] != "8" {
		t.Errorf("first data record %v", records[1])
	}
}

func TestRunWorkersDeterministic(t *testing.T) {
	serial, err := RunWorkers(context.Background(), core.Config{}, Grid{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunWorkers(context.Background(), core.Config{}, Grid{}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d rows", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
	// The CSV — the actual data product — must be byte-identical too.
	var a, b bytes.Buffer
	if err := WriteCSV(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("CSV output differs between worker counts")
	}
}
