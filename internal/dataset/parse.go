package dataset

import (
	"encoding/json"
	"fmt"
	"io"
)

// ParseKind resolves a kind from its JSON name.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "string":
		return String, nil
	case "int":
		return Int, nil
	case "float":
		return Float, nil
	case "bool":
		return Bool, nil
	}
	return 0, fmt.Errorf("dataset: unknown column kind %q", name)
}

// ParseJSON reads one dataset back from its JSON interchange form (the
// output of WriteJSON), converting each row cell to its column's Go type.
// It is the inverse the cluster peer protocol needs: a node serves its
// cached dataset as JSON and the requesting node reconstructs a Dataset
// it can render in any format. The full-fidelity text renderer does not
// cross the wire — Text() of a parsed dataset falls back to the generic
// table — and Meta.Workers is absent from the form by design.
func ParseJSON(r io.Reader) (*Dataset, error) {
	var doc jsonDataset
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataset: parsing JSON: %w", err)
	}
	cols := make([]Column, len(doc.Columns))
	for i, c := range doc.Columns {
		kind, err := ParseKind(c.Kind)
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: c.Name, Unit: c.Unit, Kind: kind}
	}
	d := New(doc.Name, doc.Title, cols...)
	d.Meta = Meta{
		Experiment: doc.Meta.Experiment,
		Seed:       doc.Meta.Seed,
		Trials:     doc.Meta.Trials,
		ConfigHash: doc.Meta.ConfigHash,
	}
	d.Notes = doc.Notes
	for ri, row := range doc.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("dataset %s: row %d has %d cells, schema has %d columns",
				doc.Name, ri, len(row), len(cols))
		}
		cells := make([]any, len(row))
		for ci, v := range row {
			cell, err := parseCell(cols[ci].Kind, v)
			if err != nil {
				return nil, fmt.Errorf("dataset %s: row %d, column %s: %w", doc.Name, ri, cols[ci].Name, err)
			}
			cells[ci] = cell
		}
		d.AddRow(cells...)
	}
	return d, nil
}

// parseCell converts one decoded JSON value to the Go type of its
// column's kind. Numbers arrive as json.Number (ParseJSON decodes with
// UseNumber), so integers survive beyond float64's exact range.
func parseCell(k Kind, v any) (any, error) {
	switch k {
	case String:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		return s, nil
	case Int:
		n, ok := v.(json.Number)
		if !ok {
			return nil, fmt.Errorf("want integer, got %T", v)
		}
		i, err := n.Int64()
		if err != nil {
			return nil, fmt.Errorf("want integer, got %q", n.String())
		}
		return int(i), nil
	case Float:
		n, ok := v.(json.Number)
		if !ok {
			return nil, fmt.Errorf("want number, got %T", v)
		}
		f, err := n.Float64()
		if err != nil {
			return nil, fmt.Errorf("want number, got %q", n.String())
		}
		return f, nil
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown kind %v", k)
}
