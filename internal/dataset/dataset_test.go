package dataset

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Dataset {
	ds := New("demo", "Demo result",
		Col("code", String),
		Col("length", Int),
		ColUnit("area", "nm²", Float),
		Col("pass", Bool),
	)
	ds.AddRow("BGC", 10, 192.0, true)
	ds.AddRow("TC", 8, 259.5, false)
	ds.Note("best: %s", "BGC")
	ds.Meta = Meta{Experiment: "demo", Seed: 7, Trials: 3, ConfigHash: "abc", Workers: 4}
	return ds
}

func TestAddRowValidation(t *testing.T) {
	ds := New("v", "", Col("n", Int), Col("x", Float))
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("arity", func() { ds.AddRow(1) })
	mustPanic("kind", func() { ds.AddRow(1, "not a float") })
	mustPanic("int-as-float", func() { ds.AddRow(1, 2) })
	ds.AddRow(1, 2.0)
	if len(ds.Rows) != 1 {
		t.Fatalf("valid row rejected")
	}
}

func TestCSVForm(t *testing.T) {
	got := sample().CSV()
	want := "code,length,area,pass\nBGC,10,192,true\nTC,8,259.5,false\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestJSONFormRoundTrips(t *testing.T) {
	raw, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name string `json:"name"`
		Meta struct {
			Experiment string `json:"experiment"`
			Seed       uint64 `json:"seed"`
			Workers    *int   `json:"workers"`
		} `json:"meta"`
		Columns []struct {
			Name string `json:"name"`
			Unit string `json:"unit"`
			Kind string `json:"kind"`
		} `json:"columns"`
		Rows  [][]any  `json:"rows"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Name != "demo" || doc.Meta.Experiment != "demo" || doc.Meta.Seed != 7 {
		t.Errorf("metadata lost: %+v", doc)
	}
	if doc.Meta.Workers != nil {
		t.Error("workers leaked into JSON: serialization must be worker-count independent")
	}
	if len(doc.Columns) != 4 || doc.Columns[2].Unit != "nm²" || doc.Columns[2].Kind != "float" {
		t.Errorf("schema lost: %+v", doc.Columns)
	}
	if len(doc.Rows) != 2 || doc.Rows[0][0] != "BGC" {
		t.Errorf("rows lost: %+v", doc.Rows)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "best: BGC" {
		t.Errorf("notes lost: %+v", doc.Notes)
	}
}

func TestJSONEmptyRowsIsArray(t *testing.T) {
	raw, err := New("e", "empty", Col("n", Int)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"rows": []`) {
		t.Errorf("nil rows must serialize as [], got %s", raw)
	}
}

func TestMarkdownForm(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{
		"## Demo result",
		"| code | length | area [nm²] | pass |",
		"|---|---|---|---|",
		"| BGC | 10 | 192 | true |",
		"best: BGC",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestTextFallbackAndOverride(t *testing.T) {
	ds := sample()
	generic := ds.Text()
	for _, want := range []string{"Demo result", "BGC", "best: BGC"} {
		if !strings.Contains(generic, want) {
			t.Errorf("generic text missing %q", want)
		}
	}
	ds.SetText(func() string { return "full-fidelity figure\n" })
	if ds.Text() != "full-fidelity figure\n" {
		t.Error("SetText renderer not used")
	}
	// The other formats stay columnar regardless of the text override.
	if !strings.Contains(ds.CSV(), "BGC,10,192,true") {
		t.Error("CSV affected by SetText")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	orig := sample()
	cp := orig.Clone()
	cp.AddRow("HC", 6, 300.0, true)
	cp.Note("clone-only")
	cp.Meta.Workers = 99
	cp.Columns[0].Name = "renamed"
	if len(orig.Rows) != 2 || len(orig.Notes) != 1 {
		t.Errorf("mutating the clone leaked into the original: %d rows, %d notes",
			len(orig.Rows), len(orig.Notes))
	}
	if orig.Meta.Workers != 4 || orig.Columns[0].Name != "code" {
		t.Error("clone shares Meta or Columns with the original")
	}
	// The clone carries everything the original had at copy time.
	if cp.Name != orig.Name || len(cp.Rows) != 3 || cp.Meta.Seed != 7 {
		t.Error("clone lost data from the original")
	}
	if orig.CSV() != sample().CSV() {
		t.Error("original serialization changed after clone mutation")
	}
}

func TestRenderAndFormatNames(t *testing.T) {
	if Formats() != "text|json|csv|md" {
		t.Errorf("Formats() = %q", Formats())
	}
	names := map[Format]string{
		FormatText: "text", FormatJSON: "json",
		FormatCSV: "csv", FormatMarkdown: "md",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(f), f.String(), want)
		}
		var sb strings.Builder
		if err := sample().Render(&sb, f); err != nil {
			t.Fatalf("Render(%s): %v", want, err)
		}
		if !strings.Contains(sb.String(), "BGC") {
			t.Errorf("Render(%s) missing row data:\n%s", want, sb.String())
		}
	}
	if got := Format(42).String(); got != "format(42)" {
		t.Errorf("unknown format String() = %q", got)
	}
	if err := sample().Render(&strings.Builder{}, Format(42)); err == nil {
		t.Error("Render accepted an unknown format")
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"text": FormatText, "TXT": FormatText,
		"json": FormatJSON, " md ": FormatMarkdown,
		"markdown": FormatMarkdown, "csv": FormatCSV,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestFingerprintStable(t *testing.T) {
	type cfg struct{ A, B int }
	a := Fingerprint(cfg{1, 2})
	if a != Fingerprint(cfg{1, 2}) {
		t.Error("fingerprint not deterministic")
	}
	if a == Fingerprint(cfg{1, 3}) {
		t.Error("fingerprint ignores field changes")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q not 16 hex chars", a)
	}
}

func TestWriteJSONArray(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSONArray(&sb, []*Dataset{sample(), sample()}); err != nil {
		t.Fatal(err)
	}
	var docs []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &docs); err != nil {
		t.Fatalf("invalid JSON array: %v", err)
	}
	if len(docs) != 2 {
		t.Fatalf("array has %d elements", len(docs))
	}
}

// TestConcat pins the chunk-assembly primitive of the jobs layer: rows
// from schema-identical parts concatenate in input order without
// re-rendering, the first part supplies name/title/meta/notes, and the
// result is independent of its inputs.
func TestConcat(t *testing.T) {
	a := New("sweep", "part a", Col("code", String), Col("area", Float))
	a.AddRow("BGC", 192.0)
	a.Note("from chunk 0")
	b := New("sweep", "part b", Col("code", String), Col("area", Float))
	b.AddRow("TC", 259.5)
	b.AddRow("GC", 200.25)

	out, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "sweep" || out.Title != "part a" {
		t.Errorf("identity not taken from the first part: %q %q", out.Name, out.Title)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(out.Rows))
	}
	if out.Rows[0][0] != "BGC" || out.Rows[1][0] != "TC" || out.Rows[2][0] != "GC" {
		t.Errorf("rows out of input order: %v", out.Rows)
	}
	if len(out.Notes) != 1 {
		t.Errorf("notes not taken from the first part: %v", out.Notes)
	}
	// Mutating the result must not reach back into the parts.
	out.Rows[2][0] = "mutated"
	if b.Rows[1][0] != "GC" {
		t.Error("concat aliases a part's row storage")
	}

	single, err := Concat(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Rows) != 1 || single.Rows[0][0] != "BGC" {
		t.Errorf("single-part concat lost rows: %v", single.Rows)
	}
}

func TestConcatRejections(t *testing.T) {
	a := New("sweep", "", Col("code", String))
	if _, err := Concat(); err == nil {
		t.Error("zero-part concat must fail: no schema to carry")
	}
	renamed := New("other", "", Col("code", String))
	if _, err := Concat(a, renamed); err == nil {
		t.Error("name mismatch must fail")
	}
	reshaped := New("sweep", "", Col("code", String), Col("extra", Int))
	if _, err := Concat(a, reshaped); err == nil {
		t.Error("schema mismatch must fail")
	}
}
