package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"nwdec/internal/textplot"
)

// Format selects an output rendering of a dataset.
type Format int

// The four output formats of the pipeline.
const (
	// FormatText is the terminal rendering: the experiment's full-fidelity
	// figure (plots, heat maps, tables) when available, a generic table
	// otherwise.
	FormatText Format = iota
	// FormatJSON is the machine interchange form: schema, rows, metadata
	// and notes as one JSON document.
	FormatJSON
	// FormatCSV is the tidy tabular form: one header row of column names,
	// then the data rows.
	FormatCSV
	// FormatMarkdown is the documentation form: a pipe table under the
	// dataset title, followed by the notes.
	FormatMarkdown
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	case FormatMarkdown:
		return "md"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "txt":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	case "md", "markdown":
		return FormatMarkdown, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want text, json, csv or md)", s)
	}
}

// Formats lists the flag spellings for usage strings.
func Formats() string { return "text|json|csv|md" }

// Render writes the dataset to w in the given format.
func (d *Dataset) Render(w io.Writer, f Format) error {
	switch f {
	case FormatText:
		_, err := io.WriteString(w, d.Text())
		return err
	case FormatJSON:
		return d.WriteJSON(w)
	case FormatCSV:
		return d.WriteCSV(w)
	case FormatMarkdown:
		_, err := io.WriteString(w, d.Markdown())
		return err
	default:
		return fmt.Errorf("dataset: unknown format %v", f)
	}
}

// Text renders the full-fidelity text form when the producing experiment
// installed one (series plots, heat maps), and a generic titled table
// otherwise.
func (d *Dataset) Text() string {
	if d.textFn != nil {
		return d.textFn()
	}
	headers := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		headers[i] = c.Name
		if c.Unit != "" {
			headers[i] += " [" + c.Unit + "]"
		}
	}
	tb := textplot.NewTable(d.Title, headers...)
	for _, row := range d.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		tb.AddRow(cells...)
	}
	out := tb.String()
	for _, n := range d.Notes {
		out += n + "\n"
	}
	return out
}

// WriteCSV emits the header row of column names followed by the data rows.
// Units and notes are not part of the CSV form; consumers needing them
// should use JSON.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(d.Columns))
	for _, row := range d.Rows {
		for i, v := range row {
			rec[i] = formatCell(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the CSV form as a string.
func (d *Dataset) CSV() string {
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		// A strings.Builder never fails, so this is a schema bug in the
		// producing experiment, not a data condition.
		panic("dataset: CSV rendering failed: " + err.Error())
	}
	return sb.String()
}

// jsonColumn and jsonDataset shape the JSON interchange form.
type jsonColumn struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	Kind string `json:"kind"`
}

type jsonMeta struct {
	Experiment string `json:"experiment,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	ConfigHash string `json:"configHash,omitempty"`
	// Workers is deliberately absent: it is an execution detail and the
	// rows are bit-identical at every worker count.
}

type jsonDataset struct {
	Name    string       `json:"name"`
	Title   string       `json:"title"`
	Meta    jsonMeta     `json:"meta"`
	Columns []jsonColumn `json:"columns"`
	Rows    [][]any      `json:"rows"`
	Notes   []string     `json:"notes,omitempty"`
}

func (d *Dataset) jsonForm() jsonDataset {
	cols := make([]jsonColumn, len(d.Columns))
	for i, c := range d.Columns {
		cols[i] = jsonColumn{Name: c.Name, Unit: c.Unit, Kind: c.Kind.String()}
	}
	rows := d.Rows
	if rows == nil {
		rows = [][]any{}
	}
	return jsonDataset{
		Name:  d.Name,
		Title: d.Title,
		Meta: jsonMeta{
			Experiment: d.Meta.Experiment,
			Seed:       d.Meta.Seed,
			Trials:     d.Meta.Trials,
			ConfigHash: d.Meta.ConfigHash,
		},
		Columns: cols,
		Rows:    rows,
		Notes:   d.Notes,
	}
}

// WriteJSON emits the dataset as one indented JSON document with a trailing
// newline. The encoding is deterministic: struct fields marshal in
// declaration order and the row values are plain strings, integers, floats
// and booleans.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.jsonForm())
}

// JSON renders the JSON form as bytes.
func (d *Dataset) JSON() ([]byte, error) {
	var sb strings.Builder
	if err := d.WriteJSON(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// WriteJSONArray emits multiple datasets as one indented JSON array, for
// run-all output.
func WriteJSONArray(w io.Writer, dss []*Dataset) error {
	forms := make([]jsonDataset, len(dss))
	for i, d := range dss {
		forms[i] = d.jsonForm()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(forms)
}

// MarkdownTable renders just the pipe table of the rows, for embedding
// under a caller-supplied heading (the report generator does this).
func (d *Dataset) MarkdownTable() string {
	var sb strings.Builder
	for i, c := range d.Columns {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString("| ")
		sb.WriteString(c.Name)
		if c.Unit != "" {
			sb.WriteString(" [" + c.Unit + "]")
		}
	}
	sb.WriteString(" |\n")
	for range d.Columns {
		sb.WriteString("|---")
	}
	sb.WriteString("|\n")
	for _, row := range d.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString("| ")
			sb.WriteString(formatCell(v))
		}
		sb.WriteString(" |\n")
	}
	return sb.String()
}

// Markdown renders a complete section: the title as a level-2 heading, the
// pipe table, then the notes as a paragraph.
func (d *Dataset) Markdown() string {
	var sb strings.Builder
	if d.Title != "" {
		sb.WriteString("## " + d.Title + "\n\n")
	}
	sb.WriteString(d.MarkdownTable())
	if len(d.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range d.Notes {
			sb.WriteString(n + "\n")
		}
	}
	return sb.String()
}
