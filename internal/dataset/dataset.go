// Package dataset is the structured result model of the experiment
// pipeline: every experiment produces a Dataset — a schema of named, typed,
// unit-annotated columns plus rows of values and reproducibility metadata —
// and rendering happens at the edge (CLI, report generator, future service
// front ends) in any of four formats: text, CSV, JSON and Markdown.
//
// The model exists so results can be composed and machine-consumed instead
// of passed around as pre-rendered strings: the report generator assembles
// Markdown tables from the same rows the CLIs serialize as JSON, and golden
// tests pin the figure data itself rather than fragile text snapshots.
//
// Serialized output (CSV/JSON/Markdown) is a pure function of the data:
// execution details such as the worker count are recorded in Meta for
// programmatic access but excluded from serialization, so — combined with
// the determinism guarantee of internal/par — a dataset serializes
// bit-identically at every worker count.
package dataset

import (
	"fmt"
	"hash/fnv"
	"slices"
	"strconv"
)

// Kind is the value type of a column.
type Kind int

// Column kinds. Every cell of a column must hold the Go type of its kind:
// string, int, float64 or bool.
const (
	String Kind = iota
	Int
	Float
	Bool
)

// String returns the JSON name of the kind.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Column is one named, typed column of a dataset.
type Column struct {
	// Name identifies the column; unique within a dataset.
	Name string
	// Unit annotates the physical unit ("nm²", "V", "%"), empty for
	// dimensionless columns.
	Unit string
	// Kind is the value type of every cell in the column.
	Kind Kind
}

// Col is shorthand for a dimensionless column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// ColUnit is shorthand for a column with a physical unit.
func ColUnit(name, unit string, kind Kind) Column {
	return Column{Name: name, Unit: unit, Kind: kind}
}

// Meta carries the reproducibility metadata of a dataset.
type Meta struct {
	// Experiment is the registry name that produced the dataset.
	Experiment string
	// Seed is the RNG seed of stochastic experiments (0 for analytic ones).
	Seed uint64
	// Trials is the Monte-Carlo repetition count (0 for analytic
	// experiments).
	Trials int
	// ConfigHash fingerprints the platform configuration the experiment ran
	// on (see Fingerprint).
	ConfigHash string
	// Workers is the worker-pool bound the experiment ran with. It is an
	// execution detail, not data identity: the determinism guarantee makes
	// the rows independent of it, so it is excluded from serialization to
	// keep the output bit-identical at every worker count.
	Workers int
}

// Dataset is one experiment result: a columnar table plus metadata and
// free-text notes (the derived summary lines that accompany a figure).
type Dataset struct {
	// Name is the machine name ("fig7", "headline").
	Name string
	// Title is the human heading of the result.
	Title string
	// Columns is the schema; every row has exactly one cell per column.
	Columns []Column
	// Rows holds the cell values; cell i of every row has the Go type of
	// Columns[i].Kind.
	Rows [][]any
	// Meta is the reproducibility metadata.
	Meta Meta
	// Notes are derived summary lines (comparison ratios, paper-vs-measured
	// commentary) that render after the table.
	Notes []string

	// textFn, when set, renders the full-fidelity text form of the result
	// (series plots, heat maps) that the columnar model cannot carry.
	textFn func() string
}

// New creates an empty dataset with the given schema.
func New(name, title string, cols ...Column) *Dataset {
	return &Dataset{Name: name, Title: title, Columns: cols}
}

// AddRow appends one row. The cell count must match the schema and every
// cell must hold its column's Go type; a mismatch panics, since it is a
// programming error in the producing experiment, not a data condition.
func (d *Dataset) AddRow(cells ...any) {
	if len(cells) != len(d.Columns) {
		panic(fmt.Sprintf("dataset %s: row has %d cells, schema has %d columns",
			d.Name, len(cells), len(d.Columns)))
	}
	for i, c := range cells {
		if !kindMatches(d.Columns[i].Kind, c) {
			panic(fmt.Sprintf("dataset %s: column %s wants %s, got %T",
				d.Name, d.Columns[i].Name, d.Columns[i].Kind, c))
		}
	}
	d.Rows = append(d.Rows, cells)
}

// Note appends a formatted summary line.
func (d *Dataset) Note(format string, args ...any) {
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// Clone returns an independent copy of the dataset: schema, rows, notes
// and metadata are all duplicated, so mutating one copy (adding rows,
// stamping Meta) never leaks into the other. The result-cache of the
// engine layer hands clones to callers for exactly this reason. Cell
// values and the text renderer are shared — cells are immutable value
// types and the renderer is a pure function of construction-time data.
func (d *Dataset) Clone() *Dataset {
	out := *d
	out.Columns = slices.Clone(d.Columns)
	out.Rows = make([][]any, len(d.Rows))
	for i, row := range d.Rows {
		out.Rows[i] = slices.Clone(row)
	}
	out.Notes = slices.Clone(d.Notes)
	return &out
}

// SetText installs the full-fidelity text renderer of the result. Text()
// falls back to a generic table when none is set.
func (d *Dataset) SetText(fn func() string) { d.textFn = fn }

// Concat assembles one dataset from an ordered sequence of parts sharing
// a schema: the result carries the first part's name, title, metadata and
// notes, and the rows of every part in input order. It is the assembly
// primitive of the chunked job layer — per-chunk checkpoint datasets
// concatenate back into the dataset an uninterrupted run would have
// produced, bit-identically, because rows are appended without
// re-rendering. Parts whose name or schema disagree with the first are
// rejected; at least one part is required (an empty result needs a schema
// to exist).
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: concat of zero parts has no schema")
	}
	out := parts[0].Clone()
	for i, p := range parts[1:] {
		if p.Name != out.Name {
			return nil, fmt.Errorf("dataset: concat part %d is %q, want %q", i+1, p.Name, out.Name)
		}
		if !slices.Equal(p.Columns, out.Columns) {
			return nil, fmt.Errorf("dataset: concat part %d (%s) has a different schema", i+1, p.Name)
		}
		for _, row := range p.Rows {
			out.Rows = append(out.Rows, slices.Clone(row))
		}
	}
	return out, nil
}

func kindMatches(k Kind, v any) bool {
	switch k {
	case String:
		_, ok := v.(string)
		return ok
	case Int:
		_, ok := v.(int)
		return ok
	case Float:
		_, ok := v.(float64)
		return ok
	case Bool:
		_, ok := v.(bool)
		return ok
	}
	return false
}

// formatCell renders one cell for CSV and Markdown output. Floats use the
// shortest round-trip form so serialization never loses precision.
func formatCell(v any) string {
	switch c := v.(type) {
	case string:
		return c
	case int:
		return strconv.Itoa(c)
	case float64:
		return strconv.FormatFloat(c, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(c)
	default:
		return fmt.Sprintf("%v", c)
	}
}

// Fingerprint hashes a configuration value into a short stable hex string
// for Meta.ConfigHash: FNV-1a over the %+v rendering, so structurally equal
// configurations fingerprint identically.
func Fingerprint(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}
