package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestParseJSONRoundTrips pins the inverse the cluster peer protocol
// relies on: WriteJSON → ParseJSON reproduces the dataset — schema,
// rows with their exact Go cell types, notes, metadata — and the
// re-serialization is byte-identical, so a peer-served dataset renders
// exactly like a locally computed one.
func TestParseJSONRoundTrips(t *testing.T) {
	ds := sample()
	raw, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, ds.Columns) {
		t.Errorf("columns = %+v, want %+v", got.Columns, ds.Columns)
	}
	if !reflect.DeepEqual(got.Rows, ds.Rows) {
		t.Errorf("rows = %+v, want %+v", got.Rows, ds.Rows)
	}
	if !reflect.DeepEqual(got.Notes, ds.Notes) {
		t.Errorf("notes = %+v, want %+v", got.Notes, ds.Notes)
	}
	wantMeta := ds.Meta
	wantMeta.Workers = 0 // execution detail: excluded from serialization
	if got.Meta != wantMeta {
		t.Errorf("meta = %+v, want %+v", got.Meta, wantMeta)
	}
	again, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, raw) {
		t.Errorf("re-serialization differs:\n%s\nvs\n%s", again, raw)
	}
}

// TestParseJSONEmptyRows: a dataset with no rows round-trips to an empty
// (non-nil in JSON) row set.
func TestParseJSONEmptyRows(t *testing.T) {
	raw, err := New("e", "empty", Col("n", Int)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "e" || len(got.Rows) != 0 || len(got.Columns) != 1 {
		t.Errorf("parsed %+v", got)
	}
}

// TestParseJSONRejects: malformed documents fail with a diagnostic
// instead of panicking in AddRow or silently coercing cell types.
func TestParseJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"not-json", `{"name":`},
		{"unknown-kind", `{"name":"x","columns":[{"name":"a","kind":"complex"}],"rows":[]}`},
		{"arity", `{"name":"x","columns":[{"name":"a","kind":"int"}],"rows":[[1,2]]}`},
		{"type-mismatch", `{"name":"x","columns":[{"name":"a","kind":"int"}],"rows":[["one"]]}`},
		{"frac-as-int", `{"name":"x","columns":[{"name":"a","kind":"int"}],"rows":[[1.5]]}`},
		{"num-as-bool", `{"name":"x","columns":[{"name":"a","kind":"bool"}],"rows":[[1]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseJSON(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("ParseJSON accepted %s", tc.doc)
			}
		})
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{String, Int, Float, Bool} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("kind(9)"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}
