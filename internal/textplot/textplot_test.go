package textplot

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "Code", "Yield")
	tb.AddRow("TC", "57.4%")
	tb.AddRow("BGC", "93.0%")
	out := tb.String()
	for _, want := range []string{"Results", "Code", "Yield", "TC", "BGC", "93.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")                // short row padded
	tb.AddRow("1", "2", "3", "4") // long row truncated
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Error("overflow cell not dropped")
	}
	if !strings.Contains(out, "x") {
		t.Error("short row lost")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "name", "v")
	tb.AddRowf("pi", 3.14159265)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float formatting wrong:\n%s", tb.String())
	}
	tb2 := NewTable("", "name", "v")
	tb2.AddRowf("n", 42)
	if !strings.Contains(tb2.String(), "42") {
		t.Error("int formatting wrong")
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("Crossbar yield", "%", "TC", "BGC")
	s.Set("TC", "M=6", 57.4)
	s.Set("BGC", "M=6", 70.2)
	s.Set("TC", "M=8", 64.4)
	s.Set("BGC", "M=8", 82.0)
	out := s.String()
	for _, want := range []string{"Crossbar yield", "M=6", "M=8", "TC", "BGC", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
	// Largest value should own the longest bar.
	var tcBar, bgcBar int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "TC") && strings.Contains(line, "57.4") {
			tcBar = strings.Count(line, "#")
		}
		if strings.Contains(line, "BGC") && strings.Contains(line, "82") {
			bgcBar = strings.Count(line, "#")
		}
	}
	if bgcBar <= tcBar {
		t.Errorf("bar lengths not proportional: %d vs %d", tcBar, bgcBar)
	}
}

func TestSeriesDiscoverNewNames(t *testing.T) {
	s := NewSeries("t", "")
	s.Set("new", "x", 1)
	if !strings.Contains(s.String(), "new") {
		t.Error("dynamically added series missing")
	}
}

func TestSeriesAllZeros(t *testing.T) {
	s := NewSeries("z", "")
	s.Set("a", "x", 0)
	if out := s.String(); !strings.Contains(out, "0") {
		t.Errorf("zero series mishandled:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{{1, 1, 4.5}, {2, 3, 4}}
	out := Heatmap("Sigma", m, "nanowire", "digit")
	if !strings.Contains(out, "Sigma") || !strings.Contains(out, "nanowire") {
		t.Errorf("heatmap header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	// The maximum cell uses the densest glyph, the minimum the sparsest.
	if !strings.Contains(lines[1], "@") {
		t.Errorf("max glyph missing in row 0: %s", lines[1])
	}
	if !strings.Contains(lines[1], "  ") {
		t.Errorf("min glyph missing in row 0: %s", lines[1])
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	if out := Heatmap("t", nil, "r", "c"); !strings.Contains(out, "empty") {
		t.Error("empty heatmap mishandled")
	}
	// Constant matrix must not divide by zero.
	out := Heatmap("t", [][]float64{{2, 2}, {2, 2}}, "r", "c")
	if !strings.Contains(out, "|") {
		t.Error("constant heatmap mishandled")
	}
}
