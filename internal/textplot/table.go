// Package textplot renders experiment results as plain-text tables, series
// plots and heat maps, so every figure of the paper can be regenerated on a
// terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v for strings and integers and with 4 significant digits for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(t.headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
