package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series plots one or more named (x, y) series as horizontal bar charts
// grouped by x — a terminal stand-in for the paper's grouped bar figures.
type Series struct {
	title  string
	names  []string
	xs     []string
	values map[string]map[string]float64 // name -> x -> y
	unit   string
}

// NewSeries creates a grouped bar chart with the given series names.
func NewSeries(title, unit string, names ...string) *Series {
	return &Series{
		title:  title,
		unit:   unit,
		names:  names,
		values: make(map[string]map[string]float64),
	}
}

// Set records the value of series name at category x.
func (s *Series) Set(name, x string, y float64) {
	if s.values[name] == nil {
		s.values[name] = make(map[string]float64)
		found := false
		for _, n := range s.names {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			s.names = append(s.names, name)
		}
	}
	if _, seen := s.values[name][x]; !seen {
		known := false
		for _, e := range s.xs {
			if e == x {
				known = true
				break
			}
		}
		if !known {
			s.xs = append(s.xs, x)
		}
	}
	s.values[name][x] = y
}

// String renders the chart with one bar per (x, series) pair.
func (s *Series) String() string {
	maxVal := 0.0
	for _, m := range s.values {
		for _, v := range m {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const barWidth = 40
	var sb strings.Builder
	if s.title != "" {
		sb.WriteString(s.title)
		sb.WriteByte('\n')
	}
	nameW := 0
	for _, n := range s.names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for _, x := range s.xs {
		fmt.Fprintf(&sb, "%s:\n", x)
		for _, n := range s.names {
			v, ok := s.values[n][x]
			if !ok {
				continue
			}
			bars := int(math.Round(v / maxVal * barWidth))
			fmt.Fprintf(&sb, "  %-*s |%s %.4g%s\n", nameW, n, strings.Repeat("#", bars), v, s.unit)
		}
	}
	return sb.String()
}

// Heatmap renders a matrix as a character raster; larger values map to
// denser glyphs. It is the text stand-in for the paper's Fig. 6 surfaces.
func Heatmap(title string, m [][]float64, rowLabel, colLabel string) string {
	if len(m) == 0 {
		return title + "\n(empty)\n"
	}
	shades := []byte(" .:-=+*#%@")
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range m {
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (rows: %s, cols: %s; scale %.3g..%.3g)\n", title, rowLabel, colLabel, min, max)
	for i, row := range m {
		fmt.Fprintf(&sb, "%3d |", i)
		for _, v := range row {
			idx := int((v - min) / span * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
			sb.WriteByte(shades[idx])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
