package geometry

import (
	"testing"
	"testing/quick"
)

func TestPlacementsStructure(t *testing.T) {
	const wires, n = 12, 3 // two caves of 6
	ps, err := Placements(wires, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != wires {
		t.Fatalf("got %d placements", len(ps))
	}
	// First cave, side A: definition order equals position.
	for w := 0; w < 3; w++ {
		p := ps[w]
		if p.Cave != 0 || p.Side != SideA || p.DefinitionIndex != w || p.Position != w {
			t.Errorf("wire %d: %+v", w, p)
		}
	}
	// First cave, side B: mirrored — wire 5 (right wall) defined first.
	if ps[5].Side != SideB || ps[5].DefinitionIndex != 0 {
		t.Errorf("wire 5: %+v", ps[5])
	}
	if ps[3].DefinitionIndex != 2 {
		t.Errorf("wire 3 (centre): %+v", ps[3])
	}
	// Second cave repeats the pattern.
	if ps[6].Cave != 1 || ps[6].Side != SideA || ps[6].DefinitionIndex != 0 {
		t.Errorf("wire 6: %+v", ps[6])
	}
}

func TestPlacementsMirrorSymmetry(t *testing.T) {
	ps, err := Placements(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Within each cave, the definition indices are symmetric about the
	// axis: position k from the left wall equals position k from the right.
	for cave := 0; cave < 2; cave++ {
		base := cave * 20
		for k := 0; k < 10; k++ {
			left := ps[base+k]
			right := ps[base+19-k]
			if left.DefinitionIndex != right.DefinitionIndex {
				t.Errorf("cave %d offset %d: %d vs %d", cave, k,
					left.DefinitionIndex, right.DefinitionIndex)
			}
		}
	}
}

func TestNeighborsAcrossAxis(t *testing.T) {
	ps, _ := Placements(12, 3)
	// Wires 2 and 3 straddle the axis of cave 0.
	if !NeighborsAcrossAxis(ps[2], ps[3]) || !NeighborsAcrossAxis(ps[3], ps[2]) {
		t.Error("axis neighbors not detected")
	}
	if NeighborsAcrossAxis(ps[1], ps[2]) {
		t.Error("same-side neighbors misreported")
	}
	if NeighborsAcrossAxis(ps[5], ps[6]) {
		t.Error("cave-boundary neighbors misreported")
	}
	// Axis neighbors are the two *last defined* spacers.
	if ps[2].DefinitionIndex != 2 || ps[3].DefinitionIndex != 2 {
		t.Error("axis wires are not the last-defined spacers")
	}
}

func TestPlacementsValidation(t *testing.T) {
	if _, err := Placements(0, 4); err == nil {
		t.Error("zero wires accepted")
	}
	if _, err := Placements(4, 0); err == nil {
		t.Error("zero half-cave population accepted")
	}
}

func TestPlacementsProperty(t *testing.T) {
	f := func(wRaw, nRaw uint8) bool {
		wires := int(wRaw%100) + 1
		n := int(nRaw%12) + 1
		ps, err := Placements(wires, n)
		if err != nil {
			return false
		}
		for i, p := range ps {
			if p.Wire != i || p.Position != i {
				return false
			}
			if p.DefinitionIndex < 0 || p.DefinitionIndex >= n {
				return false
			}
			if p.Cave != i/(2*n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
