// Package geometry models the physical layout of an MSPT nanowire crossbar:
// caves and half caves, lithographically defined contact groups bridging the
// sub-lithographic nanowire pitch to the CMOS pitch, and the area of the
// complete crossbar including its decoder overhead.
//
// The layout rules follow Sec. 6.1 of the paper: the lithography pitch P_L
// is 32 nm and the nanowire pitch P_N is 10 nm; every contact group must be
// at least 1.5 x P_L wide, and at most Ω nanowires (the code space size) can
// share one group, because nanowires within a group are distinguished only
// by their codes.
package geometry

import (
	"fmt"
	"math"
)

// Params holds the technology constants of the layout.
type Params struct {
	// LithoPitch is the lithographic (meso) pitch P_L in nm.
	LithoPitch float64
	// NanowirePitch is the sub-lithographic nanowire pitch P_N in nm.
	NanowirePitch float64
	// MinContactFactor scales LithoPitch to the minimum contact-group
	// width (standard layout rules: 1.5).
	MinContactFactor float64
	// BoundaryLossWires is the number of nanowires lost at each internal
	// boundary between adjacent contact groups: the lithographic contact
	// edge cannot be aligned to the nanowire grid, so wires under the edge
	// may be contacted by both groups and must be removed from the
	// addressable set (after DeHon et al.). A negative value selects the
	// default P_L / (2·P_N) rounded to the nearest integer.
	BoundaryLossWires int
}

// DefaultParams returns the paper's technology point: P_L = 32 nm,
// P_N = 10 nm, minimum contact width 1.5 x P_L, and the default boundary
// loss of P_L/(2 P_N) ≈ 2 wires per internal group boundary.
func DefaultParams() Params {
	return Params{
		LithoPitch:        32,
		NanowirePitch:     10,
		MinContactFactor:  1.5,
		BoundaryLossWires: -1,
	}
}

// boundaryLoss resolves the configured or default per-boundary wire loss.
func (p Params) boundaryLoss() int {
	if p.BoundaryLossWires >= 0 {
		return p.BoundaryLossWires
	}
	return int(math.Round(p.LithoPitch / (2 * p.NanowirePitch)))
}

// MinGroupWires returns the smallest number of nanowires a contact group may
// span: ceil(MinContactFactor x P_L / P_N).
func (p Params) MinGroupWires() int {
	return int(math.Ceil(p.MinContactFactor * p.LithoPitch / p.NanowirePitch))
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.LithoPitch <= 0 || p.NanowirePitch <= 0 {
		return fmt.Errorf("geometry: pitches must be positive (P_L=%g, P_N=%g)", p.LithoPitch, p.NanowirePitch)
	}
	if p.NanowirePitch > p.LithoPitch {
		return fmt.Errorf("geometry: nanowire pitch %g exceeds litho pitch %g", p.NanowirePitch, p.LithoPitch)
	}
	if p.MinContactFactor < 1 {
		return fmt.Errorf("geometry: minimum contact factor %g below 1", p.MinContactFactor)
	}
	return nil
}

// ContactPlan describes how the N nanowires of a half cave are partitioned
// into contact groups.
type ContactPlan struct {
	// GroupWires is the number of nanowires spanned by each contact group
	// (the last group may be narrower).
	GroupWires int
	// Groups is the number of contact groups per half cave.
	Groups int
	// BoundaryLost is the total number of nanowires per half cave removed
	// because they sit under an internal group boundary.
	BoundaryLost int
	// DuplicateLost is the number of nanowires per half cave whose code
	// word repeats inside their own group (only when the minimum group
	// width exceeds the code space size) and which are therefore not
	// uniquely addressable.
	DuplicateLost int
}

// PlanContacts partitions a half cave of n nanowires given the code space
// size spaceSize (Ω). Groups hold min(Ω, n) wires but never fewer than the
// lithographic minimum width; when Ω is smaller than the minimum width the
// surplus wires in each group carry duplicate codes and are lost.
func (p Params) PlanContacts(n, spaceSize int) (ContactPlan, error) {
	if err := p.Validate(); err != nil {
		return ContactPlan{}, err
	}
	if n <= 0 {
		return ContactPlan{}, fmt.Errorf("geometry: need at least one nanowire, got %d", n)
	}
	if spaceSize <= 0 {
		return ContactPlan{}, fmt.Errorf("geometry: non-positive code space size %d", spaceSize)
	}
	group := spaceSize
	if group > n {
		group = n
	}
	dupPerGroup := 0
	if min := p.MinGroupWires(); group < min {
		if min > n {
			min = n
		}
		dupPerGroup = min - group
		if dupPerGroup < 0 {
			dupPerGroup = 0
		}
		group = min
	}
	groups := (n + group - 1) / group
	plan := ContactPlan{
		GroupWires:    group,
		Groups:        groups,
		BoundaryLost:  p.boundaryLoss() * (groups - 1),
		DuplicateLost: dupPerGroup * groups,
	}
	if plan.BoundaryLost+plan.DuplicateLost > n {
		excess := plan.BoundaryLost + plan.DuplicateLost - n
		if plan.BoundaryLost >= excess {
			plan.BoundaryLost -= excess
		} else {
			plan.DuplicateLost -= excess - plan.BoundaryLost
			plan.BoundaryLost = 0
		}
	}
	return plan, nil
}

// Lost returns the total unaddressable wires per half cave due to layout.
func (c ContactPlan) Lost() int { return c.BoundaryLost + c.DuplicateLost }
