package geometry

import "fmt"

// Side distinguishes the two mirrored halves of an MSPT cave. The
// multi-spacer process grows spacers inward from both sacrificial-layer
// walls, so the second half cave is the mirror image of the first about the
// cave's symmetry axis.
type Side int

// Cave sides.
const (
	// SideA is the half cave grown from the left cave wall.
	SideA Side = iota
	// SideB is the mirrored half grown from the right wall.
	SideB
)

// String names the side.
func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// Placement locates one nanowire physically on a crossbar layer.
type Placement struct {
	// Wire is the global wire index on the layer (0 = first wire).
	Wire int
	// Cave is the cave the wire sits in.
	Cave int
	// Side is the half cave within the cave.
	Side Side
	// DefinitionIndex is the wire's position in *spacer definition order*
	// within its half cave: 0 is the first spacer deposited (nearest the
	// cave wall). This is the row index into the pattern matrix P.
	DefinitionIndex int
	// Position is the wire's physical offset in nanowire pitches from the
	// left edge of the layer.
	Position int
}

// Placements lays out a whole crossbar layer: wires fill caves left to
// right; inside each cave, side A holds wires in definition order (wall
// first) and side B mirrors them (wall last), reproducing the symmetric
// structure of Fig. 3.
func Placements(wires, halfCaveWires int) ([]Placement, error) {
	if wires <= 0 {
		return nil, fmt.Errorf("geometry: non-positive wire count %d", wires)
	}
	if halfCaveWires <= 0 {
		return nil, fmt.Errorf("geometry: non-positive half-cave population %d", halfCaveWires)
	}
	out := make([]Placement, wires)
	for w := 0; w < wires; w++ {
		caveWidth := 2 * halfCaveWires
		cave := w / caveWidth
		offset := w % caveWidth
		p := Placement{Wire: w, Cave: cave, Position: w}
		if offset < halfCaveWires {
			p.Side = SideA
			p.DefinitionIndex = offset
		} else {
			p.Side = SideB
			// Mirrored: the wire nearest the right wall (largest offset)
			// was defined first.
			p.DefinitionIndex = caveWidth - 1 - offset
		}
		out[w] = p
	}
	return out, nil
}

// NeighborsAcrossAxis reports whether two placements are physically
// adjacent across a cave symmetry axis: the two last-defined spacers of a
// cave touch in the middle. Such pairs carry identical patterns (both halves
// replay the same doping plan), which is why unique addressing only needs to
// hold per half cave — the halves are contacted by different mesowire
// groups.
func NeighborsAcrossAxis(a, b Placement) bool {
	if a.Cave != b.Cave || a.Side == b.Side {
		return false
	}
	lo, hi := a, b
	if lo.Position > hi.Position {
		lo, hi = hi, lo
	}
	return hi.Position-lo.Position == 1 && lo.Side == SideA && hi.Side == SideB
}
