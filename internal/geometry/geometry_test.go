package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.LithoPitch != 32 || p.NanowirePitch != 10 {
		t.Errorf("paper pitches wrong: %+v", p)
	}
	// Minimum contact group: ceil(1.5*32/10) = 5 wires.
	if got := p.MinGroupWires(); got != 5 {
		t.Errorf("MinGroupWires = %d, want 5", got)
	}
	// Default boundary loss: round(32/20) = 2 wires per boundary.
	if got := p.boundaryLoss(); got != 2 {
		t.Errorf("boundaryLoss = %d, want 2", got)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{LithoPitch: 0, NanowirePitch: 10, MinContactFactor: 1.5},
		{LithoPitch: 32, NanowirePitch: -1, MinContactFactor: 1.5},
		{LithoPitch: 10, NanowirePitch: 32, MinContactFactor: 1.5},
		{LithoPitch: 32, NanowirePitch: 10, MinContactFactor: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestPlanContactsLargeSpace(t *testing.T) {
	// Ω >= N: a single group, no losses.
	p := DefaultParams()
	plan, err := p.PlanContacts(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Groups != 1 || plan.GroupWires != 16 || plan.Lost() != 0 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestPlanContactsSmallSpace(t *testing.T) {
	// Ω = 6 < N = 16: groups of 6, 3 groups, 2 internal boundaries.
	p := DefaultParams()
	plan, err := p.PlanContacts(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GroupWires != 6 || plan.Groups != 3 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.BoundaryLost != 4 { // 2 boundaries x 2 wires
		t.Errorf("BoundaryLost = %d, want 4", plan.BoundaryLost)
	}
	if plan.DuplicateLost != 0 {
		t.Errorf("DuplicateLost = %d, want 0", plan.DuplicateLost)
	}
}

func TestPlanContactsTinySpaceDuplicates(t *testing.T) {
	// Ω = 2 below the 5-wire lithographic minimum: groups widen to 5 and
	// 3 wires per group carry duplicate codes.
	p := DefaultParams()
	plan, err := p.PlanContacts(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GroupWires != 5 || plan.Groups != 4 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.DuplicateLost != 12 { // 3 duplicates x 4 groups
		t.Errorf("DuplicateLost = %d, want 12", plan.DuplicateLost)
	}
	if plan.BoundaryLost != 6 { // 3 boundaries x 2
		t.Errorf("BoundaryLost = %d, want 6", plan.BoundaryLost)
	}
}

func TestPlanContactsLossesNeverExceedWires(t *testing.T) {
	f := func(nRaw, omegaRaw uint8) bool {
		n := int(nRaw%60) + 1
		omega := int(omegaRaw%100) + 1
		plan, err := DefaultParams().PlanContacts(n, omega)
		if err != nil {
			return false
		}
		return plan.Lost() <= n && plan.Groups >= 1 && plan.GroupWires >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanContactsValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := p.PlanContacts(0, 4); err == nil {
		t.Error("zero wires accepted")
	}
	if _, err := p.PlanContacts(10, 0); err == nil {
		t.Error("zero space accepted")
	}
}

func TestNewLayoutPaperPlatform(t *testing.T) {
	spec := DefaultCrossbarSpec()
	l, err := NewLayout(spec, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if l.WiresPerLayer != 128 {
		t.Errorf("WiresPerLayer = %d, want 128 (sqrt of 16384)", l.WiresPerLayer)
	}
	if l.Caves != 4 {
		t.Errorf("Caves = %d, want 4 (ceil of 128 wires / 40 per cave)", l.Caves)
	}
	if l.HalfCaves() != 8 {
		t.Errorf("HalfCaves = %d", l.HalfCaves())
	}
	if math.Abs(l.ArraySpan-1280) > 1e-9 {
		t.Errorf("ArraySpan = %g, want 1280 nm", l.ArraySpan)
	}
	if math.Abs(l.DecoderSpan-320) > 1e-9 {
		t.Errorf("DecoderSpan = %g, want 320 nm", l.DecoderSpan)
	}
	if math.Abs(l.ContactSpan-48) > 1e-9 { // one group per half cave
		t.Errorf("ContactSpan = %g, want 48 nm", l.ContactSpan)
	}
	if math.Abs(l.Side-1648) > 1e-9 {
		t.Errorf("Side = %g", l.Side)
	}
	if math.Abs(l.Area()-1648*1648) > 1e-6 {
		t.Errorf("Area = %g", l.Area())
	}
}

func TestEffectiveBitArea(t *testing.T) {
	l, err := NewLayout(DefaultCrossbarSpec(), 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	raw := l.RawBitArea()
	if got := l.EffectiveBitArea(1); math.Abs(got-raw) > 1e-9 {
		t.Errorf("full-yield bit area %g != raw %g", got, raw)
	}
	if got := l.EffectiveBitArea(0.5); math.Abs(got-4*raw) > 1e-9 {
		t.Errorf("half-yield bit area %g, want %g", got, 4*raw)
	}
	if !math.IsInf(l.EffectiveBitArea(0), 1) {
		t.Error("zero yield should be +Inf")
	}
}

func TestLayoutShorterCodeMoreGroups(t *testing.T) {
	// A shorter code (smaller Ω) needs more contact groups, growing the
	// contact span — the driver of the Fig. 8 area trend.
	spec := DefaultCrossbarSpec()
	short, err := NewLayout(spec, 6, 8) // Ω=8 < N=16 -> 2 groups
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewLayout(spec, 10, 32) // 1 group
	if err != nil {
		t.Fatal(err)
	}
	if short.Contact.Groups <= long.Contact.Groups {
		t.Errorf("groups: short %d, long %d", short.Contact.Groups, long.Contact.Groups)
	}
	if short.ContactSpan <= long.ContactSpan {
		t.Error("contact span did not grow with group count")
	}
	if short.DecoderSpan >= long.DecoderSpan {
		t.Error("decoder span should grow with code length")
	}
}

func TestNewLayoutValidation(t *testing.T) {
	spec := DefaultCrossbarSpec()
	if _, err := NewLayout(spec, 0, 8); err == nil {
		t.Error("zero code length accepted")
	}
	bad := spec
	bad.RawBits = 0
	if _, err := NewLayout(bad, 8, 8); err == nil {
		t.Error("zero raw bits accepted")
	}
	bad = spec
	bad.HalfCaveWires = 0
	if _, err := NewLayout(bad, 8, 8); err == nil {
		t.Error("zero half-cave wires accepted")
	}
	bad = spec
	bad.NanowirePitch = 0
	if _, err := NewLayout(bad, 8, 8); err == nil {
		t.Error("invalid params accepted")
	}
}
