package geometry

import (
	"fmt"
	"math"
)

// CrossbarSpec fixes the global crossbar organization: the raw crosspoint
// count D_RAW and the number of nanowires per half cave (an MSPT process
// property — the number of spacer iterations per cave side).
type CrossbarSpec struct {
	Params
	// RawBits is D_RAW, the raw crosspoint count (16384 = 16 kbit in the
	// paper's simulations).
	RawBits int
	// HalfCaveWires is N, the nanowires per half cave.
	HalfCaveWires int
}

// DefaultCrossbarSpec returns the paper's simulation platform: a 16 kbit
// square crossbar with 20 nanowires per half cave on the default technology
// parameters.
func DefaultCrossbarSpec() CrossbarSpec {
	return CrossbarSpec{
		Params:        DefaultParams(),
		RawBits:       16384,
		HalfCaveWires: 20,
	}
}

// Layout is the resolved geometry of a square crossbar for one decoder
// configuration (code length M and code space size Ω).
type Layout struct {
	Spec CrossbarSpec
	// CodeLength is the decoder code length M (mesowires per decoder).
	CodeLength int
	// SpaceSize is the code space size Ω.
	SpaceSize int

	// WiresPerLayer is the number of nanowires on each crossbar layer.
	WiresPerLayer int
	// Caves is the number of caves per layer (each cave holds two half
	// caves mirrored about its symmetry axis).
	Caves int
	// Contact is the per-half-cave contact partition.
	Contact ContactPlan

	// ArraySpan is the extent of the crosspoint array in nm.
	ArraySpan float64
	// DecoderSpan is the extent of the decoder mesowires in nm (M wires at
	// the lithographic pitch).
	DecoderSpan float64
	// ContactSpan is the extent of the contact-group rows in nm.
	ContactSpan float64
	// Side is the full side length of the square crossbar in nm.
	Side float64
}

// NewLayout resolves the geometry for a decoder with code length M and code
// space size Ω.
//
// Both crossbar layers are identical for a square array: each layer's
// nanowires span the array region and extend through their own decoder
// (M mesowires at P_L) and contact rows (one row of height 1.5·P_L per
// contact group). The overhead of layer A extends the crossbar in x, that
// of layer B in y, so the side length is the sum of the array span and one
// layer's overhead.
func NewLayout(spec CrossbarSpec, codeLength, spaceSize int) (*Layout, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.RawBits <= 0 {
		return nil, fmt.Errorf("geometry: non-positive raw bit count %d", spec.RawBits)
	}
	if spec.HalfCaveWires <= 0 {
		return nil, fmt.Errorf("geometry: non-positive half-cave wire count %d", spec.HalfCaveWires)
	}
	if codeLength <= 0 {
		return nil, fmt.Errorf("geometry: non-positive code length %d", codeLength)
	}
	wires := int(math.Ceil(math.Sqrt(float64(spec.RawBits))))
	caves := (wires + 2*spec.HalfCaveWires - 1) / (2 * spec.HalfCaveWires)
	contact, err := spec.PlanContacts(spec.HalfCaveWires, spaceSize)
	if err != nil {
		return nil, err
	}
	l := &Layout{
		Spec:          spec,
		CodeLength:    codeLength,
		SpaceSize:     spaceSize,
		WiresPerLayer: wires,
		Caves:         caves,
		Contact:       contact,
	}
	l.ArraySpan = float64(wires) * spec.NanowirePitch
	l.DecoderSpan = float64(codeLength) * spec.LithoPitch
	// Contact rows are shared across half caves defined in the same
	// lithography step, so the span scales with the groups per half cave.
	l.ContactSpan = float64(contact.Groups) * spec.MinContactFactor * spec.LithoPitch
	l.Side = l.ArraySpan + l.DecoderSpan + l.ContactSpan
	return l, nil
}

// Area returns the total crossbar area in nm².
func (l *Layout) Area() float64 { return l.Side * l.Side }

// RawBitArea returns the area per raw crosspoint in nm² (before yield).
func (l *Layout) RawBitArea() float64 {
	return l.Area() / float64(l.Spec.RawBits)
}

// EffectiveBitArea returns the area per *working* crosspoint given the cave
// yield (fraction of addressable nanowires per layer): the effective density
// is D_EFF = D_RAW · Y², so the bit area grows as 1/Y². It returns +Inf for
// a zero yield.
func (l *Layout) EffectiveBitArea(yield float64) float64 {
	if yield <= 0 {
		return math.Inf(1)
	}
	return l.Area() / (float64(l.Spec.RawBits) * yield * yield)
}

// HalfCaves returns the number of half caves per layer.
func (l *Layout) HalfCaves() int { return 2 * l.Caves }
