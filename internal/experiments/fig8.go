package experiments

import (
	"context"
	"fmt"
	"math"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/textplot"
)

// Fig8 computes the effective area per functional bit for all five code
// families over their length grids (tree family 6/8/10, hot family 4/6/8) —
// the paper's Fig. 8. It runs on the default worker pool.
func Fig8(cfg core.Config) ([]YieldPoint, error) {
	return Fig8Workers(context.Background(), cfg, 0)
}

// Fig8Workers is Fig8 with a cancellation context and an explicit worker
// count (<= 0 means GOMAXPROCS); the output is bit-identical at every
// worker count.
func Fig8Workers(ctx context.Context, cfg core.Config, workers int) ([]YieldPoint, error) {
	units := familyGrid([]familyPanel{
		{code.TypeTree, TreeFamilyLengths},
		{code.TypeGray, TreeFamilyLengths},
		{code.TypeBalancedGray, TreeFamilyLengths},
		{code.TypeHot, HotFamilyLengths},
		{code.TypeArrangedHot, HotFamilyLengths},
	})
	return evalYieldPoints(ctx, cfg, units, workers)
}

// Fig8Dataset packages the bit-area figure as a structured dataset; its
// text rendering is RenderFig8.
func Fig8Dataset(points []YieldPoint) *dataset.Dataset {
	ds := dataset.New("fig8", "Fig. 8 — average area per functional bit",
		yieldColumns()...)
	addYieldRows(ds, points)
	if tc6, tc10 := find(points, code.TypeTree, 6), find(points, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		ds.Note("TC area saving M 6->10:   %.0f%% (paper: 51%%)",
			100*(tc6.BitArea-tc10.BitArea)/tc6.BitArea)
	}
	if tc, bgc := find(points, code.TypeTree, 8), find(points, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		ds.Note("BGC density vs TC at M=8: %.0f%% denser (paper: 30%%)",
			100*(tc.BitArea-bgc.BitArea)/tc.BitArea)
	}
	if hc, ahc := find(points, code.TypeHot, 6), find(points, code.TypeArrangedHot, 6); hc != nil && ahc != nil {
		ds.Note("AHC area vs HC at M=6:    %.0f%% smaller (paper: 13%%)",
			100*(hc.BitArea-ahc.BitArea)/hc.BitArea)
	}
	min := Fig8MinBitArea(points)
	ds.Note("smallest bit area: %.0f nm² with %s M=%d (paper: 169 nm² BGC, 175 nm² AHC)",
		min.BitArea, min.Type, min.Length)
	ds.SetText(func() string { return RenderFig8(points) })
	return ds
}

// Fig8Best returns the smallest bit area per code family.
func Fig8Best(points []YieldPoint) map[code.Type]YieldPoint {
	best := make(map[code.Type]YieldPoint)
	for _, p := range points {
		if cur, ok := best[p.Type]; !ok || p.BitArea < cur.BitArea {
			best[p.Type] = p
		}
	}
	return best
}

// Fig8MinBitArea returns the overall smallest bit area and its point.
func Fig8MinBitArea(points []YieldPoint) YieldPoint {
	min := YieldPoint{BitArea: math.Inf(1)}
	for _, p := range points {
		if p.BitArea < min.BitArea {
			min = p
		}
	}
	return min
}

// RenderFig8 renders the bit-area figure and the paper's comparison ratios.
func RenderFig8(points []YieldPoint) string {
	s := textplot.NewSeries("Fig. 8 — average area per functional bit", " nm²")
	tb := textplot.NewTable("", "code", "M", "bit area [nm²]", "yield")
	for _, p := range points {
		s.Set(p.Type.String(), fmt.Sprintf("M=%d", p.Length), p.BitArea)
		tb.AddRowf(p.Type.String(), p.Length, p.BitArea, fmt.Sprintf("%.1f%%", 100*p.Yield))
	}
	out := s.String() + "\n" + tb.String()
	if tc6, tc10 := find(points, code.TypeTree, 6), find(points, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		out += fmt.Sprintf("\nTC area saving M 6->10:   %.0f%% (paper: 51%%)",
			100*(tc6.BitArea-tc10.BitArea)/tc6.BitArea)
	}
	if tc, bgc := find(points, code.TypeTree, 8), find(points, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		out += fmt.Sprintf("\nBGC density vs TC at M=8: %.0f%% denser (paper: 30%%)",
			100*(tc.BitArea-bgc.BitArea)/tc.BitArea)
	}
	if hc, ahc := find(points, code.TypeHot, 6), find(points, code.TypeArrangedHot, 6); hc != nil && ahc != nil {
		out += fmt.Sprintf("\nAHC area vs HC at M=6:    %.0f%% smaller (paper: 13%%)",
			100*(hc.BitArea-ahc.BitArea)/hc.BitArea)
	}
	min := Fig8MinBitArea(points)
	out += fmt.Sprintf("\nsmallest bit area: %.0f nm² with %s M=%d (paper: 169 nm² BGC, 175 nm² AHC)\n",
		min.BitArea, min.Type, min.Length)
	return out
}
