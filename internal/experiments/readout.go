package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/readout"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

// ReadoutPoint is the analog sensing analysis of one code family.
type ReadoutPoint struct {
	Type   code.Type
	Length int
	// DualRail marks the complementary-pair drive scheme (after DeHon et
	// al.) instead of the simple band-edge drive.
	DualRail bool
	// SensableFraction is the Monte-Carlo fraction of reads meeting the
	// on/off current-ratio criterion.
	SensableFraction float64
	// MedianRatio is the median on/off current ratio.
	MedianRatio float64
	// DigitalYield is the margin-model yield of the same design for
	// comparison.
	DigitalYield float64
}

// Readout runs the analog sensing extension: the same designs as Fig. 7,
// scored by the on/off current-ratio criterion of a series-transistor
// readout path instead of the digital threshold margin. The per-design loop
// polls ctx, so cancelling it mid-run returns promptly with ctx's error.
func Readout(ctx context.Context, cfg core.Config, trials int, seed uint64) ([]ReadoutPoint, error) {
	if trials <= 0 {
		trials = 60
	}
	tr := readout.DefaultTransistor()
	rng := stats.NewRNG(seed)
	var out []ReadoutPoint
	for _, pt := range []struct {
		tp code.Type
		m  int
	}{
		{code.TypeTree, 10},
		{code.TypeGray, 10},
		{code.TypeBalancedGray, 10},
		{code.TypeArrangedHot, 6},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := cfg
		c.CodeType = pt.tp
		c.CodeLength = pt.m
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, err
		}
		study, err := readout.MonteCarlo(tr, d.Plan, d.Quantizer, d.Config.SigmaT,
			readout.DefaultMinRatio, trials, rng.Fork())
		if err != nil {
			return nil, err
		}
		out = append(out, ReadoutPoint{
			Type:             pt.tp,
			Length:           pt.m,
			SensableFraction: study.SensableFraction,
			MedianRatio:      study.Ratios.Median,
			DigitalYield:     d.Yield(),
		})
		// The arranged hot code gets a second row under the dual-rail
		// drive, which multiplies its blockers per unselected wire.
		if pt.tp == code.TypeArrangedHot {
			dual, err := readout.MonteCarloDualRail(tr, d.Plan, d.Quantizer, d.Config.SigmaT,
				readout.DefaultMinRatio, trials, rng.Fork())
			if err != nil {
				return nil, err
			}
			out = append(out, ReadoutPoint{
				Type:             pt.tp,
				Length:           pt.m,
				DualRail:         true,
				SensableFraction: dual.SensableFraction,
				MedianRatio:      dual.Ratios.Median,
				DigitalYield:     d.Yield(),
			})
		}
	}
	return out, nil
}

// ReadoutDataset packages the analog sensing extension as a structured
// dataset; its text rendering is RenderReadout.
func ReadoutDataset(points []ReadoutPoint, trials int, seed uint64) *dataset.Dataset {
	ds := dataset.New("readout",
		"Extension — analog readout (series-FET on/off current ratio >= 10)",
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.Col("dualRail", dataset.Bool),
		dataset.Col("sensableFraction", dataset.Float),
		dataset.Col("medianRatio", dataset.Float),
		dataset.Col("digitalYield", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.Type.String(), p.Length, p.DualRail,
			p.SensableFraction, p.MedianRatio, p.DigitalYield)
	}
	ds.Meta.Seed = seed
	ds.Meta.Trials = trials
	ds.Note("Within the tree family the analog criterion preserves the paper's " +
		"ordering (BGC >= GC > TC); hot codes need the dual-rail " +
		"complementary-pair drive to restore their sensing margin to the " +
		"digital-model level.")
	ds.SetText(func() string { return RenderReadout(points) })
	return ds
}

// RenderReadout renders the sensing extension table.
func RenderReadout(points []ReadoutPoint) string {
	tb := textplot.NewTable(
		"Extension — analog readout (series-FET on/off current ratio >= 10)",
		"code", "M", "sensable", "median on/off", "digital-margin yield")
	for _, p := range points {
		name := p.Type.String()
		if p.DualRail {
			name += " (dual-rail)"
		}
		tb.AddRowf(name, p.Length,
			fmt.Sprintf("%.1f%%", 100*p.SensableFraction),
			fmt.Sprintf("%.1f", p.MedianRatio),
			fmt.Sprintf("%.1f%%", 100*p.DigitalYield))
	}
	return tb.String() +
		"\nWithin the tree family the analog criterion preserves the paper's\n" +
		"ordering (BGC >= GC > TC): optimized arrangements accumulate fewer\n" +
		"doses per region and keep higher sensing margins. Hot codes fare\n" +
		"worse than their digital margin suggests under the simple band-edge\n" +
		"drive — every unselected wire leaks through exactly one blocking\n" +
		"device — and the dual-rail row shows the fix: the complementary-pair\n" +
		"drive of DeHon et al. blocks every mismatched position and restores\n" +
		"the sensing margin to the digital-model level.\n"
}
