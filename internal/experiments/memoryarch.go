package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/textplot"
)

// SparePoint is the spare-wire provisioning of one decoder design.
type SparePoint struct {
	Type code.Type
	// WireFailProb is the per-wire addressability failure probability of
	// the design (1 - mean wire probability).
	WireFailProb float64
	// Spares is the extra wires per 128-wire layer needed for 99%
	// confidence of full capacity.
	Spares int
	// Overhead is Spares / 128.
	Overhead float64
}

// Spares computes, for each code family at its best length, how many spare
// nanowires a 128-wire layer must provision so the defect-avoiding remap
// can still expose 128 logical rows with 99% confidence — the memory-
// architecture consequence of the decoder yields of Fig. 7.
func Spares(cfg core.Config) ([]SparePoint, error) {
	const required = 128
	const confidence = 0.99
	var out []SparePoint
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		c := cfg
		c.CodeType = tp
		c.CodeLength = m
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, err
		}
		failProb := 1 - d.Crossbar.HalfCave.Yield
		spares, err := crossbar.SpareWires(required, failProb, confidence)
		if err != nil {
			return nil, err
		}
		out = append(out, SparePoint{
			Type:         tp,
			WireFailProb: failProb,
			Spares:       spares,
			Overhead:     float64(spares) / required,
		})
	}
	return out, nil
}

// SparesDataset packages the provisioning study as a structured dataset;
// its text rendering is RenderSpares.
func SparesDataset(points []SparePoint) *dataset.Dataset {
	ds := dataset.New("spares",
		"Extension — spare-wire provisioning for 128 logical rows at 99% confidence",
		dataset.Col("code", dataset.String),
		dataset.Col("wireFailProb", dataset.Float),
		dataset.Col("spares", dataset.Int),
		dataset.Col("overhead", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.Type.String(), p.WireFailProb, p.Spares, p.Overhead)
	}
	ds.Note("Better codes buy capacity directly: every point of decoder yield " +
		"saved by the Gray arrangements is spare wires the memory does not " +
		"have to fabricate.")
	ds.SetText(func() string { return RenderSpares(points) })
	return ds
}

// RenderSpares renders the provisioning table.
func RenderSpares(points []SparePoint) string {
	tb := textplot.NewTable(
		"Extension — spare-wire provisioning for 128 logical rows at 99% confidence",
		"code", "wire failure prob", "spares", "overhead")
	for _, p := range points {
		tb.AddRowf(p.Type.String(),
			fmt.Sprintf("%.1f%%", 100*p.WireFailProb),
			p.Spares,
			fmt.Sprintf("%.0f%%", 100*p.Overhead))
	}
	return tb.String() +
		"\nBetter codes buy capacity directly: every point of decoder yield\n" +
		"saved by the Gray arrangements is spare wires (and cave area) the\n" +
		"memory does not have to fabricate.\n"
}

// SneakPoint is the sensing analysis of one array size.
type SneakPoint struct {
	ArraySize    int
	PassiveRatio float64
	DiodeRatio   float64
}

// Sneak analyses the storage-cell sensing constraint of the crossbar
// memory: the worst-case off/on read ratio versus array size for a passive
// molecular-switch cell and for the diode-isolated cell of the paper's
// reference [16], plus the write-disturb margins of the V/2 and V/3 bias
// schemes.
func Sneak(sizes []int) ([]SneakPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128, 256, 512}
	}
	passive := crossbar.DefaultCellModel()
	diode := crossbar.DiodeCellModel()
	var out []SneakPoint
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: array size %d too small", n)
		}
		out = append(out, SneakPoint{
			ArraySize:    n,
			PassiveRatio: passive.OffReadRatio(n),
			DiodeRatio:   diode.OffReadRatio(n),
		})
	}
	return out, nil
}

// SneakDataset packages the sensing analysis as a structured dataset; its
// text rendering is RenderSneak.
func SneakDataset(points []SneakPoint) *dataset.Dataset {
	ds := dataset.New("sneak",
		"Extension — crosspoint sensing: worst-case off/on read ratio",
		dataset.Col("arraySize", dataset.Int),
		dataset.Col("passiveRatio", dataset.Float),
		dataset.Col("diodeRatio", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.ArraySize, p.PassiveRatio, p.DiodeRatio)
	}
	diode := crossbar.DiodeCellModel()
	ds.Note("max diode-isolated array at sensing ratio 1.5: %d wires/side",
		diode.MaxReadableArray(1.5))
	half, err := diode.DisturbMargin(1.2, crossbar.BiasHalf)
	third, err2 := diode.DisturbMargin(1.2, crossbar.BiasThird)
	if err == nil && err2 == nil {
		ds.Note("write-disturb margin at 1.2 V: V/2 scheme %.2f, V/3 scheme %.2f",
			half, third)
	}
	ds.SetText(func() string { return RenderSneak(points) })
	return ds
}

// RenderSneak renders the sensing table and bias-scheme margins.
func RenderSneak(points []SneakPoint) string {
	tb := textplot.NewTable(
		"Extension — crosspoint sensing: worst-case off/on read ratio",
		"array n x n", "passive cell", "diode cell [16]")
	for _, p := range points {
		tb.AddRowf(p.ArraySize,
			fmt.Sprintf("%.3f", p.PassiveRatio),
			fmt.Sprintf("%.3f", p.DiodeRatio))
	}
	out := tb.String()
	diode := crossbar.DiodeCellModel()
	limit := diode.MaxReadableArray(1.5)
	out += fmt.Sprintf("\nmax diode-isolated array at sensing ratio 1.5: %d wires/side\n", limit)
	half, err := diode.DisturbMargin(1.2, crossbar.BiasHalf)
	third, err2 := diode.DisturbMargin(1.2, crossbar.BiasThird)
	if err == nil && err2 == nil {
		out += fmt.Sprintf("write-disturb margin at 1.2 V: V/2 scheme %.2f, V/3 scheme %.2f\n", half, third)
	}
	out += "\nPassive crosspoints are shorted by sneak paths beyond a few wires;\n" +
		"the integrated nanowire diode of reference [16] restores sensing\n" +
		"ratios that comfortably cover the paper's 128-wire layers.\n"
	return out
}
