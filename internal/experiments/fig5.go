// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6): Fig. 5 (fabrication complexity per code and logic
// type), Fig. 6 (variability maps), Fig. 7 (crossbar yield vs code length),
// Fig. 8 (effective bit area), and the headline summary numbers of the
// abstract/conclusion, each as a structured result plus a text rendering.
package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/textplot"
)

// Fig5N is the paper's half-cave population for the fabrication-complexity
// study: N = 10 nanowires.
const Fig5N = 10

// Fig5Row is the fabrication complexity of one logic valency.
type Fig5Row struct {
	Logic  string
	Base   int
	Length int // minimal reflected code length whose space holds N words
	PhiTC  int
	PhiGC  int
}

// Fig5 computes the technology complexity Φ for tree and Gray codes in
// binary, ternary and quaternary logic with N nanowires per half cave
// (Fig. 5 of the paper). The code length per logic valency is the minimal
// reflected length whose space holds the N code words.
func Fig5(n int) ([]Fig5Row, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: non-positive N %d", n)
	}
	logics := []struct {
		name string
		base int
	}{
		{"binary", 2}, {"ternary", 3}, {"quaternary", 4},
	}
	var rows []Fig5Row
	for _, lg := range logics {
		length := minReflectedLength(lg.base, n)
		q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), lg.base, 0, 1)
		if err != nil {
			return nil, err
		}
		row := Fig5Row{Logic: lg.name, Base: lg.base, Length: length}
		for _, tp := range []code.Type{code.TypeTree, code.TypeGray} {
			g, err := code.New(tp, lg.base, length)
			if err != nil {
				return nil, err
			}
			plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
			if err != nil {
				return nil, err
			}
			switch tp {
			case code.TypeTree:
				row.PhiTC = plan.Phi()
			case code.TypeGray:
				row.PhiGC = plan.Phi()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// minReflectedLength returns the smallest even M with base^(M/2) >= n.
func minReflectedLength(base, n int) int {
	length := 2
	size := base
	for size < n {
		size *= base
		length += 2
	}
	return length
}

// Fig5GraySaving returns the average relative saving of the Gray code over
// the tree code across the multi-valued (ternary and quaternary) logics —
// the paper's 17% headline.
func Fig5GraySaving(rows []Fig5Row) float64 {
	sum, count := 0.0, 0
	for _, r := range rows {
		if r.Base == 2 {
			continue // binary codes all cost 2N; no saving possible
		}
		sum += float64(r.PhiTC-r.PhiGC) / float64(r.PhiTC)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Fig5Dataset packages the figure as a structured dataset; its text
// rendering is RenderFig5.
func Fig5Dataset(rows []Fig5Row) *dataset.Dataset {
	ds := dataset.New("fig5",
		fmt.Sprintf("Fig. 5 — fabrication complexity Φ (additional litho/doping steps), N=%d", Fig5N),
		dataset.Col("logic", dataset.String),
		dataset.Col("base", dataset.Int),
		dataset.Col("M", dataset.Int),
		dataset.ColUnit("phiTC", "steps", dataset.Int),
		dataset.ColUnit("phiGC", "steps", dataset.Int),
		dataset.Col("gcSaving", dataset.Float),
	)
	for _, r := range rows {
		saving := float64(r.PhiTC-r.PhiGC) / float64(r.PhiTC)
		ds.AddRow(r.Logic, r.Base, r.Length, r.PhiTC, r.PhiGC, saving)
	}
	ds.Note("average multi-valued GC saving: %.0f%% (paper: 17%%)", 100*Fig5GraySaving(rows))
	ds.SetText(func() string { return RenderFig5(rows) })
	return ds
}

// RenderFig5 renders the figure as a grouped bar chart plus a table.
func RenderFig5(rows []Fig5Row) string {
	s := textplot.NewSeries(
		fmt.Sprintf("Fig. 5 — fabrication complexity Φ (additional litho/doping steps), N=%d", Fig5N),
		" steps", "TC", "GC")
	tb := textplot.NewTable("", "logic", "base", "M", "Φ(TC)", "Φ(GC)", "GC saving")
	for _, r := range rows {
		s.Set("TC", r.Logic, float64(r.PhiTC))
		s.Set("GC", r.Logic, float64(r.PhiGC))
		saving := float64(r.PhiTC-r.PhiGC) / float64(r.PhiTC)
		tb.AddRowf(r.Logic, r.Base, r.Length, r.PhiTC, r.PhiGC, fmt.Sprintf("%.0f%%", 100*saving))
	}
	return s.String() + "\n" + tb.String() +
		fmt.Sprintf("\naverage multi-valued GC saving: %.0f%% (paper: 17%%)\n", 100*Fig5GraySaving(rows))
}
