package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/par"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
	"nwdec/internal/yield"
)

// ArrangementPoint compares one arrangement of the same code space.
type ArrangementPoint struct {
	Name  string
	Phi   int
	NuSum int
	MaxNu int
	Yield float64
}

// AblationArrangement isolates the paper's core claim (Propositions 4-5):
// over the *same* binary reflected code space (M=10, N=20), it compares the
// counting (tree) order, seeded random orders, the Gray order and the
// balanced Gray order. Gray arrangements must dominate every random order
// in both Φ and ‖Σ‖₁. It runs on the default worker pool.
func AblationArrangement(seeds []uint64) ([]ArrangementPoint, error) {
	return AblationArrangementWorkers(context.Background(), seeds, 0)
}

// AblationArrangementWorkers is AblationArrangement with a cancellation
// context and an explicit worker count (<= 0 means GOMAXPROCS). The random
// orders are drawn serially from their own seeds before the evaluations fan
// out, so the output is bit-identical at every worker count.
func AblationArrangementWorkers(ctx context.Context, seeds []uint64, workers int) ([]ArrangementPoint, error) {
	const m, n = 10, 20
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		return nil, err
	}
	doses, err := mspt.DoseLevels(q, 0)
	if err != nil {
		return nil, err
	}
	analyzer, err := yield.NewAnalyzer(yield.DefaultSigmaT, q.Margin())
	if err != nil {
		return nil, err
	}
	tc, err := code.NewTree(2, m)
	if err != nil {
		return nil, err
	}
	full, err := tc.Sequence(tc.SpaceSize())
	if err != nil {
		return nil, err
	}

	// The arrangements under comparison, in presentation order.
	type arrangement struct {
		name  string
		words []code.Word
	}
	units := []arrangement{{name: "counting (TC)", words: full[:n]}}
	for _, seed := range seeds {
		rng := stats.NewRNG(seed)
		perm := rng.Perm(len(full))
		words := make([]code.Word, n)
		for i := range words {
			words[i] = full[perm[i]]
		}
		units = append(units, arrangement{name: fmt.Sprintf("random #%d", seed), words: words})
	}
	for _, fam := range []code.Type{code.TypeGray, code.TypeBalancedGray} {
		g, err := code.Cached(fam, 2, m)
		if err != nil {
			return nil, err
		}
		words, err := g.Sequence(n)
		if err != nil {
			return nil, err
		}
		units = append(units, arrangement{name: fam.String(), words: words})
	}

	return par.Map(ctx, workers, units,
		func(_ context.Context, _ int, u arrangement) (ArrangementPoint, error) {
			plan, err := mspt.NewPlan(u.words, 2, doses)
			if err != nil {
				return ArrangementPoint{}, err
			}
			hc := analyzer.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 1})
			return ArrangementPoint{
				Name:  u.name,
				Phi:   plan.Phi(),
				NuSum: plan.NuSum(),
				MaxNu: plan.MaxNu(),
				Yield: hc.Yield,
			}, nil
		})
}

// AblationArrangementDataset packages the arrangement comparison; its text
// rendering is RenderAblationArrangement.
func AblationArrangementDataset(points []ArrangementPoint) *dataset.Dataset {
	ds := dataset.New("arrangement",
		"Ablation — arrangements of the same binary code space (M=10, N=20)",
		dataset.Col("arrangement", dataset.String),
		dataset.ColUnit("phi", "steps", dataset.Int),
		dataset.ColUnit("nuSum", "σ²", dataset.Int),
		dataset.Col("maxNu", dataset.Int),
		dataset.Col("yield", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.Name, p.Phi, p.NuSum, p.MaxNu, p.Yield)
	}
	ds.Note("Gray arrangements minimize both cost functions over every sampled order " +
		"(Propositions 4-5); balance additionally lowers the worst region (max ν).")
	ds.SetText(func() string { return RenderAblationArrangement(points) })
	return ds
}

// RenderAblationArrangement renders the arrangement comparison.
func RenderAblationArrangement(points []ArrangementPoint) string {
	tb := textplot.NewTable(
		"Ablation — arrangements of the same binary code space (M=10, N=20)",
		"arrangement", "Φ", "‖Σ‖₁ [σ²]", "max ν", "yield")
	for _, p := range points {
		tb.AddRowf(p.Name, p.Phi, p.NuSum, p.MaxNu, fmt.Sprintf("%.1f%%", 100*p.Yield))
	}
	return tb.String() +
		"\nGray arrangements minimize both cost functions over every sampled order\n" +
		"(Propositions 4-5); balance additionally lowers the worst region (max ν).\n"
}

// MarginPoint is one margin-factor evaluation.
type MarginPoint struct {
	Factor  float64
	YieldTC float64
	YieldBG float64
}

// AblationMargin sweeps the sensing-margin factor — the one calibration
// constant of the yield model — and shows the BGC advantage over TC is
// robust across it. It runs on the default worker pool.
func AblationMargin(factors []float64) ([]MarginPoint, error) {
	return AblationMarginWorkers(context.Background(), factors, 0)
}

// AblationMarginWorkers is AblationMargin with a cancellation context and
// an explicit worker count (<= 0 means GOMAXPROCS); the output is
// bit-identical at every worker count.
func AblationMarginWorkers(ctx context.Context, factors []float64, workers int) ([]MarginPoint, error) {
	return par.Map(ctx, workers, factors,
		func(_ context.Context, _ int, f float64) (MarginPoint, error) {
			row := MarginPoint{Factor: f}
			for _, tp := range []code.Type{code.TypeTree, code.TypeBalancedGray} {
				d, err := core.NewDesign(core.Config{CodeType: tp, CodeLength: 10, MarginFactor: f})
				if err != nil {
					return MarginPoint{}, err
				}
				if tp == code.TypeTree {
					row.YieldTC = d.Yield()
				} else {
					row.YieldBG = d.Yield()
				}
			}
			return row, nil
		})
}

// AblationMarginDataset packages the margin sweep; its text rendering is
// RenderAblationMargin.
func AblationMarginDataset(points []MarginPoint) *dataset.Dataset {
	ds := dataset.New("margin",
		"Ablation — sensing-margin factor (fraction of half the level spacing)",
		dataset.Col("factor", dataset.Float),
		dataset.Col("yieldTC", dataset.Float),
		dataset.Col("yieldBGC", dataset.Float),
		dataset.Col("bgcGain", dataset.Float),
	)
	for _, p := range points {
		gain := 0.0
		if p.YieldTC > 0 {
			gain = (p.YieldBG - p.YieldTC) / p.YieldTC
		}
		ds.AddRow(p.Factor, p.YieldTC, p.YieldBG, gain)
	}
	ds.SetText(func() string { return RenderAblationMargin(points) })
	return ds
}

// RenderAblationMargin renders the margin sweep.
func RenderAblationMargin(points []MarginPoint) string {
	tb := textplot.NewTable(
		"Ablation — sensing-margin factor (fraction of half the level spacing)",
		"factor", "TC yield", "BGC yield", "BGC gain")
	for _, p := range points {
		gain := 0.0
		if p.YieldTC > 0 {
			gain = (p.YieldBG - p.YieldTC) / p.YieldTC
		}
		tb.AddRowf(p.Factor,
			fmt.Sprintf("%.1f%%", 100*p.YieldTC),
			fmt.Sprintf("%.1f%%", 100*p.YieldBG),
			fmt.Sprintf("%+.0f%%", 100*gain))
	}
	return tb.String()
}

// ModelInvariance verifies that the decoder's fabrication-side metrics
// (Φ, ν, ‖Σ‖₁) are identical under the physical threshold model and the
// paper-calibrated table model: they depend only on *where* doses land, not
// on dose magnitudes, so the choice of f in Proposition 1 cannot change the
// optimization result.
type ModelInvariance struct {
	CodeType      code.Type
	PhiPhysical   int
	PhiTable      int
	NuSumPhysical int
	NuSumTable    int
	Invariant     bool
}

// AblationModel evaluates the model-invariance check for each tree-family
// code on a ternary decoder (where dose magnitudes differ most between
// models). It runs on the default worker pool.
func AblationModel() ([]ModelInvariance, error) {
	return AblationModelWorkers(context.Background(), 0)
}

// AblationModelWorkers is AblationModel with a cancellation context and an
// explicit worker count (<= 0 means GOMAXPROCS); the output is
// bit-identical at every worker count.
func AblationModelWorkers(ctx context.Context, workers int) ([]ModelInvariance, error) {
	const m, n = 6, 10
	types := []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray}
	return par.Map(ctx, workers, types,
		func(_ context.Context, _ int, tp code.Type) (ModelInvariance, error) {
			g, err := code.Cached(tp, 3, m)
			if err != nil {
				return ModelInvariance{}, err
			}
			var phi [2]int
			var nuSum [2]int
			for mi, model := range []physics.VTModel{physics.DefaultPhysicalModel(), physics.PaperExampleTable()} {
				q, err := physics.NewQuantizer(model, 3, 0, 0.6)
				if err != nil {
					return ModelInvariance{}, err
				}
				plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
				if err != nil {
					return ModelInvariance{}, err
				}
				phi[mi] = plan.Phi()
				nuSum[mi] = plan.NuSum()
			}
			return ModelInvariance{
				CodeType:      tp,
				PhiPhysical:   phi[0],
				PhiTable:      phi[1],
				NuSumPhysical: nuSum[0],
				NuSumTable:    nuSum[1],
				Invariant:     phi[0] == phi[1] && nuSum[0] == nuSum[1],
			}, nil
		})
}

// AblationModelDataset packages the invariance check; its text rendering is
// RenderAblationModel.
func AblationModelDataset(rows []ModelInvariance) *dataset.Dataset {
	ds := dataset.New("model",
		"Ablation — V_T<->N_D model invariance (ternary, M=6, N=10)",
		dataset.Col("code", dataset.String),
		dataset.Col("phiPhysical", dataset.Int),
		dataset.Col("phiTable", dataset.Int),
		dataset.Col("nuSumPhysical", dataset.Int),
		dataset.Col("nuSumTable", dataset.Int),
		dataset.Col("invariant", dataset.Bool),
	)
	allInvariant := true
	for _, r := range rows {
		ds.AddRow(r.CodeType.String(), r.PhiPhysical, r.PhiTable,
			r.NuSumPhysical, r.NuSumTable, r.Invariant)
		if !r.Invariant {
			allInvariant = false
		}
	}
	if allInvariant {
		ds.Note("Φ and ‖Σ‖₁ are identical under the physical and the " +
			"table-calibrated V_T↔N_D models for every tree-family code.")
	} else {
		ds.Note("WARNING: fabrication metrics depend on the threshold model.")
	}
	ds.SetText(func() string { return RenderAblationModel(rows) })
	return ds
}

// RenderAblationModel renders the invariance table.
func RenderAblationModel(rows []ModelInvariance) string {
	tb := textplot.NewTable(
		"Ablation — V_T<->N_D model invariance (ternary, M=6, N=10)",
		"code", "Φ phys", "Φ table", "‖Σ‖₁ phys", "‖Σ‖₁ table", "invariant")
	for _, r := range rows {
		inv := "yes"
		if !r.Invariant {
			inv = "NO"
		}
		tb.AddRowf(r.CodeType.String(), r.PhiPhysical, r.PhiTable, r.NuSumPhysical, r.NuSumTable, inv)
	}
	return tb.String()
}

// BoundaryPoint is one boundary-loss evaluation.
type BoundaryPoint struct {
	LossWires int
	Yield     float64
	BitArea   float64
}

// AblationBoundary sweeps the per-boundary wire loss — the second
// calibration constant — on a short-code design (TC M=6) where contact
// groups dominate. It runs on the default worker pool.
func AblationBoundary(losses []int) ([]BoundaryPoint, error) {
	return AblationBoundaryWorkers(context.Background(), losses, 0)
}

// AblationBoundaryWorkers is AblationBoundary with a cancellation context
// and an explicit worker count (<= 0 means GOMAXPROCS); the output is
// bit-identical at every worker count.
func AblationBoundaryWorkers(ctx context.Context, losses []int, workers int) ([]BoundaryPoint, error) {
	return par.Map(ctx, workers, losses,
		func(_ context.Context, _ int, loss int) (BoundaryPoint, error) {
			cfg := core.Config{CodeType: code.TypeTree, CodeLength: 6}
			cfg.Spec = geometry.DefaultCrossbarSpec()
			cfg.Spec.BoundaryLossWires = loss
			d, err := core.NewDesign(cfg)
			if err != nil {
				return BoundaryPoint{}, err
			}
			return BoundaryPoint{LossWires: loss, Yield: d.Yield(), BitArea: d.BitArea()}, nil
		})
}

// AblationBoundaryDataset packages the boundary-loss sweep; its text
// rendering is RenderAblationBoundary.
func AblationBoundaryDataset(points []BoundaryPoint) *dataset.Dataset {
	ds := dataset.New("boundary",
		"Ablation — wires lost per contact-group boundary (TC, M=6)",
		dataset.Col("lossPerBoundary", dataset.Int),
		dataset.Col("yield", dataset.Float),
		dataset.ColUnit("bitArea", "nm²", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.LossWires, p.Yield, p.BitArea)
	}
	ds.SetText(func() string { return RenderAblationBoundary(points) })
	return ds
}

// RenderAblationBoundary renders the boundary-loss sweep.
func RenderAblationBoundary(points []BoundaryPoint) string {
	tb := textplot.NewTable(
		"Ablation — wires lost per contact-group boundary (TC, M=6)",
		"loss/boundary", "yield", "bit area [nm²]")
	for _, p := range points {
		tb.AddRowf(p.LossWires, fmt.Sprintf("%.1f%%", 100*p.Yield), p.BitArea)
	}
	return tb.String()
}
