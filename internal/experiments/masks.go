package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/textplot"
)

// MaskPoint is the mask-set economics of one code family's decoder.
type MaskPoint struct {
	Type   code.Type
	Length int
	// Passes is the implant pass count Φ.
	Passes int
	// DistinctMasks is the number of unique window patterns needed.
	DistinctMasks int
	// ReuseFactor is passes per mask.
	ReuseFactor float64
}

// Masks evaluates the photolithography mask-set cost of each code family on
// the default platform: Φ counts implant passes, but masks define geometry
// only and are reused across passes, so the mask-set cost — the dominant
// NRE of a lithographic process — is the number of *distinct* window
// patterns.
func Masks(cfg core.Config) ([]MaskPoint, error) {
	var out []MaskPoint
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		c := cfg
		c.CodeType = tp
		c.CodeLength = m
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, err
		}
		set := d.Plan.Masks()
		out = append(out, MaskPoint{
			Type:          tp,
			Length:        m,
			Passes:        set.Passes,
			DistinctMasks: set.DistinctMasks(),
			ReuseFactor:   set.ReuseFactor(),
		})
	}
	return out, nil
}

// MasksDataset packages the mask-economics study as a structured dataset;
// its text rendering is RenderMasks.
func MasksDataset(points []MaskPoint) *dataset.Dataset {
	ds := dataset.New("masks",
		"Extension — photolithography mask-set economics (default platform)",
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.ColUnit("passes", "steps", dataset.Int),
		dataset.Col("distinctMasks", dataset.Int),
		dataset.Col("reuseFactor", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.Type.String(), p.Length, p.Passes, p.DistinctMasks, p.ReuseFactor)
	}
	ds.Note("Masks define geometry only and are reused across implant passes; " +
		"the mask-set NRE shrinks together with Φ.")
	ds.SetText(func() string { return RenderMasks(points) })
	return ds
}

// RenderMasks renders the mask-economics table.
func RenderMasks(points []MaskPoint) string {
	tb := textplot.NewTable(
		"Extension — photolithography mask-set economics (default platform)",
		"code", "M", "implant passes (Φ)", "distinct masks", "reuse")
	for _, p := range points {
		tb.AddRowf(p.Type.String(), p.Length, p.Passes, p.DistinctMasks,
			fmt.Sprintf("%.1fx", p.ReuseFactor))
	}
	return tb.String() +
		"\nMasks define geometry only and are reused across implant passes, so\n" +
		"the binary families all settle near M+2 distinct masks; the arranged\n" +
		"hot code's transposition steps share the fewest. In multi-valued\n" +
		"logic (ternary M=6, N=20) the tree code's carry transitions need 11\n" +
		"masks for 53 passes while the Gray arrangement needs 9 for 41 — the\n" +
		"mask-set NRE shrinks together with Φ.\n"
}
