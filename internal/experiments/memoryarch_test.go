package experiments

import (
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func TestSparesOrderingFollowsYield(t *testing.T) {
	points, err := Spares(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("want 5 points, got %d", len(points))
	}
	byType := make(map[code.Type]SparePoint)
	for _, p := range points {
		byType[p.Type] = p
		if p.Spares <= 0 {
			t.Errorf("%v: zero spares at non-zero failure probability", p.Type)
		}
		if p.Overhead <= 0 || p.Overhead > 1 {
			t.Errorf("%v: overhead %g implausible", p.Type, p.Overhead)
		}
	}
	// Better codes need fewer spares: BGC < GC < TC, AHC < HC.
	if !(byType[code.TypeBalancedGray].Spares < byType[code.TypeGray].Spares &&
		byType[code.TypeGray].Spares < byType[code.TypeTree].Spares) {
		t.Errorf("tree-family spare ordering violated: %+v", points)
	}
	if byType[code.TypeArrangedHot].Spares >= byType[code.TypeHot].Spares {
		t.Error("AHC needs as many spares as HC")
	}
	out := RenderSpares(points)
	if !strings.Contains(out, "spare-wire provisioning") {
		t.Error("render incomplete")
	}
}

func TestSneakShapes(t *testing.T) {
	points, err := Sneak(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("default grid has %d points", len(points))
	}
	for i, p := range points {
		if p.DiodeRatio <= p.PassiveRatio {
			t.Errorf("n=%d: diode ratio %g not above passive %g",
				p.ArraySize, p.DiodeRatio, p.PassiveRatio)
		}
		if i > 0 {
			if p.PassiveRatio >= points[i-1].PassiveRatio || p.DiodeRatio >= points[i-1].DiodeRatio {
				t.Errorf("ratios not degrading at n=%d", p.ArraySize)
			}
		}
	}
	// The paper's 128-wire layer is readable with the diode cell only.
	var at128 SneakPoint
	for _, p := range points {
		if p.ArraySize == 128 {
			at128 = p
		}
	}
	if at128.PassiveRatio > 1.1 {
		t.Errorf("passive 128 array unexpectedly readable: %g", at128.PassiveRatio)
	}
	if at128.DiodeRatio < 1.5 {
		t.Errorf("diode 128 array unreadable: %g", at128.DiodeRatio)
	}
	out := RenderSneak(points)
	for _, want := range []string{"off/on read ratio", "V/2 scheme", "max diode-isolated array"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSneakValidation(t *testing.T) {
	if _, err := Sneak([]int{1}); err == nil {
		t.Error("array size 1 accepted")
	}
}
