package experiments

import (
	"context"
	"runtime"
	"testing"

	"nwdec/internal/core"
)

// The determinism contract of the parallel engine: every experiment must be
// bit-identical at every worker count. These tests compare the fully serial
// path (workers = 1) against the saturated pool (GOMAXPROCS).

func TestMonteCarloSerialParallelIdentical(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{1, 2009, 0xDEADBEEF} {
		serial, err := MonteCarloWorkers(ctx, core.Config{}, 3, seed, 1)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := MonteCarloWorkers(ctx, core.Config{}, 3, seed, runtime.GOMAXPROCS(0))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("seed %d: %d vs %d points", seed, len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Errorf("seed %d point %d: serial %+v != parallel %+v",
					seed, i, serial[i], parallel[i])
			}
		}
	}
}

func TestFig7SerialParallelIdentical(t *testing.T) {
	ctx := context.Background()
	serial, err := Fig7Workers(ctx, core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7Workers(ctx, core.Config{}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d points", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestFig8SerialParallelIdentical(t *testing.T) {
	ctx := context.Background()
	serial, err := Fig8Workers(ctx, core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8Workers(ctx, core.Config{}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d points", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunnerWorkerCountInvisible(t *testing.T) {
	// The same experiment through the Runner must serialize identically at
	// every worker count, in every format.
	ctx := context.Background()
	for _, name := range []string{"fig7", "montecarlo", "margin"} {
		serial := NewRunner()
		serial.Workers = 1
		parallel := NewRunner()
		parallel.Workers = runtime.GOMAXPROCS(0)
		a, err := serial.Run(ctx, name)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		b, err := parallel.Run(ctx, name)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if a.Text() != b.Text() {
			t.Errorf("%s: text rendering differs between worker counts", name)
		}
		if a.CSV() != b.CSV() {
			t.Errorf("%s: CSV differs between worker counts", name)
		}
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Errorf("%s: JSON differs between worker counts", name)
		}
	}
}
