package experiments

import (
	"runtime"
	"testing"

	"nwdec/internal/core"
)

// The determinism contract of the parallel engine: every experiment must be
// bit-identical at every worker count. These tests compare the fully serial
// path (workers = 1) against the saturated pool (GOMAXPROCS).

func TestMonteCarloSerialParallelIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 2009, 0xDEADBEEF} {
		serial, err := MonteCarloWorkers(core.Config{}, 3, seed, 1)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		parallel, err := MonteCarloWorkers(core.Config{}, 3, seed, runtime.GOMAXPROCS(0))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("seed %d: %d vs %d points", seed, len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Errorf("seed %d point %d: serial %+v != parallel %+v",
					seed, i, serial[i], parallel[i])
			}
		}
	}
}

func TestFig7SerialParallelIdentical(t *testing.T) {
	serial, err := Fig7Workers(core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7Workers(core.Config{}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d points", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestFig8SerialParallelIdentical(t *testing.T) {
	serial, err := Fig8Workers(core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8Workers(core.Config{}, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d points", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunnerWorkerCountInvisible(t *testing.T) {
	// The same experiment through the Runner must render identically at
	// every worker count.
	for _, name := range []string{"fig7", "montecarlo", "margin"} {
		serial := NewRunner()
		serial.Workers = 1
		parallel := NewRunner()
		parallel.Workers = runtime.GOMAXPROCS(0)
		a, err := serial.Run(name)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		b, err := parallel.Run(name)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: report differs between worker counts", name)
		}
	}
}
