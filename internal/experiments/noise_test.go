package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"nwdec/internal/core"
)

func TestNoiseStudy(t *testing.T) {
	res, err := NoiseStudy(context.Background(), core.Config{}, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The derived per-dose sigma must be in the same regime as the paper's
	// 50 mV assumption (within a factor of ~3).
	ratio := res.DerivedSigmaT / res.AssumedSigmaT
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("derived σ_T %g V too far from assumed %g V", res.DerivedSigmaT, res.AssumedSigmaT)
	}
	// More noise, less yield (the derived sigma is above 50 mV here).
	if res.DerivedSigmaT > res.AssumedSigmaT && res.YieldDerived >= res.YieldAssumed {
		t.Errorf("yield did not fall with larger σ_T: %g vs %g", res.YieldDerived, res.YieldAssumed)
	}
	// The two functional yields agree within Monte-Carlo resolution.
	if math.Abs(res.IIDYield-res.CorrelatedYield) > 0.05 {
		t.Errorf("correlated yield %g deviates from iid %g beyond MC noise",
			res.CorrelatedYield, res.IIDYield)
	}
	// Both functional yields track the analytic model loosely.
	if math.Abs(res.IIDYield-res.YieldAssumed) > 0.12 {
		t.Errorf("functional %g far from analytic %g", res.IIDYield, res.YieldAssumed)
	}
	out := RenderNoiseStudy(res)
	for _, want := range []string{"derived per-dose", "pass-correlated", "mV"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNoiseStudyDefaults(t *testing.T) {
	res, err := NoiseStudy(context.Background(), core.Config{}, 0, 1) // trials default
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 200 {
		t.Errorf("default trials = %d", res.Trials)
	}
}

func TestNoiseStudyDeterministic(t *testing.T) {
	a, err := NoiseStudy(context.Background(), core.Config{}, 50, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NoiseStudy(context.Background(), core.Config{}, 50, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.IIDYield != b.IIDYield || a.CorrelatedYield != b.CorrelatedYield {
		t.Error("noise study not deterministic under fixed seed")
	}
}
