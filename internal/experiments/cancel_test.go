package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunCancellation pins the context contract of the pipeline: a
// cancelled context aborts the run promptly, the error unwraps to
// context.Canceled, and no worker goroutines are left behind.
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	// Already-cancelled context: every registry entry must refuse to run,
	// including the serial experiments that never poll ctx themselves.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner()
	r.MCTrials = 50
	for _, name := range r.Names() {
		start := time.Now()
		_, err := r.Run(ctx, name)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("%s: cancelled run took %v", name, d)
		}
	}

	// Cancellation mid-run: start an expensive Monte-Carlo run, cancel
	// shortly after, and require a prompt error return.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		heavy := NewRunner()
		heavy.MCTrials = 10000
		_, err := heavy.Run(ctx2, "montecarlo")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-run cancel: err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Monte-Carlo run did not return")
	}

	// The worker pools must have drained: allow scheduler noise but no
	// proportional leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
