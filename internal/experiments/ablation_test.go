package experiments

import (
	"context"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func TestAblationArrangementGrayDominates(t *testing.T) {
	points, err := AblationArrangement([]uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 { // TC + 5 random + GC + BGC
		t.Fatalf("want 8 points, got %d", len(points))
	}
	var gray, balanced *ArrangementPoint
	for i := range points {
		switch points[i].Name {
		case "GC":
			gray = &points[i]
		case "BGC":
			balanced = &points[i]
		}
	}
	if gray == nil || balanced == nil {
		t.Fatal("Gray arrangements missing")
	}
	// Proposition 4/5: the Gray arrangements minimize ‖Σ‖₁ and Φ over
	// every other sampled arrangement of the same code space.
	for _, p := range points {
		if p.Name == "GC" || p.Name == "BGC" {
			continue
		}
		if gray.NuSum > p.NuSum || balanced.NuSum > p.NuSum {
			t.Errorf("arrangement %q has lower ‖Σ‖₁ than Gray: %d", p.Name, p.NuSum)
		}
		if gray.Phi > p.Phi || balanced.Phi > p.Phi {
			t.Errorf("arrangement %q has lower Φ than Gray: %d", p.Name, p.Phi)
		}
		if p.Yield > balanced.Yield {
			t.Errorf("arrangement %q out-yields BGC: %g > %g", p.Name, p.Yield, balanced.Yield)
		}
	}
	// Both Gray paths have identical total variability; balance only
	// redistributes it.
	if gray.NuSum != balanced.NuSum {
		t.Errorf("GC and BGC ‖Σ‖₁ differ: %d vs %d", gray.NuSum, balanced.NuSum)
	}
	if balanced.MaxNu > gray.MaxNu {
		t.Errorf("BGC max ν %d above GC %d", balanced.MaxNu, gray.MaxNu)
	}
	out := RenderAblationArrangement(points)
	if !strings.Contains(out, "random #1") || !strings.Contains(out, "BGC") {
		t.Error("render incomplete")
	}
}

func TestAblationMarginRobust(t *testing.T) {
	points, err := AblationMargin([]float64{0.4, 0.7, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.YieldBG <= p.YieldTC {
			t.Errorf("factor %g: BGC advantage lost (TC %g, BGC %g)", p.Factor, p.YieldTC, p.YieldBG)
		}
	}
	// Yield rises with the margin for both codes.
	for i := 1; i < len(points); i++ {
		if points[i].YieldTC <= points[i-1].YieldTC || points[i].YieldBG <= points[i-1].YieldBG {
			t.Error("yield not increasing with margin factor")
		}
	}
	if !strings.Contains(RenderAblationMargin(points), "BGC gain") {
		t.Error("render incomplete")
	}
}

func TestAblationModelInvariance(t *testing.T) {
	rows, err := AblationModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Invariant {
			t.Errorf("%v: Φ/‖Σ‖₁ depend on the threshold model (Φ %d vs %d, Σ %d vs %d)",
				r.CodeType, r.PhiPhysical, r.PhiTable, r.NuSumPhysical, r.NuSumTable)
		}
	}
	if !strings.Contains(RenderAblationModel(rows), "invariant") {
		t.Error("render incomplete")
	}
}

func TestAblationBoundaryMonotone(t *testing.T) {
	points, err := AblationBoundary([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Yield >= points[i-1].Yield {
			t.Error("yield not decreasing with boundary loss")
		}
		if points[i].BitArea <= points[i-1].BitArea {
			t.Error("bit area not increasing with boundary loss")
		}
	}
	if !strings.Contains(RenderAblationBoundary(points), "loss/boundary") {
		t.Error("render incomplete")
	}
}

func TestMultiValuedKeepsGrayAdvantage(t *testing.T) {
	points, err := MultiValued(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 { // 5 families x 3 logic valencies
		t.Fatalf("want 15 points, got %d", len(points))
	}
	byKey := make(map[string]MultiValuedPoint)
	for _, p := range points {
		byKey[p.Type.String()+"-"+itoa(p.Base)] = p
	}
	for _, base := range []int{2, 3, 4} {
		tc := byKey["TC-"+itoa(base)]
		gc := byKey["GC-"+itoa(base)]
		if gc.Yield <= tc.Yield {
			t.Errorf("base %d: GC yield %g not above TC %g", base, gc.Yield, tc.Yield)
		}
		if gc.Phi > tc.Phi {
			t.Errorf("base %d: GC Φ %d above TC %d", base, gc.Phi, tc.Phi)
		}
		hc := byKey["HC-"+itoa(base)]
		ahc := byKey["AHC-"+itoa(base)]
		if ahc.Yield < hc.Yield {
			t.Errorf("base %d: AHC yield %g below HC %g", base, ahc.Yield, hc.Yield)
		}
	}
	// Multi-valued decoders pay a Φ overhead for the tree code only.
	if byKey["TC-3"].Phi <= byKey["TC-2"].Phi*53/40-1 {
		t.Log("ternary TC overhead:", byKey["TC-3"].Phi)
	}
	if !strings.Contains(RenderMultiValued(points), "Extension") {
		t.Error("render incomplete")
	}
}

func TestScalingTradeoff(t *testing.T) {
	points, err := Scaling(core.Config{}, []int{10, 20, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Yield >= points[i-1].Yield {
			t.Error("yield not decreasing with cave depth")
		}
		if points[i].Phi <= points[i-1].Phi {
			t.Error("Φ not growing with cave depth")
		}
	}
	if !strings.Contains(RenderScaling(points), "N wires") {
		t.Error("render incomplete")
	}
}

func TestRunnerIncludesAblations(t *testing.T) {
	ctx := context.Background()
	r := NewRunner()
	for _, name := range []string{"arrangement", "margin", "model", "boundary", "multivalued", "scaling", "noise", "readout", "temperature", "optarrange", "masks", "spares", "sneak"} {
		ds, err := r.Run(ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Text()) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestSweepFamilyErrorPropagation(t *testing.T) {
	units := familyGrid([]familyPanel{{tp: code.TypeGray, lengths: []int{7}}})
	if _, err := evalYieldPoints(context.Background(), core.Config{}, units, 1); err == nil {
		t.Error("invalid length not propagated")
	}
}
