package experiments

import (
	"context"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func TestReadoutOrderingWithinTreeFamily(t *testing.T) {
	points, err := Readout(context.Background(), core.Config{}, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("want 5 points, got %d", len(points))
	}
	byType := make(map[code.Type]ReadoutPoint)
	var ahcSingle, ahcDual ReadoutPoint
	for _, p := range points {
		if p.Type == code.TypeArrangedHot {
			if p.DualRail {
				ahcDual = p
			} else {
				ahcSingle = p
			}
			continue
		}
		byType[p.Type] = p
		if p.SensableFraction < 0 || p.SensableFraction > 1 {
			t.Errorf("%v: sensable fraction %g out of range", p.Type, p.SensableFraction)
		}
		if p.MedianRatio <= 0 {
			t.Errorf("%v: non-positive median ratio", p.Type)
		}
	}
	tc, gc, bgc := byType[code.TypeTree], byType[code.TypeGray], byType[code.TypeBalancedGray]
	if gc.SensableFraction <= tc.SensableFraction {
		t.Errorf("analog ordering lost: GC %g <= TC %g", gc.SensableFraction, tc.SensableFraction)
	}
	if bgc.SensableFraction < gc.SensableFraction-0.05 {
		t.Errorf("BGC %g clearly below GC %g", bgc.SensableFraction, gc.SensableFraction)
	}
	if gc.MedianRatio <= tc.MedianRatio {
		t.Errorf("median ratios lost the ordering: GC %g <= TC %g", gc.MedianRatio, tc.MedianRatio)
	}
	// The dual-rail drive must recover the hot code's sensing margin.
	if ahcDual.SensableFraction <= ahcSingle.SensableFraction+0.2 {
		t.Errorf("dual rail recovery too small: %g vs %g",
			ahcDual.SensableFraction, ahcSingle.SensableFraction)
	}
	if ahcDual.SensableFraction < 0.8 {
		t.Errorf("dual-rail AHC only %g sensable", ahcDual.SensableFraction)
	}
}

func TestReadoutDefaultsAndRender(t *testing.T) {
	points, err := Readout(context.Background(), core.Config{}, 0, 1) // default trials
	if err != nil {
		t.Fatal(err)
	}
	out := RenderReadout(points)
	for _, want := range []string{"analog readout", "median on/off", "dual-rail", "DeHon"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
