package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/textplot"
)

// TreeFamilyLengths is the code-length grid of the tree-based panels of
// Figs. 7 and 8.
var TreeFamilyLengths = []int{6, 8, 10}

// HotFamilyLengths is the code-length grid of the hot-code panels of
// Figs. 7 and 8.
var HotFamilyLengths = []int{4, 6, 8}

// YieldPoint is one (code type, code length) evaluation of the 16 kbit
// crossbar platform.
type YieldPoint struct {
	Type    code.Type
	Length  int
	Yield   float64
	BitArea float64
	// Phi and AvgVariability give the fabrication-side costs of the same
	// design point.
	Phi            int
	AvgVariability float64
}

// sweepFamily evaluates one code family across a length grid on the default
// platform (overridable through cfg).
func sweepFamily(cfg core.Config, tp code.Type, lengths []int) ([]YieldPoint, error) {
	cfg.CodeType = tp
	var out []YieldPoint
	for _, m := range lengths {
		c := cfg
		c.CodeLength = m
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s M=%d: %w", tp, m, err)
		}
		out = append(out, YieldPoint{
			Type:           tp,
			Length:         m,
			Yield:          d.Yield(),
			BitArea:        d.BitArea(),
			Phi:            d.Phi,
			AvgVariability: d.AvgVariability,
		})
	}
	return out, nil
}

// Fig7 computes the crossbar yield versus code length for the paper's two
// panels: TC vs BGC over lengths 6/8/10 and HC vs AHC over lengths 4/6/8.
func Fig7(cfg core.Config) ([]YieldPoint, error) {
	var out []YieldPoint
	for _, panel := range []struct {
		tp      code.Type
		lengths []int
	}{
		{code.TypeTree, TreeFamilyLengths},
		{code.TypeBalancedGray, TreeFamilyLengths},
		{code.TypeHot, HotFamilyLengths},
		{code.TypeArrangedHot, HotFamilyLengths},
	} {
		pts, err := sweepFamily(cfg, panel.tp, panel.lengths)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// find returns the point for (tp, length), or nil.
func find(points []YieldPoint, tp code.Type, length int) *YieldPoint {
	for i := range points {
		if points[i].Type == tp && points[i].Length == length {
			return &points[i]
		}
	}
	return nil
}

// RenderFig7 renders the yield panels with the paper's comparison ratios.
func RenderFig7(points []YieldPoint) string {
	s := textplot.NewSeries("Fig. 7 — crossbar yield (addressable crosspoint fraction)", "%")
	tb := textplot.NewTable("", "code", "M", "yield", "Φ", "avg Σ [σ²]")
	for _, p := range points {
		s.Set(p.Type.String(), fmt.Sprintf("M=%d", p.Length), 100*p.Yield)
		tb.AddRowf(p.Type.String(), p.Length, fmt.Sprintf("%.1f%%", 100*p.Yield), p.Phi, p.AvgVariability/(0.05*0.05))
	}
	out := s.String() + "\n" + tb.String()
	if tc6, tc10 := find(points, code.TypeTree, 6), find(points, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		out += fmt.Sprintf("\nTC yield gain M 6->10: %+.0f%% (paper: ~40%%)", 100*(tc10.Yield-tc6.Yield)/tc6.Yield)
	}
	if hc4, hc8 := find(points, code.TypeHot, 4), find(points, code.TypeHot, 8); hc4 != nil && hc8 != nil {
		out += fmt.Sprintf("\nHC yield gain M 4->8:  %+.0f%% (paper: ~40%%)", 100*(hc8.Yield-hc4.Yield)/hc4.Yield)
	}
	if tc, bgc := find(points, code.TypeTree, 8), find(points, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		out += fmt.Sprintf("\nBGC vs TC at M=8:      %+.0f%% (paper: +42%%)", 100*(bgc.Yield-tc.Yield)/tc.Yield)
	}
	if hc, ahc := find(points, code.TypeHot, 8), find(points, code.TypeArrangedHot, 8); hc != nil && ahc != nil {
		out += fmt.Sprintf("\nAHC vs HC at M=8:      %+.0f%% (paper: +19%%)", 100*(ahc.Yield-hc.Yield)/hc.Yield)
	}
	return out + "\n"
}
