package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/par"
	"nwdec/internal/textplot"
)

// TreeFamilyLengths is the code-length grid of the tree-based panels of
// Figs. 7 and 8.
var TreeFamilyLengths = []int{6, 8, 10}

// HotFamilyLengths is the code-length grid of the hot-code panels of
// Figs. 7 and 8.
var HotFamilyLengths = []int{4, 6, 8}

// YieldPoint is one (code type, code length) evaluation of the 16 kbit
// crossbar platform.
type YieldPoint struct {
	Type    code.Type
	Length  int
	Yield   float64
	BitArea float64
	// Phi and AvgVariability give the fabrication-side costs of the same
	// design point.
	Phi            int
	AvgVariability float64
}

// familyPoint is one (code family, code length) unit of a panel grid.
type familyPoint struct {
	tp code.Type
	m  int
}

// familyPanel is one (family, length grid) panel of a figure.
type familyPanel struct {
	tp      code.Type
	lengths []int
}

// familyGrid flattens panels of (family, length grid) into evaluation units
// in presentation order.
func familyGrid(panels []familyPanel) []familyPoint {
	var units []familyPoint
	for _, panel := range panels {
		for _, m := range panel.lengths {
			units = append(units, familyPoint{tp: panel.tp, m: m})
		}
	}
	return units
}

// evalYieldPoints evaluates the design points of a panel grid on the worker
// pool. Each unit is a pure function of cfg, so the output order (and every
// value in it) is independent of the worker count. Cancelling ctx stops the
// evaluation and returns ctx's error.
func evalYieldPoints(ctx context.Context, cfg core.Config, units []familyPoint, workers int) ([]YieldPoint, error) {
	return par.Map(ctx, workers, units,
		func(_ context.Context, _ int, u familyPoint) (YieldPoint, error) {
			c := cfg
			c.CodeType = u.tp
			c.CodeLength = u.m
			d, err := core.NewDesign(c)
			if err != nil {
				return YieldPoint{}, fmt.Errorf("experiments: %s M=%d: %w", u.tp, u.m, err)
			}
			return YieldPoint{
				Type:           u.tp,
				Length:         u.m,
				Yield:          d.Yield(),
				BitArea:        d.BitArea(),
				Phi:            d.Phi,
				AvgVariability: d.AvgVariability,
			}, nil
		})
}

// Fig7 computes the crossbar yield versus code length for the paper's two
// panels: TC vs BGC over lengths 6/8/10 and HC vs AHC over lengths 4/6/8.
// It runs on the default worker pool.
func Fig7(cfg core.Config) ([]YieldPoint, error) {
	return Fig7Workers(context.Background(), cfg, 0)
}

// Fig7Workers is Fig7 with a cancellation context and an explicit worker
// count (<= 0 means GOMAXPROCS); the output is bit-identical at every
// worker count.
func Fig7Workers(ctx context.Context, cfg core.Config, workers int) ([]YieldPoint, error) {
	units := familyGrid([]familyPanel{
		{code.TypeTree, TreeFamilyLengths},
		{code.TypeBalancedGray, TreeFamilyLengths},
		{code.TypeHot, HotFamilyLengths},
		{code.TypeArrangedHot, HotFamilyLengths},
	})
	return evalYieldPoints(ctx, cfg, units, workers)
}

// yieldColumns is the shared schema of the Fig. 7/8 yield datasets.
func yieldColumns() []dataset.Column {
	return []dataset.Column{
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.Col("yield", dataset.Float),
		dataset.ColUnit("phi", "steps", dataset.Int),
		dataset.ColUnit("avgVariability", "σ_T²·V²", dataset.Float),
		dataset.ColUnit("bitArea", "nm²", dataset.Float),
	}
}

func addYieldRows(ds *dataset.Dataset, points []YieldPoint) {
	for _, p := range points {
		ds.AddRow(p.Type.String(), p.Length, p.Yield, p.Phi, p.AvgVariability, p.BitArea)
	}
}

// Fig7Dataset packages the yield figure as a structured dataset; its text
// rendering is RenderFig7.
func Fig7Dataset(points []YieldPoint) *dataset.Dataset {
	ds := dataset.New("fig7",
		"Fig. 7 — crossbar yield (addressable crosspoint fraction)",
		yieldColumns()...)
	addYieldRows(ds, points)
	if tc6, tc10 := find(points, code.TypeTree, 6), find(points, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		ds.Note("TC yield gain M 6->10: %+.0f%% (paper: ~40%%)", 100*(tc10.Yield-tc6.Yield)/tc6.Yield)
	}
	if hc4, hc8 := find(points, code.TypeHot, 4), find(points, code.TypeHot, 8); hc4 != nil && hc8 != nil {
		ds.Note("HC yield gain M 4->8:  %+.0f%% (paper: ~40%%)", 100*(hc8.Yield-hc4.Yield)/hc4.Yield)
	}
	if tc, bgc := find(points, code.TypeTree, 8), find(points, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		ds.Note("BGC vs TC at M=8:      %+.0f%% (paper: +42%%)", 100*(bgc.Yield-tc.Yield)/tc.Yield)
	}
	if hc, ahc := find(points, code.TypeHot, 8), find(points, code.TypeArrangedHot, 8); hc != nil && ahc != nil {
		ds.Note("AHC vs HC at M=8:      %+.0f%% (paper: +19%%)", 100*(ahc.Yield-hc.Yield)/hc.Yield)
	}
	ds.SetText(func() string { return RenderFig7(points) })
	return ds
}

// find returns the point for (tp, length), or nil.
func find(points []YieldPoint, tp code.Type, length int) *YieldPoint {
	for i := range points {
		if points[i].Type == tp && points[i].Length == length {
			return &points[i]
		}
	}
	return nil
}

// RenderFig7 renders the yield panels with the paper's comparison ratios.
func RenderFig7(points []YieldPoint) string {
	s := textplot.NewSeries("Fig. 7 — crossbar yield (addressable crosspoint fraction)", "%")
	tb := textplot.NewTable("", "code", "M", "yield", "Φ", "avg Σ [σ²]")
	for _, p := range points {
		s.Set(p.Type.String(), fmt.Sprintf("M=%d", p.Length), 100*p.Yield)
		tb.AddRowf(p.Type.String(), p.Length, fmt.Sprintf("%.1f%%", 100*p.Yield), p.Phi, p.AvgVariability/(0.05*0.05))
	}
	out := s.String() + "\n" + tb.String()
	if tc6, tc10 := find(points, code.TypeTree, 6), find(points, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		out += fmt.Sprintf("\nTC yield gain M 6->10: %+.0f%% (paper: ~40%%)", 100*(tc10.Yield-tc6.Yield)/tc6.Yield)
	}
	if hc4, hc8 := find(points, code.TypeHot, 4), find(points, code.TypeHot, 8); hc4 != nil && hc8 != nil {
		out += fmt.Sprintf("\nHC yield gain M 4->8:  %+.0f%% (paper: ~40%%)", 100*(hc8.Yield-hc4.Yield)/hc4.Yield)
	}
	if tc, bgc := find(points, code.TypeTree, 8), find(points, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		out += fmt.Sprintf("\nBGC vs TC at M=8:      %+.0f%% (paper: +42%%)", 100*(bgc.Yield-tc.Yield)/tc.Yield)
	}
	if hc, ahc := find(points, code.TypeHot, 8), find(points, code.TypeArrangedHot, 8); hc != nil && ahc != nil {
		out += fmt.Sprintf("\nAHC vs HC at M=8:      %+.0f%% (paper: +19%%)", 100*(ahc.Yield-hc.Yield)/hc.Yield)
	}
	return out + "\n"
}
