package experiments

import (
	"context"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

func TestFig5ReproducesPaperShape(t *testing.T) {
	rows, err := Fig5(Fig5N)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 logic rows, got %d", len(rows))
	}
	binary := rows[0]
	if binary.PhiTC != 2*Fig5N || binary.PhiGC != 2*Fig5N {
		t.Errorf("binary Φ must be 2N for both codes, got TC %d GC %d", binary.PhiTC, binary.PhiGC)
	}
	for _, r := range rows[1:] {
		if r.PhiTC <= 2*Fig5N {
			t.Errorf("%s: tree code should pay a multi-valued overhead, Φ = %d", r.Logic, r.PhiTC)
		}
		if r.PhiGC >= r.PhiTC {
			t.Errorf("%s: Gray Φ %d not below tree Φ %d", r.Logic, r.PhiGC, r.PhiTC)
		}
		if r.PhiGC > 2*Fig5N+2 {
			t.Errorf("%s: Gray should nearly cancel the overhead, Φ = %d", r.Logic, r.PhiGC)
		}
	}
	saving := Fig5GraySaving(rows)
	if saving < 0.10 || saving > 0.30 {
		t.Errorf("GC saving %.0f%% far from the paper's 17%%", 100*saving)
	}
}

func TestFig5Validation(t *testing.T) {
	if _, err := Fig5(0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestMinReflectedLength(t *testing.T) {
	cases := []struct{ base, n, want int }{
		{2, 10, 8}, {3, 10, 6}, {4, 10, 4}, {2, 2, 2}, {2, 3, 4},
	}
	for _, c := range cases {
		if got := minReflectedLength(c.base, c.n); got != c.want {
			t.Errorf("minReflectedLength(%d, %d) = %d, want %d", c.base, c.n, got, c.want)
		}
	}
}

func TestRenderFig5(t *testing.T) {
	rows, _ := Fig5(Fig5N)
	out := RenderFig5(rows)
	for _, want := range []string{"Fig. 5", "ternary", "paper: 17%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in render", want)
		}
	}
}

func TestFig6SurfacesShape(t *testing.T) {
	surfaces, err := Fig6(Fig6N, []int{8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(surfaces) != 6 { // 3 code types x 2 lengths
		t.Fatalf("want 6 surfaces, got %d", len(surfaces))
	}
	byKey := make(map[string]Fig6Surface)
	for _, s := range surfaces {
		byKey[s.Type.String()+"-"+itoa(s.Length)] = s
		if len(s.Root) != Fig6N || len(s.Root[0]) != s.Length {
			t.Fatalf("%v L=%d: surface is %dx%d", s.Type, s.Length, len(s.Root), len(s.Root[0]))
		}
	}
	// The paper's orderings: GC and BGC below TC at every length; BGC has
	// the flattest (smallest max) distribution; longer codes reduce the
	// average variability for every type.
	for _, m := range []string{"8", "10"} {
		tc, gc, bgc := byKey["TC-"+m], byKey["GC-"+m], byKey["BGC-"+m]
		if gc.AvgVariability >= tc.AvgVariability {
			t.Errorf("L=%s: GC avg %g not below TC %g", m, gc.AvgVariability, tc.AvgVariability)
		}
		if bgc.MaxNu > gc.MaxNu {
			t.Errorf("L=%s: BGC max ν %d above GC %d", m, bgc.MaxNu, gc.MaxNu)
		}
	}
	for _, tp := range []string{"TC", "GC", "BGC"} {
		if byKey[tp+"-10"].AvgVariability >= byKey[tp+"-8"].AvgVariability {
			t.Errorf("%s: longer code did not reduce average variability", tp)
		}
	}
	saving := Fig6VariabilitySaving(surfaces)
	if saving <= 0.05 {
		t.Errorf("variability saving %.0f%% lost the paper's direction", 100*saving)
	}
}

func TestRenderFig6(t *testing.T) {
	surfaces, _ := Fig6(Fig6N, []int{8})
	out := RenderFig6(surfaces)
	for _, want := range []string{"Fig. 6", "TC (L=8)", "BGC (L=8)", "paper: 18%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig7PaperShape(t *testing.T) {
	points, err := Fig7(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 { // TC/BGC x 3 + HC/AHC x 3
		t.Fatalf("want 12 points, got %d", len(points))
	}
	// Yield grows with code length for every family on the grid.
	for _, tp := range []code.Type{code.TypeTree, code.TypeBalancedGray} {
		prev := 0.0
		for _, m := range TreeFamilyLengths {
			p := find(points, tp, m)
			if p == nil {
				t.Fatalf("missing %v M=%d", tp, m)
			}
			if p.Yield < prev {
				t.Errorf("%v: yield dropped at M=%d", tp, m)
			}
			prev = p.Yield
		}
	}
	// Optimized codes beat their plain versions at every common length.
	for _, m := range TreeFamilyLengths {
		if find(points, code.TypeBalancedGray, m).Yield <= find(points, code.TypeTree, m).Yield {
			t.Errorf("BGC not above TC at M=%d", m)
		}
	}
	for _, m := range HotFamilyLengths {
		if find(points, code.TypeArrangedHot, m).Yield <= find(points, code.TypeHot, m).Yield {
			t.Errorf("AHC not above HC at M=%d", m)
		}
	}
	// All yields inside the plausible band of Fig. 7.
	for _, p := range points {
		if p.Yield < 0.2 || p.Yield > 0.99 {
			t.Errorf("%v M=%d: yield %.2f outside plausible band", p.Type, p.Length, p.Yield)
		}
	}
}

func TestRenderFig7(t *testing.T) {
	points, _ := Fig7(core.Config{})
	out := RenderFig7(points)
	for _, want := range []string{"Fig. 7", "BGC vs TC at M=8", "paper: +42%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig8PaperShape(t *testing.T) {
	points, err := Fig8(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 { // 3 tree families x 3 + 2 hot families x 3
		t.Fatalf("want 15 points, got %d", len(points))
	}
	// Tree-family area decreases monotonically to M=10 (the paper's 51%
	// saving channel).
	for _, tp := range []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray} {
		if find(points, tp, 10).BitArea >= find(points, tp, 6).BitArea {
			t.Errorf("%v: bit area did not shrink from M=6 to M=10", tp)
		}
	}
	// Hot family: best at M=6, slightly worse beyond (paper's Fig. 8).
	for _, tp := range []code.Type{code.TypeHot, code.TypeArrangedHot} {
		if find(points, tp, 6).BitArea >= find(points, tp, 4).BitArea {
			t.Errorf("%v: M=6 not better than M=4", tp)
		}
		if find(points, tp, 8).BitArea < find(points, tp, 6).BitArea {
			t.Errorf("%v: area kept shrinking beyond M=6", tp)
		}
	}
	// Ordering BGC <= GC <= TC at every tree length.
	for _, m := range TreeFamilyLengths {
		tc := find(points, code.TypeTree, m).BitArea
		gc := find(points, code.TypeGray, m).BitArea
		bgc := find(points, code.TypeBalancedGray, m).BitArea
		if !(bgc <= gc && gc <= tc) {
			t.Errorf("M=%d: area ordering violated: TC %g GC %g BGC %g", m, tc, gc, bgc)
		}
	}
	// The global winner is an optimized code with a bit area near the
	// paper's 169-175 nm².
	min := Fig8MinBitArea(points)
	if min.Type != code.TypeBalancedGray && min.Type != code.TypeArrangedHot {
		t.Errorf("global minimum won by %v", min.Type)
	}
	if min.BitArea < 120 || min.BitArea > 300 {
		t.Errorf("minimum bit area %g nm² far from the paper's ~170 nm²", min.BitArea)
	}
	best := Fig8Best(points)
	if len(best) != 5 {
		t.Errorf("Fig8Best covered %d families", len(best))
	}
}

func TestRenderFig8(t *testing.T) {
	points, _ := Fig8(core.Config{})
	out := RenderFig8(points)
	for _, want := range []string{"Fig. 8", "smallest bit area", "paper: 51%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestHeadlineAllClaimsHold(t *testing.T) {
	claims, err := Headline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 6 {
		t.Fatalf("want 6 claims, got %d", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %q does not hold: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
	out := RenderHeadline(claims)
	if !strings.Contains(out, "paper") || !strings.Contains(out, "yes") {
		t.Error("headline render incomplete")
	}
}

func TestMonteCarloTracksAnalytic(t *testing.T) {
	points, err := MonteCarlo(core.Config{}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 MC points, got %d", len(points))
	}
	for _, p := range points {
		diff := p.MC - p.Analytic
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.15 {
			t.Errorf("%v M=%d: MC %.2f vs analytic %.2f", p.Type, p.Length, p.MC, p.Analytic)
		}
	}
	out := RenderMonteCarlo(points)
	if !strings.Contains(out, "Monte-Carlo") {
		t.Error("MC render incomplete")
	}
}

func TestRunnerAllNames(t *testing.T) {
	ctx := context.Background()
	r := NewRunner()
	r.MCTrials = 1
	for _, name := range r.Names() {
		ds, err := r.Run(ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Text()) == 0 {
			t.Errorf("%s produced empty output", name)
		}
		if ds.Meta.Experiment != name {
			t.Errorf("%s: dataset records experiment %q", name, ds.Meta.Experiment)
		}
		if ds.Meta.ConfigHash == "" {
			t.Errorf("%s: dataset missing config hash", name)
		}
	}
	if _, err := r.Run(ctx, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunnerRegistryComplete pins the registry contract: Names and Run
// derive from the same table, every name is unique, and the mc alias
// resolves to the montecarlo entry.
func TestRunnerRegistryComplete(t *testing.T) {
	r := NewRunner()
	names := r.Names()
	if len(names) != len(registry) {
		t.Fatalf("Names lists %d experiments, registry has %d", len(names), len(registry))
	}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name != registry[i].name {
			t.Errorf("Names[%d] = %q, registry[%d] = %q", i, name, i, registry[i].name)
		}
		if seen[name] {
			t.Errorf("duplicate experiment name %q", name)
		}
		seen[name] = true
	}
	for alias, canon := range aliases {
		if seen[alias] {
			t.Errorf("alias %q shadows a registry name", alias)
		}
		if !seen[canon] {
			t.Errorf("alias %q points at unknown experiment %q", alias, canon)
		}
	}
	r.MCTrials = 1
	ds, err := r.Run(context.Background(), "mc")
	if err != nil {
		t.Fatalf("mc alias: %v", err)
	}
	if ds.Meta.Experiment != "montecarlo" {
		t.Errorf("mc alias resolved to %q", ds.Meta.Experiment)
	}
}

// TestZeroValueRunner pins the zero-value contract: &Runner{} works and is
// equivalent to NewRunner(), with the documented defaults applied.
func TestZeroValueRunner(t *testing.T) {
	var zero Runner
	eff := zero.effective()
	if eff.MCTrials != DefaultMCTrials {
		t.Errorf("zero MCTrials -> %d, want %d", eff.MCTrials, DefaultMCTrials)
	}
	if eff.Seed != DefaultSeed {
		t.Errorf("zero Seed -> %d, want %d", eff.Seed, DefaultSeed)
	}
	if eff.Workers != 0 {
		t.Errorf("zero Workers -> %d, want 0 (GOMAXPROCS)", eff.Workers)
	}
	ds, err := zero.Run(context.Background(), "fig5")
	if err != nil {
		t.Fatalf("zero-value Runner: %v", err)
	}
	fromNew, err := NewRunner().Run(context.Background(), "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Text() != fromNew.Text() {
		t.Error("zero-value Runner differs from NewRunner()")
	}
}

func TestRunnerRunAll(t *testing.T) {
	ctx := context.Background()
	r := NewRunner()
	r.MCTrials = 1
	dss, err := r.RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(dss) != len(names) {
		t.Fatalf("RunAll returned %d datasets for %d experiments", len(dss), len(names))
	}
	for i, ds := range dss {
		if ds.Meta.Experiment != names[i] {
			t.Errorf("dataset %d is %q, want %q", i, ds.Meta.Experiment, names[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestFig6HotCompanion(t *testing.T) {
	surfaces, err := Fig6Hot(Fig6N, []int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(surfaces) != 4 {
		t.Fatalf("want 4 surfaces, got %d", len(surfaces))
	}
	byKey := make(map[string]Fig6Surface)
	for _, s := range surfaces {
		byKey[s.Type.String()+"-"+itoa(s.Length)] = s
	}
	// The paper's "similar results" claim: AHC below HC at every length,
	// with a flatter distribution, and longer codes reducing the average.
	for _, m := range []string{"6", "8"} {
		hc, ahc := byKey["HC-"+m], byKey["AHC-"+m]
		if ahc.AvgVariability >= hc.AvgVariability {
			t.Errorf("L=%s: AHC avg %g not below HC %g", m, ahc.AvgVariability, hc.AvgVariability)
		}
		if ahc.MaxNu >= hc.MaxNu {
			t.Errorf("L=%s: AHC max ν %d not below HC %d", m, ahc.MaxNu, hc.MaxNu)
		}
	}
	for _, tp := range []string{"HC", "AHC"} {
		if byKey[tp+"-8"].AvgVariability >= byKey[tp+"-6"].AvgVariability {
			t.Errorf("%s: longer code did not reduce average variability", tp)
		}
	}
	if _, err := Fig6Hot(0, []int{6}); err == nil {
		t.Error("N=0 accepted")
	}
	out := RenderFig6Hot(surfaces)
	if !strings.Contains(out, "hot-code variability") || !strings.Contains(out, "AHC (L=8)") {
		t.Error("render incomplete")
	}
}
