package experiments

import (
	"fmt"
	"math"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/physics"
	"nwdec/internal/textplot"
	"nwdec/internal/yield"
)

// TemperaturePoint is the yield of a 300 K-designed decoder operated at one
// temperature.
type TemperaturePoint struct {
	// TempK is the operating temperature in kelvin.
	TempK float64
	// WorstDrift is the largest threshold-voltage drift across the logic
	// levels, in volts: |V_T(T) - V_T(300 K)| at the fabricated dopings.
	WorstDrift float64
	// Yield is the cave yield with the drift consuming addressability
	// margin.
	Yield float64
}

// Temperature evaluates the thermal robustness of the BGC M=10 decoder:
// the doping levels are frozen at the 300 K design, then the threshold drift
// at each operating temperature is computed from the device physics and
// subtracted from the addressing margin as a systematic error. This is an
// extension beyond the paper, which evaluates at a single temperature.
func Temperature(cfg core.Config, temps []float64) ([]TemperaturePoint, error) {
	if len(temps) == 0 {
		temps = []float64{250, 300, 350, 400}
	}
	cfg.CodeType = code.TypeBalancedGray
	cfg.CodeLength = 10
	design, err := core.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	base, ok := design.Config.Model.(*physics.PhysicalModel)
	if !ok {
		return nil, fmt.Errorf("experiments: temperature study needs the physical threshold model")
	}
	dopings := design.Quantizer.DopingLevels()
	var out []TemperaturePoint
	for _, tempK := range temps {
		hot, err := base.AtTemperature(tempK)
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for k, nd := range dopings {
			drift := math.Abs(hot.VT(nd) - design.Quantizer.VTOf(k))
			if drift > worst {
				worst = drift
			}
		}
		margin := design.Analyzer.Margin - worst
		pt := TemperaturePoint{TempK: tempK, WorstDrift: worst}
		if margin > 0 {
			a := yield.Analyzer{SigmaT: design.Config.SigmaT, Margin: margin}
			pt.Yield = a.AnalyzeCrossbar(design.Plan, design.Layout).Yield
		}
		out = append(out, pt)
	}
	return out, nil
}

// TemperatureDataset packages the thermal robustness study as a structured
// dataset; its text rendering is RenderTemperature.
func TemperatureDataset(points []TemperaturePoint) *dataset.Dataset {
	ds := dataset.New("temperature",
		"Extension — thermal robustness of the 300 K design (BGC, M=10)",
		dataset.ColUnit("tempK", "K", dataset.Float),
		dataset.ColUnit("worstDrift", "V", dataset.Float),
		dataset.Col("yield", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.TempK, p.WorstDrift, p.Yield)
	}
	ds.Note("Threshold drift with temperature consumes addressing margin as a " +
		"systematic error; the decoder tolerates moderate excursions around " +
		"the design point.")
	ds.SetText(func() string { return RenderTemperature(points) })
	return ds
}

// RenderTemperature renders the thermal robustness table.
func RenderTemperature(points []TemperaturePoint) string {
	tb := textplot.NewTable(
		"Extension — thermal robustness of the 300 K design (BGC, M=10)",
		"T [K]", "worst V_T drift [mV]", "yield")
	for _, p := range points {
		tb.AddRowf(fmt.Sprintf("%.0f", p.TempK),
			fmt.Sprintf("%.0f", 1000*p.WorstDrift),
			fmt.Sprintf("%.1f%%", 100*p.Yield))
	}
	return tb.String() +
		"\nThreshold drift with temperature consumes addressing margin as a\n" +
		"systematic error; the decoder tolerates moderate excursions around\n" +
		"the design point but needs temperature-compensated mesowire drive\n" +
		"for wide industrial ranges.\n"
}
