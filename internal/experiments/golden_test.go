package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden dataset files")

// TestGoldenDatasets pins the serialized JSON and CSV forms of the four
// paper-figure experiments. The goldens are the data contract of the
// pipeline: any change to the figure values, the column schema or the
// serialization itself shows up as a diff here. Run with -update to accept
// an intentional change.
//
// Each experiment runs at two worker counts and must match the same golden
// bytes, pinning the worker-count independence of the serialized forms.
func TestGoldenDatasets(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"fig5", "fig7", "fig8", "headline"} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			r := NewRunner()
			r.Workers = workers
			ds, err := r.Run(ctx, name)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", name, workers, err)
			}
			js, err := ds.JSON()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+".json", js, workers)
			checkGolden(t, name+".csv", []byte(ds.CSV()), workers)
		}
	}
}

func checkGolden(t *testing.T, file string, got []byte, workers int) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden && workers == 1 {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (run with -update to create)", file, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s (workers=%d) differs from golden; run with -update if intended.\ngot:\n%s\nwant:\n%s",
			file, workers, got, want)
	}
}
