package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

// MCPoint cross-validates the analytic yield model against the functional
// Monte-Carlo crossbar simulator for one design point.
type MCPoint struct {
	Type     code.Type
	Length   int
	Analytic float64 // analytic crosspoint yield Y²
	MC       float64 // Monte-Carlo usable crosspoint fraction
	Trials   int
}

// MonteCarlo fabricates full crossbar memories with the functional simulator
// and compares their usable crosspoint fraction against the analytic
// Y² prediction. This experiment is the validation of the reproduction's
// statistical platform (it has no direct counterpart figure in the paper,
// which used the analytic model only).
func MonteCarlo(cfg core.Config, trials int, seed uint64) ([]MCPoint, error) {
	if trials <= 0 {
		trials = 4
	}
	rng := stats.NewRNG(seed)
	var out []MCPoint
	for _, pt := range []struct {
		tp code.Type
		m  int
	}{
		{code.TypeTree, 8},
		{code.TypeBalancedGray, 10},
		{code.TypeArrangedHot, 6},
	} {
		c := cfg
		c.CodeType = pt.tp
		c.CodeLength = pt.m
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, err
		}
		dec, err := crossbar.NewDecoder(d.Plan, d.Quantizer)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			rows, err := crossbar.BuildLayer(dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng)
			if err != nil {
				return nil, err
			}
			cols, err := crossbar.BuildLayer(dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng)
			if err != nil {
				return nil, err
			}
			sum += crossbar.NewMemory(rows, cols).UsableFraction()
		}
		out = append(out, MCPoint{
			Type:     pt.tp,
			Length:   pt.m,
			Analytic: d.Yield() * d.Yield(),
			MC:       sum / float64(trials),
			Trials:   trials,
		})
	}
	return out, nil
}

// RenderMonteCarlo renders the validation table.
func RenderMonteCarlo(points []MCPoint) string {
	tb := textplot.NewTable(
		"Monte-Carlo validation — functional crossbar memory vs analytic model",
		"code", "M", "analytic Y²", "MC usable fraction", "trials")
	for _, p := range points {
		tb.AddRowf(p.Type.String(), p.Length,
			fmt.Sprintf("%.1f%%", 100*p.Analytic),
			fmt.Sprintf("%.1f%%", 100*p.MC), p.Trials)
	}
	return tb.String()
}
