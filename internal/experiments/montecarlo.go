package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

// MCPoint cross-validates the analytic yield model against the functional
// Monte-Carlo crossbar simulator for one design point.
type MCPoint struct {
	Type     code.Type
	Length   int
	Analytic float64 // analytic crosspoint yield Y²
	MC       float64 // Monte-Carlo usable crosspoint fraction
	Trials   int
}

// mcDesign is one design point of the validation experiment.
type mcDesign struct {
	tp code.Type
	m  int
}

// mcDesignPoints are the validation design points: one per arrangement
// family class.
var mcDesignPoints = []mcDesign{
	{code.TypeTree, 8},
	{code.TypeBalancedGray, 10},
	{code.TypeArrangedHot, 6},
}

// MonteCarlo fabricates full crossbar memories with the functional simulator
// and compares their usable crosspoint fraction against the analytic
// Y² prediction. This experiment is the validation of the reproduction's
// statistical platform (it has no direct counterpart figure in the paper,
// which used the analytic model only). It runs on the default worker pool.
func MonteCarlo(cfg core.Config, trials int, seed uint64) ([]MCPoint, error) {
	return MonteCarloWorkers(context.Background(), cfg, trials, seed, 0)
}

// MonteCarloWorkers is MonteCarlo with a cancellation context and an
// explicit worker count (<= 0 means GOMAXPROCS). Every (design point,
// trial) unit draws from its own jump substream of the seed and the
// per-point averages are reduced in trial order, so the output is
// bit-identical at every worker count.
func MonteCarloWorkers(ctx context.Context, cfg core.Config, trials int, seed uint64, workers int) ([]MCPoint, error) {
	if trials <= 0 {
		trials = 4
	}

	type bundle struct {
		d   *core.Design
		dec *crossbar.Decoder
	}
	bundles, err := par.Map(ctx, workers, mcDesignPoints,
		func(_ context.Context, _ int, pt mcDesign) (bundle, error) {
			c := cfg
			c.CodeType = pt.tp
			c.CodeLength = pt.m
			d, err := core.NewDesign(c)
			if err != nil {
				return bundle{}, err
			}
			dec, err := crossbar.NewDecoder(d.Plan, d.Quantizer)
			if err != nil {
				return bundle{}, err
			}
			return bundle{d: d, dec: dec}, nil
		})
	if err != nil {
		return nil, err
	}

	// One substream per (design point, trial) unit; units never share RNG
	// state, so execution order cannot influence the samples. The fan-out is
	// lazy: each scheduling chunk materializes only its own block of
	// substreams, bit-identical to the eager Streams expansion.
	units := len(mcDesignPoints) * trials
	sub := stats.NewRNG(seed).Substreams()
	// Trial and substream accounting: the counts are pure functions of the
	// experiment parameters, so the snapshot stays identical at every
	// worker count. Substream u drives (design point u/trials, trial
	// u%trials).
	reg := obs.From(ctx)
	reg.Counter("montecarlo/trials").Add(int64(units))
	reg.Gauge("montecarlo/rng_substreams").Set(float64(units))
	fracs := make([]float64, units)
	err = par.ForEachChunks(ctx, workers, units, 0,
		func(cctx context.Context, lo, hi int) error {
			rngs := sub.Block(uint64(lo), hi-lo)
			for u := lo; u < hi; u++ {
				if err := cctx.Err(); err != nil {
					return err
				}
				b := bundles[u/trials]
				rng := rngs[u-lo]
				// Caves stay serial here: the (point, trial) fan-out above
				// already saturates the pool.
				rows, err := crossbar.BuildLayerWorkers(cctx, b.dec, b.d.Layout.Contact, b.d.Layout.WiresPerLayer, b.d.Config.SigmaT, rng, 1)
				if err != nil {
					return err
				}
				cols, err := crossbar.BuildLayerWorkers(cctx, b.dec, b.d.Layout.Contact, b.d.Layout.WiresPerLayer, b.d.Config.SigmaT, rng, 1)
				if err != nil {
					return err
				}
				fracs[u] = crossbar.NewMemory(rows, cols).UsableFraction()
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	out := make([]MCPoint, len(mcDesignPoints))
	for p, b := range bundles {
		sum := 0.0
		for t := 0; t < trials; t++ {
			sum += fracs[p*trials+t]
		}
		out[p] = MCPoint{
			Type:     mcDesignPoints[p].tp,
			Length:   mcDesignPoints[p].m,
			Analytic: b.d.Yield() * b.d.Yield(),
			MC:       sum / float64(trials),
			Trials:   trials,
		}
	}
	return out, nil
}

// MonteCarloDataset packages the validation experiment as a structured
// dataset; its text rendering is RenderMonteCarlo.
func MonteCarloDataset(points []MCPoint, seed uint64) *dataset.Dataset {
	ds := dataset.New("montecarlo",
		"Monte-Carlo validation — functional crossbar memory vs analytic model",
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.Col("analyticY2", dataset.Float),
		dataset.Col("mcUsableFraction", dataset.Float),
		dataset.Col("trials", dataset.Int),
	)
	for _, p := range points {
		ds.AddRow(p.Type.String(), p.Length, p.Analytic, p.MC, p.Trials)
	}
	ds.Meta.Seed = seed
	if len(points) > 0 {
		ds.Meta.Trials = points[0].Trials
	}
	ds.SetText(func() string { return RenderMonteCarlo(points) })
	return ds
}

// RenderMonteCarlo renders the validation table.
func RenderMonteCarlo(points []MCPoint) string {
	tb := textplot.NewTable(
		"Monte-Carlo validation — functional crossbar memory vs analytic model",
		"code", "M", "analytic Y²", "MC usable fraction", "trials")
	for _, p := range points {
		tb.AddRowf(p.Type.String(), p.Length,
			fmt.Sprintf("%.1f%%", 100*p.Analytic),
			fmt.Sprintf("%.1f%%", 100*p.MC), p.Trials)
	}
	return tb.String()
}
