package experiments

import (
	"strings"
	"testing"

	"nwdec/internal/core"
	"nwdec/internal/physics"
)

func TestTemperatureStudy(t *testing.T) {
	points, err := Temperature(core.Config{}, []float64{250, 300, 350, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("want 4 points, got %d", len(points))
	}
	var at300 TemperaturePoint
	for _, p := range points {
		if p.TempK == 300 {
			at300 = p
		}
	}
	if at300.WorstDrift > 1e-9 {
		t.Errorf("drift at the design temperature = %g, want 0", at300.WorstDrift)
	}
	for _, p := range points {
		if p.TempK == 300 {
			continue
		}
		if p.WorstDrift <= 0 {
			t.Errorf("T=%g: no drift off the design point", p.TempK)
		}
		if p.Yield >= at300.Yield {
			t.Errorf("T=%g: yield %g not below design-point yield %g", p.TempK, p.Yield, at300.Yield)
		}
	}
	// Hotter means more drift on the high side.
	if points[3].WorstDrift <= points[2].WorstDrift {
		t.Error("drift not growing with temperature above 300 K")
	}
	out := RenderTemperature(points)
	if !strings.Contains(out, "thermal robustness") || !strings.Contains(out, "drift") {
		t.Error("render incomplete")
	}
}

func TestTemperatureDefaultGrid(t *testing.T) {
	points, err := Temperature(core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Errorf("default grid has %d points", len(points))
	}
}

func TestTemperatureNeedsPhysicalModel(t *testing.T) {
	cfg := core.Config{Model: physics.PaperExampleTable(), VMax: 0.6}
	if _, err := Temperature(cfg, []float64{300}); err == nil {
		t.Error("table model accepted for a temperature study")
	}
}

func TestTemperatureRejectsExtremes(t *testing.T) {
	if _, err := Temperature(core.Config{}, []float64{100}); err == nil {
		t.Error("out-of-validity temperature accepted")
	}
}

func TestAtTemperatureModel(t *testing.T) {
	m := physics.DefaultPhysicalModel()
	hot, err := m.AtTemperature(400)
	if err != nil {
		t.Fatal(err)
	}
	// Higher temperature raises n_i, lowering psi_B and the threshold.
	if hot.VT(2e18) >= m.VT(2e18) {
		t.Errorf("threshold did not drop at 400 K: %g vs %g", hot.VT(2e18), m.VT(2e18))
	}
	same, err := m.AtTemperature(300)
	if err != nil {
		t.Fatal(err)
	}
	if d := same.VT(2e18) - m.VT(2e18); d > 1e-6 || d < -1e-6 {
		t.Errorf("300 K round trip drifted by %g", d)
	}
	if _, err := m.AtTemperature(1000); err == nil {
		t.Error("1000 K accepted")
	}
}
