package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/textplot"
)

// Claim is one paper-vs-measured headline number.
type Claim struct {
	Name     string
	Paper    string
	Measured string
	// Holds reports whether the measured value preserves the paper's
	// qualitative claim (direction and rough magnitude).
	Holds bool
}

// Headline evaluates the summary claims of the paper's abstract and
// conclusion against the reproduction and returns one Claim per number. It
// runs on the default worker pool.
func Headline(cfg core.Config) ([]Claim, error) {
	return HeadlineWorkers(context.Background(), cfg, 0)
}

// HeadlineWorkers is Headline with a cancellation context and an explicit
// worker count for the underlying figure evaluations (<= 0 means
// GOMAXPROCS); the output is bit-identical at every worker count.
func HeadlineWorkers(ctx context.Context, cfg core.Config, workers int) ([]Claim, error) {
	var claims []Claim

	// 1. Gray arrangement reduces fabrication complexity by 17% on average
	//    (multi-valued logic, Fig. 5).
	f5, err := Fig5(Fig5N)
	if err != nil {
		return nil, err
	}
	fabSaving := Fig5GraySaving(f5)
	claims = append(claims, Claim{
		Name:     "GC fabrication-complexity saving",
		Paper:    "17%",
		Measured: fmt.Sprintf("%.0f%%", 100*fabSaving),
		Holds:    fabSaving > 0.08 && fabSaving < 0.35,
	})

	// 2. Gray codes reduce the average variability by 18% (Fig. 6).
	f6, err := Fig6Workers(ctx, Fig6N, []int{8, 10}, workers)
	if err != nil {
		return nil, err
	}
	varSaving := Fig6VariabilitySaving(f6)
	claims = append(claims, Claim{
		Name:     "GC/BGC variability saving",
		Paper:    "18%",
		Measured: fmt.Sprintf("%.0f%%", 100*varSaving),
		Holds:    varSaving > 0.08 && varSaving < 0.40,
	})

	// 3. Yield improves ~40% by adding code-length redundancy (Fig. 7).
	f7, err := Fig7Workers(ctx, cfg, workers)
	if err != nil {
		return nil, err
	}
	var lengthGain float64
	if hc4, hc8 := find(f7, code.TypeHot, 4), find(f7, code.TypeHot, 8); hc4 != nil && hc8 != nil {
		lengthGain = (hc8.Yield - hc4.Yield) / hc4.Yield
	}
	claims = append(claims, Claim{
		Name:     "yield gain from code-length redundancy (HC 4->8)",
		Paper:    "~40%",
		Measured: fmt.Sprintf("%+.0f%%", 100*lengthGain),
		Holds:    lengthGain > 0.15,
	})

	// 4. Optimized code types gain 19-42% yield (BGC vs TC, AHC vs HC at
	//    M=8).
	var bgcGain, ahcGain float64
	if tc, bgc := find(f7, code.TypeTree, 8), find(f7, code.TypeBalancedGray, 8); tc != nil && bgc != nil {
		bgcGain = (bgc.Yield - tc.Yield) / tc.Yield
	}
	if hc, ahc := find(f7, code.TypeHot, 8), find(f7, code.TypeArrangedHot, 8); hc != nil && ahc != nil {
		ahcGain = (ahc.Yield - hc.Yield) / hc.Yield
	}
	claims = append(claims, Claim{
		Name:     "optimized-code yield gain (BGC vs TC, AHC vs HC, M=8)",
		Paper:    "+42% / +19%",
		Measured: fmt.Sprintf("%+.0f%% / %+.0f%%", 100*bgcGain, 100*ahcGain),
		Holds:    bgcGain > 0.10 && ahcGain > 0.05,
	})

	// 5. Bit-area saving of 51% from lengthening the tree code 6->10, and
	//    the minimum effective bit area around 169-175 nm² (Fig. 8).
	f8, err := Fig8Workers(ctx, cfg, workers)
	if err != nil {
		return nil, err
	}
	var areaSaving float64
	if tc6, tc10 := find(f8, code.TypeTree, 6), find(f8, code.TypeTree, 10); tc6 != nil && tc10 != nil {
		areaSaving = (tc6.BitArea - tc10.BitArea) / tc6.BitArea
	}
	claims = append(claims, Claim{
		Name:     "TC bit-area saving M 6->10",
		Paper:    "51%",
		Measured: fmt.Sprintf("%.0f%%", 100*areaSaving),
		Holds:    areaSaving > 0.15,
	})
	min := Fig8MinBitArea(f8)
	claims = append(claims, Claim{
		Name:     "smallest effective bit area",
		Paper:    "169 nm² (BGC) / 175 nm² (AHC)",
		Measured: fmt.Sprintf("%.0f nm² (%s M=%d)", min.BitArea, min.Type, min.Length),
		Holds: min.BitArea > 100 && min.BitArea < 350 &&
			(min.Type == code.TypeBalancedGray || min.Type == code.TypeArrangedHot),
	})
	return claims, nil
}

// HeadlineDataset packages the paper-vs-measured table as a structured
// dataset; its text rendering is RenderHeadline.
func HeadlineDataset(claims []Claim) *dataset.Dataset {
	ds := dataset.New("headline", "Headline claims — paper vs reproduction",
		dataset.Col("claim", dataset.String),
		dataset.Col("paper", dataset.String),
		dataset.Col("measured", dataset.String),
		dataset.Col("holds", dataset.Bool),
	)
	for _, c := range claims {
		ds.AddRow(c.Name, c.Paper, c.Measured, c.Holds)
	}
	ds.SetText(func() string { return RenderHeadline(claims) })
	return ds
}

// RenderHeadline renders the paper-vs-measured table.
func RenderHeadline(claims []Claim) string {
	tb := textplot.NewTable("Headline claims — paper vs reproduction", "claim", "paper", "measured", "holds")
	for _, c := range claims {
		holds := "yes"
		if !c.Holds {
			holds = "NO"
		}
		tb.AddRow(c.Name, c.Paper, c.Measured, holds)
	}
	return tb.String()
}
