package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nwdec/internal/core"
)

// Runner executes named experiments and returns their text reports.
type Runner struct {
	// Cfg is the base platform configuration shared by all experiments.
	Cfg core.Config
	// MCTrials is the Monte-Carlo repetition count for the validation
	// experiment.
	MCTrials int
	// Seed drives the Monte-Carlo experiment.
	Seed uint64
	// Workers bounds the worker pool of every parallelized experiment
	// (0 = GOMAXPROCS, 1 = serial). Experiment output is bit-identical at
	// every worker count.
	Workers int
}

// NewRunner returns a Runner on the paper's default platform.
func NewRunner() *Runner {
	return &Runner{Cfg: core.Config{}, MCTrials: 4, Seed: 2009}
}

// Names lists the available experiment names in presentation order: first
// the paper's figures, then the reproduction's ablations and extensions.
func (r *Runner) Names() []string {
	return []string{
		"fig5", "fig6", "fig6hot", "fig7", "fig8", "headline", "montecarlo",
		"arrangement", "margin", "model", "boundary", "multivalued", "scaling", "noise", "readout", "temperature", "optarrange", "masks", "spares", "sneak",
	}
}

// Run executes one experiment by name and returns its rendered report.
func (r *Runner) Run(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "fig5":
		rows, err := Fig5(Fig5N)
		if err != nil {
			return "", err
		}
		return RenderFig5(rows), nil
	case "fig6":
		surfaces, err := Fig6Workers(Fig6N, []int{8, 10}, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderFig6(surfaces), nil
	case "fig6hot":
		surfaces, err := Fig6HotWorkers(Fig6N, []int{6, 8}, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderFig6Hot(surfaces), nil
	case "fig7":
		points, err := Fig7Workers(r.Cfg, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderFig7(points), nil
	case "fig8":
		points, err := Fig8Workers(r.Cfg, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderFig8(points), nil
	case "headline":
		claims, err := Headline(r.Cfg)
		if err != nil {
			return "", err
		}
		return RenderHeadline(claims), nil
	case "montecarlo", "mc":
		points, err := MonteCarloWorkers(r.Cfg, r.MCTrials, r.Seed, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderMonteCarlo(points), nil
	case "arrangement":
		points, err := AblationArrangementWorkers([]uint64{1, 2, 3}, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderAblationArrangement(points), nil
	case "margin":
		points, err := AblationMarginWorkers([]float64{0.4, 0.6, 0.8, 1.0}, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderAblationMargin(points), nil
	case "model":
		rows, err := AblationModelWorkers(r.Workers)
		if err != nil {
			return "", err
		}
		return RenderAblationModel(rows), nil
	case "boundary":
		points, err := AblationBoundaryWorkers([]int{0, 1, 2, 4}, r.Workers)
		if err != nil {
			return "", err
		}
		return RenderAblationBoundary(points), nil
	case "multivalued":
		points, err := MultiValued(r.Cfg)
		if err != nil {
			return "", err
		}
		return RenderMultiValued(points), nil
	case "noise":
		res, err := NoiseStudy(r.Cfg, r.MCTrials*50, r.Seed)
		if err != nil {
			return "", err
		}
		return RenderNoiseStudy(res), nil
	case "readout":
		points, err := Readout(r.Cfg, r.MCTrials*15, r.Seed)
		if err != nil {
			return "", err
		}
		return RenderReadout(points), nil
	case "temperature":
		points, err := Temperature(r.Cfg, nil)
		if err != nil {
			return "", err
		}
		return RenderTemperature(points), nil
	case "optarrange":
		points, err := OptArrange(nil, 20000)
		if err != nil {
			return "", err
		}
		return RenderOptArrange(points), nil
	case "masks":
		points, err := Masks(r.Cfg)
		if err != nil {
			return "", err
		}
		return RenderMasks(points), nil
	case "spares":
		points, err := Spares(r.Cfg)
		if err != nil {
			return "", err
		}
		return RenderSpares(points), nil
	case "sneak":
		points, err := Sneak(nil)
		if err != nil {
			return "", err
		}
		return RenderSneak(points), nil
	case "scaling":
		points, err := Scaling(r.Cfg, []int{10, 16, 20, 26, 32})
		if err != nil {
			return "", err
		}
		return RenderScaling(points), nil
	default:
		known := r.Names()
		sort.Strings(known)
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %s, all)", name, strings.Join(known, ", "))
	}
}

// RunAll executes every experiment and concatenates the reports.
func (r *Runner) RunAll() (string, error) {
	var sb strings.Builder
	for _, name := range r.Names() {
		report, err := r.Run(name)
		if err != nil {
			return "", fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintf(&sb, "==== %s ====\n%s\n", name, report)
	}
	return sb.String(), nil
}
