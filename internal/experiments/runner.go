package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/obs"
)

// Zero-value Runner defaults. A zero Runner is ready to use: Run applies
// these whenever the corresponding field is zero.
const (
	// DefaultMCTrials is the Monte-Carlo repetition count of the validation
	// experiment (the noise and readout studies scale it up).
	DefaultMCTrials = 4
	// DefaultSeed drives every stochastic experiment.
	DefaultSeed uint64 = 2009
)

// Runner executes named experiments and returns their structured datasets.
// The zero value is ready to use: a zero Cfg selects the paper's default
// platform, zero MCTrials and Seed select DefaultMCTrials and DefaultSeed,
// and zero Workers selects GOMAXPROCS.
type Runner struct {
	// Cfg is the base platform configuration shared by all experiments.
	Cfg core.Config
	// MCTrials is the Monte-Carlo repetition count for the validation
	// experiment (0 = DefaultMCTrials).
	MCTrials int
	// Seed drives the stochastic experiments (0 = DefaultSeed).
	Seed uint64
	// Workers bounds the worker pool of every parallelized experiment
	// (0 = GOMAXPROCS, 1 = serial). Experiment output is bit-identical at
	// every worker count.
	Workers int
}

// NewRunner returns a Runner on the paper's default platform. It is
// equivalent to &Runner{}: every field keeps its zero value and Run applies
// the documented defaults.
func NewRunner() *Runner {
	return &Runner{}
}

// effective returns a copy of the Runner with the zero-value defaults
// applied, so the registry entries never re-implement them.
func (r *Runner) effective() Runner {
	e := *r
	if e.MCTrials <= 0 {
		e.MCTrials = DefaultMCTrials
	}
	if e.Seed == 0 {
		e.Seed = DefaultSeed
	}
	return e
}

// experimentSpec is one registry entry: the canonical experiment name and
// the function producing its dataset. Names() and Run() both derive from
// the registry, so they cannot drift apart.
type experimentSpec struct {
	name string
	run  func(ctx context.Context, r Runner) (*dataset.Dataset, error)
}

// registry lists every experiment in presentation order: first the paper's
// figures, then the reproduction's ablations and extensions.
var registry = []experimentSpec{
	{"fig5", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		rows, err := Fig5(Fig5N)
		if err != nil {
			return nil, err
		}
		return Fig5Dataset(rows), nil
	}},
	{"fig6", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		surfaces, err := Fig6Workers(ctx, Fig6N, []int{8, 10}, r.Workers)
		if err != nil {
			return nil, err
		}
		return Fig6Dataset(surfaces), nil
	}},
	{"fig6hot", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		surfaces, err := Fig6HotWorkers(ctx, Fig6N, []int{6, 8}, r.Workers)
		if err != nil {
			return nil, err
		}
		return Fig6HotDataset(surfaces), nil
	}},
	{"fig7", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Fig7Workers(ctx, r.Cfg, r.Workers)
		if err != nil {
			return nil, err
		}
		return Fig7Dataset(points), nil
	}},
	{"fig8", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Fig8Workers(ctx, r.Cfg, r.Workers)
		if err != nil {
			return nil, err
		}
		return Fig8Dataset(points), nil
	}},
	{"headline", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		claims, err := HeadlineWorkers(ctx, r.Cfg, r.Workers)
		if err != nil {
			return nil, err
		}
		return HeadlineDataset(claims), nil
	}},
	{"montecarlo", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := MonteCarloWorkers(ctx, r.Cfg, r.MCTrials, r.Seed, r.Workers)
		if err != nil {
			return nil, err
		}
		return MonteCarloDataset(points, r.Seed), nil
	}},
	{"arrangement", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := AblationArrangementWorkers(ctx, []uint64{1, 2, 3}, r.Workers)
		if err != nil {
			return nil, err
		}
		return AblationArrangementDataset(points), nil
	}},
	{"margin", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := AblationMarginWorkers(ctx, []float64{0.4, 0.6, 0.8, 1.0}, r.Workers)
		if err != nil {
			return nil, err
		}
		return AblationMarginDataset(points), nil
	}},
	{"model", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		rows, err := AblationModelWorkers(ctx, r.Workers)
		if err != nil {
			return nil, err
		}
		return AblationModelDataset(rows), nil
	}},
	{"boundary", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := AblationBoundaryWorkers(ctx, []int{0, 1, 2, 4}, r.Workers)
		if err != nil {
			return nil, err
		}
		return AblationBoundaryDataset(points), nil
	}},
	{"multivalued", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := MultiValued(r.Cfg)
		if err != nil {
			return nil, err
		}
		return MultiValuedDataset(points), nil
	}},
	{"scaling", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Scaling(r.Cfg, []int{10, 16, 20, 26, 32})
		if err != nil {
			return nil, err
		}
		return ScalingDataset(points), nil
	}},
	{"noise", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		res, err := NoiseStudy(ctx, r.Cfg, r.MCTrials*50, r.Seed)
		if err != nil {
			return nil, err
		}
		return NoiseStudyDataset(res, r.Seed), nil
	}},
	{"readout", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Readout(ctx, r.Cfg, r.MCTrials*15, r.Seed)
		if err != nil {
			return nil, err
		}
		return ReadoutDataset(points, r.MCTrials*15, r.Seed), nil
	}},
	{"temperature", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Temperature(r.Cfg, nil)
		if err != nil {
			return nil, err
		}
		return TemperatureDataset(points), nil
	}},
	{"optarrange", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := OptArrange(nil, 20000)
		if err != nil {
			return nil, err
		}
		return OptArrangeDataset(points), nil
	}},
	{"masks", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Masks(r.Cfg)
		if err != nil {
			return nil, err
		}
		return MasksDataset(points), nil
	}},
	{"spares", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Spares(r.Cfg)
		if err != nil {
			return nil, err
		}
		return SparesDataset(points), nil
	}},
	{"sneak", func(ctx context.Context, r Runner) (*dataset.Dataset, error) {
		points, err := Sneak(nil)
		if err != nil {
			return nil, err
		}
		return SneakDataset(points), nil
	}},
}

// aliases maps alternative spellings to canonical registry names.
var aliases = map[string]string{"mc": "montecarlo"}

// Names lists the available experiment names in presentation order.
func (r *Runner) Names() []string {
	names := make([]string, len(registry))
	for i, spec := range registry {
		names[i] = spec.name
	}
	return names
}

// Known reports whether name resolves to a registry experiment under the
// same normalization Run applies (case, surrounding space, aliases).
func (r *Runner) Known(name string) bool {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	for _, spec := range registry {
		if spec.name == key {
			return true
		}
	}
	return false
}

// Run executes one experiment by name and returns its structured dataset.
// The dataset's metadata records the canonical experiment name, the
// effective seed/worker settings and a fingerprint of the platform
// configuration. Cancelling ctx aborts the experiment with ctx's error;
// a context that is already cancelled refuses to start any experiment,
// including the serial entries that never poll ctx themselves.
func (r *Runner) Run(ctx context.Context, name string) (*dataset.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	eff := r.effective()
	for _, spec := range registry {
		if spec.name != key {
			continue
		}
		// Observability: count the run and span its wall time. The metrics
		// live beside the pipeline (stderr/file at the command boundary),
		// never inside it, so the dataset below stays byte-identical
		// whether or not a registry is installed.
		reg := obs.From(ctx)
		reg.Counter("experiments/runs").Add(1)
		reg.Counter("experiments/" + spec.name + "/runs").Add(1)
		span := reg.StartSpan("experiment/" + spec.name)
		ds, err := spec.run(ctx, eff)
		span.End()
		if err != nil {
			return nil, err
		}
		ds.Meta.Experiment = spec.name
		ds.Meta.Workers = eff.Workers
		ds.Meta.ConfigHash = eff.Cfg.Fingerprint()
		return ds, nil
	}
	known := r.Names()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s, all)", name, strings.Join(known, ", "))
}

// RunAll executes every experiment in presentation order and returns the
// datasets. The first failure aborts the run.
func (r *Runner) RunAll(ctx context.Context) ([]*dataset.Dataset, error) {
	out := make([]*dataset.Dataset, 0, len(registry))
	for _, spec := range registry {
		ds, err := r.Run(ctx, spec.name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.name, err)
		}
		out = append(out, ds)
	}
	return out, nil
}
