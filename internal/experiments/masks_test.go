package experiments

import (
	"strings"
	"testing"

	"nwdec/internal/core"
)

func TestMasksEconomics(t *testing.T) {
	points, err := Masks(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("want 5 points, got %d", len(points))
	}
	for _, p := range points {
		if p.DistinctMasks <= 0 || p.Passes <= 0 {
			t.Errorf("%v: empty mask set", p.Type)
		}
		if p.DistinctMasks > p.Passes {
			t.Errorf("%v: more masks (%d) than passes (%d)", p.Type, p.DistinctMasks, p.Passes)
		}
		if p.ReuseFactor < 1 {
			t.Errorf("%v: reuse factor %g below 1", p.Type, p.ReuseFactor)
		}
		// Binary decoders: every pass targets a subset of the M columns,
		// so the mask library stays small relative to the pass count.
		if p.DistinctMasks > 2*p.Length {
			t.Errorf("%v: %d masks for M=%d implausible", p.Type, p.DistinctMasks, p.Length)
		}
	}
	out := RenderMasks(points)
	if !strings.Contains(out, "mask-set economics") || !strings.Contains(out, "reuse") {
		t.Error("render incomplete")
	}
}
