package experiments

import (
	"strings"
	"testing"
)

func TestOptArrangeClosesGap(t *testing.T) {
	points, err := OptArrange([]uint64{1, 2, 3}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}
	for _, p := range points {
		if p.OptimizedCost >= p.SampledCost {
			t.Errorf("seed %d: no improvement (%d -> %d)", p.Seed, p.SampledCost, p.OptimizedCost)
		}
		if p.OptimizedCost < p.LowerBound {
			t.Errorf("seed %d: optimized cost %d below the lower bound %d", p.Seed, p.OptimizedCost, p.LowerBound)
		}
		recovered := float64(p.SampledCost-p.OptimizedCost) / float64(p.SampledCost-p.LowerBound)
		if recovered < 0.75 {
			t.Errorf("seed %d: only %.0f%% of the gap recovered", p.Seed, 100*recovered)
		}
	}
}

func TestOptArrangeDefaultSeeds(t *testing.T) {
	points, err := OptArrange(nil, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Errorf("default seed set has %d points", len(points))
	}
	out := RenderOptArrange(points)
	for _, want := range []string{"arrangement optimizer", "lower bound", "recovered"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
