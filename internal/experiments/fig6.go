package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/mspt"
	"nwdec/internal/par"
	"nwdec/internal/physics"
	"nwdec/internal/textplot"
)

// Fig6N is the paper's half-cave population for the variability maps: N=20.
const Fig6N = 20

// Fig6Surface is one panel of Fig. 6: the normalized variability map
// sqrt(Σ/σ_T²) of a binary code type at one code length.
type Fig6Surface struct {
	Type   code.Type
	Length int
	// Root[i][j] = sqrt(ν[i][j]): the plotted height at nanowire i,
	// digit j.
	Root [][]float64
	// AvgVariability is ‖Σ‖₁/(N·M) in units of σ_T².
	AvgVariability float64
	// MaxNu is the worst region's dose count.
	MaxNu int
}

// fig6Surfaces evaluates the variability surface of every (family, length)
// unit on the worker pool; each unit is pure, so the result is independent
// of the worker count. Cancelling ctx stops the evaluation.
func fig6Surfaces(ctx context.Context, n int, types []code.Type, lengths []int, workers int) ([]Fig6Surface, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: non-positive N %d", n)
	}
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		return nil, err
	}
	var units []familyPoint
	for _, tp := range types {
		for _, m := range lengths {
			units = append(units, familyPoint{tp: tp, m: m})
		}
	}
	return par.Map(ctx, workers, units,
		func(_ context.Context, _ int, u familyPoint) (Fig6Surface, error) {
			g, err := code.Cached(u.tp, 2, u.m)
			if err != nil {
				return Fig6Surface{}, err
			}
			plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
			if err != nil {
				return Fig6Surface{}, err
			}
			return Fig6Surface{
				Type:           u.tp,
				Length:         u.m,
				Root:           plan.SigmaRootNormalized(),
				AvgVariability: float64(plan.NuSum()) / float64(n*u.m),
				MaxNu:          plan.MaxNu(),
			}, nil
		})
}

// Fig6 computes the variability surfaces for binary TC, GC and BGC at the
// given code lengths (the paper uses 8 and 10) with n nanowires per half
// cave. It runs on the default worker pool.
func Fig6(n int, lengths []int) ([]Fig6Surface, error) {
	return Fig6Workers(context.Background(), n, lengths, 0)
}

// Fig6Workers is Fig6 with a cancellation context and an explicit worker
// count (<= 0 means GOMAXPROCS); the output is bit-identical at every
// worker count.
func Fig6Workers(ctx context.Context, n int, lengths []int, workers int) ([]Fig6Surface, error) {
	return fig6Surfaces(ctx, n, []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray}, lengths, workers)
}

// fig6Dataset packages variability surfaces as a structured dataset: the
// columnar part carries the per-panel summary metrics (the full surface
// lives in the text rendering, which the caller supplies).
func fig6Dataset(name, title string, surfaces []Fig6Surface, text func() string) *dataset.Dataset {
	ds := dataset.New(name, title,
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.ColUnit("avgVariability", "σ_T²", dataset.Float),
		dataset.Col("maxNu", dataset.Int),
	)
	for _, s := range surfaces {
		ds.AddRow(s.Type.String(), s.Length, s.AvgVariability, s.MaxNu)
	}
	ds.SetText(text)
	return ds
}

// Fig6Dataset packages the variability figure; its text rendering is
// RenderFig6.
func Fig6Dataset(surfaces []Fig6Surface) *dataset.Dataset {
	ds := fig6Dataset("fig6",
		fmt.Sprintf("Fig. 6 — normalized variability sqrt(Σ)/σ_T per (nanowire, digit), N=%d", Fig6N),
		surfaces, func() string { return RenderFig6(surfaces) })
	ds.Note("average GC/BGC variability saving vs TC: %.0f%% (paper: 18%%)",
		100*Fig6VariabilitySaving(surfaces))
	return ds
}

// Fig6HotDataset packages the hot-code companion; its text rendering is
// RenderFig6Hot.
func Fig6HotDataset(surfaces []Fig6Surface) *dataset.Dataset {
	ds := fig6Dataset("fig6hot",
		fmt.Sprintf("Fig. 6 companion — hot-code variability maps, N=%d", Fig6N),
		surfaces, func() string { return RenderFig6Hot(surfaces) })
	ds.Note("The arranged hot code reduces and flattens the variability exactly " +
		"as the Gray arrangement does for tree codes — the paper's \"similar " +
		"results were obtained\" claim, made concrete.")
	return ds
}

// Fig6VariabilitySaving returns the average-variability saving of the Gray
// and balanced Gray codes relative to the tree code across the surfaces —
// the paper's 18% headline.
func Fig6VariabilitySaving(surfaces []Fig6Surface) float64 {
	byKey := make(map[string]float64)
	for _, s := range surfaces {
		byKey[fmt.Sprintf("%s-%d", s.Type, s.Length)] = s.AvgVariability
	}
	sum, count := 0.0, 0
	for _, s := range surfaces {
		if s.Type == code.TypeTree {
			continue
		}
		tc, ok := byKey[fmt.Sprintf("%s-%d", code.TypeTree, s.Length)]
		if !ok || tc == 0 {
			continue
		}
		sum += (tc - s.AvgVariability) / tc
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// RenderFig6 renders each surface as a heat map plus summary metrics.
func RenderFig6(surfaces []Fig6Surface) string {
	out := fmt.Sprintf("Fig. 6 — normalized variability sqrt(Σ)/σ_T per (nanowire, digit), N=%d\n\n", Fig6N)
	tb := textplot.NewTable("", "code", "M", "avg ‖Σ‖₁/(N·M) [σ_T²]", "max ν")
	for _, s := range surfaces {
		out += textplot.Heatmap(
			fmt.Sprintf("%s (L=%d)", s.Type, s.Length),
			s.Root, "nanowire", "digit") + "\n"
		tb.AddRowf(s.Type.String(), s.Length, s.AvgVariability, s.MaxNu)
	}
	out += tb.String()
	out += fmt.Sprintf("\naverage GC/BGC variability saving vs TC: %.0f%% (paper: 18%%)\n",
		100*Fig6VariabilitySaving(surfaces))
	return out
}

// Fig6Hot computes the variability surfaces for the hot code and its
// arranged version — the paper reports (Sec. 6.2) that "similar results
// were obtained ... for hot codes and their arranged version" without
// plotting them; this experiment makes the claim concrete. It runs on the
// default worker pool.
func Fig6Hot(n int, lengths []int) ([]Fig6Surface, error) {
	return Fig6HotWorkers(context.Background(), n, lengths, 0)
}

// Fig6HotWorkers is Fig6Hot with a cancellation context and an explicit
// worker count (<= 0 means GOMAXPROCS); the output is bit-identical at
// every worker count.
func Fig6HotWorkers(ctx context.Context, n int, lengths []int, workers int) ([]Fig6Surface, error) {
	return fig6Surfaces(ctx, n, []code.Type{code.TypeHot, code.TypeArrangedHot}, lengths, workers)
}

// RenderFig6Hot renders the hot-code variability surfaces.
func RenderFig6Hot(surfaces []Fig6Surface) string {
	out := fmt.Sprintf("Fig. 6 companion — hot-code variability maps, N=%d\n\n", Fig6N)
	tb := textplot.NewTable("", "code", "M", "avg ‖Σ‖₁/(N·M) [σ_T²]", "max ν")
	for _, s := range surfaces {
		out += textplot.Heatmap(
			fmt.Sprintf("%s (L=%d)", s.Type, s.Length),
			s.Root, "nanowire", "digit") + "\n"
		tb.AddRowf(s.Type.String(), s.Length, s.AvgVariability, s.MaxNu)
	}
	out += tb.String()
	out += "\nThe arranged hot code reduces and flattens the variability exactly\n" +
		"as the Gray arrangement does for tree codes — the paper's \"similar\n" +
		"results were obtained\" claim, made concrete.\n"
	return out
}
