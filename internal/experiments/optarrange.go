package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

// OptArrangePoint compares arrangements of one randomly sampled word set.
type OptArrangePoint struct {
	Seed uint64
	// SampledCost is the position-weighted transition cost of the set in
	// sampling order.
	SampledCost int
	// OptimizedCost is the cost after greedy + 2-opt optimization.
	OptimizedCost int
	// LowerBound is the unreachable-in-general floor (every step at the
	// minimum two-digit distance).
	LowerBound int
}

// OptArrange demonstrates the generalized arrangement optimizer on word
// sets with no closed-form Gray path: random 20-word subsets of the binary
// reflected space (M=10). The paper's BGC/AHC handle full prefix sets; the
// optimizer recovers near-Gray cost for arbitrary sets — the tool a
// decoder designer needs when some words are excluded (e.g. reserved or
// known-bad patterns).
func OptArrange(seeds []uint64, budget int) ([]OptArrangePoint, error) {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3, 4, 5}
	}
	const n, m = 20, 10
	tc, err := code.NewTree(2, m)
	if err != nil {
		return nil, err
	}
	full, err := tc.Sequence(tc.SpaceSize())
	if err != nil {
		return nil, err
	}
	var out []OptArrangePoint
	for _, seed := range seeds {
		rng := stats.NewRNG(seed)
		perm := rng.Perm(len(full))
		words := make([]code.Word, n)
		for i := range words {
			words[i] = full[perm[i]]
		}
		opt := code.OptimizeArrangement(words, budget)
		out = append(out, OptArrangePoint{
			Seed:          seed,
			SampledCost:   code.WeightedTransitionCost(words),
			OptimizedCost: code.WeightedTransitionCost(opt),
			LowerBound:    code.ArrangementLowerBound(n, 2),
		})
	}
	return out, nil
}

// OptArrangeDataset packages the optimizer comparison as a structured
// dataset; its text rendering is RenderOptArrange.
func OptArrangeDataset(points []OptArrangePoint) *dataset.Dataset {
	ds := dataset.New("optarrange",
		"Extension — arrangement optimizer on random 20-word subsets (M=10)",
		dataset.Col("seed", dataset.Int),
		dataset.Col("sampledCost", dataset.Int),
		dataset.Col("optimizedCost", dataset.Int),
		dataset.Col("lowerBound", dataset.Int),
		dataset.Col("recovered", dataset.Float),
	)
	for _, p := range points {
		rec := float64(p.SampledCost-p.OptimizedCost) / float64(p.SampledCost-p.LowerBound)
		ds.AddRow(int(p.Seed), p.SampledCost, p.OptimizedCost, p.LowerBound, rec)
	}
	ds.Note("Costs are the position-weighted transition sums (the " +
		"arrangement-dependent part of ‖Σ‖₁); 'recovered' is the fraction of " +
		"the gap to the Gray-path lower bound the optimizer closes.")
	ds.SetText(func() string { return RenderOptArrange(points) })
	return ds
}

// RenderOptArrange renders the optimizer comparison.
func RenderOptArrange(points []OptArrangePoint) string {
	tb := textplot.NewTable(
		"Extension — arrangement optimizer on random 20-word subsets (M=10)",
		"seed", "sampled order", "optimized", "lower bound", "recovered")
	for _, p := range points {
		rec := float64(p.SampledCost-p.OptimizedCost) / float64(p.SampledCost-p.LowerBound)
		tb.AddRowf(p.Seed, p.SampledCost, p.OptimizedCost, p.LowerBound,
			fmt.Sprintf("%.0f%%", 100*rec))
	}
	return tb.String() +
		"\nCosts are the position-weighted transition sums (the arrangement-\n" +
		"dependent part of ‖Σ‖₁); 'recovered' is the fraction of the gap to\n" +
		"the Gray-path lower bound the optimizer closes.\n"
}
