package experiments

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/geometry"
	"nwdec/internal/textplot"
)

// MultiValuedPoint is one (logic valency, code type) evaluation of the full
// platform — the paper's "similar results were obtained for these codes
// with a higher logic level" made concrete.
type MultiValuedPoint struct {
	Base    int
	Type    code.Type
	Length  int
	Phi     int
	Yield   float64
	BitArea float64
}

// MultiValued evaluates tree, Gray and balanced Gray decoders in binary,
// ternary and quaternary logic. The code length per valency is chosen so
// the code spaces have comparable sizes (>= one contact group of wires).
func MultiValued(cfg core.Config) ([]MultiValuedPoint, error) {
	grids := []struct {
		base   int
		length int
	}{
		{2, 10}, // Ω = 32
		{3, 6},  // Ω = 27
		{4, 6},  // Ω = 64
	}
	hotGrids := map[int]int{2: 6, 3: 6, 4: 4} // HC lengths per base (M = k·n)
	var out []MultiValuedPoint
	for _, grid := range grids {
		families := []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray,
			code.TypeHot, code.TypeArrangedHot}
		for _, tp := range families {
			c := cfg
			c.CodeType = tp
			c.Base = grid.base
			c.CodeLength = grid.length
			if !tp.Reflected() {
				c.CodeLength = hotGrids[grid.base]
			}
			d, err := core.NewDesign(c)
			if err != nil {
				return nil, fmt.Errorf("experiments: multi-valued %v base %d: %w", tp, grid.base, err)
			}
			out = append(out, MultiValuedPoint{
				Base:    grid.base,
				Type:    tp,
				Length:  c.CodeLength,
				Phi:     d.Phi,
				Yield:   d.Yield(),
				BitArea: d.BitArea(),
			})
		}
	}
	return out, nil
}

// MultiValuedDataset packages the multi-valued extension; its text
// rendering is RenderMultiValued.
func MultiValuedDataset(points []MultiValuedPoint) *dataset.Dataset {
	ds := dataset.New("multivalued",
		"Extension — multi-valued decoders on the 16 kbit platform",
		dataset.Col("base", dataset.Int),
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.ColUnit("phi", "steps", dataset.Int),
		dataset.Col("yield", dataset.Float),
		dataset.ColUnit("bitArea", "nm²", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.Base, p.Type.String(), p.Length, p.Phi, p.Yield, p.BitArea)
	}
	ds.Note("Gray arrangements keep their Φ and yield advantage at every logic " +
		"valency; higher valencies shorten the code but tighten the V_T margin.")
	ds.SetText(func() string { return RenderMultiValued(points) })
	return ds
}

// RenderMultiValued renders the multi-valued extension table.
func RenderMultiValued(points []MultiValuedPoint) string {
	tb := textplot.NewTable(
		"Extension — multi-valued decoders on the 16 kbit platform",
		"base", "code", "M", "Φ", "yield", "bit area [nm²]")
	for _, p := range points {
		tb.AddRowf(p.Base, p.Type.String(), p.Length, p.Phi,
			fmt.Sprintf("%.1f%%", 100*p.Yield), p.BitArea)
	}
	return tb.String() +
		"\nGray arrangements keep their Φ and yield advantage at every logic\n" +
		"valency; higher valencies shorten the code but tighten the V_T margin.\n"
}

// ScalingPoint is one half-cave-population evaluation.
type ScalingPoint struct {
	HalfCaveWires int
	Phi           int
	Yield         float64
	BitArea       float64
}

// Scaling sweeps the number of nanowires per half cave (the MSPT spacer
// iteration count) for a balanced Gray decoder: deeper caves amortize
// contact area but accumulate more doses per wire, so yield falls — the
// process-design trade-off behind the paper's fixed N.
func Scaling(cfg core.Config, wireCounts []int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range wireCounts {
		c := cfg
		c.CodeType = code.TypeBalancedGray
		c.CodeLength = 10
		if c.Spec.RawBits == 0 {
			c.Spec = geometry.DefaultCrossbarSpec()
		}
		c.Spec.HalfCaveWires = n
		d, err := core.NewDesign(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling N=%d: %w", n, err)
		}
		out = append(out, ScalingPoint{
			HalfCaveWires: n,
			Phi:           d.Phi,
			Yield:         d.Yield(),
			BitArea:       d.BitArea(),
		})
	}
	return out, nil
}

// ScalingDataset packages the cave-depth sweep; its text rendering is
// RenderScaling.
func ScalingDataset(points []ScalingPoint) *dataset.Dataset {
	ds := dataset.New("scaling",
		"Extension — half-cave population sweep (BGC, M=10)",
		dataset.Col("halfCaveWires", dataset.Int),
		dataset.ColUnit("phi", "steps", dataset.Int),
		dataset.Col("yield", dataset.Float),
		dataset.ColUnit("bitArea", "nm²", dataset.Float),
	)
	for _, p := range points {
		ds.AddRow(p.HalfCaveWires, p.Phi, p.Yield, p.BitArea)
	}
	ds.SetText(func() string { return RenderScaling(points) })
	return ds
}

// RenderScaling renders the cave-depth sweep.
func RenderScaling(points []ScalingPoint) string {
	tb := textplot.NewTable(
		"Extension — half-cave population sweep (BGC, M=10)",
		"N wires", "Φ", "yield", "bit area [nm²]")
	for _, p := range points {
		tb.AddRowf(p.HalfCaveWires, p.Phi,
			fmt.Sprintf("%.1f%%", 100*p.Yield), p.BitArea)
	}
	return tb.String()
}
