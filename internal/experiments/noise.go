package experiments

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
	"nwdec/internal/textplot"
)

// NoiseStudyResult collects the variability-model extensions: the per-dose
// σ_T derived from random-dopant-fluctuation physics (instead of the
// paper's assumed 50 mV), and the functional yield under independent vs
// pass-correlated implantation noise of identical marginal variance.
type NoiseStudyResult struct {
	// DerivedSigmaT is the worst-case per-dose deviation from the
	// straggle model, in volts.
	DerivedSigmaT float64
	// AssumedSigmaT is the paper's 50 mV.
	AssumedSigmaT float64
	// YieldAssumed / YieldDerived are the analytic yields of the BGC M=10
	// design under each σ_T.
	YieldAssumed float64
	YieldDerived float64
	// IIDYield and CorrelatedYield are functional Monte-Carlo half-cave
	// yields with purely independent noise and with half the variance
	// moved into a per-pass systematic component.
	IIDYield        float64
	CorrelatedYield float64
	Trials          int
}

// NoiseStudy runs both variability extensions on the BGC M=10 design. The
// Monte-Carlo trial loops poll ctx, so cancelling it mid-run returns
// promptly with ctx's error.
func NoiseStudy(ctx context.Context, cfg core.Config, trials int, seed uint64) (*NoiseStudyResult, error) {
	if trials <= 0 {
		trials = 200
	}
	cfg.CodeType = code.TypeBalancedGray
	cfg.CodeLength = 10
	design, err := core.NewDesign(cfg)
	if err != nil {
		return nil, err
	}
	res := &NoiseStudyResult{AssumedSigmaT: design.Config.SigmaT, Trials: trials}

	// Part 1: physically derived sigma.
	straggle := physics.DefaultStraggleModel()
	res.DerivedSigmaT, err = straggle.WorstCaseSigmaT(design.Quantizer)
	if err != nil {
		return nil, err
	}
	res.YieldAssumed = design.Yield()
	derivedCfg := cfg
	derivedCfg.SigmaT = res.DerivedSigmaT
	derivedDesign, err := core.NewDesign(derivedCfg)
	if err != nil {
		return nil, err
	}
	res.YieldDerived = derivedDesign.Yield()

	// Part 2: correlated vs independent noise at equal marginal variance.
	dec, err := crossbar.NewDecoder(design.Plan, design.Quantizer)
	if err != nil {
		return nil, err
	}
	sigma := design.Config.SigmaT
	iid := mspt.NoiseParams{SigmaRandom: sigma}
	half := sigma / 1.4142135623730951 // split the variance evenly
	correlated := mspt.NoiseParams{SigmaRandom: half, SigmaSystematic: half}
	rng := stats.NewRNG(seed)
	countYield := func(np mspt.NoiseParams) (float64, error) {
		ok := 0
		for tr := 0; tr < trials; tr++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			vt := design.Plan.SampleVTCorrelated(rng, np, design.Quantizer.VTOf)
			for _, u := range dec.UniquelyAddressable(vt, 0, design.Plan.N()) {
				if u {
					ok++
				}
			}
		}
		return float64(ok) / float64(trials*design.Plan.N()), nil
	}
	if res.IIDYield, err = countYield(iid); err != nil {
		return nil, err
	}
	if res.CorrelatedYield, err = countYield(correlated); err != nil {
		return nil, err
	}
	return res, nil
}

// NoiseStudyDataset packages the variability-model study as a single-row
// dataset; its text rendering is RenderNoiseStudy.
func NoiseStudyDataset(r *NoiseStudyResult, seed uint64) *dataset.Dataset {
	ds := dataset.New("noise", "Extension — variability models (BGC, M=10)",
		dataset.ColUnit("assumedSigmaT", "V", dataset.Float),
		dataset.ColUnit("derivedSigmaT", "V", dataset.Float),
		dataset.Col("yieldAssumed", dataset.Float),
		dataset.Col("yieldDerived", dataset.Float),
		dataset.Col("iidYield", dataset.Float),
		dataset.Col("correlatedYield", dataset.Float),
		dataset.Col("trials", dataset.Int),
	)
	ds.AddRow(r.AssumedSigmaT, r.DerivedSigmaT, r.YieldAssumed, r.YieldDerived,
		r.IIDYield, r.CorrelatedYield, r.Trials)
	ds.Meta.Seed = seed
	ds.Meta.Trials = r.Trials
	ds.Note("With the marginal variance held equal, moving half of it into a " +
		"per-pass systematic component leaves the functional yield unchanged: " +
		"the paper's i.i.d. σ_T analysis already captures the realistic " +
		"correlated-implanter case.")
	ds.SetText(func() string { return RenderNoiseStudy(r) })
	return ds
}

// RenderNoiseStudy renders the variability-model study.
func RenderNoiseStudy(r *NoiseStudyResult) string {
	tb := textplot.NewTable("Extension — variability models (BGC, M=10)",
		"quantity", "value")
	tb.AddRowf("assumed per-dose σ_T", fmt.Sprintf("%.0f mV (paper)", 1000*r.AssumedSigmaT))
	tb.AddRowf("derived per-dose σ_T (dopant fluctuation)", fmt.Sprintf("%.0f mV", 1000*r.DerivedSigmaT))
	tb.AddRowf("analytic yield @ assumed σ_T", fmt.Sprintf("%.1f%%", 100*r.YieldAssumed))
	tb.AddRowf("analytic yield @ derived σ_T", fmt.Sprintf("%.1f%%", 100*r.YieldDerived))
	tb.AddRowf("functional yield, independent noise", fmt.Sprintf("%.1f%%", 100*r.IIDYield))
	tb.AddRowf("functional yield, pass-correlated noise", fmt.Sprintf("%.1f%%", 100*r.CorrelatedYield))
	tb.AddRowf("Monte-Carlo trials", r.Trials)
	return tb.String() +
		"\nWith the marginal variance held equal, moving half of it into a\n" +
		"per-pass systematic component leaves the functional yield unchanged:\n" +
		"the common-mode cancellation in cross-addressing offsets the larger\n" +
		"own-address excursions, so the paper's i.i.d. σ_T analysis already\n" +
		"captures the realistic correlated-implanter case.\n"
}
