package yield

import (
	"testing"
	"testing/quick"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
)

func TestYieldBoundsBracketExactYield(t *testing.T) {
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		g, err := code.New(tp, 2, m)
		if err != nil {
			t.Fatal(err)
		}
		plan := testPlan(t, g, 20)
		a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
		contact := geometry.ContactPlan{Groups: 1}
		exact := a.AnalyzeHalfCave(plan, contact).Yield
		b := a.YieldBounds(plan, contact)
		if exact < b.Lower-1e-12 {
			t.Errorf("%v: exact %g below lower bound %g", tp, exact, b.Lower)
		}
		if exact > b.Upper+1e-12 {
			t.Errorf("%v: exact %g above upper bound %g", tp, exact, b.Upper)
		}
		if b.Lower < 0 || b.Upper > 1 {
			t.Errorf("%v: bounds out of range %+v", tp, b)
		}
	}
}

func TestYieldBoundsTightAtLowNoise(t *testing.T) {
	// With little variability the bounds collapse onto the exact yield.
	g, _ := code.NewGray(2, 8)
	plan := testPlan(t, g, 12)
	a := Analyzer{SigmaT: 0.01, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	exact := a.AnalyzeHalfCave(plan, contact).Yield
	b := a.YieldBounds(plan, contact)
	if b.Upper-b.Lower > 1e-6 {
		t.Errorf("bounds not tight at low noise: [%g, %g]", b.Lower, b.Upper)
	}
	if exact < b.Lower || exact > b.Upper {
		t.Errorf("exact %g outside [%g, %g]", exact, b.Lower, b.Upper)
	}
}

func TestYieldBoundsLayoutLossApplied(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	plan := testPlan(t, g, 16)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	clean := a.YieldBounds(plan, geometry.ContactPlan{Groups: 1})
	lossy := a.YieldBounds(plan, geometry.ContactPlan{Groups: 2, BoundaryLost: 4})
	wantRatio := 12.0 / 16.0
	if diff := lossy.Upper/clean.Upper - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("upper bound loss ratio %g, want %g", lossy.Upper/clean.Upper, wantRatio)
	}
	over := a.YieldBounds(plan, geometry.ContactPlan{Groups: 4, BoundaryLost: 999})
	if over.Lower != 0 || over.Upper != 0 {
		t.Errorf("fully lost cave bounds %+v, want zeros", over)
	}
}

func TestBoundsBracketProperty(t *testing.T) {
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	f := func(nRaw, marginRaw uint8) bool {
		n := int(nRaw%20) + 2
		margin := float64(marginRaw%200)/1000 + 0.02
		g, err := code.NewGray(2, 8)
		if err != nil {
			return false
		}
		plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
		if err != nil {
			return false
		}
		a := Analyzer{SigmaT: DefaultSigmaT, Margin: margin}
		contact := geometry.ContactPlan{Groups: 1}
		exact := a.AnalyzeHalfCave(plan, contact).Yield
		b := a.YieldBounds(plan, contact)
		return b.Lower-1e-12 <= exact && exact <= b.Upper+1e-12 && b.Lower <= b.Upper+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
