package yield

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
)

func TestSweepSigmaMonotone(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 20)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	pts, err := a.SweepSigma(plan, contact, []float64{0.02, 0.05, 0.08, 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Yield >= pts[i-1].Yield {
			t.Errorf("yield not decreasing with sigma at %g", pts[i].X)
		}
	}
	if _, err := a.SweepSigma(plan, contact, []float64{0}); err == nil {
		t.Error("zero sigma accepted")
	}
}

func TestSweepMarginMonotone(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 20)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	pts, err := a.SweepMargin(plan, contact, []float64{0.05, 0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Yield <= pts[i-1].Yield {
			t.Errorf("yield not increasing with margin at %g", pts[i].X)
		}
	}
	if _, err := a.SweepMargin(plan, contact, []float64{-1}); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestSensitivities(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 20)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	s, err := a.Sensitivities(plan, contact, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sigma >= 0 {
		t.Errorf("sigma sensitivity %g should be negative", s.Sigma)
	}
	if s.Margin <= 0 {
		t.Errorf("margin sensitivity %g should be positive", s.Margin)
	}
	// By the scaling Y(f(margin/σ)): the two log-sensitivities are equal in
	// magnitude and opposite in sign.
	if diff := s.Sigma + s.Margin; diff > 0.05 || diff < -0.05 {
		t.Errorf("sensitivities not antisymmetric: σ %g, margin %g", s.Sigma, s.Margin)
	}
}

func TestSensitivitiesValidation(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	plan := testPlan(t, g, 8)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	if _, err := a.Sensitivities(plan, contact, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := a.Sensitivities(plan, contact, 0.9); err == nil {
		t.Error("huge step accepted")
	}
	// A cave losing all its wires to contact boundaries has zero yield.
	dead := geometry.ContactPlan{Groups: 9, BoundaryLost: 999}
	if _, err := a.Sensitivities(plan, dead, 0.01); err == nil {
		t.Error("zero-yield operating point accepted")
	}
}

func TestSweepValidationUpFront(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	plan := testPlan(t, g, 8)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}

	if _, err := a.SweepSigma(plan, contact, nil); err == nil {
		t.Error("empty sigma slice accepted")
	}
	if _, err := a.SweepMargin(plan, contact, []float64{}); err == nil {
		t.Error("empty margin slice accepted")
	}

	// A non-finite value must be rejected before any evaluation, and the
	// error must name its index.
	nan := math.NaN()
	if _, err := a.SweepSigma(plan, contact, []float64{0.05, nan, 0.08}); err == nil {
		t.Error("NaN sigma accepted")
	} else if !strings.Contains(err.Error(), "index 1") {
		t.Errorf("sigma error does not name the offending index: %v", err)
	}
	if _, err := a.SweepMargin(plan, contact, []float64{0.1, 0.2, math.Inf(1)}); err == nil {
		t.Error("infinite margin accepted")
	} else if !strings.Contains(err.Error(), "index 2") {
		t.Errorf("margin error does not name the offending index: %v", err)
	}

	// An invalid-but-finite value late in the grid is likewise reported with
	// its index.
	if _, err := a.SweepSigma(plan, contact, []float64{0.05, 0.06, -1}); err == nil {
		t.Error("negative sigma accepted")
	} else if !strings.Contains(err.Error(), "index 2") {
		t.Errorf("invalid-sigma error does not name the offending index: %v", err)
	}
}

func TestSweepWorkersDeterministic(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 20)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	contact := geometry.ContactPlan{Groups: 1}
	sigmas := []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.12}
	serial, err := a.SweepSigmaWorkers(plan, contact, sigmas, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := a.SweepSigmaWorkers(plan, contact, sigmas, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
