// Package yield implements the statistical addressability analysis of
// Sec. 6.1 of the paper: the probability that each nanowire of a half cave
// is uniquely addressable given the threshold-voltage variability Σ of its
// decoder regions, the resulting cave yield, and the effective density and
// bit area of the complete crossbar.
//
// The model: each doping region (i, j) holds a threshold voltage that is
// Gaussian around its nominal level with variance Σ[i][j] = σ_T²·ν[i][j].
// The region decodes correctly while the threshold stays within the
// addressability margin (a fraction of half the level spacing); a nanowire
// is addressable iff all M of its regions decode correctly. Nanowires lying
// under the boundary between two adjacent contact groups can be driven by
// both groups and are removed from the addressable set (after DeHon et al.).
package yield

import (
	"fmt"
	"math"

	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/stats"
)

// DefaultSigmaT is the paper's per-dose threshold-voltage standard
// deviation: 50 mV.
const DefaultSigmaT = 0.05

// DefaultMarginFactor scales the quantizer's geometric margin (half the
// level spacing) to the effective sensing margin of the readout circuit:
// a region decodes correctly while its threshold stays inside its own
// level band, so the factor is 1 by default. Lowering it models readout
// circuits needing extra noise margin for the on/off current ratio
// (Ben Jamaa et al., TCAD'08).
const DefaultMarginFactor = 1.0

// Analyzer evaluates addressability probabilities for a decoder plan.
type Analyzer struct {
	// SigmaT is the standard deviation contributed by a single
	// implantation dose, in volts.
	SigmaT float64
	// Margin is the maximum tolerated threshold-voltage excursion in
	// volts; a region whose threshold drifts further decodes as a
	// neighbouring level.
	Margin float64
}

// NewAnalyzer builds an Analyzer from the paper's defaults: per-dose sigma
// σ_T and the quantizer margin scaled by DefaultMarginFactor.
func NewAnalyzer(sigmaT, quantizerMargin float64) (Analyzer, error) {
	a := Analyzer{SigmaT: sigmaT, Margin: quantizerMargin * DefaultMarginFactor}
	if err := a.Validate(); err != nil {
		return Analyzer{}, err
	}
	return a, nil
}

// Validate reports whether the analyzer parameters are meaningful.
func (a Analyzer) Validate() error {
	if !(a.SigmaT > 0) || math.IsInf(a.SigmaT, 0) {
		return fmt.Errorf("yield: sigmaT must be positive and finite, got %g", a.SigmaT)
	}
	if !(a.Margin > 0) || math.IsInf(a.Margin, 0) {
		return fmt.Errorf("yield: margin must be positive and finite, got %g", a.Margin)
	}
	return nil
}

// RegionProb returns the probability that a doping region dosed nu times
// decodes correctly: P(|N(0, σ_T²·ν)| <= margin).
func (a Analyzer) RegionProb(nu int) float64 {
	if nu <= 0 {
		return 1
	}
	g := stats.Gaussian{Mu: 0, Sigma: a.SigmaT * math.Sqrt(float64(nu))}
	return g.ProbWithin(a.Margin)
}

// RegionProbTable memoizes RegionProb over the dose-count range [0, maxNu]:
// table[nu] == RegionProb(nu) bit-for-bit. A plan's ν matrix takes only a
// handful of distinct integer values, so evaluating the erf tail once per
// value instead of once per region turns the N·M transcendental calls of a
// half-cave analysis into maxNu+1 — the dominant win of the analytic sweep
// loops. The table is computed with the batched evaluator of package stats
// (the √ν sigma scaling is applied inside the batch, with the exact
// arithmetic of RegionProb).
func (a Analyzer) RegionProbTable(maxNu int) []float64 {
	if maxNu < 0 {
		maxNu = 0
	}
	scales := make([]float64, maxNu+1)
	for nu := 1; nu <= maxNu; nu++ {
		scales[nu] = math.Sqrt(float64(nu))
	}
	table := stats.Gaussian{Mu: 0, Sigma: a.SigmaT}.ProbWithinScaled(scales, a.Margin, make([]float64, maxNu+1))
	table[0] = 1 // undosed regions always decode
	return table
}

// WireProb returns the probability that a nanowire with the given per-region
// dose counts is addressable: the product of its region probabilities
// (region noises are independent).
func (a Analyzer) WireProb(nus []int) float64 {
	p := 1.0
	for _, nu := range nus {
		p *= a.RegionProb(nu)
	}
	return p
}

// WireProbs returns the addressability probability of every nanowire in the
// plan's half cave, in definition order. Region probabilities come from the
// memoized RegionProbTable and the ν matrix is read in place, so the only
// allocation is the result slice.
func (a Analyzer) WireProbs(plan *mspt.Plan) []float64 {
	n, m := plan.N(), plan.M()
	table := a.RegionProbTable(plan.MaxNu())
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		p := 1.0
		for j := 0; j < m; j++ {
			p *= table[plan.NuAt(i, j)]
		}
		out[i] = p
	}
	return out
}

// HalfCave is the yield analysis of one half cave.
type HalfCave struct {
	// WireProbs is the per-nanowire addressability probability.
	WireProbs []float64
	// MeanProb is the average addressability probability before layout
	// losses.
	MeanProb float64
	// LayoutLost is the number of wires removed for layout reasons
	// (contact-group boundaries and duplicated codes).
	LayoutLost int
	// Yield is the expected fraction of addressable nanowires including
	// layout losses.
	Yield float64
}

// AnalyzeHalfCave combines the decoder variability of the plan with the
// contact partition: the expected addressable fraction is the mean
// addressability probability discounted by the layout-lost wires.
func (a Analyzer) AnalyzeHalfCave(plan *mspt.Plan, contact geometry.ContactPlan) HalfCave {
	probs := a.WireProbs(plan)
	mean := stats.Mean(probs)
	n := plan.N()
	lost := contact.Lost()
	if lost > n {
		lost = n
	}
	return HalfCave{
		WireProbs:  probs,
		MeanProb:   mean,
		LayoutLost: lost,
		Yield:      mean * float64(n-lost) / float64(n),
	}
}

// Crossbar is the full-array yield and density analysis.
type Crossbar struct {
	HalfCave HalfCave
	// Yield is the cave yield Y (equal on both layers for a square array).
	Yield float64
	// EffectiveBits is D_EFF = D_RAW · Y².
	EffectiveBits float64
	// BitArea is the area per working crosspoint in nm².
	BitArea float64
}

// AnalyzeCrossbar evaluates a decoder plan on a crossbar layout. Both
// layers are assumed to use the same decoder design, so the effective
// crosspoint density is D_RAW·Y² (a crosspoint works when both of its
// nanowires are addressable).
func (a Analyzer) AnalyzeCrossbar(plan *mspt.Plan, layout *geometry.Layout) Crossbar {
	hc := a.AnalyzeHalfCave(plan, layout.Contact)
	return Crossbar{
		HalfCave:      hc,
		Yield:         hc.Yield,
		EffectiveBits: float64(layout.Spec.RawBits) * hc.Yield * hc.Yield,
		BitArea:       layout.EffectiveBitArea(hc.Yield),
	}
}
