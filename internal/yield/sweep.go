package yield

import (
	"fmt"
	"math"

	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
)

// SweepPoint is one evaluation of a parameter sweep.
type SweepPoint struct {
	// X is the swept parameter value.
	X float64
	// Yield is the half-cave yield at that value.
	Yield float64
}

// SweepSigma evaluates the half-cave yield across per-dose deviations
// sigmas, keeping the margin fixed — the variability stress curve.
func (a Analyzer) SweepSigma(plan *mspt.Plan, contact geometry.ContactPlan, sigmas []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(sigmas))
	for _, s := range sigmas {
		aa := Analyzer{SigmaT: s, Margin: a.Margin}
		if err := aa.Validate(); err != nil {
			return nil, fmt.Errorf("yield: sigma sweep at %g: %w", s, err)
		}
		out = append(out, SweepPoint{X: s, Yield: aa.AnalyzeHalfCave(plan, contact).Yield})
	}
	return out, nil
}

// SweepMargin evaluates the half-cave yield across margin values, keeping
// sigma fixed — the sensing-window sensitivity curve.
func (a Analyzer) SweepMargin(plan *mspt.Plan, contact geometry.ContactPlan, margins []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(margins))
	for _, m := range margins {
		aa := Analyzer{SigmaT: a.SigmaT, Margin: m}
		if err := aa.Validate(); err != nil {
			return nil, fmt.Errorf("yield: margin sweep at %g: %w", m, err)
		}
		out = append(out, SweepPoint{X: m, Yield: aa.AnalyzeHalfCave(plan, contact).Yield})
	}
	return out, nil
}

// Sensitivity estimates the local logarithmic sensitivities of the yield to
// the two analyzer parameters with central finite differences:
// d(lnY)/d(lnσ_T) and d(lnY)/d(ln margin). A yield with |S_sigma| well above
// |S_margin| is variability-limited; the reverse is sensing-limited.
type Sensitivity struct {
	Sigma  float64 // d ln Y / d ln σ_T  (negative: more noise, less yield)
	Margin float64 // d ln Y / d ln margin (positive)
}

// Sensitivities evaluates the local sensitivities at the analyzer's
// operating point with the given relative step (e.g. 0.01).
func (a Analyzer) Sensitivities(plan *mspt.Plan, contact geometry.ContactPlan, relStep float64) (Sensitivity, error) {
	if relStep <= 0 || relStep >= 0.5 {
		return Sensitivity{}, fmt.Errorf("yield: relative step %g outside (0, 0.5)", relStep)
	}
	base := a.AnalyzeHalfCave(plan, contact).Yield
	if base <= 0 {
		return Sensitivity{}, fmt.Errorf("yield: zero yield at operating point, sensitivities undefined")
	}
	logDeriv := func(up, down Analyzer) float64 {
		yUp := up.AnalyzeHalfCave(plan, contact).Yield
		yDown := down.AnalyzeHalfCave(plan, contact).Yield
		if yUp <= 0 || yDown <= 0 {
			return 0
		}
		return (ln(yUp) - ln(yDown)) / (2 * relStep)
	}
	s := Sensitivity{
		Sigma: logDeriv(
			Analyzer{SigmaT: a.SigmaT * (1 + relStep), Margin: a.Margin},
			Analyzer{SigmaT: a.SigmaT * (1 - relStep), Margin: a.Margin}),
		Margin: logDeriv(
			Analyzer{SigmaT: a.SigmaT, Margin: a.Margin * (1 + relStep)},
			Analyzer{SigmaT: a.SigmaT, Margin: a.Margin * (1 - relStep)}),
	}
	return s, nil
}

// ln aliases math.Log so the finite-difference code reads like the math.
func ln(x float64) float64 { return math.Log(x) }
