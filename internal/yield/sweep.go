package yield

import (
	"context"
	"fmt"
	"math"

	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/par"
)

// SweepPoint is one evaluation of a parameter sweep.
type SweepPoint struct {
	// X is the swept parameter value.
	X float64
	// Yield is the half-cave yield at that value.
	Yield float64
}

// validateSweepValues rejects a sweep input before any evaluation runs: the
// value slice must be non-empty, every value finite, and every derived
// analyzer valid. Errors name the offending index so callers of long
// programmatic grids can locate the bad entry.
func validateSweepValues(what string, values []float64, analyzerAt func(float64) Analyzer) error {
	if len(values) == 0 {
		return fmt.Errorf("yield: %s sweep over empty value slice", what)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("yield: %s sweep value %g at index %d is not finite", what, v, i)
		}
		if err := analyzerAt(v).Validate(); err != nil {
			return fmt.Errorf("yield: %s sweep at %g (index %d): %w", what, v, i, err)
		}
	}
	return nil
}

// SweepSigma evaluates the half-cave yield across per-dose deviations
// sigmas, keeping the margin fixed — the variability stress curve. The whole
// input is validated up front (so a bad value late in the grid costs nothing)
// and the points are evaluated on the default worker pool.
func (a Analyzer) SweepSigma(plan *mspt.Plan, contact geometry.ContactPlan, sigmas []float64) ([]SweepPoint, error) {
	return a.SweepSigmaWorkers(plan, contact, sigmas, 0)
}

// SweepSigmaWorkers is SweepSigma with an explicit worker count (<= 0 means
// GOMAXPROCS); the output is bit-identical at every worker count.
func (a Analyzer) SweepSigmaWorkers(plan *mspt.Plan, contact geometry.ContactPlan, sigmas []float64, workers int) ([]SweepPoint, error) {
	at := func(s float64) Analyzer { return Analyzer{SigmaT: s, Margin: a.Margin} }
	if err := validateSweepValues("sigma", sigmas, at); err != nil {
		return nil, err
	}
	return par.Map(context.Background(), workers, sigmas,
		func(_ context.Context, _ int, s float64) (SweepPoint, error) {
			return SweepPoint{X: s, Yield: at(s).AnalyzeHalfCave(plan, contact).Yield}, nil
		})
}

// SweepMargin evaluates the half-cave yield across margin values, keeping
// sigma fixed — the sensing-window sensitivity curve. The whole input is
// validated up front and the points are evaluated on the default worker
// pool.
func (a Analyzer) SweepMargin(plan *mspt.Plan, contact geometry.ContactPlan, margins []float64) ([]SweepPoint, error) {
	return a.SweepMarginWorkers(plan, contact, margins, 0)
}

// SweepMarginWorkers is SweepMargin with an explicit worker count (<= 0
// means GOMAXPROCS); the output is bit-identical at every worker count.
func (a Analyzer) SweepMarginWorkers(plan *mspt.Plan, contact geometry.ContactPlan, margins []float64, workers int) ([]SweepPoint, error) {
	at := func(m float64) Analyzer { return Analyzer{SigmaT: a.SigmaT, Margin: m} }
	if err := validateSweepValues("margin", margins, at); err != nil {
		return nil, err
	}
	return par.Map(context.Background(), workers, margins,
		func(_ context.Context, _ int, m float64) (SweepPoint, error) {
			return SweepPoint{X: m, Yield: at(m).AnalyzeHalfCave(plan, contact).Yield}, nil
		})
}

// Sensitivity estimates the local logarithmic sensitivities of the yield to
// the two analyzer parameters with central finite differences:
// d(lnY)/d(lnσ_T) and d(lnY)/d(ln margin). A yield with |S_sigma| well above
// |S_margin| is variability-limited; the reverse is sensing-limited.
type Sensitivity struct {
	Sigma  float64 // d ln Y / d ln σ_T  (negative: more noise, less yield)
	Margin float64 // d ln Y / d ln margin (positive)
}

// Sensitivities evaluates the local sensitivities at the analyzer's
// operating point with the given relative step (e.g. 0.01).
func (a Analyzer) Sensitivities(plan *mspt.Plan, contact geometry.ContactPlan, relStep float64) (Sensitivity, error) {
	if relStep <= 0 || relStep >= 0.5 {
		return Sensitivity{}, fmt.Errorf("yield: relative step %g outside (0, 0.5)", relStep)
	}
	base := a.AnalyzeHalfCave(plan, contact).Yield
	if base <= 0 {
		return Sensitivity{}, fmt.Errorf("yield: zero yield at operating point, sensitivities undefined")
	}
	logDeriv := func(up, down Analyzer) float64 {
		yUp := up.AnalyzeHalfCave(plan, contact).Yield
		yDown := down.AnalyzeHalfCave(plan, contact).Yield
		if yUp <= 0 || yDown <= 0 {
			return 0
		}
		return (ln(yUp) - ln(yDown)) / (2 * relStep)
	}
	s := Sensitivity{
		Sigma: logDeriv(
			Analyzer{SigmaT: a.SigmaT * (1 + relStep), Margin: a.Margin},
			Analyzer{SigmaT: a.SigmaT * (1 - relStep), Margin: a.Margin}),
		Margin: logDeriv(
			Analyzer{SigmaT: a.SigmaT, Margin: a.Margin * (1 + relStep)},
			Analyzer{SigmaT: a.SigmaT, Margin: a.Margin * (1 - relStep)}),
	}
	return s, nil
}

// ln aliases math.Log so the finite-difference code reads like the math.
func ln(x float64) float64 { return math.Log(x) }
