package yield

import (
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
)

// Bounds are closed-form envelopes on the half-cave yield, cheap enough for
// inner-loop design exploration before the exact product-form analysis runs.
type Bounds struct {
	// Lower is the union-style bound: every wire's failure probability is
	// at most the sum of its regions' failure probabilities, so
	// P(wire ok) >= 1 - Σ_j (1 - p_j).
	Lower float64
	// Upper is the weakest-link bound: a wire is never more likely to work
	// than its worst region, so P(wire ok) <= min_j p_j.
	Upper float64
}

// YieldBounds computes the closed-form envelopes for a plan under the
// analyzer's margin model, including the layout losses of the contact plan.
func (a Analyzer) YieldBounds(plan *mspt.Plan, contact geometry.ContactPlan) Bounds {
	n, m := plan.N(), plan.M()
	table := a.RegionProbTable(plan.MaxNu())
	var lowerSum, upperSum float64
	for i := 0; i < n; i++ {
		failSum := 0.0
		worst := 1.0
		for j := 0; j < m; j++ {
			p := table[plan.NuAt(i, j)]
			failSum += 1 - p
			if p < worst {
				worst = p
			}
		}
		lower := 1 - failSum
		if lower < 0 {
			lower = 0
		}
		lowerSum += lower
		upperSum += worst
	}
	lost := contact.Lost()
	if lost > n {
		lost = n
	}
	// Average over wires, then discount the layout-lost fraction exactly as
	// AnalyzeHalfCave does.
	factor := float64(n-lost) / float64(n)
	return Bounds{
		Lower: lowerSum / float64(n) * factor,
		Upper: upperSum / float64(n) * factor,
	}
}
