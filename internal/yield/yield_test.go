package yield

import (
	"math"
	"testing"
	"testing/quick"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
)

func testPlan(t *testing.T, gen code.Generator, n int) *mspt.Plan {
	t.Helper()
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), gen.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mspt.NewPlanFromGenerator(gen, n, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewAnalyzer(t *testing.T) {
	a, err := NewAnalyzer(DefaultSigmaT, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Margin-0.25*DefaultMarginFactor) > 1e-12 {
		t.Errorf("margin = %g", a.Margin)
	}
	if _, err := NewAnalyzer(0, 0.25); err == nil {
		t.Error("zero sigma accepted")
	}
	if _, err := NewAnalyzer(0.05, 0); err == nil {
		t.Error("zero margin accepted")
	}
}

func TestRegionProb(t *testing.T) {
	a := Analyzer{SigmaT: 0.05, Margin: 0.05}
	// nu=1: one-sigma two-sided ~ 0.6827.
	if got := a.RegionProb(1); math.Abs(got-0.6826895) > 1e-6 {
		t.Errorf("RegionProb(1) = %g", got)
	}
	if got := a.RegionProb(0); got != 1 {
		t.Errorf("RegionProb(0) = %g, want 1", got)
	}
	// Monotone decreasing in nu.
	prev := 2.0
	for nu := 1; nu <= 30; nu++ {
		p := a.RegionProb(nu)
		if p >= prev {
			t.Fatalf("RegionProb not decreasing at nu=%d", nu)
		}
		if p <= 0 || p > 1 {
			t.Fatalf("RegionProb(%d) = %g out of range", nu, p)
		}
		prev = p
	}
}

func TestWireProbProduct(t *testing.T) {
	a := Analyzer{SigmaT: 0.05, Margin: 0.1}
	nus := []int{1, 2, 3}
	want := a.RegionProb(1) * a.RegionProb(2) * a.RegionProb(3)
	if got := a.WireProb(nus); math.Abs(got-want) > 1e-15 {
		t.Errorf("WireProb = %g, want %g", got, want)
	}
	if a.WireProb(nil) != 1 {
		t.Error("empty wire should have probability 1")
	}
}

func TestWireProbsOrdering(t *testing.T) {
	// Later-defined nanowires accumulate fewer doses, so addressability is
	// non-decreasing along the definition order for Gray plans.
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 16)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	probs := a.WireProbs(plan)
	if len(probs) != 16 {
		t.Fatalf("probs len = %d", len(probs))
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1]-1e-12 {
			t.Errorf("probability decreased at wire %d: %g < %g", i, probs[i], probs[i-1])
		}
	}
}

func TestAnalyzeHalfCaveLayoutLoss(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 16)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	noLoss := a.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 1})
	withLoss := a.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 2, BoundaryLost: 2})
	if noLoss.Yield <= withLoss.Yield {
		t.Errorf("boundary loss did not reduce yield: %g vs %g", noLoss.Yield, withLoss.Yield)
	}
	wantRatio := 14.0 / 16.0
	if math.Abs(withLoss.Yield/noLoss.Yield-wantRatio) > 1e-9 {
		t.Errorf("loss ratio = %g, want %g", withLoss.Yield/noLoss.Yield, wantRatio)
	}
	// Pathological loss larger than the cave clamps to zero yield.
	clamped := a.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 9, BoundaryLost: 99})
	if clamped.Yield != 0 {
		t.Errorf("over-lost cave yield = %g, want 0", clamped.Yield)
	}
}

func TestBalancedBeatsPlainGrayYield(t *testing.T) {
	// Same total variability, better distribution: the balanced Gray plan
	// must not yield worse than the plain Gray plan (Fig. 7).
	const n, m = 20, 10
	gray, _ := code.NewGray(2, m)
	bal, _ := code.NewBalancedGray(2, m)
	pg := testPlan(t, gray, n)
	pb := testPlan(t, bal, n)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	yg := a.AnalyzeHalfCave(pg, geometry.ContactPlan{Groups: 1}).Yield
	yb := a.AnalyzeHalfCave(pb, geometry.ContactPlan{Groups: 1}).Yield
	if yb < yg-1e-12 {
		t.Errorf("balanced Gray yield %g below plain Gray %g", yb, yg)
	}
}

func TestGrayBeatsTreeYield(t *testing.T) {
	const n, m = 16, 8
	tree, _ := code.NewTree(2, m)
	gray, _ := code.NewGray(2, m)
	pt := testPlan(t, tree, n)
	pg := testPlan(t, gray, n)
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	yt := a.AnalyzeHalfCave(pt, geometry.ContactPlan{Groups: 1}).Yield
	yg := a.AnalyzeHalfCave(pg, geometry.ContactPlan{Groups: 1}).Yield
	if yg <= yt {
		t.Errorf("Gray yield %g not above tree yield %g", yg, yt)
	}
}

func TestAnalyzeCrossbar(t *testing.T) {
	g, _ := code.NewGray(2, 10)
	plan := testPlan(t, g, 16)
	layout, err := geometry.NewLayout(geometry.DefaultCrossbarSpec(), 10, g.SpaceSize())
	if err != nil {
		t.Fatal(err)
	}
	a := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.25}
	res := a.AnalyzeCrossbar(plan, layout)
	if res.Yield <= 0 || res.Yield > 1 {
		t.Fatalf("yield = %g out of range", res.Yield)
	}
	wantBits := 16384 * res.Yield * res.Yield
	if math.Abs(res.EffectiveBits-wantBits) > 1e-9 {
		t.Errorf("EffectiveBits = %g, want %g", res.EffectiveBits, wantBits)
	}
	wantArea := layout.Area() / wantBits
	if math.Abs(res.BitArea-wantArea) > 1e-9 {
		t.Errorf("BitArea = %g, want %g", res.BitArea, wantArea)
	}
}

func TestYieldBoundsProperty(t *testing.T) {
	f := func(nRaw, mRaw uint8, marginRaw uint16) bool {
		n := int(nRaw%24) + 2
		m := (int(mRaw%4) + 2) * 2 // 4..10
		margin := float64(marginRaw%500)/2000 + 0.01
		g, err := code.NewGray(2, m)
		if err != nil {
			return false
		}
		q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
		if err != nil {
			return false
		}
		plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
		if err != nil {
			return false
		}
		a := Analyzer{SigmaT: DefaultSigmaT, Margin: margin}
		hc := a.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 1})
		return hc.Yield >= 0 && hc.Yield <= 1 && hc.MeanProb >= hc.Yield-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWiderMarginNeverHurts(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	plan := testPlan(t, g, 12)
	small := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.05}
	large := Analyzer{SigmaT: DefaultSigmaT, Margin: 0.2}
	ys := small.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 1}).Yield
	yl := large.AnalyzeHalfCave(plan, geometry.ContactPlan{Groups: 1}).Yield
	if yl < ys {
		t.Errorf("larger margin reduced yield: %g < %g", yl, ys)
	}
}
