package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
)

func testPlan(t *testing.T) *mspt.Plan {
	t.Helper()
	g, err := code.NewGray(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mspt.NewPlanFromGenerator(g, 12, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// countTokens counts occurrences of an XML element name in the SVG.
func countTokens(svg, element string) int {
	return strings.Count(svg, "<"+element+" ")
}

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestDecoderSVG(t *testing.T) {
	plan := testPlan(t)
	contact := geometry.ContactPlan{GroupWires: 6, Groups: 2}
	svg := DecoderSVG(plan, geometry.DefaultParams(), contact)
	wellFormed(t, svg)
	// One rect per doping region + background + M mesowire stripes.
	wantRects := plan.N()*plan.M() + 1 + plan.M()
	if got := countTokens(svg, "rect"); got != wantRects {
		t.Errorf("rect count = %d, want %d", got, wantRects)
	}
	// One dashed boundary between the two groups.
	if got := countTokens(svg, "line"); got != 1 {
		t.Errorf("boundary line count = %d, want 1", got)
	}
	// Wire labels include the pattern words.
	if !strings.Contains(svg, plan.Pattern()[0].String()) {
		t.Error("first pattern word missing from labels")
	}
	if !strings.Contains(svg, "base 2") {
		t.Error("header missing")
	}
}

func TestDecoderSVGSingleGroupNoBoundaries(t *testing.T) {
	plan := testPlan(t)
	svg := DecoderSVG(plan, geometry.DefaultParams(), geometry.ContactPlan{GroupWires: 12, Groups: 1})
	wellFormed(t, svg)
	if got := countTokens(svg, "line"); got != 0 {
		t.Errorf("unexpected boundary lines: %d", got)
	}
}

func TestMaskSVG(t *testing.T) {
	plan := testPlan(t)
	svg := MaskSVG(plan, geometry.DefaultParams())
	wellFormed(t, svg)
	set := plan.Masks()
	// One row of M rects per mask + background.
	wantRects := set.DistinctMasks()*plan.M() + 1
	if got := countTokens(svg, "rect"); got != wantRects {
		t.Errorf("rect count = %d, want %d", got, wantRects)
	}
	if !strings.Contains(svg, "mask 00") {
		t.Error("mask labels missing")
	}
}

func TestDigitColor(t *testing.T) {
	if digitColor(0) == digitColor(1) {
		t.Error("adjacent digits share a color")
	}
	if digitColor(99) != "#888888" || digitColor(-1) != "#888888" {
		t.Error("out-of-palette digits should fall back to gray")
	}
}

func TestDecoderSVGTernary(t *testing.T) {
	g, _ := code.NewGray(3, 6)
	q := physics.PaperExampleQuantizer()
	plan, err := mspt.NewPlanFromGenerator(g, 9, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	svg := DecoderSVG(plan, geometry.DefaultParams(), geometry.ContactPlan{GroupWires: 9, Groups: 1})
	wellFormed(t, svg)
	// All three digit colors appear.
	for d := 0; d < 3; d++ {
		if !strings.Contains(svg, digitColor(d)) {
			t.Errorf("digit %d color missing", d)
		}
	}
}
