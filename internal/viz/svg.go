// Package viz renders decoder layouts as standalone SVG drawings: the
// half-cave pattern matrix as a colored doping map (the reproduction of the
// paper's Fig. 1.b / Fig. 4 layout view) and the photolithography mask set
// of the fabrication flow. Everything is emitted in physical nanometre
// coordinates scaled for screen viewing, with no dependencies beyond the
// standard library.
package viz

import (
	"fmt"
	"strings"

	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
)

// digitPalette colors doping digits 0..5 (light to dark with hue steps so
// adjacent levels stay distinguishable in grayscale too).
var digitPalette = []string{
	"#d7e8f7", "#6aaed6", "#2070b4", "#0a3d6e", "#86c49b", "#2a7e43",
}

// scale converts nanometres to SVG user units.
const scale = 0.35

// DecoderSVG draws one half cave of the decoder: each nanowire is a
// horizontal bar of M doping regions at the lithographic pitch, filled by
// the region's logic digit; mesowire gates are drawn as translucent vertical
// stripes, and contact-group boundaries as dashed lines. Wires run top to
// bottom in spacer-definition order.
func DecoderSVG(plan *mspt.Plan, params geometry.Params, contact geometry.ContactPlan) string {
	n, m := plan.N(), plan.M()
	pattern := plan.Pattern()
	regionW := params.LithoPitch * scale
	wireH := params.NanowirePitch * scale
	gap := wireH * 0.35
	labelW := 60.0
	width := labelW + float64(m)*regionW + 20
	height := float64(n)*(wireH+gap) + 40

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%.1f" y="14" font-family="monospace" font-size="11">half cave: %d wires x %d regions (base %d)</text>`+"\n",
		labelW, n, m, plan.Base())

	top := 24.0
	// Mesowire gate stripes behind the wires.
	for j := 0; j < m; j++ {
		x := labelW + float64(j)*regionW
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#f3f0e8"/>`+"\n",
			x+regionW*0.38, top-4, regionW*0.24, float64(n)*(wireH+gap)+8)
	}
	// Nanowires with per-region doping fill.
	for i := 0; i < n; i++ {
		y := top + float64(i)*(wireH+gap)
		fmt.Fprintf(&sb, `<text x="4" y="%.1f" font-family="monospace" font-size="9">w%02d %s</text>`+"\n",
			y+wireH*0.9, i, pattern[i])
		for j := 0; j < m; j++ {
			x := labelW + float64(j)*regionW
			digit := pattern[i][j]
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#444" stroke-width="0.4"/>`+"\n",
				x, y, regionW, wireH, digitColor(digit))
		}
	}
	// Contact-group boundaries.
	if contact.GroupWires > 0 {
		for g := 1; g*contact.GroupWires < n; g++ {
			y := top + float64(g*contact.GroupWires)*(wireH+gap) - gap/2
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#b03030" stroke-width="1" stroke-dasharray="4,3"/>`+"\n",
				labelW-4, y, labelW+float64(m)*regionW+4, y)
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// MaskSVG draws the photolithography mask set of the plan: one row per
// distinct mask, its exposed doping-region windows filled, annotated with
// the number of implant passes reusing it.
func MaskSVG(plan *mspt.Plan, params geometry.Params) string {
	set := plan.Masks()
	m := plan.M()
	regionW := params.LithoPitch * scale
	rowH := 14.0
	labelW := 120.0
	width := labelW + float64(m)*regionW + 20
	height := float64(len(set.Masks))*(rowH+6) + 40

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="4" y="14" font-family="monospace" font-size="11">mask set: %d masks / %d passes (reuse %.1fx)</text>`+"\n",
		set.DistinctMasks(), set.Passes, set.ReuseFactor())
	top := 26.0
	for k, mask := range set.Masks {
		y := top + float64(k)*(rowH+6)
		fmt.Fprintf(&sb, `<text x="4" y="%.1f" font-family="monospace" font-size="9">mask %02d (%d passes)</text>`+"\n",
			y+rowH*0.8, k, len(mask.Passes))
		exposed := make(map[int]bool, len(mask.Regions))
		for _, r := range mask.Regions {
			exposed[r] = true
		}
		for j := 0; j < m; j++ {
			x := labelW + float64(j)*regionW
			fill := "#eeeeee"
			if exposed[j] {
				fill = "#2070b4"
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#444" stroke-width="0.4"/>`+"\n",
				x, y, regionW, rowH, fill)
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func digitColor(d int) string {
	if d >= 0 && d < len(digitPalette) {
		return digitPalette[d]
	}
	return "#888888"
}
