package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGaussianCDF(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.841344746},
		{-1, 0.158655254},
		{2, 0.977249868},
		{-3, 0.001349898},
	}
	for _, c := range cases {
		if got := g.CDF(c.x); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestGaussianCDFShifted(t *testing.T) {
	g := Gaussian{Mu: 2, Sigma: 3}
	if got := g.CDF(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF at mean = %g, want 0.5", got)
	}
	if got := g.CDF(5); !almostEqual(got, 0.841344746, 1e-6) {
		t.Errorf("CDF(mu+sigma) = %g", got)
	}
}

func TestGaussianPointMass(t *testing.T) {
	g := Gaussian{Mu: 1, Sigma: 0}
	if g.CDF(0.999) != 0 || g.CDF(1) != 1 {
		t.Error("point-mass CDF wrong")
	}
	if g.ProbWithin(0) != 1 {
		t.Error("point mass should always be within any margin")
	}
}

func TestProbWithin(t *testing.T) {
	g := Gaussian{Mu: 0.3, Sigma: 0.05}
	// One sigma two-sided: erf(1/sqrt(2)) ~ 0.6826895.
	if got := g.ProbWithin(0.05); !almostEqual(got, 0.6826895, 1e-6) {
		t.Errorf("ProbWithin(sigma) = %g", got)
	}
	// Must agree with CDF difference.
	want := g.ProbBetween(0.3-0.12, 0.3+0.12)
	if got := g.ProbWithin(0.12); !almostEqual(got, want, 1e-12) {
		t.Errorf("ProbWithin mismatch with ProbBetween: %g vs %g", got, want)
	}
	if g.ProbWithin(-0.1) != 0 {
		t.Error("negative margin must have probability 0")
	}
}

func TestProbBetweenDegenerate(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	if g.ProbBetween(1, -1) != 0 {
		t.Error("inverted interval must have probability 0")
	}
}

func TestAddIndependent(t *testing.T) {
	sum := AddIndependent(Gaussian{1, 3}, Gaussian{2, 4})
	if sum.Mu != 3 {
		t.Errorf("mean = %g, want 3", sum.Mu)
	}
	if !almostEqual(sum.Sigma, 5, 1e-12) {
		t.Errorf("sigma = %g, want 5", sum.Sigma)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	g := Gaussian{Mu: 0.4, Sigma: 0.07}
	r := NewRNG(99)
	const n = 100000
	within := 0
	for i := 0; i < n; i++ {
		if math.Abs(g.Sample(r)-g.Mu) <= 0.1 {
			within++
		}
	}
	got := float64(within) / n
	want := g.ProbWithin(0.1)
	if !almostEqual(got, want, 0.01) {
		t.Errorf("empirical within-prob %g, analytic %g", got, want)
	}
}

func TestProbWithinMonotone(t *testing.T) {
	f := func(sigmaRaw, d1Raw, d2Raw uint16) bool {
		sigma := float64(sigmaRaw%1000)/1000 + 0.001
		d1 := float64(d1Raw%1000) / 500
		d2 := float64(d2Raw%1000) / 500
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		g := Gaussian{Mu: 0, Sigma: sigma}
		return g.ProbWithin(d1) <= g.ProbWithin(d2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(x1, x2 int16) bool {
		g := Gaussian{Mu: 0, Sigma: 2}
		a, b := float64(x1)/100, float64(x2)/100
		if a > b {
			a, b = b, a
		}
		return g.CDF(a) <= g.CDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
