package stats

import "math"

// Marsaglia–Tsang ziggurat sampler for the standard normal distribution:
// 128 horizontal layers of equal area covering the density, with the tail
// beyond zigR handled by exact exponential rejection. The common case
// (~98.8% of draws) costs one 64-bit draw, one table lookup and one
// multiply — no transcendentals — which makes it the sampler of the bulk
// Monte-Carlo hot path (Plan.SampleVTInto), where the polar method's
// log/sqrt per pair dominates the fabrication profile.
//
// NormFloat64Fast consumes the underlying uniform stream differently than
// NormFloat64 (one draw per accepted variate instead of pairs), so the two
// samplers produce different — but individually deterministic — sequences
// from the same generator state. Code that relies on a pinned draw order
// must not switch samplers; the statistical tests accept either.
const (
	// zigR is the start of the tail: x coordinate of the lowest layer edge.
	zigR = 3.442619855899
	// zigArea is the common area of each layer (and of the base strip
	// including the tail).
	zigArea = 9.91256303526217e-3
)

var (
	zigKn [128]uint32  // acceptance thresholds: |hz| < kn[i] accepts directly
	zigWn [128]float64 // layer widths scaled to the 32-bit lattice
	zigFn [128]float64 // density at the layer edges
)

// The tables are a pure function of the two constants above, so computing
// them at init keeps the package deterministic (nwlint's determinism rule
// allows init-time math, which cannot observe wall clock or map order).
func init() {
	// The lattice coordinate is a signed 32-bit integer, so the layer edge
	// dn must map to |hz| = 2^31 — the scale is 2^31, not 2^32.
	const m1 = 2147483648.0
	dn, tn := zigR, zigR
	q := zigArea / math.Exp(-0.5*dn*dn)
	zigKn[0] = uint32((dn / q) * m1)
	zigKn[1] = 0
	zigWn[0] = q / m1
	zigWn[127] = dn / m1
	zigFn[0] = 1
	zigFn[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigArea/dn+math.Exp(-0.5*dn*dn)))
		zigKn[i+1] = uint32((dn / tn) * m1)
		tn = dn
		zigFn[i] = math.Exp(-0.5 * dn * dn)
		zigWn[i] = dn / m1
	}
}

// NormFloat64Fast returns a standard normal variate using the ziggurat
// method. It is a drop-in statistical replacement for NormFloat64 with a
// different (still fully deterministic) stream mapping; see the package
// comment above for when each sampler applies.
func (r *RNG) NormFloat64Fast() float64 {
	for {
		u := r.Uint64()
		i := int(u & 127)    // layer index: low 7 bits
		hz := int32(u >> 32) // signed 32-bit lattice coordinate: high bits
		x := float64(hz) * zigWn[i]
		if absInt32(hz) < zigKn[i] {
			// The coordinate falls inside the layer's rectangle core.
			return x
		}
		if i == 0 {
			// Base layer: sample the tail beyond zigR exactly.
			for {
				xt := -math.Log(r.Float64()) / zigR
				yt := -math.Log(r.Float64())
				if yt+yt >= xt*xt {
					if hz < 0 {
						return -(zigR + xt)
					}
					return zigR + xt
				}
			}
		}
		// Wedge between the rectangle and the density curve.
		if zigFn[i]+float64(r.Uint64()>>11)/(1<<53)*(zigFn[i-1]-zigFn[i]) < math.Exp(-0.5*x*x) {
			return x
		}
	}
}

// NormalFast returns a normal variate with the given mean and standard
// deviation using the ziggurat sampler. A non-positive sigma returns mean
// exactly without consuming a draw, matching Normal's contract.
func (r *RNG) NormalFast(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*r.NormFloat64Fast()
}

func absInt32(v int32) uint32 {
	if v < 0 {
		return uint32(-int64(v))
	}
	return uint32(v)
}
