package stats

import "testing"

// Known-answer vectors for the jump machinery, generated once from this
// implementation and frozen: any change to the seeding, the output function
// or the jump polynomials silently re-shuffles every parallel experiment, so
// these pin the exact stream positions.
func TestJumpKnownAnswer(t *testing.T) {
	r := NewRNG(2009)
	wantSeedState := [4]uint64{0x136726947f5f7f58, 0xa4ad926e86127a82, 0x31c4d616138665d5, 0x7409f0a75b30aa06}
	if r.s != wantSeedState {
		t.Fatalf("seed 2009 state = %#v, want %#v", r.s, wantSeedState)
	}

	j := r.Clone()
	j.Jump()
	wantJumpState := [4]uint64{0xf1c128149a13d3ab, 0x55cba37985674c52, 0x29023bf12558b352, 0x25aa7efc162a428c}
	if j.s != wantJumpState {
		t.Fatalf("post-Jump state = %#v, want %#v", j.s, wantJumpState)
	}
	for i, want := range []uint64{0x65de2e3994353806, 0x4385bb1ce1ed0ae0, 0x641958cfd941f15e} {
		if got := j.Uint64(); got != want {
			t.Errorf("post-Jump draw %d = %#x, want %#x", i, got, want)
		}
	}

	lj := r.Clone()
	lj.LongJump()
	wantLongState := [4]uint64{0xa60f65054d25f1dc, 0x582138dbb261678b, 0xb68886680026f4c0, 0xfd9e1b45532d4caa}
	if lj.s != wantLongState {
		t.Fatalf("post-LongJump state = %#v, want %#v", lj.s, wantLongState)
	}
	for i, want := range []uint64{0xeb7f4f2d8f99babc, 0xaa4f957225aa475d, 0x59547f6133a6e2b1} {
		if got := lj.Uint64(); got != want {
			t.Errorf("post-LongJump draw %d = %#x, want %#x", i, got, want)
		}
	}

	s2 := r.Split(2)
	for i, want := range []uint64{0xabcb40cf0d93cb5a, 0x49ff30ce65f73b41, 0x9a566a67aa17d236} {
		if got := s2.Uint64(); got != want {
			t.Errorf("Split(2) draw %d = %#x, want %#x", i, got, want)
		}
	}

	s0 := NewRNG(1).Split(0)
	for i, want := range []uint64{0x332802f81eaae9d0, 0x2d18d7749b84f96, 0xc3729a527851f63d} {
		if got := s0.Uint64(); got != want {
			t.Errorf("seed-1 Split(0) draw %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestSplitDoesNotMutate(t *testing.T) {
	r := NewRNG(7)
	before := r.s
	_ = r.Split(5)
	_ = r.Streams(5)
	if r.s != before {
		t.Fatal("Split/Streams mutated the parent state")
	}
}

func TestStreamsMatchSplit(t *testing.T) {
	r := NewRNG(0xDEADBEEF)
	streams := r.Streams(8)
	if len(streams) != 8 {
		t.Fatalf("got %d streams", len(streams))
	}
	for i, s := range streams {
		want := r.Split(uint64(i))
		for k := 0; k < 16; k++ {
			if sv, wv := s.Uint64(), want.Uint64(); sv != wv {
				t.Fatalf("stream %d draw %d: Streams %#x != Split %#x", i, k, sv, wv)
			}
		}
	}
	if r.Streams(0) != nil || r.Streams(-1) != nil {
		t.Error("non-positive n should return nil")
	}
}

// TestJumpNonOverlap draws a window from the base stream and from each of a
// handful of jump substreams and checks that no value repeats — a smoke test
// that the substreams land in pairwise disjoint regions (each window is
// vanishingly small next to the 2^128 spacing, so a collision indicates a
// broken polynomial, not bad luck).
func TestJumpNonOverlap(t *testing.T) {
	const draws = 10000
	r := NewRNG(2009)
	seen := make(map[uint64]string, 5*draws)
	record := func(name string, g *RNG) {
		for i := 0; i < draws; i++ {
			v := g.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("value %#x drawn by both %s and %s", v, prev, name)
			}
			seen[v] = name
		}
	}
	record("base", r.Clone())
	for i, s := range r.Streams(4) {
		record([]string{"s0", "s1", "s2", "s3"}[i], s)
	}
}

func TestJumpClearsGaussCache(t *testing.T) {
	a := NewRNG(11)
	a.NormFloat64() // the polar method leaves a cached second variate behind
	if !a.hasGauss {
		t.Fatal("expected a cached Gaussian after NormFloat64")
	}
	a.Jump()
	if a.hasGauss {
		t.Fatal("Jump kept the pre-jump Gaussian cache")
	}
}

func TestForkAdvancesParent(t *testing.T) {
	a := NewRNG(3)
	b := NewRNG(3)
	_ = a.Fork()
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork should advance the parent by exactly one draw")
	}
}
