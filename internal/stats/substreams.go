package stats

import "sync"

// substreamCheckpointStride is the distance between cached rewind points of
// a Substreams source: backward random access costs at most this many jump
// applications, and the memory overhead is one 32-byte state per stride
// substreams.
const substreamCheckpointStride = 64

// Substreams is a lazy, thread-safe view of the jump substreams of a base
// generator: At(i) is bit-identical to base.Split(i) and Block(lo, n) to
// base.Streams(...)[lo:lo+n], but nothing is materialized up front — a
// million-trial request no longer allocates a million generators before the
// first trial runs. Callers materialize exactly the block they are about to
// consume (typically one scheduling chunk of package par).
//
// The source advances a cursor one jump at a time and records a checkpoint
// state every substreamCheckpointStride substreams, so sequential and
// near-sequential access (the chunked scheduling pattern: ascending blocks,
// slightly out of order across workers) costs O(1) amortized jumps per
// substream, and a fully random access costs at most one stride of jumps
// from the nearest checkpoint. All methods are safe for concurrent use; the
// returned generators are fresh, unshared and a pure function of (base
// state, index), so results stay deterministic at every worker count.
type Substreams struct {
	mu   sync.Mutex
	cur  [4]uint64 // state after `next` jump applications of the base state
	next uint64
	// checkpoints[k] is the base state after k*substreamCheckpointStride
	// jumps; checkpoints[0] is the base state itself.
	checkpoints [][4]uint64
}

// Substreams returns a lazy substream source over r's current state. r is
// not mutated and may continue to be used; the source snapshots the state.
func (r *RNG) Substreams() *Substreams {
	return &Substreams{cur: r.s, next: 0, checkpoints: [][4]uint64{r.s}}
}

// advanceTo moves the cursor to exactly `jumps` jump applications of the
// base state. Callers must hold s.mu.
func (s *Substreams) advanceTo(jumps uint64) {
	if jumps < s.next {
		// Rewind to the nearest recorded checkpoint at or below the target;
		// checkpoints exist for every stride multiple the cursor has ever
		// crossed, so this lookup never misses.
		k := jumps / substreamCheckpointStride
		s.cur = s.checkpoints[k]
		s.next = k * substreamCheckpointStride
	}
	r := RNG{s: s.cur}
	for s.next < jumps {
		r.Jump()
		s.next++
		if s.next%substreamCheckpointStride == 0 && s.next/substreamCheckpointStride == uint64(len(s.checkpoints)) {
			s.checkpoints = append(s.checkpoints, r.s)
		}
	}
	s.cur = r.s
}

// At returns the i-th substream: a fresh generator whose stream is
// bit-identical to base.Split(i). Each substream starts 2^128 steps after
// the previous one, so shards drawing fewer than 2^128 values are disjoint.
func (s *Substreams) At(i uint64) *RNG {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceTo(i + 1)
	return &RNG{s: s.cur}
}

// Block materializes the n substreams lo, lo+1, ..., lo+n-1 in one pass —
// the per-chunk fan-out of the Monte-Carlo drivers. The result is
// bit-identical to base.Streams(lo+n)[lo:] and costs O(n) jumps after the
// cursor reaches lo.
func (s *Substreams) Block(lo uint64, n int) []*RNG {
	if n <= 0 {
		return nil
	}
	out := make([]*RNG, n)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range out {
		s.advanceTo(lo + uint64(k) + 1)
		out[k] = &RNG{s: s.cur}
	}
	return out
}
