package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestNewRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	// A broken all-zero xoshiro state would emit only zeros.
	nonzero := false
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 7, 100} {
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) covered only %d values", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10; i++ {
		if v := r.Normal(3.5, 0); v != 3.5 {
			t.Fatalf("Normal with sigma 0 returned %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 2, 10, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkDecorrelated(t *testing.T) {
	r := NewRNG(21)
	a := r.Fork()
	b := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlapped %d/100 times", same)
	}
}

func TestPermPropertySorted(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := NewRNG(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
