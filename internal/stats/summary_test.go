package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance is 4; sample (n-1) variance is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("invalid quantile inputs should return NaN")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 5}
	bins := Histogram(xs, 0, 1, 2)
	// -5 clamps into bin 0; 5 and 0.9 and 0.6 land in bin 1.
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("Histogram = %v", bins)
	}
	if Histogram(xs, 1, 0, 2) != nil || Histogram(xs, 0, 1, 0) != nil {
		t.Error("invalid histogram parameters should return nil")
	}
}

func TestHistogramCountsAllProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 256
		}
		bins := Histogram(xs, 0, 1, 8)
		total := 0
		for _, b := range bins {
			total += b
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []int8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		min, max := MinMax(xs)
		return v >= min-1e-9 && v <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialTailGE(t *testing.T) {
	// Exact small case: P(X >= 1) for Bin(2, 0.5) = 3/4.
	if got := BinomialTailGE(2, 0.5, 1); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("tail = %g, want 0.75", got)
	}
	// P(X >= 2) for Bin(3, 0.2) = 3*0.04*0.8 + 0.008 = 0.104.
	if got := BinomialTailGE(3, 0.2, 2); !almostEqual(got, 0.104, 1e-12) {
		t.Errorf("tail = %g, want 0.104", got)
	}
	if BinomialTailGE(5, 0.3, 0) != 1 || BinomialTailGE(5, 0.3, -2) != 1 {
		t.Error("k <= 0 should give 1")
	}
	if BinomialTailGE(5, 0.3, 6) != 0 {
		t.Error("k > n should give 0")
	}
	if BinomialTailGE(5, 0, 1) != 0 || BinomialTailGE(5, 1, 5) != 1 {
		t.Error("degenerate p wrong")
	}
	if !math.IsNaN(BinomialTailGE(5, -0.1, 2)) || !math.IsNaN(BinomialTailGE(5, 1.5, 2)) {
		t.Error("invalid p should give NaN")
	}
	// Monotone decreasing in k.
	prev := 1.1
	for k := 0; k <= 20; k++ {
		v := BinomialTailGE(20, 0.6, k)
		if v > prev {
			t.Fatalf("tail not monotone at k=%d", k)
		}
		prev = v
	}
}

func TestLogChoose(t *testing.T) {
	if got := math.Exp(logChoose(10, 3)); !almostEqual(got, 120, 1e-9) {
		t.Errorf("C(10,3) via logs = %g", got)
	}
	if got := math.Exp(logChoose(52, 5)); !almostEqual(got, 2598960, 1e-3) {
		t.Errorf("C(52,5) via logs = %g", got)
	}
}
