package stats

import (
	"math"
	"testing"
)

// TestProbWithinBatchMatchesScalar pins the bit-equivalence contract of the
// batched tail evaluation, including the negative-delta and point-mass
// branches.
func TestProbWithinBatchMatchesScalar(t *testing.T) {
	deltas := []float64{-1, 0, 1e-6, 0.01, 0.05, 0.25, 1, 10}
	for _, g := range []Gaussian{{0, 0.05}, {0.3, 0.158}, {0, 0}} {
		got := g.ProbWithinBatch(deltas, nil)
		if len(got) != len(deltas) {
			t.Fatalf("%v: len = %d, want %d", g, len(got), len(deltas))
		}
		for k, delta := range deltas {
			if want := g.ProbWithin(delta); got[k] != want {
				t.Errorf("%v.ProbWithinBatch[%d] = %v, scalar = %v", g, k, got[k], want)
			}
		}
	}
}

// TestProbWithinBatchReusesBuffer verifies the arena contract: a
// sufficiently large dst is written in place, not reallocated.
func TestProbWithinBatchReusesBuffer(t *testing.T) {
	g := Gaussian{0, 0.05}
	buf := make([]float64, 8)
	out := g.ProbWithinBatch([]float64{0.1, 0.2}, buf)
	if &out[0] != &buf[0] {
		t.Error("ProbWithinBatch reallocated a sufficient buffer")
	}
	if len(out) != 2 {
		t.Errorf("len = %d, want 2", len(out))
	}
	if n := testing.AllocsPerRun(100, func() {
		g.ProbWithinBatch([]float64{0.1, 0.2, 0.3}, buf)
	}); n != 0 {
		t.Errorf("ProbWithinBatch with a reused buffer allocates %v times", n)
	}
}

// TestProbWithinScaledMatchesScalar pins the scaled-sigma batch against the
// scalar construction it replaces in yield.Analyzer.RegionProb: the √ν dose
// scaling must be bit-identical.
func TestProbWithinScaledMatchesScalar(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 0.05}
	scales := make([]float64, 12)
	for nu := range scales {
		scales[nu] = math.Sqrt(float64(nu))
	}
	const margin = 0.158
	got := g.ProbWithinScaled(scales, margin, nil)
	for nu, scale := range scales {
		want := Gaussian{Mu: 0, Sigma: g.Sigma * scale}.ProbWithin(margin)
		if got[nu] != want {
			t.Errorf("ProbWithinScaled[%d] = %v, scalar = %v", nu, got[nu], want)
		}
	}
	// nu = 0 is the undosed-region point mass.
	if got[0] != 1 {
		t.Errorf("ProbWithinScaled[0] = %v, want 1", got[0])
	}
	// Negative delta zeroes every entry.
	neg := g.ProbWithinScaled(scales, -0.1, nil)
	for nu, p := range neg {
		if p != 0 {
			t.Errorf("negative delta: entry %d = %v, want 0", nu, p)
		}
	}
}
