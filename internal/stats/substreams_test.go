package stats

import (
	"sync"
	"testing"
)

// TestSubstreamsMatchSplitAndStreams pins the equivalence contract: At(i)
// and Block(lo, n) are bit-identical to the eager Split/Streams fan-out.
func TestSubstreamsMatchSplitAndStreams(t *testing.T) {
	base := NewRNG(42)
	eager := base.Streams(300)
	src := base.Substreams()
	for _, i := range []uint64{299, 0, 64, 7, 128, 127} { // forward and backward
		if got, want := src.At(i).Uint64(), eager[i].Clone().Uint64(); got != want {
			t.Fatalf("At(%d) first draw = %#x, want %#x", i, got, want)
		}
	}
	block := src.Block(100, 50)
	for k, r := range block {
		if got, want := r.Uint64(), eager[100+k].Clone().Uint64(); got != want {
			t.Fatalf("Block(100,50)[%d] first draw = %#x, want %#x", k, got, want)
		}
	}
	// Split is the other eager reference.
	if got, want := base.Substreams().At(5).Uint64(), base.Split(5).Uint64(); got != want {
		t.Fatalf("At(5) = %#x, Split(5) = %#x", got, want)
	}
}

// TestSubstreamsDoesNotMutateBase verifies the source snapshots the base
// state: building and draining a source leaves the base generator where it
// was.
func TestSubstreamsDoesNotMutateBase(t *testing.T) {
	base := NewRNG(7)
	ref := base.Clone()
	src := base.Substreams()
	src.At(200)
	src.Block(0, 10)
	for k := 0; k < 4; k++ {
		if got, want := base.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("base stream moved: draw %d = %#x, want %#x", k, got, want)
		}
	}
}

// TestSubstreamsConcurrent hammers one source from many goroutines with
// overlapping forward and backward access; under -race this proves the
// internal cursor and checkpoint table are properly synchronized, and the
// values must still equal the eager fan-out.
func TestSubstreamsConcurrent(t *testing.T) {
	base := NewRNG(99)
	eager := base.Streams(512)
	want := make([]uint64, 512)
	for i, r := range eager {
		want[i] = r.Clone().Uint64()
	}
	src := base.Substreams()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks a different stride pattern, so the
			// cursor sees forward and backward motion concurrently.
			for k := 0; k < 64; k++ {
				i := uint64((k*97 + g*13) % 512)
				if got := src.At(i).Uint64(); got != want[i] {
					select {
					case errs <- "substream mismatch":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSubstreamsBlockEdges covers empty and zero-length blocks.
func TestSubstreamsBlockEdges(t *testing.T) {
	src := NewRNG(1).Substreams()
	if out := src.Block(10, 0); out != nil {
		t.Errorf("Block(10, 0) = %v, want nil", out)
	}
	if out := src.Block(0, -3); out != nil {
		t.Errorf("Block(0, -3) = %v, want nil", out)
	}
}

func BenchmarkSubstreamsSequential(b *testing.B) {
	src := NewRNG(3).Substreams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.At(uint64(i))
	}
}

func BenchmarkStreamsEager(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewRNG(3).Streams(64)
	}
}
