// Package stats provides the small statistical toolbox used throughout the
// nanowire-decoder simulator: a deterministic pseudo-random number generator,
// Gaussian distribution helpers built on the error function, and summary
// statistics for Monte-Carlo experiments.
//
// Everything in this package is deterministic given a seed, so that every
// experiment and test in the repository is exactly reproducible.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through SplitMix64. It is not safe for concurrent use;
// create one RNG per goroutine.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64

	// cached second variate for the Marsaglia polar Gaussian method.
	gauss    float64
	hasGauss bool
}

// NewRNG returns a generator seeded deterministically from seed.
// Two RNGs built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state. This is the
	// initialisation recommended by the xoshiro authors: it guarantees a
	// non-zero state for every seed including zero.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire-style bounded rejection keeps the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate (mean 0, standard
// deviation 1) using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s == 0 || s >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation sigma. A non-positive sigma returns mean exactly.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*r.NormFloat64()
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new RNG whose stream is decorrelated from r but still a
// pure function of r's current state; useful to give each simulated cave or
// trial its own generator while keeping global determinism. Fork advances
// r by one draw, so successive forks differ.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Clone returns an independent copy of r: both generators continue from the
// same point of the same stream.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// jump256 and longJump256 are the standard xoshiro256** jump polynomials:
// applying them is equivalent to 2^128 (resp. 2^192) calls of Uint64.
var (
	jump256     = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	longJump256 = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
)

// advance applies one of the jump polynomials to the generator state and
// drops any cached Gaussian variate (the cache belongs to the pre-jump
// stream position).
func (r *RNG) advance(poly [4]uint64) {
	var s [4]uint64
	for _, p := range poly {
		for b := uint(0); b < 64; b++ {
			if p&(1<<b) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
	r.gauss = 0
	r.hasGauss = false
}

// Jump advances r by 2^128 steps of the xoshiro256** stream. Between two
// successive jump points there is room for 2^128 draws, so generators
// separated by jumps never overlap in practice.
func (r *RNG) Jump() { r.advance(jump256) }

// LongJump advances r by 2^192 steps — one long-jump region holds 2^64 jump
// regions, enabling two-level stream hierarchies.
func (r *RNG) LongJump() { r.advance(longJump256) }

// Split returns the i-th jump substream of r without mutating r: a copy of
// r's state advanced by i+1 jumps. Each substream starts 2^128 steps after
// the previous one, so shards that draw fewer than 2^128 values (all of
// them) are guaranteed disjoint — the reproducible sharding primitive of
// the parallel experiment drivers. Split(i) costs i+1 jump applications;
// use Streams to fan out many substreams in linear time.
func (r *RNG) Split(i uint64) *RNG {
	c := &RNG{s: r.s}
	for k := uint64(0); k <= i; k++ {
		c.Jump()
	}
	return c
}

// Streams returns n substreams identical to Split(0) .. Split(n-1), computed
// incrementally in O(n) jumps. r is not mutated.
func (r *RNG) Streams(n int) []*RNG {
	if n <= 0 {
		return nil
	}
	out := make([]*RNG, n)
	cur := &RNG{s: r.s}
	for i := range out {
		cur.Jump()
		out[i] = &RNG{s: cur.s}
	}
	return out
}
