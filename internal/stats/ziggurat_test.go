package stats

import (
	"math"
	"testing"
)

// TestNormFloat64FastMoments checks mean and variance of the ziggurat
// sampler against the standard normal.
func TestNormFloat64FastMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64Fast()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("ziggurat mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("ziggurat variance %g too far from 1", variance)
	}
}

// TestNormFloat64FastBands checks the empirical CDF at the 1σ/2σ/3σ bands
// and past the ziggurat tail cut, so both the wedge and the tail paths are
// exercised and distributed correctly.
func TestNormFloat64FastBands(t *testing.T) {
	r := NewRNG(17)
	const n = 400000
	var within1, within2, within3, beyondTail int
	for i := 0; i < n; i++ {
		v := math.Abs(r.NormFloat64Fast())
		if v < 1 {
			within1++
		}
		if v < 2 {
			within2++
		}
		if v < 3 {
			within3++
		}
		if v > zigR {
			beyondTail++
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		if f := float64(got) / n; math.Abs(f-want) > 0.005 {
			t.Errorf("%s fraction %g, want %g", name, f, want)
		}
	}
	check("1σ", within1, 0.6827)
	check("2σ", within2, 0.9545)
	check("3σ", within3, 0.9973)
	// P(|Z| > zigR) ≈ 5.76e-4: the tail path must fire but stay rare.
	if beyondTail == 0 {
		t.Error("tail path never sampled")
	}
	if f := float64(beyondTail) / n; f > 0.002 {
		t.Errorf("tail fraction %g too large", f)
	}
}

// TestNormFloat64FastDeterministic pins the determinism contract: equal
// seeds give equal sequences, and the sampler is a pure function of the
// generator state (a clone continues identically).
func TestNormFloat64FastDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.NormFloat64Fast() != b.NormFloat64Fast() {
			t.Fatalf("sequences diverged at draw %d", i)
		}
	}
	c := a.Clone()
	for i := 0; i < 1000; i++ {
		if a.NormFloat64Fast() != c.NormFloat64Fast() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
}

// TestNormalFastSigmaZero checks the no-draw contract for non-positive
// sigma: the mean comes back exactly and the stream does not advance.
func TestNormalFastSigmaZero(t *testing.T) {
	r := NewRNG(3)
	ref := NewRNG(3)
	for i := 0; i < 10; i++ {
		if v := r.NormalFast(2.5, 0); v != 2.5 {
			t.Fatalf("NormalFast with sigma 0 returned %g", v)
		}
		if v := r.NormalFast(-1, -0.5); v != -1 {
			t.Fatalf("NormalFast with negative sigma returned %g", v)
		}
	}
	if r.Uint64() != ref.Uint64() {
		t.Fatal("NormalFast with sigma <= 0 consumed draws")
	}
}

// BenchmarkNormFloat64 and BenchmarkNormFloat64Fast quantify the sampler
// swap on the Monte-Carlo hot path.
func BenchmarkNormFloat64(b *testing.B) {
	r := NewRNG(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.NormFloat64()
	}
	if math.IsNaN(s) {
		b.Fatal("NaN")
	}
}

func BenchmarkNormFloat64Fast(b *testing.B) {
	r := NewRNG(1)
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += r.NormFloat64Fast()
	}
	if math.IsNaN(s) {
		b.Fatal("NaN")
	}
}
