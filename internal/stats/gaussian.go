package stats

import (
	"fmt"
	"math"
)

// Gaussian is a normal distribution with mean Mu and standard deviation
// Sigma. Sigma must be non-negative; Sigma == 0 denotes a point mass at Mu.
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// CDF returns P(X <= x).
func (g Gaussian) CDF(x float64) float64 {
	if g.Sigma == 0 {
		if x < g.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
}

// ProbWithin returns P(|X - Mu| <= delta), the probability that the variate
// stays within +/- delta of its mean. This is the addressability primitive of
// the yield model: a doping region decodes correctly when its threshold
// voltage stays within half a level spacing of its nominal value.
func (g Gaussian) ProbWithin(delta float64) float64 {
	if delta < 0 {
		return 0
	}
	if g.Sigma == 0 {
		return 1
	}
	return math.Erf(delta / (g.Sigma * math.Sqrt2))
}

// ProbBetween returns P(lo <= X <= hi). It returns 0 when hi < lo.
func (g Gaussian) ProbBetween(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return g.CDF(hi) - g.CDF(lo)
}

// Sample draws one variate using the supplied generator.
func (g Gaussian) Sample(r *RNG) float64 {
	return r.Normal(g.Mu, g.Sigma)
}

// String implements fmt.Stringer.
func (g Gaussian) String() string {
	return fmt.Sprintf("N(%g, %g²)", g.Mu, g.Sigma)
}

// AddIndependent returns the distribution of the sum of two independent
// Gaussian variates: means add, variances add.
func AddIndependent(a, b Gaussian) Gaussian {
	return Gaussian{
		Mu:    a.Mu + b.Mu,
		Sigma: math.Sqrt(a.Sigma*a.Sigma + b.Sigma*b.Sigma),
	}
}
