package stats

import (
	"fmt"
	"math"
)

// Gaussian is a normal distribution with mean Mu and standard deviation
// Sigma. Sigma must be non-negative; Sigma == 0 denotes a point mass at Mu.
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// CDF returns P(X <= x).
func (g Gaussian) CDF(x float64) float64 {
	if g.Sigma == 0 {
		if x < g.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-g.Mu)/(g.Sigma*math.Sqrt2)))
}

// ProbWithin returns P(|X - Mu| <= delta), the probability that the variate
// stays within +/- delta of its mean. This is the addressability primitive of
// the yield model: a doping region decodes correctly when its threshold
// voltage stays within half a level spacing of its nominal value.
func (g Gaussian) ProbWithin(delta float64) float64 {
	if delta < 0 {
		return 0
	}
	if g.Sigma == 0 {
		return 1
	}
	return math.Erf(delta / (g.Sigma * math.Sqrt2))
}

// ProbWithinBatch evaluates ProbWithin over a batch of deltas in one call,
// writing into dst (which is grown if needed) and returning it. Entry k is
// bit-identical to g.ProbWithin(deltas[k]); batching exists so tight sweep
// loops evaluate the erf tail without a function call and bounds checks per
// element, and so callers can reuse one output buffer across evaluations.
func (g Gaussian) ProbWithinBatch(deltas, dst []float64) []float64 {
	if cap(dst) < len(deltas) {
		dst = make([]float64, len(deltas))
	}
	dst = dst[:len(deltas)]
	for k, delta := range deltas {
		switch {
		case delta < 0:
			dst[k] = 0
		case g.Sigma == 0:
			dst[k] = 1
		default:
			dst[k] = math.Erf(delta / (g.Sigma * math.Sqrt2))
		}
	}
	return dst
}

// ProbWithinScaled evaluates P(|N(Mu, (Sigma·scale)²) - Mu| <= delta) for a
// batch of sigma scale factors, writing into dst (grown if needed) and
// returning it. Entry k is bit-identical to
// Gaussian{Mu: g.Mu, Sigma: g.Sigma * scales[k]}.ProbWithin(delta) — the
// repeated-dose tail evaluation of the yield model, where the k-th region
// accumulates k independent doses and its deviation scales by √k.
func (g Gaussian) ProbWithinScaled(scales []float64, delta float64, dst []float64) []float64 {
	if cap(dst) < len(scales) {
		dst = make([]float64, len(scales))
	}
	dst = dst[:len(scales)]
	for k, scale := range scales {
		sigma := g.Sigma * scale
		switch {
		case delta < 0:
			dst[k] = 0
		case sigma == 0:
			dst[k] = 1
		default:
			dst[k] = math.Erf(delta / (sigma * math.Sqrt2))
		}
	}
	return dst
}

// ProbBetween returns P(lo <= X <= hi). It returns 0 when hi < lo.
func (g Gaussian) ProbBetween(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return g.CDF(hi) - g.CDF(lo)
}

// Sample draws one variate using the supplied generator.
func (g Gaussian) Sample(r *RNG) float64 {
	return r.Normal(g.Mu, g.Sigma)
}

// String implements fmt.Stringer.
func (g Gaussian) String() string {
	return fmt.Sprintf("N(%g, %g²)", g.Mu, g.Sigma)
}

// AddIndependent returns the distribution of the sum of two independent
// Gaussian variates: means add, variances add.
func AddIndependent(a, b Gaussian) Gaussian {
	return Gaussian{
		Mu:    a.Mu + b.Mu,
		Sigma: math.Sqrt(a.Sigma*a.Sigma + b.Sigma*b.Sigma),
	}
}
