package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs; it returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. It returns NaN
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest element of xs.
// It returns (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty slice
// or an out-of-range q. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median       float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
		Median: Quantile(xs, 0.5),
	}
}

// Histogram counts xs into n equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the first/last bin. It returns nil when
// n <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// BinomialTailGE returns P(X >= k) for X ~ Binomial(n, p), evaluated in log
// space for numerical stability. It returns 1 for k <= 0 and 0 for k > n.
func BinomialTailGE(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p < 0 || p > 1 {
		if k > n {
			return 0
		}
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return 1
	}
	logP, logQ := math.Log(p), math.Log(1-p)
	tail := 0.0
	for i := k; i <= n; i++ {
		logTerm := logChoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		tail += math.Exp(logTerm)
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// logChoose returns ln C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
