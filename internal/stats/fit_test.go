package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCovarianceKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	// cov = 2 * var(xs); var(xs) = 5/3.
	if got := Covariance(xs, ys); !almostEqual(got, 10.0/3.0, 1e-12) {
		t.Errorf("Covariance = %g", got)
	}
	if !math.IsNaN(Covariance(xs, ys[:3])) {
		t.Error("mismatched lengths should be NaN")
	}
	if !math.IsNaN(Covariance([]float64{1}, []float64{2})) {
		t.Error("single pair should be NaN")
	}
}

func TestCorrelationExtremes(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{5, 4, 3, 2, 1}
	if got := Correlation(xs, up); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %g", got)
	}
	if got := Correlation(xs, down); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %g", got)
	}
	if !math.IsNaN(Correlation(xs, []float64{3, 3, 3, 3, 3})) {
		t.Error("constant series correlation should be NaN")
	}
}

func TestCorrelationIndependentNearZero(t *testing.T) {
	r := NewRNG(17)
	const n = 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	if got := Correlation(xs, ys); math.Abs(got) > 0.03 {
		t.Errorf("independent correlation = %g", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	l := LinearFit(xs, ys)
	if !almostEqual(l.Slope, 2, 1e-12) || !almostEqual(l.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", l)
	}
	if !almostEqual(l.R2, 1, 1e-12) {
		t.Errorf("R2 = %g", l.R2)
	}
	if !almostEqual(l.At(10), 21, 1e-12) {
		t.Errorf("At(10) = %g", l.At(10))
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	l := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(l.Slope) {
		t.Error("degenerate x should give NaN slope")
	}
	l = LinearFit([]float64{1}, []float64{1})
	if !math.IsNaN(l.Slope) {
		t.Error("single point should give NaN slope")
	}
	l = LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almostEqual(l.Slope, 0, 1e-12) || !almostEqual(l.R2, 1, 1e-12) {
		t.Errorf("constant y fit = %+v", l)
	}
}

func TestLinearFitRecoversNoisyLineProperty(t *testing.T) {
	f := func(seed uint64, slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw) / 16
		intercept := float64(interceptRaw) / 16
		r := NewRNG(seed)
		xs := make([]float64, 200)
		ys := make([]float64, 200)
		for i := range xs {
			xs[i] = float64(i) / 10
			ys[i] = slope*xs[i] + intercept + r.Normal(0, 0.01)
		}
		l := LinearFit(xs, ys)
		return math.Abs(l.Slope-slope) < 0.01 && math.Abs(l.Intercept-intercept) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
