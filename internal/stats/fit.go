package stats

import "math"

// Covariance returns the unbiased sample covariance of paired samples.
// It returns NaN for fewer than two pairs or mismatched lengths.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient of paired
// samples, NaN when undefined (constant series or too few points).
func Correlation(xs, ys []float64) float64 {
	cov := Covariance(xs, ys)
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 || math.IsNaN(cov) {
		return math.NaN()
	}
	return cov / (sx * sy)
}

// Line is a fitted y = Slope·x + Intercept model.
type Line struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// LinearFit performs ordinary least squares on paired samples. It returns a
// zero Line with NaN fields for fewer than two points or a degenerate x.
func LinearFit(xs, ys []float64) Line {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Line{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := sxy / sxx
	line := Line{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		line.R2 = 1 // constant y is fit perfectly by the horizontal line
	} else {
		line.R2 = sxy * sxy / (sxx * syy)
	}
	return line
}

// At evaluates the fitted line.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }
