package code

import (
	"errors"
	"testing"
)

func TestBalancedGrayIsGray(t *testing.T) {
	for _, base := range []int{2, 3} {
		for _, m := range []int{6, 8, 10} {
			b, err := NewBalancedGray(base, m)
			if err != nil {
				t.Fatal(err)
			}
			n := 20
			if n > b.SpaceSize() {
				n = b.SpaceSize()
			}
			words, err := b.Sequence(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(words, base, m); err != nil {
				t.Fatalf("base %d M %d: %v", base, m, err)
			}
			// Reflected: exactly two digit changes per step.
			for i, tr := range Transitions(words) {
				if tr != 2 {
					t.Fatalf("base %d M %d step %d: %d changes, want 2", base, m, i, tr)
				}
			}
		}
	}
}

func TestBalancedGrayBalancesBetterThanGray(t *testing.T) {
	// The defining property: for the paper's Fig. 6 setting (N=20 binary
	// words), the BGC spreads digit transitions more evenly than the GC.
	const n, m = 20, 10
	g, _ := NewGray(2, m)
	b, _ := NewBalancedGray(2, m)
	gw, err := g.Sequence(n)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := b.Sequence(n)
	if err != nil {
		t.Fatal(err)
	}
	gMax := MaxDigitTransitions(gw)
	bMax := MaxDigitTransitions(bw)
	if bMax > gMax {
		t.Errorf("BGC max per-digit transitions %d worse than GC %d", bMax, gMax)
	}
	if bMax == gMax {
		t.Logf("note: BGC only matched GC balance (%d); acceptable but unexpected", bMax)
	}
	// Total transitions must be identical (both are Gray paths of N words).
	if TotalTransitions(gw) != TotalTransitions(bw) {
		t.Errorf("total transitions differ: GC %d, BGC %d",
			TotalTransitions(gw), TotalTransitions(bw))
	}
}

func TestBalancedGrayMeetsPaperLimitWhenFeasible(t *testing.T) {
	// Paper: limit on per-digit changes set to 2. With N=20 words and
	// M/2=5 base digits, 19 transitions cannot fit under 2x5=10; but with
	// N=10, ceil(9/5)=2 is feasible and the search must achieve it.
	b, _ := NewBalancedGray(2, 10)
	words, err := b.Sequence(10)
	if err != nil {
		t.Fatal(err)
	}
	// Per-base-digit counts: look at first half of the reflected words.
	bases := make([]Word, len(words))
	for i, w := range words {
		bases[i] = w[:5]
	}
	if got := MaxDigitTransitions(bases); got > 2 {
		t.Errorf("max per-digit transitions %d, want <= 2", got)
	}
}

func TestBalancedGrayAchievesFeasibilityMinimum(t *testing.T) {
	// 16 words over 4 base digits: 15 transitions, minimum max = 4.
	b, _ := NewBalancedGray(2, 8)
	words, err := b.Sequence(16)
	if err != nil {
		t.Fatal(err)
	}
	bases := make([]Word, len(words))
	for i, w := range words {
		bases[i] = w[:4]
	}
	if got := MaxDigitTransitions(bases); got != 4 {
		t.Errorf("max per-digit transitions = %d, want the feasibility minimum 4", got)
	}
}

func TestBalancedGrayEdgeCounts(t *testing.T) {
	b, _ := NewBalancedGray(2, 6)
	if w, err := b.Sequence(0); err != nil || len(w) != 0 {
		t.Errorf("Sequence(0) = %v, %v", w, err)
	}
	w, err := b.Sequence(1)
	if err != nil || len(w) != 1 {
		t.Fatalf("Sequence(1) = %v, %v", w, err)
	}
	if w[0].String() != "000111" {
		t.Errorf("first word = %s, want 000111", w[0])
	}
	if _, err := b.Sequence(b.SpaceSize() + 1); !errors.Is(err, ErrCountExceedsSpace) {
		t.Error("oversize request accepted")
	}
	if _, err := b.Sequence(-1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestBalancedGrayDeterministic(t *testing.T) {
	b1, _ := NewBalancedGray(2, 8)
	b2, _ := NewBalancedGray(2, 8)
	w1, _ := b1.Sequence(20)
	w2, _ := b2.Sequence(20)
	for i := range w1 {
		if !w1[i].Equal(w2[i]) {
			t.Fatalf("non-deterministic at word %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestBalancedGrayCacheReturnsCopies(t *testing.T) {
	b, _ := NewBalancedGray(2, 6)
	w1, _ := b.Sequence(5)
	w1[0][0] = 1 // mutate caller copy
	w2, _ := b.Sequence(5)
	if w2[0][0] == 1 {
		t.Error("cache leaked mutable words")
	}
}

func TestBalancedGrayFallbackUnderZeroBudget(t *testing.T) {
	b, _ := NewBalancedGray(2, 8)
	b.SearchBudget = 0
	words, err := b.Sequence(10)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback must still be a valid Gray sequence over distinct words.
	if err := Validate(words, 2, 8); err != nil {
		t.Fatal(err)
	}
	if !IsGraySequence(words, 2) {
		t.Error("fallback is not a Gray sequence")
	}
}

func TestBalancedGrayValidation(t *testing.T) {
	if _, err := NewBalancedGray(2, 7); err == nil {
		t.Error("odd length accepted")
	}
	if _, err := NewBalancedGray(0, 4); err == nil {
		t.Error("base 0 accepted")
	}
}
