package code

import (
	"testing"
	"testing/quick"
)

func TestDominatedBy(t *testing.T) {
	if !FromDigits(0, 1, 0).DominatedBy(FromDigits(0, 1, 1)) {
		t.Error("clear domination missed")
	}
	if !FromDigits(0, 1).DominatedBy(FromDigits(0, 1)) {
		t.Error("equality is domination")
	}
	if FromDigits(1, 0).DominatedBy(FromDigits(0, 1)) {
		t.Error("incomparable words reported dominated")
	}
	if FromDigits(0, 1).DominatedBy(FromDigits(0, 1, 1)) {
		t.Error("length mismatch accepted")
	}
}

func TestReflectedWordsFormAntichain(t *testing.T) {
	// The theoretical core of the reflected form: any set of distinct
	// reflected words is an antichain, for every base and length.
	for _, cfg := range []struct{ base, m int }{{2, 8}, {3, 6}, {4, 4}} {
		for _, mk := range []func(int, int) (Generator, error){
			func(b, m int) (Generator, error) { return NewTree(b, m) },
			func(b, m int) (Generator, error) { return NewGray(b, m) },
		} {
			g, err := mk(cfg.base, cfg.m)
			if err != nil {
				t.Fatal(err)
			}
			words, err := g.Sequence(g.SpaceSize())
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyAddressable(words, cfg.base, cfg.m); err != nil {
				t.Errorf("%v base %d M %d: %v", g.Type(), cfg.base, cfg.m, err)
			}
		}
	}
}

func TestHotWordsFormAntichain(t *testing.T) {
	for _, cfg := range []struct{ base, m int }{{2, 6}, {2, 8}, {3, 6}} {
		h, _ := NewHot(cfg.base, cfg.m)
		words, err := h.Sequence(h.SpaceSize())
		if err != nil {
			t.Fatal(err)
		}
		if !IsAntichain(words) {
			t.Errorf("HC(n=%d, M=%d) words are not an antichain", cfg.base, cfg.m)
		}
	}
}

func TestNonReflectedTreeWordsAreNotAntichain(t *testing.T) {
	// The counter-example motivating reflection: raw counting words
	// dominate each other (0000 <= 0001 <= ...).
	words := []Word{
		FromDigits(0, 0, 0, 0),
		FromDigits(0, 0, 0, 1),
		FromDigits(0, 0, 1, 1),
	}
	if IsAntichain(words) {
		t.Error("raw counting words wrongly accepted as antichain")
	}
	i, j := FirstDomination(words)
	if i != 0 || j != 1 {
		t.Errorf("FirstDomination = (%d, %d), want (0, 1)", i, j)
	}
	if err := VerifyAddressable(words, 2, 4); err == nil {
		t.Error("VerifyAddressable accepted a dominated set")
	}
}

func TestFirstDominationAntichain(t *testing.T) {
	words := []Word{FromDigits(0, 1), FromDigits(1, 0)}
	if i, j := FirstDomination(words); i != -1 || j != -1 {
		t.Errorf("antichain returned (%d, %d)", i, j)
	}
}

func TestBGCAndAHCAddressableProperty(t *testing.T) {
	f := func(countRaw uint8) bool {
		count := int(countRaw%18) + 2 // AHC(6,3) space holds 20 words
		b, _ := NewBalancedGray(2, 10)
		a, _ := NewArrangedHot(2, 6)
		bw, err1 := b.Sequence(count)
		aw, err2 := a.Sequence(count)
		if err1 != nil || err2 != nil {
			return false
		}
		return VerifyAddressable(bw, 2, 10) == nil && VerifyAddressable(aw, 2, 6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReflectionCreatesAntichainProperty(t *testing.T) {
	// Reflecting any set of distinct base words yields an antichain.
	f := func(raw []uint8, baseRaw uint8) bool {
		base := int(baseRaw%3) + 2
		const l = 4
		seen := map[string]bool{}
		var words []Word
		for i := 0; i+l <= len(raw) && len(words) < 12; i += l {
			w := make(Word, l)
			for j := 0; j < l; j++ {
				w[j] = int(raw[i+j]) % base
			}
			if seen[w.Key()] {
				continue
			}
			seen[w.Key()] = true
			words = append(words, w.Reflect(base))
		}
		return IsAntichain(words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
