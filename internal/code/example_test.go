package code_test

import (
	"fmt"

	"nwdec/internal/code"
)

// The reflection rule of Sec. 2.3: a tree-code word gets its
// (n-1)-complement appended, which makes any set of distinct words an
// antichain and therefore uniquely addressable.
func ExampleWord_Reflect() {
	w, _ := code.ParseWord("0010", 3)
	fmt.Println(w.Reflect(3))
	// Output: 00102212
}

// The first words of the ternary Gray arrangement: one base digit changes
// per step (two digits after reflection).
func ExampleGray_Sequence() {
	g, _ := code.NewGray(3, 4)
	words, _ := g.Sequence(4)
	for _, w := range words {
		fmt.Println(w)
	}
	// Output:
	// 0022
	// 0121
	// 0220
	// 1210
}

// Hot-code words have fixed value counts; successive arranged-hot words
// differ by exactly one transposition.
func ExampleArrangedHot_Sequence() {
	a, _ := code.NewArrangedHot(2, 4)
	words, _ := a.Sequence(3)
	for i, w := range words {
		if i == 0 {
			fmt.Println(w)
			continue
		}
		fmt.Println(w, "changes:", w.Hamming(words[i-1]))
	}
	// Output:
	// 0011
	// 1001 changes: 2
	// 1100 changes: 2
}

// The arrangement optimizer orders arbitrary word sets Gray-fashion,
// minimizing the position-weighted transition cost that drives ‖Σ‖₁.
func ExampleOptimizeArrangement() {
	words := []code.Word{
		code.FromDigits(0, 0, 1, 1),
		code.FromDigits(1, 1, 0, 0),
		code.FromDigits(0, 1, 0, 1),
		code.FromDigits(1, 0, 1, 0),
	}
	fmt.Println("before:", code.WeightedTransitionCost(words))
	opt := code.OptimizeArrangement(words, 1000)
	fmt.Println("after: ", code.WeightedTransitionCost(opt))
	// Output:
	// before: 20
	// after:  12
}
