package code

import (
	"testing"
	"testing/quick"

	"nwdec/internal/stats"
)

func TestWeightedTransitionCost(t *testing.T) {
	words := []Word{
		FromDigits(0, 0), FromDigits(0, 1), FromDigits(1, 0),
	}
	// step 0: d=1, weight 1; step 1: d=2, weight 2 -> 5.
	if got := WeightedTransitionCost(words); got != 5 {
		t.Errorf("cost = %d, want 5", got)
	}
	if WeightedTransitionCost(nil) != 0 || WeightedTransitionCost(words[:1]) != 0 {
		t.Error("degenerate costs should be 0")
	}
}

func TestArrangementLowerBound(t *testing.T) {
	if got := ArrangementLowerBound(20, 2); got != 2*19*20/2 {
		t.Errorf("bound = %d", got)
	}
	if ArrangementLowerBound(1, 2) != 0 {
		t.Error("single word bound should be 0")
	}
}

func TestGrayAchievesLowerBound(t *testing.T) {
	// Reflected Gray words have every step at exactly 2 changes — the
	// distance minimum — so they meet the arrangement lower bound exactly.
	g, _ := NewGray(2, 10)
	words, err := g.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	want := ArrangementLowerBound(20, 2)
	if got := WeightedTransitionCost(words); got != want {
		t.Errorf("Gray cost %d, lower bound %d", got, want)
	}
}

func TestOptimizeArrangementImprovesRandomOrder(t *testing.T) {
	// Take the BGC's word set, shuffle it, and check the optimizer
	// recovers (nearly) the lower-bound cost.
	b, _ := NewBalancedGray(2, 10)
	words, err := b.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(123)
	shuffled := make([]Word, len(words))
	for i, p := range rng.Perm(len(words)) {
		shuffled[i] = words[p]
	}
	before := WeightedTransitionCost(shuffled)
	optimized := OptimizeArrangement(shuffled, 0)
	after := WeightedTransitionCost(optimized)
	bound := ArrangementLowerBound(len(words), 2)
	if after >= before {
		t.Errorf("optimizer did not improve: %d -> %d", before, after)
	}
	if after > bound*3/2 {
		t.Errorf("optimized cost %d far above lower bound %d", after, bound)
	}
	// Same multiset of words.
	if err := Validate(optimized, 2, 10); err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool)
	for _, w := range words {
		set[w.Key()] = true
	}
	for _, w := range optimized {
		if !set[w.Key()] {
			t.Fatalf("optimizer invented word %v", w)
		}
	}
}

func TestOptimizeArrangementDoesNotMutateInput(t *testing.T) {
	words := []Word{
		FromDigits(0, 0), FromDigits(1, 1), FromDigits(0, 1), FromDigits(1, 0),
	}
	snapshot := CloneWords(words)
	OptimizeArrangement(words, 100)
	for i := range words {
		if !words[i].Equal(snapshot[i]) {
			t.Fatal("input mutated")
		}
	}
}

func TestOptimizeArrangementSmallInputs(t *testing.T) {
	if got := OptimizeArrangement(nil, 10); len(got) != 0 {
		t.Error("empty input mishandled")
	}
	two := []Word{FromDigits(0), FromDigits(1)}
	if got := OptimizeArrangement(two, 10); len(got) != 2 {
		t.Error("two-word input mishandled")
	}
}

func TestOptimizeArrangementDeterministic(t *testing.T) {
	h, _ := NewHot(2, 8)
	words, _ := h.Sequence(20)
	a := OptimizeArrangement(words, 5000)
	b := OptimizeArrangement(words, 5000)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("optimizer not deterministic")
		}
	}
}

func TestOptimizeArrangementNeverWorseProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 4 // space size is 16
		tc, err := NewTree(2, 8)
		if err != nil {
			return false
		}
		full, err := tc.Sequence(tc.SpaceSize())
		if err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		perm := rng.Perm(len(full))
		words := make([]Word, n)
		for i := 0; i < n; i++ {
			words[i] = full[perm[i]]
		}
		opt := OptimizeArrangement(words, 2000)
		return WeightedTransitionCost(opt) <= WeightedTransitionCost(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
