// Package code implements the nanowire encoding schemes of the paper:
// n-ary tree codes (TC), their Gray (GC) and balanced-Gray (BGC)
// arrangements, hot codes (HC) and arranged hot codes (AHC), together with
// the reflection operation and the transition metrics that drive the
// fabrication-complexity and variability analysis.
//
// A code word is a fixed-length vector of digits in {0, ..., n-1}. The rows
// of the pattern matrix P of the MSPT decoder are consecutive words of a
// chosen code sequence, so the *arrangement* of a code space — how many
// digits flip between successive words and in which columns — directly sets
// the number of extra lithography/doping steps (Φ) and the threshold-voltage
// variability (Σ) of the fabricated decoder.
package code

import (
	"fmt"
	"strconv"
	"strings"
)

// Word is a code word: digits most-significant first, each in [0, base).
type Word []int

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	return append(Word(nil), w...)
}

// Equal reports whether w and v have identical length and digits.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// Hamming returns the number of positions at which w and v differ.
// It panics if the lengths differ.
func (w Word) Hamming(v Word) int {
	if len(w) != len(v) {
		panic(fmt.Sprintf("code: Hamming distance of words with lengths %d and %d", len(w), len(v)))
	}
	d := 0
	for i := range w {
		if w[i] != v[i] {
			d++
		}
	}
	return d
}

// Complement returns the digit-wise (base-1)-complement of w, the quantity
// subtracted from the largest word of the space in the paper's reflection
// rule: complement(d) = base-1-d.
func (w Word) Complement(base int) Word {
	c := make(Word, len(w))
	for i, d := range w {
		c[i] = base - 1 - d
	}
	return c
}

// Reflect returns w with its complement appended, doubling the length. This
// is the "reflected" form required to address nanowires with tree-based
// codes (Sec. 2.3): e.g. 0010 over base 3 becomes 00102212.
func (w Word) Reflect(base int) Word {
	return append(w.Clone(), w.Complement(base)...)
}

// IsReflectionOf reports whether w equals base word v followed by its
// complement.
func (w Word) IsReflectionOf(v Word, base int) bool {
	return len(w) == 2*len(v) && w.Equal(v.Reflect(base))
}

// Valid reports whether every digit of w lies in [0, base).
func (w Word) Valid(base int) bool {
	for _, d := range w {
		if d < 0 || d >= base {
			return false
		}
	}
	return true
}

// Counts returns how many times each value 0..base-1 occurs in w.
func (w Word) Counts(base int) []int {
	c := make([]int, base)
	for _, d := range w {
		if d >= 0 && d < base {
			c[d]++
		}
	}
	return c
}

// Key returns a compact comparable key for use in maps. Words longer than
// 64 digits or with base > 36 are not supported by the simulator and panic.
func (w Word) Key() string {
	var sb strings.Builder
	for _, d := range w {
		if d < 0 || d >= 36 {
			panic("code: Key supports digits in [0,36)")
		}
		sb.WriteByte(digitChar(d))
	}
	return sb.String()
}

// String renders the word as a digit string, e.g. "00102212".
func (w Word) String() string { return w.Key() }

func digitChar(d int) byte {
	if d < 10 {
		return byte('0' + d)
	}
	return byte('a' + d - 10)
}

// ParseWord parses a digit string produced by Word.String back into a Word
// and validates it against the given base.
func ParseWord(s string, base int) (Word, error) {
	w := make(Word, 0, len(s))
	for i, r := range s {
		d, err := strconv.ParseInt(string(r), 36, 32)
		if err != nil {
			return nil, fmt.Errorf("code: invalid digit %q at position %d", r, i)
		}
		w = append(w, int(d))
	}
	if !w.Valid(base) {
		return nil, fmt.Errorf("code: word %q has digits outside base %d", s, base)
	}
	return w, nil
}

// FromDigits builds a Word from the given digits (a convenience for tests
// and examples); the digits are copied.
func FromDigits(digits ...int) Word {
	return append(Word(nil), digits...)
}

// CloneWords returns a deep copy of a word slice.
func CloneWords(ws []Word) []Word {
	out := make([]Word, len(ws))
	for i, w := range ws {
		out[i] = w.Clone()
	}
	return out
}
