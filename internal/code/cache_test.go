package code

import (
	"sync"
	"testing"
)

func TestCachedReturnsSameInstance(t *testing.T) {
	a, err := Cached(TypeBalancedGray, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(TypeBalancedGray, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key returned distinct generator instances")
	}
	c, err := Cached(TypeBalancedGray, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("distinct keys shared one generator instance")
	}
}

func TestCachedMatchesNew(t *testing.T) {
	for _, tp := range AllTypes() {
		cached, err := Cached(tp, 2, 6)
		if err != nil {
			t.Fatalf("%v: %v", tp, err)
		}
		fresh, err := New(tp, 2, 6)
		if err != nil {
			t.Fatalf("%v: %v", tp, err)
		}
		cs, err := cached.Sequence(cached.SpaceSize())
		if err != nil {
			t.Fatal(err)
		}
		fs, err := fresh.Sequence(fresh.SpaceSize())
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != len(fs) {
			t.Fatalf("%v: cached space %d != fresh space %d", tp, len(cs), len(fs))
		}
		for i := range cs {
			if cs[i].String() != fs[i].String() {
				t.Fatalf("%v: word %d differs: %s != %s", tp, i, cs[i], fs[i])
			}
		}
	}
}

func TestCachedCachesError(t *testing.T) {
	if _, err := Cached(TypeGray, 2, 7); err == nil {
		t.Fatal("odd Gray length accepted")
	}
	// The failure is memoized too; asking again must keep failing.
	if _, err := Cached(TypeGray, 2, 7); err == nil {
		t.Fatal("cached error lost on second lookup")
	}
}

func TestCachedConcurrent(t *testing.T) {
	const goroutines = 16
	gens := make([]Generator, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, err := Cached(TypeArrangedHot, 2, 6)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent Sequence calls exercise the generator's internal
			// word cache under the race detector.
			if _, err := gen.Sequence(gen.SpaceSize()); err != nil {
				t.Error(err)
				return
			}
			gens[g] = gen
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if gens[g] != gens[0] {
			t.Fatalf("goroutine %d got a different instance", g)
		}
	}
}
