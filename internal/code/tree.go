package code

import "fmt"

// Tree is the n-ary tree code TC in reflected form: word i consists of the
// base-n digits of i (most-significant first, M/2 digits) followed by their
// (n-1)-complement. Successive words differ wherever the base-n counter
// carries, so transitions can touch many digits — the cost the Gray
// arrangement removes.
type Tree struct {
	base   int
	length int // total, including reflection
}

// NewTree returns the reflected tree code of the given base with total word
// length M (M even; the free half has M/2 digits).
func NewTree(base, length int) (*Tree, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if length < 2 || length%2 != 0 {
		return nil, fmt.Errorf("code: reflected tree code needs even length >= 2, got %d", length)
	}
	return &Tree{base: base, length: length}, nil
}

// Type implements Generator.
func (t *Tree) Type() Type { return TypeTree }

// Base implements Generator.
func (t *Tree) Base() int { return t.base }

// Length implements Generator.
func (t *Tree) Length() int { return t.length }

// BaseLength returns the number of free digits M/2.
func (t *Tree) BaseLength() int { return t.length / 2 }

// SpaceSize implements Generator: Ω = n^(M/2).
func (t *Tree) SpaceSize() int { return pow(t.base, t.BaseLength()) }

// Sequence implements Generator, returning reflected words in counting
// order: 00..0, 00..1, ...
func (t *Tree) Sequence(count int) ([]Word, error) {
	if count < 0 {
		return nil, fmt.Errorf("code: negative word count %d", count)
	}
	if count > t.SpaceSize() {
		return nil, fmt.Errorf("%w: tree code base %d length %d has %d words, requested %d",
			ErrCountExceedsSpace, t.base, t.length, t.SpaceSize(), count)
	}
	words := make([]Word, count)
	for i := 0; i < count; i++ {
		words[i] = t.BaseWord(i).Reflect(t.base)
	}
	return words, nil
}

// BaseWord returns the un-reflected M/2-digit base-n representation of
// index i, most-significant digit first.
func (t *Tree) BaseWord(i int) Word {
	l := t.BaseLength()
	w := make(Word, l)
	for j := l - 1; j >= 0; j-- {
		w[j] = i % t.base
		i /= t.base
	}
	return w
}

// IndexOf returns the sequence index of a reflected tree-code word, or an
// error if the word is not a valid reflected word of this space.
func (t *Tree) IndexOf(w Word) (int, error) {
	l := t.BaseLength()
	if len(w) != t.length {
		return 0, fmt.Errorf("code: word length %d, want %d", len(w), t.length)
	}
	base := w[:l]
	if !Word(base).Valid(t.base) || !w.IsReflectionOf(base, t.base) {
		return 0, fmt.Errorf("code: %v is not a reflected base-%d tree word", w, t.base)
	}
	idx := 0
	for _, d := range base {
		idx = idx*t.base + d
	}
	return idx, nil
}
