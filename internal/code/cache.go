package code

import "sync"

// cacheKey identifies one arrangement search result.
type cacheKey struct {
	t      Type
	base   int
	length int
}

// cacheEntry is populated exactly once per key.
type cacheEntry struct {
	once sync.Once
	g    Generator
	err  error
}

var generatorCache sync.Map // cacheKey -> *cacheEntry

// Cached returns a process-wide shared Generator for (t, base, length),
// constructing it at most once. The expensive arrangement searches (the
// balanced-Gray and arranged-hot backtracking) are thereby paid once per
// process instead of once per design point — every figure and sweep
// re-derives the same handful of generators.
//
// The returned Generator is shared: it is safe for concurrent Sequence
// calls, but callers must not mutate its exported tuning fields
// (SearchBudget, DigitChangeTarget); use New for a private instance.
func Cached(t Type, base, length int) (Generator, error) {
	k := cacheKey{t: t, base: base, length: length}
	v, _ := generatorCache.LoadOrStore(k, &cacheEntry{})
	e := v.(*cacheEntry)
	e.once.Do(func() {
		e.g, e.err = New(t, base, length)
	})
	return e.g, e.err
}
