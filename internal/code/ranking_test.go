package code

import (
	"testing"
	"testing/quick"
)

func TestHotRankUnrankRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ base, m int }{{2, 4}, {2, 6}, {2, 8}, {3, 6}} {
		h, err := NewHot(cfg.base, cfg.m)
		if err != nil {
			t.Fatal(err)
		}
		words, err := h.Sequence(h.SpaceSize())
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range words {
			rank, err := h.Rank(w)
			if err != nil {
				t.Fatalf("Rank(%v): %v", w, err)
			}
			if rank != i {
				t.Errorf("HC(n=%d,M=%d): Rank(word %d) = %d", cfg.base, cfg.m, i, rank)
			}
			back, err := h.Unrank(i)
			if err != nil || !back.Equal(w) {
				t.Errorf("Unrank(%d) = %v, %v; want %v", i, back, err, w)
			}
		}
	}
}

func TestHotRankRejectsNonMembers(t *testing.T) {
	h, _ := NewHot(2, 4)
	if _, err := h.Rank(FromDigits(0, 0, 0, 1)); err == nil {
		t.Error("unbalanced word ranked")
	}
	if _, err := h.Rank(FromDigits(0, 1)); err == nil {
		t.Error("short word ranked")
	}
}

func TestHotUnrankBounds(t *testing.T) {
	h, _ := NewHot(2, 6)
	if _, err := h.Unrank(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := h.Unrank(h.SpaceSize()); err == nil {
		t.Error("rank == Ω accepted")
	}
}

func TestArrangements(t *testing.T) {
	// 4 positions for {2x0, 2x1}: C(4,2) = 6.
	if got := arrangements([]int{2, 2}, 4); got != 6 {
		t.Errorf("arrangements = %d, want 6", got)
	}
	// Mismatched total -> 0.
	if got := arrangements([]int{2, 2}, 5); got != 0 {
		t.Errorf("mismatched arrangements = %d, want 0", got)
	}
	if got := arrangements([]int{0, 0}, 0); got != 1 {
		t.Errorf("empty arrangements = %d, want 1", got)
	}
}

func TestGrayIndexOfRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ base, m int }{{2, 8}, {3, 6}, {4, 4}} {
		g, err := NewGray(cfg.base, cfg.m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.SpaceSize(); i++ {
			w := g.BaseWord(i).Reflect(cfg.base)
			idx, err := g.GrayIndexOf(w)
			if err != nil {
				t.Fatalf("GrayIndexOf(%v): %v", w, err)
			}
			if idx != i {
				t.Errorf("base %d M %d: index of word %d = %d", cfg.base, cfg.m, i, idx)
			}
		}
	}
}

func TestGrayIndexOfRejects(t *testing.T) {
	g, _ := NewGray(3, 4)
	if _, err := g.GrayIndexOf(FromDigits(0, 1)); err == nil {
		t.Error("short word accepted")
	}
	if _, err := g.GrayIndexOf(FromDigits(0, 1, 2, 2)); err == nil {
		t.Error("non-reflected word accepted")
	}
}

func TestHotRankOrderIsomorphicProperty(t *testing.T) {
	// Rank preserves lexicographic order.
	h, _ := NewHot(2, 8)
	words, _ := h.Sequence(h.SpaceSize())
	f := func(a, b uint8) bool {
		i, j := int(a)%len(words), int(b)%len(words)
		ri, err1 := h.Rank(words[i])
		rj, err2 := h.Rank(words[j])
		if err1 != nil || err2 != nil {
			return false
		}
		return (i < j) == (ri < rj) || i == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
