package code

import "testing"

// The generator fuzz harnesses below pin the structural invariants the
// paper's Φ/Σ optimality argument rests on, over arbitrary (base,
// length, index) triples instead of the handful of sizes the unit tests
// enumerate. clampCodeSpace maps unconstrained fuzz inputs onto the
// feasible region: base 2..6 and 1..5 free digits keeps the code space
// Ω = base^(M/2) at or below 6^5 = 7776 words per iteration.
func clampCodeSpace(base, length int) (int, int) {
	base = 2 + abs(base)%5
	half := 1 + abs(length)%5
	return base, 2 * half
}

// FuzzGrayAdjacency pins the defining Gray invariant: successive base
// words differ in exactly one digit, by exactly ±1, and their
// reflections therefore differ in exactly two digits — the transition
// minimum Propositions 4 and 5 build on.
func FuzzGrayAdjacency(f *testing.F) {
	f.Add(2, 8, 3)
	f.Add(3, 4, 0)
	f.Add(4, 10, 77)
	f.Add(6, 2, 5)
	f.Fuzz(func(t *testing.T, base, length, i int) {
		base, length = clampCodeSpace(base, length)
		g, err := NewGray(base, length)
		if err != nil {
			t.Fatalf("NewGray(%d, %d): %v", base, length, err)
		}
		space := g.SpaceSize()
		if space < 2 {
			return
		}
		i = abs(i) % (space - 1)
		w0, w1 := g.BaseWord(i), g.BaseWord(i+1)
		if d := w0.Hamming(w1); d != 1 {
			t.Fatalf("base words %v -> %v differ in %d digits, want 1", w0, w1, d)
		}
		for j := range w0 {
			if w0[j] != w1[j] {
				if diff := w0[j] - w1[j]; diff != 1 && diff != -1 {
					t.Fatalf("digit %d steps by %d between %v and %v, want ±1", j, diff, w0, w1)
				}
			}
		}
		if d := w0.Reflect(base).Hamming(w1.Reflect(base)); d != 2 {
			t.Fatalf("reflected words of %v -> %v differ in %d digits, want 2", w0, w1, d)
		}
	})
}

// FuzzBalancedGraySequence pins the balanced arrangement's contract for
// arbitrary prefixes: a structurally valid sequence (uniform length,
// in-base digits, pairwise distinct) that is a Gray path — so the total
// transition count meets the reflected-word minimum 2·(count-1) exactly.
func FuzzBalancedGraySequence(f *testing.F) {
	f.Add(2, 8, 16)
	f.Add(3, 4, 9)
	f.Add(4, 6, 20)
	f.Add(2, 10, 32)
	f.Fuzz(func(t *testing.T, base, length, count int) {
		base, length = clampCodeSpace(base, length)
		b, err := NewBalancedGray(base, length)
		if err != nil {
			t.Fatalf("NewBalancedGray(%d, %d): %v", base, length, err)
		}
		// A small budget keeps iterations fast; the generator degrades to
		// the plain Gray arrangement when the search gives up, and every
		// invariant checked here must hold either way.
		b.SearchBudget = 50_000
		space := b.SpaceSize()
		count = 1 + abs(count)%min(space, 64)
		words, err := b.Sequence(count)
		if err != nil {
			t.Fatalf("Sequence(%d): %v", count, err)
		}
		if err := Validate(words, base, length); err != nil {
			t.Fatalf("invalid sequence: %v", err)
		}
		if !IsGraySequence(words, 2) {
			t.Fatalf("sequence of %d words is not a reflected Gray path", count)
		}
		if got, want := TotalTransitions(words), 2*(count-1); got != want {
			t.Fatalf("total transitions = %d, want the reflected minimum %d", got, want)
		}
	})
}

// FuzzTreeRoundTrip pins the tree-code decode: every generated word
// ranks back to its index, and corrupting the reflected half is
// rejected instead of silently mis-decoding.
func FuzzTreeRoundTrip(f *testing.F) {
	f.Add(2, 8, 3, 0)
	f.Add(3, 6, 11, 1)
	f.Add(5, 4, 19, 2)
	f.Fuzz(func(t *testing.T, base, length, i, corrupt int) {
		base, length = clampCodeSpace(base, length)
		tr, err := NewTree(base, length)
		if err != nil {
			t.Fatalf("NewTree(%d, %d): %v", base, length, err)
		}
		space := tr.SpaceSize()
		i = abs(i) % space
		w := tr.BaseWord(i).Reflect(base)
		idx, err := tr.IndexOf(w)
		if err != nil {
			t.Fatalf("IndexOf(%v): %v", w, err)
		}
		if idx != i {
			t.Fatalf("round trip: word %v decodes to %d, want %d", w, idx, i)
		}
		// Corrupt one digit of the reflected half: the word is no longer a
		// valid reflection and must be rejected.
		bad := w.Clone()
		j := length/2 + abs(corrupt)%(length/2)
		bad[j] = (bad[j] + 1) % base
		if _, err := tr.IndexOf(bad); err == nil {
			t.Fatalf("corrupted word %v (from %v) was accepted", bad, w)
		}
	})
}
