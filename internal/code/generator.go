package code

import (
	"errors"
	"fmt"
	"strings"
)

// Type identifies a code family.
type Type int

// The five code families evaluated in the paper.
const (
	TypeTree Type = iota
	TypeGray
	TypeBalancedGray
	TypeHot
	TypeArrangedHot
)

// String returns the paper's abbreviation for the code family.
func (t Type) String() string {
	switch t {
	case TypeTree:
		return "TC"
	case TypeGray:
		return "GC"
	case TypeBalancedGray:
		return "BGC"
	case TypeHot:
		return "HC"
	case TypeArrangedHot:
		return "AHC"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Reflected reports whether the family is used in reflected form
// (tree-based codes are; hot codes are not).
func (t Type) Reflected() bool {
	return t == TypeTree || t == TypeGray || t == TypeBalancedGray
}

// AllTypes lists the five families in the paper's presentation order.
func AllTypes() []Type {
	return []Type{TypeTree, TypeGray, TypeBalancedGray, TypeHot, TypeArrangedHot}
}

// ParseType parses a family abbreviation (case-insensitive): tc, gc, bgc,
// hc, ahc.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tc", "tree":
		return TypeTree, nil
	case "gc", "gray":
		return TypeGray, nil
	case "bgc", "balanced", "balanced-gray":
		return TypeBalancedGray, nil
	case "hc", "hot":
		return TypeHot, nil
	case "ahc", "arranged", "arranged-hot":
		return TypeArrangedHot, nil
	default:
		return 0, fmt.Errorf("code: unknown code type %q (want tc|gc|bgc|hc|ahc)", s)
	}
}

// Generator produces the canonical word sequence of one code family with
// fixed base and word length. The sequence order is the defining property of
// the family: tree codes count, Gray codes flip one base digit per step,
// balanced Gray codes additionally balance flips across digit positions, and
// arranged hot codes traverse the hot-code space with minimal (two-digit)
// transitions.
type Generator interface {
	// Type returns the code family.
	Type() Type
	// Base returns the logic valency n.
	Base() int
	// Length returns the total word length M, including the reflected part
	// for tree-based families.
	Length() int
	// SpaceSize returns Ω, the number of distinct words in the code space.
	SpaceSize() int
	// Sequence returns the first count words of the canonical arrangement.
	// It fails when count exceeds SpaceSize or when no arrangement with the
	// family's structural constraints exists for this count.
	Sequence(count int) ([]Word, error)
}

// ErrCountExceedsSpace reports a Sequence request for more words than the
// code space holds.
var ErrCountExceedsSpace = errors.New("code: requested more words than the code space contains")

// New constructs a Generator of the given family. For tree-based families M
// must be even (length includes the reflection); for hot codes M must be a
// multiple of the base.
func New(t Type, base, length int) (Generator, error) {
	switch t {
	case TypeTree:
		return NewTree(base, length)
	case TypeGray:
		return NewGray(base, length)
	case TypeBalancedGray:
		return NewBalancedGray(base, length)
	case TypeHot:
		return NewHot(base, length)
	case TypeArrangedHot:
		return NewArrangedHot(base, length)
	default:
		return nil, fmt.Errorf("code: unknown code type %v", t)
	}
}

// CyclicSequence returns count words, repeating the generator's full
// arrangement when count exceeds the space size Ω. Code words may legally
// repeat across different contact groups — only nanowires sharing a group
// need distinct codes — so the decoder assigns the arrangement cyclically.
func CyclicSequence(g Generator, count int) ([]Word, error) {
	if count <= g.SpaceSize() {
		return g.Sequence(count)
	}
	full, err := g.Sequence(g.SpaceSize())
	if err != nil {
		return nil, err
	}
	out := make([]Word, count)
	for i := range out {
		out[i] = full[i%len(full)]
	}
	return out, nil
}

func checkBase(base int) error {
	if base < 2 {
		return fmt.Errorf("code: base must be >= 2, got %d", base)
	}
	if base > 36 {
		return fmt.Errorf("code: base must be <= 36, got %d", base)
	}
	return nil
}

// pow returns b^e for small non-negative integers, saturating at MaxInt to
// avoid overflow in space-size computations.
func pow(b, e int) int {
	const maxInt = int(^uint(0) >> 1)
	r := 1
	for i := 0; i < e; i++ {
		if r > maxInt/b {
			return maxInt
		}
		r *= b
	}
	return r
}
