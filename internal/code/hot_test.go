package code

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHotSpaceSizes(t *testing.T) {
	cases := []struct{ base, m, want int }{
		{2, 4, 6},  // C(4,2)
		{2, 6, 20}, // C(6,3)
		{2, 8, 70}, // C(8,4)
		{3, 6, 90}, // 6!/(2!)^3
		{3, 3, 6},  // 3! permutations
		{4, 4, 24}, // 4!
	}
	for _, c := range cases {
		h, err := NewHot(c.base, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.SpaceSize(); got != c.want {
			t.Errorf("HC(n=%d, M=%d) size = %d, want %d", c.base, c.m, got, c.want)
		}
	}
}

func TestHotSequenceLexicographicAndValid(t *testing.T) {
	h, _ := NewHot(2, 4)
	words, err := h.Sequence(6)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0011", "0101", "0110", "1001", "1010", "1100"}
	for i, w := range words {
		if w.String() != want[i] {
			t.Errorf("word %d = %s, want %s", i, w, want[i])
		}
		if !h.Contains(w) {
			t.Errorf("generated word %s fails Contains", w)
		}
	}
}

func TestHotPaperMembershipExample(t *testing.T) {
	// Paper Sec 2.3: 001122 and 012120 belong to HC (M,k)=(6,2), n=3;
	// 000121 does not (0 appears three times, 2 once).
	h, err := NewHot(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if h.K() != 2 {
		t.Fatalf("K = %d, want 2", h.K())
	}
	in1, _ := ParseWord("001122", 3)
	in2, _ := ParseWord("012120", 3)
	out, _ := ParseWord("000121", 3)
	if !h.Contains(in1) || !h.Contains(in2) {
		t.Error("paper's member words rejected")
	}
	if h.Contains(out) {
		t.Error("paper's non-member word accepted")
	}
}

func TestHotFullEnumerationDistinctAndComplete(t *testing.T) {
	h, _ := NewHot(3, 6)
	words, err := h.Sequence(h.SpaceSize())
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 90 {
		t.Fatalf("enumerated %d words, want 90", len(words))
	}
	if err := Validate(words, 3, 6); err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		if !h.Contains(w) {
			t.Fatalf("word %v violates hot-code composition", w)
		}
	}
}

func TestHotValidation(t *testing.T) {
	if _, err := NewHot(2, 5); err == nil {
		t.Error("M not divisible by base accepted")
	}
	if _, err := NewHot(2, 0); err == nil {
		t.Error("zero length accepted")
	}
	h, _ := NewHot(2, 4)
	if _, err := h.Sequence(7); !errors.Is(err, ErrCountExceedsSpace) {
		t.Error("oversize request accepted")
	}
	if h.Contains(FromDigits(0, 1)) {
		t.Error("short word accepted by Contains")
	}
}

func TestBinomialMultinomial(t *testing.T) {
	if binomial(10, 3) != 120 {
		t.Errorf("C(10,3) = %d", binomial(10, 3))
	}
	if binomial(5, 0) != 1 || binomial(5, 5) != 1 {
		t.Error("binomial edge cases wrong")
	}
	if binomial(3, 5) != 0 || binomial(3, -1) != 0 {
		t.Error("out-of-range binomial should be 0")
	}
	if multinomial(6, 3, 2) != 90 {
		t.Errorf("multinomial(6;2,2,2) = %d", multinomial(6, 3, 2))
	}
}

func TestHotCompositionProperty(t *testing.T) {
	f := func(idx uint8) bool {
		h, _ := NewHot(2, 8)
		words, err := h.Sequence(h.SpaceSize())
		if err != nil {
			return false
		}
		w := words[int(idx)%len(words)]
		c := w.Counts(2)
		return c[0] == 4 && c[1] == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
