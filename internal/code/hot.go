package code

import "fmt"

// Hot is the hot code HC(M, k) over n values: every word has M = k·n digits
// and every value 0..n-1 occurs exactly k times. Hot codes are used directly
// (not reflected); their space size is the multinomial coefficient
// M! / (k!)^n. The canonical arrangement is lexicographic.
type Hot struct {
	base   int
	length int
	k      int
}

// NewHot returns the hot code with word length M over the given base;
// M must be a positive multiple of the base (k = M/base).
func NewHot(base, length int) (*Hot, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if length <= 0 || length%base != 0 {
		return nil, fmt.Errorf("code: hot code needs length divisible by base %d, got %d", base, length)
	}
	return &Hot{base: base, length: length, k: length / base}, nil
}

// Type implements Generator.
func (h *Hot) Type() Type { return TypeHot }

// Base implements Generator.
func (h *Hot) Base() int { return h.base }

// Length implements Generator.
func (h *Hot) Length() int { return h.length }

// K returns the multiplicity k: how many times each value appears per word.
func (h *Hot) K() int { return h.k }

// SpaceSize implements Generator: the multinomial M! / (k!)^n, saturating at
// MaxInt for out-of-range parameters.
func (h *Hot) SpaceSize() int {
	return multinomial(h.length, h.base, h.k)
}

// Sequence implements Generator, returning words in lexicographic order.
func (h *Hot) Sequence(count int) ([]Word, error) {
	if count < 0 {
		return nil, fmt.Errorf("code: negative word count %d", count)
	}
	if count > h.SpaceSize() {
		return nil, fmt.Errorf("%w: hot code (M=%d, k=%d, n=%d) has %d words, requested %d",
			ErrCountExceedsSpace, h.length, h.k, h.base, h.SpaceSize(), count)
	}
	words := make([]Word, 0, count)
	remaining := make([]int, h.base)
	for v := range remaining {
		remaining[v] = h.k
	}
	cur := make(Word, 0, h.length)
	h.enumerate(&words, count, cur, remaining)
	return words, nil
}

// enumerate appends words in lexicographic order until limit words are
// collected. It reports whether the limit was reached.
func (h *Hot) enumerate(out *[]Word, limit int, cur Word, remaining []int) bool {
	if len(*out) >= limit {
		return true
	}
	if len(cur) == h.length {
		*out = append(*out, cur.Clone())
		return len(*out) >= limit
	}
	for v := 0; v < h.base; v++ {
		if remaining[v] == 0 {
			continue
		}
		remaining[v]--
		done := h.enumerate(out, limit, append(cur, v), remaining)
		remaining[v]++
		if done {
			return true
		}
	}
	return false
}

// Contains reports whether w is a member of this hot-code space.
func (h *Hot) Contains(w Word) bool {
	if len(w) != h.length || !w.Valid(h.base) {
		return false
	}
	for _, c := range w.Counts(h.base) {
		if c != h.k {
			return false
		}
	}
	return true
}

// multinomial returns m! / (k!)^n computed without overflow for the small
// parameters used by nanowire arrays, saturating at MaxInt otherwise.
func multinomial(m, n, k int) int {
	const maxInt = int(^uint(0) >> 1)
	// Product of binomials: C(m, k) * C(m-k, k) * ... over n groups.
	result := 1
	rest := m
	for g := 0; g < n; g++ {
		c := binomial(rest, k)
		if c == 0 {
			return 0
		}
		if result > maxInt/c {
			return maxInt
		}
		result *= c
		rest -= k
	}
	return result
}

// binomial returns C(n, k), saturating at MaxInt.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const maxInt = int(^uint(0) >> 1)
	result := 1
	for i := 1; i <= k; i++ {
		// Multiply before divide stays exact because the running value is
		// always a binomial coefficient.
		if result > maxInt/(n-k+i) {
			return maxInt
		}
		result = result * (n - k + i) / i
	}
	return result
}
