package code

// This file generalizes the paper's Gray-arrangement idea to *arbitrary*
// word sets: given any collection of code words (a legacy assignment, a
// randomly sampled subset, a space with no closed-form Gray path), find an
// ordering that minimizes the decoder variability contribution
//
//	WeightedTransitionCost = Σ_k Hamming(w_k, w_{k+1}) · (k+1)
//
// which is exactly the arrangement-dependent part of ‖Σ‖₁ (the fixed part
// is N·M from the final doping step). The weight (k+1) reflects the MSPT
// cumulative-doping physics: a transition between late-defined spacers
// doses every earlier spacer, so expensive (multi-digit) transitions belong
// at the *start* of the definition order.

// WeightedTransitionCost returns Σ_k Hamming(w_k, w_{k+1})·(k+1), the
// arrangement-dependent part of ‖Σ‖₁/σ_T². Lower is better.
func WeightedTransitionCost(words []Word) int {
	cost := 0
	for k := 0; k+1 < len(words); k++ {
		cost += words[k].Hamming(words[k+1]) * (k + 1)
	}
	return cost
}

// ArrangementLowerBound returns a lower bound on WeightedTransitionCost for
// any ordering of a word set in which all pairwise distances are at least
// minStep (2 for reflected and fixed-composition words, 1 otherwise):
// every step costs at least minStep·(k+1).
func ArrangementLowerBound(n, minStep int) int {
	if n < 2 {
		return 0
	}
	// Σ_{k=1..n-1} minStep·k
	return minStep * (n - 1) * n / 2
}

// OptimizeArrangement reorders the word set to (approximately) minimize
// WeightedTransitionCost: a deterministic greedy nearest-neighbour
// construction followed by budgeted 2-opt segment reversals. The input is
// not modified; the returned slice holds the same words in the optimized
// order.
func OptimizeArrangement(words []Word, budget int) []Word {
	n := len(words)
	if n < 3 {
		return CloneWords(words)
	}
	if budget <= 0 {
		budget = 10000
	}
	order := greedyArrangement(words)

	// 2-opt: reversing the segment (i..j) changes the two boundary
	// transitions and re-weights the transitions inside the segment.
	cost := weightedCostOrdered(words, order)
	improved := true
	for improved && budget > 0 {
		improved = false
		for i := 0; i < n-1 && budget > 0; i++ {
			for j := i + 1; j < n && budget > 0; j++ {
				budget--
				reverseSegment(order, i, j)
				if c := weightedCostOrdered(words, order); c < cost {
					cost = c
					improved = true
				} else {
					reverseSegment(order, i, j) // undo
				}
			}
		}
	}
	out := make([]Word, n)
	for k, idx := range order {
		out[k] = words[idx].Clone()
	}
	return out
}

// greedyArrangement builds an index order: start at the word with the
// largest total distance to all others (expensive words belong early where
// weights are small), then repeatedly append the unused word nearest to the
// current end (ties: smallest index, keeping the result deterministic).
func greedyArrangement(words []Word) []int {
	n := len(words)
	used := make([]bool, n)
	start := 0
	bestSpread := -1
	for i := range words {
		spread := 0
		for j := range words {
			if i != j {
				spread += words[i].Hamming(words[j])
			}
		}
		if spread > bestSpread {
			bestSpread = spread
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	for len(order) < n {
		cur := order[len(order)-1]
		next, bestD := -1, int(^uint(0)>>1)
		for i := range words {
			if used[i] {
				continue
			}
			if d := words[cur].Hamming(words[i]); d < bestD {
				bestD = d
				next = i
			}
		}
		order = append(order, next)
		used[next] = true
	}
	return order
}

func weightedCostOrdered(words []Word, order []int) int {
	cost := 0
	for k := 0; k+1 < len(order); k++ {
		cost += words[order[k]].Hamming(words[order[k+1]]) * (k + 1)
	}
	return cost
}

func reverseSegment(order []int, i, j int) {
	for i < j {
		order[i], order[j] = order[j], order[i]
		i++
		j--
	}
}
