package code

import "fmt"

// Transitions returns, for each pair of successive words, the number of
// digit positions that change. The result has len(words)-1 entries (empty
// for fewer than two words). It panics on ragged word lengths.
func Transitions(words []Word) []int {
	if len(words) < 2 {
		return nil
	}
	out := make([]int, len(words)-1)
	for i := 1; i < len(words); i++ {
		out[i-1] = words[i].Hamming(words[i-1])
	}
	return out
}

// TotalTransitions returns the sum of digit changes across the sequence.
func TotalTransitions(words []Word) int {
	total := 0
	for _, t := range Transitions(words) {
		total += t
	}
	return total
}

// DigitTransitionCounts returns, per digit position, how many times that
// position changes across the sequence. This is the balance profile the BGC
// minimizes the maximum of.
func DigitTransitionCounts(words []Word) []int {
	if len(words) == 0 {
		return nil
	}
	counts := make([]int, len(words[0]))
	for i := 1; i < len(words); i++ {
		prev, cur := words[i-1], words[i]
		if len(cur) != len(prev) {
			panic(fmt.Sprintf("code: ragged word lengths %d and %d", len(prev), len(cur)))
		}
		for j := range cur {
			if cur[j] != prev[j] {
				counts[j]++
			}
		}
	}
	return counts
}

// MaxDigitTransitions returns the largest per-digit change count, the
// quantity bounded by the balanced-Gray constraint (0 for empty input).
func MaxDigitTransitions(words []Word) int {
	max := 0
	for _, c := range DigitTransitionCounts(words) {
		if c > max {
			max = c
		}
	}
	return max
}

// Distinct reports whether all words in the sequence are pairwise distinct.
func Distinct(words []Word) bool {
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		k := w.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// IsGraySequence reports whether every pair of successive words differs in
// exactly maxChanged digits or fewer and at least one digit. For reflected
// tree-family words use maxChanged = 2 (base digit + its complement); for
// un-reflected base words use 1; for hot codes use 2 (a transposition).
func IsGraySequence(words []Word, maxChanged int) bool {
	for _, t := range Transitions(words) {
		if t < 1 || t > maxChanged {
			return false
		}
	}
	return true
}

// Validate performs the structural checks shared by all families on a
// generated sequence: words non-empty, uniform length, digits within base,
// pairwise distinct.
func Validate(words []Word, base, length int) error {
	seen := make(map[string]bool, len(words))
	for i, w := range words {
		if len(w) != length {
			return fmt.Errorf("code: word %d has length %d, want %d", i, len(w), length)
		}
		if !w.Valid(base) {
			return fmt.Errorf("code: word %d (%v) has digits outside base %d", i, w, base)
		}
		k := w.Key()
		if seen[k] {
			return fmt.Errorf("code: word %d (%v) repeats an earlier word", i, w)
		}
		seen[k] = true
	}
	return nil
}

// SequenceStats summarizes the transition structure of an arrangement.
type SequenceStats struct {
	Words            int
	Length           int
	TotalTransitions int
	MaxPerStep       int
	MinPerStep       int
	MaxPerDigit      int
	PerDigit         []int
}

// Stats computes SequenceStats for a word sequence.
func Stats(words []Word) SequenceStats {
	s := SequenceStats{Words: len(words)}
	if len(words) == 0 {
		return s
	}
	s.Length = len(words[0])
	trans := Transitions(words)
	if len(trans) > 0 {
		s.MinPerStep = trans[0]
	}
	for _, t := range trans {
		s.TotalTransitions += t
		if t > s.MaxPerStep {
			s.MaxPerStep = t
		}
		if t < s.MinPerStep {
			s.MinPerStep = t
		}
	}
	s.PerDigit = DigitTransitionCounts(words)
	for _, c := range s.PerDigit {
		if c > s.MaxPerDigit {
			s.MaxPerDigit = c
		}
	}
	return s
}
