package code

import (
	"errors"
	"testing"
)

func TestArrangedHotMinimalTransitions(t *testing.T) {
	// Paper Sec 5.2: the minimum number of transitions between successive
	// hot-code words is 2, and a Gray-fashion arrangement always exists for
	// the space sizes relevant to nanowire arrays.
	for _, cfg := range []struct{ base, m int }{{2, 4}, {2, 6}, {2, 8}, {3, 6}} {
		a, err := NewArrangedHot(cfg.base, cfg.m)
		if err != nil {
			t.Fatal(err)
		}
		n := 20
		if n > a.SpaceSize() {
			n = a.SpaceSize()
		}
		words, err := a.Sequence(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(words, cfg.base, cfg.m); err != nil {
			t.Fatalf("n=%d M=%d: %v", cfg.base, cfg.m, err)
		}
		h, _ := NewHot(cfg.base, cfg.m)
		for _, w := range words {
			if !h.Contains(w) {
				t.Fatalf("n=%d M=%d: word %v leaves the hot-code space", cfg.base, cfg.m, w)
			}
		}
		for i, tr := range Transitions(words) {
			if tr != 2 {
				t.Fatalf("n=%d M=%d step %d: %d transitions, want 2", cfg.base, cfg.m, i, tr)
			}
		}
	}
}

func TestArrangedHotFullSpaceHamiltonianSmall(t *testing.T) {
	// Exhaustive arrangement over the whole HC(4,2) space (6 words): the
	// paper's "exhaustive algorithm for ... code space size <= 100".
	a, _ := NewArrangedHot(2, 4)
	words, err := a.Sequence(6)
	if err != nil {
		t.Fatal(err)
	}
	if !Distinct(words) || len(words) != 6 {
		t.Fatalf("full arrangement invalid: %v", words)
	}
	if !IsGraySequence(words, 2) {
		t.Error("full arrangement not minimal-transition")
	}
}

func TestArrangedHotFullSpaceMedium(t *testing.T) {
	// HC(6,3): 20 words, full Hamiltonian arrangement.
	a, _ := NewArrangedHot(2, 6)
	words, err := a.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 20 || !Distinct(words) {
		t.Fatal("full HC(6,3) arrangement invalid")
	}
	for i, tr := range Transitions(words) {
		if tr != 2 {
			t.Fatalf("step %d has %d transitions", i, tr)
		}
	}
}

func TestArrangedHotBeatsLexicographicBalance(t *testing.T) {
	// The arranged order must not have more total transitions than the
	// lexicographic hot code for the same word count.
	h, _ := NewHot(2, 8)
	a, _ := NewArrangedHot(2, 8)
	hw, err := h.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := a.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	if TotalTransitions(aw) > TotalTransitions(hw) {
		t.Errorf("AHC transitions %d exceed HC %d", TotalTransitions(aw), TotalTransitions(hw))
	}
}

func TestArrangedHotStartsCanonical(t *testing.T) {
	a, _ := NewArrangedHot(2, 6)
	words, _ := a.Sequence(1)
	if words[0].String() != "000111" {
		t.Errorf("start word = %s, want 000111", words[0])
	}
}

func TestArrangedHotDeterministicAndCached(t *testing.T) {
	a, _ := NewArrangedHot(2, 6)
	w1, _ := a.Sequence(15)
	w2, _ := a.Sequence(15)
	for i := range w1 {
		if !w1[i].Equal(w2[i]) {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	w1[3][0] = 9
	w3, _ := a.Sequence(15)
	if w3[3][0] == 9 {
		t.Error("cache leaked mutable words")
	}
}

func TestArrangedHotValidation(t *testing.T) {
	if _, err := NewArrangedHot(2, 5); err == nil {
		t.Error("bad length accepted")
	}
	a, _ := NewArrangedHot(2, 4)
	if _, err := a.Sequence(7); !errors.Is(err, ErrCountExceedsSpace) {
		t.Error("oversize request accepted")
	}
	if _, err := a.Sequence(-2); err == nil {
		t.Error("negative count accepted")
	}
	if w, err := a.Sequence(0); err != nil || len(w) != 0 {
		t.Error("zero count mishandled")
	}
}

func TestArrangedHotFallbackUnderZeroBudget(t *testing.T) {
	a, _ := NewArrangedHot(2, 6)
	a.SearchBudget = 0
	words, err := a.Sequence(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(words, 2, 6); err != nil {
		t.Fatal(err)
	}
}
