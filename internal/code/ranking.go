package code

import "fmt"

// Rank returns the position of a word in the hot code's lexicographic
// enumeration without generating the sequence, using the combinatorial
// number system generalized to multiset permutations: at each position the
// rank accumulates the count of words starting with a smaller digit.
func (h *Hot) Rank(w Word) (int, error) {
	if !h.Contains(w) {
		return 0, fmt.Errorf("code: %v is not a word of HC(M=%d, k=%d, n=%d)", w, h.length, h.k, h.base)
	}
	remaining := make([]int, h.base)
	for v := range remaining {
		remaining[v] = h.k
	}
	rank := 0
	for pos, digit := range w {
		for v := 0; v < digit; v++ {
			if remaining[v] == 0 {
				continue
			}
			remaining[v]--
			rank += arrangements(remaining, h.length-pos-1)
			remaining[v]++
		}
		remaining[digit]--
	}
	return rank, nil
}

// Unrank returns the word at the given position of the lexicographic
// enumeration, inverse to Rank.
func (h *Hot) Unrank(rank int) (Word, error) {
	if rank < 0 || rank >= h.SpaceSize() {
		return nil, fmt.Errorf("code: rank %d outside [0, %d)", rank, h.SpaceSize())
	}
	remaining := make([]int, h.base)
	for v := range remaining {
		remaining[v] = h.k
	}
	w := make(Word, h.length)
	for pos := 0; pos < h.length; pos++ {
		for v := 0; v < h.base; v++ {
			if remaining[v] == 0 {
				continue
			}
			remaining[v]--
			count := arrangements(remaining, h.length-pos-1)
			if rank < count {
				w[pos] = v
				break
			}
			rank -= count
			remaining[v]++
		}
	}
	return w, nil
}

// arrangements returns the number of distinct arrangements of the remaining
// multiset into length positions: length! / Π remaining[v]!.
func arrangements(remaining []int, length int) int {
	total := 0
	for _, r := range remaining {
		total += r
	}
	if total != length {
		return 0
	}
	// Multiply binomials group by group; stays exact in int for the small
	// word lengths of nanowire codes.
	result := 1
	rest := length
	for _, r := range remaining {
		result *= binomial(rest, r)
		rest -= r
	}
	return result
}

// GrayIndexOf returns the sequence index of a reflected Gray word — the
// inverse of BaseWord followed by reflection. It fails for words outside the
// space.
func (g *Gray) GrayIndexOf(w Word) (int, error) {
	l := g.BaseLength()
	if len(w) != g.length {
		return 0, fmt.Errorf("code: word length %d, want %d", len(w), g.length)
	}
	base := Word(w[:l])
	if !base.Valid(g.base) || !w.IsReflectionOf(base, g.base) {
		return 0, fmt.Errorf("code: %v is not a reflected base-%d word", w, g.base)
	}
	// Invert the reflected Gray recursion backward: at level j the forward
	// generator stored digit d and recursed on the remainder r', reversing
	// it when d is odd. So r_j = d·stride + r' with r' = stride-1-r_{j+1}
	// for odd d and r' = r_{j+1} otherwise.
	idx := 0
	for j := l - 1; j >= 0; j-- {
		stride := pow(g.base, l-1-j)
		d := base[j]
		if d%2 == 1 {
			idx = stride - 1 - idx
		}
		idx += d * stride
	}
	return idx, nil
}
