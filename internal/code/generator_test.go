package code

import (
	"strings"
	"testing"
)

func TestTypeStringAndReflected(t *testing.T) {
	cases := []struct {
		tp        Type
		name      string
		reflected bool
	}{
		{TypeTree, "TC", true},
		{TypeGray, "GC", true},
		{TypeBalancedGray, "BGC", true},
		{TypeHot, "HC", false},
		{TypeArrangedHot, "AHC", false},
	}
	for _, c := range cases {
		if c.tp.String() != c.name {
			t.Errorf("String(%v) = %s, want %s", int(c.tp), c.tp, c.name)
		}
		if c.tp.Reflected() != c.reflected {
			t.Errorf("%s Reflected = %v", c.name, c.tp.Reflected())
		}
	}
	if !strings.HasPrefix(Type(99).String(), "Type(") {
		t.Error("unknown type String format")
	}
}

func TestParseType(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Type
	}{
		{"tc", TypeTree}, {"TC", TypeTree}, {"tree", TypeTree},
		{"gc", TypeGray}, {"gray", TypeGray},
		{"bgc", TypeBalancedGray}, {" balanced-gray ", TypeBalancedGray},
		{"hc", TypeHot}, {"hot", TypeHot},
		{"ahc", TypeArrangedHot}, {"arranged", TypeArrangedHot},
	} {
		got, err := ParseType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseType(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseType("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNewDispatch(t *testing.T) {
	for _, tp := range AllTypes() {
		length := 8
		g, err := New(tp, 2, length)
		if err != nil {
			t.Fatalf("New(%v): %v", tp, err)
		}
		if g.Type() != tp || g.Base() != 2 || g.Length() != length {
			t.Errorf("%v: wrong identity %v/%d/%d", tp, g.Type(), g.Base(), g.Length())
		}
		words, err := g.Sequence(4)
		if err != nil {
			t.Fatalf("%v Sequence: %v", tp, err)
		}
		if err := Validate(words, 2, length); err != nil {
			t.Errorf("%v: %v", tp, err)
		}
	}
	if _, err := New(Type(42), 2, 8); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestCyclicSequenceWraps(t *testing.T) {
	h, _ := NewHot(2, 4) // space size 6
	words, err := CyclicSequence(h, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 15 {
		t.Fatalf("len = %d", len(words))
	}
	for i := 0; i < 15; i++ {
		if !words[i].Equal(words[i%6]) {
			t.Errorf("word %d does not equal word %d", i, i%6)
		}
	}
}

func TestCyclicSequenceShortPassThrough(t *testing.T) {
	g, _ := NewGray(2, 6)
	direct, _ := g.Sequence(5)
	cyc, err := CyclicSequence(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if !direct[i].Equal(cyc[i]) {
			t.Error("cyclic short sequence differs from direct")
		}
	}
}

func TestPow(t *testing.T) {
	if pow(3, 4) != 81 || pow(2, 0) != 1 || pow(10, 1) != 10 {
		t.Error("pow wrong")
	}
	if pow(2, 200) != int(^uint(0)>>1) {
		t.Error("pow should saturate at MaxInt")
	}
}

func TestStatsAndMetrics(t *testing.T) {
	words := []Word{
		FromDigits(0, 0), FromDigits(0, 1), FromDigits(1, 1), FromDigits(1, 0),
	}
	s := Stats(words)
	if s.Words != 4 || s.Length != 2 || s.TotalTransitions != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MaxPerStep != 1 || s.MinPerStep != 1 {
		t.Errorf("per-step bounds wrong: %+v", s)
	}
	if s.PerDigit[0] != 1 || s.PerDigit[1] != 2 || s.MaxPerDigit != 2 {
		t.Errorf("per-digit counts wrong: %+v", s)
	}
	if !Distinct(words) {
		t.Error("distinct words reported duplicated")
	}
	if Distinct(append(words, FromDigits(0, 0))) {
		t.Error("duplicate not detected")
	}
	empty := Stats(nil)
	if empty.Words != 0 || empty.TotalTransitions != 0 {
		t.Error("empty stats wrong")
	}
}

func TestValidateErrors(t *testing.T) {
	if err := Validate([]Word{FromDigits(0, 1), FromDigits(0)}, 2, 2); err == nil {
		t.Error("ragged length accepted")
	}
	if err := Validate([]Word{FromDigits(0, 5)}, 2, 2); err == nil {
		t.Error("digit out of base accepted")
	}
	if err := Validate([]Word{FromDigits(0, 1), FromDigits(0, 1)}, 2, 2); err == nil {
		t.Error("duplicate accepted")
	}
}
