package code

import (
	"testing"
	"testing/quick"
)

func TestCloneIndependent(t *testing.T) {
	w := FromDigits(1, 2, 3)
	c := w.Clone()
	c[0] = 9
	if w[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestEqual(t *testing.T) {
	if !FromDigits(0, 1).Equal(FromDigits(0, 1)) {
		t.Error("equal words reported unequal")
	}
	if FromDigits(0, 1).Equal(FromDigits(0, 2)) {
		t.Error("different digits reported equal")
	}
	if FromDigits(0, 1).Equal(FromDigits(0, 1, 2)) {
		t.Error("different lengths reported equal")
	}
}

func TestHamming(t *testing.T) {
	if d := FromDigits(0, 1, 2, 1).Hamming(FromDigits(0, 2, 2, 0)); d != 2 {
		t.Errorf("Hamming = %d, want 2", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged Hamming did not panic")
		}
	}()
	FromDigits(0).Hamming(FromDigits(0, 1))
}

func TestComplementPaperRule(t *testing.T) {
	// Paper Sec 2.3: complement of 0010 over base 3 is 2222 - 0010 = 2212.
	got := FromDigits(0, 0, 1, 0).Complement(3)
	if !got.Equal(FromDigits(2, 2, 1, 2)) {
		t.Errorf("Complement = %v, want 2212", got)
	}
}

func TestReflectPaperExamples(t *testing.T) {
	// Paper: 0010 -> 00102212, 0000 -> 00002222, 0001 -> 00012221 (base 3).
	cases := []struct{ in, want string }{
		{"0010", "00102212"},
		{"0000", "00002222"},
		{"0001", "00012221"},
	}
	for _, c := range cases {
		in, err := ParseWord(c.in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.Reflect(3).String(); got != c.want {
			t.Errorf("Reflect(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestIsReflectionOf(t *testing.T) {
	base := FromDigits(0, 1)
	if !base.Reflect(3).IsReflectionOf(base, 3) {
		t.Error("reflection not recognized")
	}
	if FromDigits(0, 1, 2, 2).IsReflectionOf(base, 3) {
		t.Error("non-reflection accepted")
	}
}

func TestValidCounts(t *testing.T) {
	w := FromDigits(0, 1, 1, 2)
	if !w.Valid(3) || w.Valid(2) {
		t.Error("Valid base check wrong")
	}
	c := w.Counts(3)
	if c[0] != 1 || c[1] != 2 || c[2] != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestKeyStringParseRoundTrip(t *testing.T) {
	w := FromDigits(0, 3, 2, 1)
	s := w.String()
	if s != "0321" {
		t.Errorf("String = %q", s)
	}
	back, err := ParseWord(s, 4)
	if err != nil || !back.Equal(w) {
		t.Errorf("ParseWord(%q) = %v, %v", s, back, err)
	}
}

func TestParseWordErrors(t *testing.T) {
	if _, err := ParseWord("01x!", 36); err == nil {
		t.Error("invalid rune accepted")
	}
	if _, err := ParseWord("012", 2); err == nil {
		t.Error("digit out of base accepted")
	}
}

func TestReflectPropertyComplementInvolution(t *testing.T) {
	f := func(raw []uint8, baseRaw uint8) bool {
		base := int(baseRaw%8) + 2
		w := make(Word, len(raw))
		for i, v := range raw {
			w[i] = int(v) % base
		}
		// Complement twice is the identity.
		return w.Complement(base).Complement(base).Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReflectPropertyDigitSums(t *testing.T) {
	// Each digit of w plus the matching digit of the reflected half sums to
	// base-1, so reflected words always carry a balanced +/- dose change.
	f := func(raw []uint8, baseRaw uint8) bool {
		base := int(baseRaw%8) + 2
		w := make(Word, len(raw))
		for i, v := range raw {
			w[i] = int(v) % base
		}
		r := w.Reflect(base)
		if len(r) != 2*len(w) {
			return false
		}
		for i := range w {
			if r[i]+r[i+len(w)] != base-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
