package code

import "fmt"

// Gray is the n-ary reflected Gray arrangement of the tree-code space: the
// same n^(M/2) words as the tree code, ordered so that successive base words
// differ in exactly one digit (by ±1). After reflection each step changes
// exactly two of the M digits — the provable minimum for reflected words —
// which Propositions 4 and 5 show minimizes both the decoder variability
// ‖Σ‖₁ and the fabrication complexity Φ.
type Gray struct {
	base   int
	length int
}

// NewGray returns the n-ary Gray arrangement with total (reflected) word
// length M.
func NewGray(base, length int) (*Gray, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if length < 2 || length%2 != 0 {
		return nil, fmt.Errorf("code: reflected Gray code needs even length >= 2, got %d", length)
	}
	return &Gray{base: base, length: length}, nil
}

// Type implements Generator.
func (g *Gray) Type() Type { return TypeGray }

// Base implements Generator.
func (g *Gray) Base() int { return g.base }

// Length implements Generator.
func (g *Gray) Length() int { return g.length }

// BaseLength returns the number of free digits M/2.
func (g *Gray) BaseLength() int { return g.length / 2 }

// SpaceSize implements Generator: Ω = n^(M/2).
func (g *Gray) SpaceSize() int { return pow(g.base, g.BaseLength()) }

// Sequence implements Generator.
func (g *Gray) Sequence(count int) ([]Word, error) {
	if count < 0 {
		return nil, fmt.Errorf("code: negative word count %d", count)
	}
	if count > g.SpaceSize() {
		return nil, fmt.Errorf("%w: Gray code base %d length %d has %d words, requested %d",
			ErrCountExceedsSpace, g.base, g.length, g.SpaceSize(), count)
	}
	words := make([]Word, count)
	for i := 0; i < count; i++ {
		words[i] = g.BaseWord(i).Reflect(g.base)
	}
	return words, nil
}

// BaseWord returns the i-th word of the n-ary reflected Gray counting
// sequence over M/2 digits (most-significant first). The recursion is the
// classical one: the leading digit counts 0..n-1 and every odd block
// traverses the remaining digits in reverse, so consecutive indices differ
// in exactly one digit by ±1.
func (g *Gray) BaseWord(i int) Word {
	l := g.BaseLength()
	w := make(Word, l)
	stride := pow(g.base, l-1)
	for j := 0; j < l; j++ {
		d := i / stride
		i %= stride
		w[j] = d
		if d%2 == 1 {
			// Reversed traversal of the inner block.
			i = stride - 1 - i
		}
		if stride > 1 {
			stride /= g.base
		}
	}
	return w
}
