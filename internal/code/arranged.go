package code

import (
	"fmt"
	"sync"
)

// ArrangedHot is the arranged hot code AHC: the words of the hot code
// HC(M, k) re-ordered in a Gray-code fashion so that successive words differ
// in the minimum possible number of digits. Because the value counts of a
// hot-code word are fixed, a single-digit change is impossible; the minimum
// is two digits (one transposition), and Sec. 5.2 of the paper reports that
// such an arrangement always exists for the space sizes relevant to
// nanowire arrays.
//
// The arrangement is found by deterministic backtracking with per-digit
// usage balancing (the same secondary objective as the balanced Gray code),
// so the AHC inherits both the minimal transition count and an even spread
// of doses across mesowire columns.
type ArrangedHot struct {
	hot *Hot

	// SearchBudget bounds the number of DFS nodes explored per search.
	SearchBudget int

	mu    sync.Mutex
	cache map[int][]Word
}

// NewArrangedHot returns the arranged hot code with word length M over the
// given base.
func NewArrangedHot(base, length int) (*ArrangedHot, error) {
	h, err := NewHot(base, length)
	if err != nil {
		return nil, err
	}
	return &ArrangedHot{
		hot:          h,
		SearchBudget: DefaultBGCSearchBudget,
		cache:        make(map[int][]Word),
	}, nil
}

// Type implements Generator.
func (a *ArrangedHot) Type() Type { return TypeArrangedHot }

// Base implements Generator.
func (a *ArrangedHot) Base() int { return a.hot.base }

// Length implements Generator.
func (a *ArrangedHot) Length() int { return a.hot.length }

// K returns the multiplicity k of the underlying hot code.
func (a *ArrangedHot) K() int { return a.hot.k }

// SpaceSize implements Generator.
func (a *ArrangedHot) SpaceSize() int { return a.hot.SpaceSize() }

// Sequence implements Generator: the first count words of a minimal-
// transition arrangement of the hot-code space.
func (a *ArrangedHot) Sequence(count int) ([]Word, error) {
	if count < 0 {
		return nil, fmt.Errorf("code: negative word count %d", count)
	}
	if count > a.SpaceSize() {
		return nil, fmt.Errorf("%w: arranged hot code (M=%d, k=%d, n=%d) has %d words, requested %d",
			ErrCountExceedsSpace, a.hot.length, a.hot.k, a.hot.base, a.SpaceSize(), count)
	}
	// The sequence cache makes the generator safe for concurrent use by
	// the parallel sweep drivers (which share generators through Cached).
	a.mu.Lock()
	defer a.mu.Unlock()
	if cached, ok := a.cache[count]; ok {
		return cloneWords(cached), nil
	}
	words := a.search(count)
	a.cache[count] = words
	return cloneWords(words), nil
}

// search finds count distinct hot-code words where successive words differ
// by exactly one transposition. It falls back to the lexicographic hot-code
// order if the budgeted search fails (which does not happen for the spaces
// the paper considers; the fallback keeps the API total).
func (a *ArrangedHot) search(count int) []Word {
	if count == 0 {
		return nil
	}
	// Canonical start: the lexicographically smallest word 0^k 1^k ... .
	start := make(Word, a.hot.length)
	for i := range start {
		start[i] = i / a.hot.k
	}
	if count == 1 {
		return []Word{start}
	}
	s := &ahcSearch{
		hot:     a.hot,
		count:   count,
		budget:  a.SearchBudget,
		visited: map[string]bool{start.Key(): true},
		usage:   make([]int, a.hot.length),
		path:    []Word{start},
	}
	if s.dfs() {
		return s.path
	}
	words, err := a.hot.Sequence(count)
	if err != nil {
		// count was validated against the space size already.
		panic("code: hot fallback failed: " + err.Error())
	}
	return words
}

type ahcSearch struct {
	hot     *Hot
	count   int
	budget  int
	visited map[string]bool
	usage   []int // how often each position changed so far
	path    []Word
}

func (s *ahcSearch) dfs() bool {
	if len(s.path) == s.count {
		return true
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	cur := s.path[len(s.path)-1]
	// Candidate moves: swap the values at two positions holding different
	// digits. Prefer position pairs with the lowest combined usage so the
	// transitions spread across columns.
	type move struct{ i, j, cost int }
	var moves []move
	for i := 0; i < len(cur); i++ {
		for j := i + 1; j < len(cur); j++ {
			if cur[i] != cur[j] {
				moves = append(moves, move{i, j, s.usage[i] + s.usage[j]})
			}
		}
	}
	// Stable insertion sort by cost keeps the search deterministic.
	for i := 1; i < len(moves); i++ {
		for k := i; k > 0 && moves[k].cost < moves[k-1].cost; k-- {
			moves[k], moves[k-1] = moves[k-1], moves[k]
		}
	}
	for _, m := range moves {
		cur[m.i], cur[m.j] = cur[m.j], cur[m.i]
		key := cur.Key()
		if !s.visited[key] {
			s.visited[key] = true
			s.usage[m.i]++
			s.usage[m.j]++
			s.path = append(s.path, cur.Clone())
			if s.dfs() {
				cur[m.i], cur[m.j] = cur[m.j], cur[m.i]
				return true
			}
			s.path = s.path[:len(s.path)-1]
			s.usage[m.i]--
			s.usage[m.j]--
			delete(s.visited, key)
		}
		cur[m.i], cur[m.j] = cur[m.j], cur[m.i]
	}
	return false
}
