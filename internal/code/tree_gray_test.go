package code

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTreeSequenceBinary(t *testing.T) {
	tc, err := NewTree(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tc.SpaceSize() != 8 {
		t.Fatalf("SpaceSize = %d, want 8", tc.SpaceSize())
	}
	words, err := tc.Sequence(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"000111", "001110", "010101", "011100"}
	for i, w := range words {
		if w.String() != want[i] {
			t.Errorf("word %d = %s, want %s", i, w, want[i])
		}
	}
}

func TestTreeSequenceTernaryPaperWords(t *testing.T) {
	// Paper Example 1 uses words 0121, 0220, 1012 — indices 1, 2, 3 of the
	// ternary tree code with M = 4.
	tc, err := NewTree(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	words, err := tc.Sequence(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0022", "0121", "0220", "1012"}
	for i, w := range words {
		if w.String() != want[i] {
			t.Errorf("word %d = %s, want %s", i, w, want[i])
		}
	}
}

func TestTreeIndexOfRoundTrip(t *testing.T) {
	tc, _ := NewTree(3, 8)
	words, err := tc.Sequence(50)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		idx, err := tc.IndexOf(w)
		if err != nil || idx != i {
			t.Errorf("IndexOf(word %d) = %d, %v", i, idx, err)
		}
	}
}

func TestTreeIndexOfRejects(t *testing.T) {
	tc, _ := NewTree(3, 4)
	if _, err := tc.IndexOf(FromDigits(0, 1)); err == nil {
		t.Error("short word accepted")
	}
	if _, err := tc.IndexOf(FromDigits(0, 1, 2, 2)); err == nil {
		t.Error("non-reflected word accepted")
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(1, 4); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := NewTree(2, 5); err == nil {
		t.Error("odd length accepted")
	}
	tc, _ := NewTree(2, 4)
	if _, err := tc.Sequence(5); !errors.Is(err, ErrCountExceedsSpace) {
		t.Error("oversize request not rejected with ErrCountExceedsSpace")
	}
	if _, err := tc.Sequence(-1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestGraySequenceIsGray(t *testing.T) {
	for _, base := range []int{2, 3, 4} {
		for _, m := range []int{4, 6, 8} {
			g, err := NewGray(base, m)
			if err != nil {
				t.Fatal(err)
			}
			full, err := g.Sequence(g.SpaceSize())
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(full, base, m); err != nil {
				t.Fatalf("base %d M %d: %v", base, m, err)
			}
			// Reflected Gray: exactly two digits change per step.
			for i, tr := range Transitions(full) {
				if tr != 2 {
					t.Fatalf("base %d M %d: step %d changes %d digits, want 2", base, m, i, tr)
				}
			}
		}
	}
}

func TestGrayBaseWordSingleDigitSteps(t *testing.T) {
	g, _ := NewGray(3, 8)
	prev := g.BaseWord(0)
	for i := 1; i < g.SpaceSize(); i++ {
		cur := g.BaseWord(i)
		if d := cur.Hamming(prev); d != 1 {
			t.Fatalf("base words %d->%d differ in %d digits", i-1, i, d)
		}
		// n-ary reflected Gray changes a digit by exactly +/-1.
		for j := range cur {
			if cur[j] != prev[j] {
				diff := cur[j] - prev[j]
				if diff != 1 && diff != -1 {
					t.Fatalf("step %d changes digit %d by %d", i, j, diff)
				}
			}
		}
		prev = cur
	}
}

func TestGraySpansWholeSpace(t *testing.T) {
	g, _ := NewGray(2, 8)
	full, err := g.Sequence(16)
	if err != nil {
		t.Fatal(err)
	}
	if !Distinct(full) {
		t.Error("Gray sequence repeats words")
	}
	// Same code space as the tree code: every word is a reflected word.
	tc, _ := NewTree(2, 8)
	for _, w := range full {
		if _, err := tc.IndexOf(w); err != nil {
			t.Errorf("Gray word %v not in tree space: %v", w, err)
		}
	}
}

func TestGrayPaperEligibleSequence(t *testing.T) {
	// Paper Sec 2.3: 0000 => 0001 => 0002 => 0012 is an eligible Gray
	// sequence (base words, one digit per step); the tree-code order
	// 0000 => 0001 => 0002 => 0010 is not.
	eligible := []Word{
		FromDigits(0, 0, 0, 0), FromDigits(0, 0, 0, 1),
		FromDigits(0, 0, 0, 2), FromDigits(0, 0, 1, 2),
	}
	if !IsGraySequence(eligible, 1) {
		t.Error("paper's eligible GC sequence rejected")
	}
	treeOrder := []Word{
		FromDigits(0, 0, 0, 0), FromDigits(0, 0, 0, 1),
		FromDigits(0, 0, 0, 2), FromDigits(0, 0, 1, 0),
	}
	if IsGraySequence(treeOrder, 1) {
		t.Error("tree-code order wrongly accepted as Gray")
	}
}

func TestGrayValidation(t *testing.T) {
	if _, err := NewGray(2, 3); err == nil {
		t.Error("odd length accepted")
	}
	if _, err := NewGray(37, 4); err == nil {
		t.Error("huge base accepted")
	}
	g, _ := NewGray(2, 4)
	if _, err := g.Sequence(100); !errors.Is(err, ErrCountExceedsSpace) {
		t.Error("oversize request accepted")
	}
}

func TestGrayBaseWordBijection(t *testing.T) {
	g, _ := NewGray(4, 6)
	seen := make(map[string]bool)
	for i := 0; i < g.SpaceSize(); i++ {
		k := g.BaseWord(i).Key()
		if seen[k] {
			t.Fatalf("BaseWord not injective at %d", i)
		}
		seen[k] = true
	}
	if len(seen) != g.SpaceSize() {
		t.Fatalf("BaseWord covers %d of %d words", len(seen), g.SpaceSize())
	}
}

func TestTreeGraySameSpaceProperty(t *testing.T) {
	f := func(baseRaw, lRaw uint8) bool {
		base := int(baseRaw%3) + 2 // 2..4
		m := (int(lRaw%3) + 2) * 2 // 4,6,8
		g, err1 := NewGray(base, m)
		tc, err2 := NewTree(base, m)
		if err1 != nil || err2 != nil {
			return false
		}
		gw, err1 := g.Sequence(g.SpaceSize())
		tw, err2 := tc.Sequence(tc.SpaceSize())
		if err1 != nil || err2 != nil {
			return false
		}
		set := make(map[string]bool, len(tw))
		for _, w := range tw {
			set[w.Key()] = true
		}
		for _, w := range gw {
			if !set[w.Key()] {
				return false
			}
		}
		return len(gw) == len(tw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
