package code

import "fmt"

// DominatedBy reports whether w <= v digit-wise. In the decoder's conduction
// model a nanowire with pattern w conducts under the address of word v
// exactly when w is dominated by v: every transistor's threshold level is at
// or below the driven gate level.
func (w Word) DominatedBy(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] > v[i] {
			return false
		}
	}
	return true
}

// IsAntichain reports whether no word of the set dominates another — the
// exact structural condition for unique addressability: when the words of a
// contact group form an antichain under digit-wise <=, driving the band
// edges of any word conducts that nanowire and no other.
//
// Reflected words (Sec. 2.3) and fixed-composition hot-code words both
// satisfy this by construction; IsAntichain makes the property checkable
// for arbitrary pattern sets (e.g. after manual edits or code repairs).
func IsAntichain(words []Word) bool {
	for i, a := range words {
		for j, b := range words {
			if i != j && a.DominatedBy(b) {
				return false
			}
		}
	}
	return true
}

// FirstDomination returns the first (i, j) pair with words[i] dominated by
// words[j] (i != j), or (-1, -1) when the set is an antichain. It is the
// diagnostic counterpart of IsAntichain.
func FirstDomination(words []Word) (int, int) {
	for i, a := range words {
		for j, b := range words {
			if i != j && a.DominatedBy(b) {
				return i, j
			}
		}
	}
	return -1, -1
}

// VerifyAddressable checks that a generated sequence can serve as the
// pattern set of one contact group: words are structurally valid (uniform
// length, digits within base, distinct) and form an antichain. It returns a
// descriptive error identifying the offending pair otherwise.
func VerifyAddressable(words []Word, base, length int) error {
	if err := Validate(words, base, length); err != nil {
		return err
	}
	if i, j := FirstDomination(words); i >= 0 {
		return fmt.Errorf("code: word %d (%v) is dominated by word %d (%v): address %v would conduct both",
			i, words[i], j, words[j], words[j])
	}
	return nil
}
