package code

import (
	"fmt"
	"sync"
)

// BalancedGray is the balanced Gray arrangement BGC (after Bhat & Savage):
// a Gray sequence — successive base words differ in exactly one digit — in
// which the digit transitions are additionally spread as evenly as possible
// across the digit positions, targeting the paper's limit of at most two
// changes per digit. Balancing flattens the variability matrix Σ: no single
// mesowire column accumulates a disproportionate number of implantation
// doses.
//
// The arrangement is found by deterministic backtracking over the Hamming
// graph of the code space with an iteratively deepened per-digit change cap,
// starting at the information-theoretic minimum ceil((count-1)/(M/2)). When
// the search budget is exhausted the generator degrades gracefully to the
// plain Gray arrangement, so Sequence never fails for feasible counts.
type BalancedGray struct {
	base   int
	length int

	// DigitChangeTarget is the preferred per-digit change cap; the paper
	// sets it to 2. The search starts at the feasibility minimum and stops
	// deepening once a sequence within max(target, minimum) is found.
	DigitChangeTarget int

	// SearchBudget bounds the number of DFS nodes explored per cap level.
	SearchBudget int

	mu    sync.Mutex
	cache map[int][]Word
}

// DefaultBGCSearchBudget is the per-cap node budget of the backtracking
// search. The sequences needed by the paper's experiments (count <= 64,
// M <= 12) resolve within a tiny fraction of it.
const DefaultBGCSearchBudget = 2_000_000

// NewBalancedGray returns the balanced Gray arrangement with total
// (reflected) word length M.
func NewBalancedGray(base, length int) (*BalancedGray, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if length < 2 || length%2 != 0 {
		return nil, fmt.Errorf("code: reflected balanced Gray code needs even length >= 2, got %d", length)
	}
	return &BalancedGray{
		base:              base,
		length:            length,
		DigitChangeTarget: 2,
		SearchBudget:      DefaultBGCSearchBudget,
		cache:             make(map[int][]Word),
	}, nil
}

// Type implements Generator.
func (b *BalancedGray) Type() Type { return TypeBalancedGray }

// Base implements Generator.
func (b *BalancedGray) Base() int { return b.base }

// Length implements Generator.
func (b *BalancedGray) Length() int { return b.length }

// BaseLength returns the number of free digits M/2.
func (b *BalancedGray) BaseLength() int { return b.length / 2 }

// SpaceSize implements Generator: Ω = n^(M/2).
func (b *BalancedGray) SpaceSize() int { return pow(b.base, b.BaseLength()) }

// Sequence implements Generator. The returned words are reflected.
func (b *BalancedGray) Sequence(count int) ([]Word, error) {
	if count < 0 {
		return nil, fmt.Errorf("code: negative word count %d", count)
	}
	if count > b.SpaceSize() {
		return nil, fmt.Errorf("%w: balanced Gray code base %d length %d has %d words, requested %d",
			ErrCountExceedsSpace, b.base, b.length, b.SpaceSize(), count)
	}
	// The sequence cache makes the generator safe for concurrent use by
	// the parallel sweep drivers (which share generators through Cached).
	b.mu.Lock()
	defer b.mu.Unlock()
	if cached, ok := b.cache[count]; ok {
		return cloneWords(cached), nil
	}
	baseWords := b.searchBase(count)
	words := make([]Word, count)
	for i, w := range baseWords {
		words[i] = w.Reflect(b.base)
	}
	b.cache[count] = words
	return cloneWords(words), nil
}

// searchBase finds count distinct base words forming a Gray path with the
// smallest achievable maximum per-digit change count.
func (b *BalancedGray) searchBase(count int) []Word {
	l := b.BaseLength()
	if count == 0 {
		return nil
	}
	start := make(Word, l)
	if count == 1 {
		return []Word{start}
	}
	minCap := (count - 2 + l) / l // ceil((count-1)/l)
	maxCap := count - 1
	for c := minCap; c <= maxCap; c++ {
		s := &bgcSearch{
			base:    b.base,
			l:       l,
			count:   count,
			perDig:  c,
			budget:  b.SearchBudget,
			visited: map[string]bool{start.Key(): true},
			usage:   make([]int, l),
			path:    []Word{start},
		}
		if s.dfs() {
			return s.path
		}
		if c >= b.DigitChangeTarget && c >= minCap+2 {
			// Deepening further trades balance for search time with no
			// benefit over the plain Gray fallback.
			break
		}
	}
	// Fallback: plain Gray arrangement (always a valid Gray path).
	g := &Gray{base: b.base, length: b.length}
	out := make([]Word, count)
	for i := range out {
		out[i] = g.BaseWord(i)
	}
	return out
}

type bgcSearch struct {
	base    int
	l       int
	count   int
	perDig  int // max allowed changes per digit position
	budget  int
	visited map[string]bool
	usage   []int // per-digit change counts so far
	path    []Word
}

func (s *bgcSearch) dfs() bool {
	if len(s.path) == s.count {
		return true
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	cur := s.path[len(s.path)-1]
	// Visit digits with the lowest usage first so balance emerges greedily;
	// ties break on digit index, then value, keeping the search
	// deterministic.
	order := digitOrder(s.usage)
	for _, j := range order {
		if s.usage[j] >= s.perDig {
			continue
		}
		old := cur[j]
		for v := 0; v < s.base; v++ {
			if v == old {
				continue
			}
			cur[j] = v
			key := cur.Key()
			if !s.visited[key] {
				s.visited[key] = true
				s.usage[j]++
				s.path = append(s.path, cur.Clone())
				if s.dfs() {
					cur[j] = old
					return true
				}
				s.path = s.path[:len(s.path)-1]
				s.usage[j]--
				delete(s.visited, key)
			}
		}
		cur[j] = old
	}
	return false
}

// digitOrder returns digit indices sorted by ascending usage (stable on
// index). Insertion sort keeps it allocation-light for the tiny l involved.
func digitOrder(usage []int) []int {
	order := make([]int, len(usage))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && usage[order[k]] < usage[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	return order
}

func cloneWords(ws []Word) []Word { return CloneWords(ws) }
