package code

import "testing"

// FuzzParseWord hardens the word parser: any accepted string must
// round-trip through String and stay within its base.
func FuzzParseWord(f *testing.F) {
	f.Add("00102212", 3)
	f.Add("0011", 2)
	f.Add("", 2)
	f.Add("zz", 36)
	f.Add("012", 10)
	f.Fuzz(func(t *testing.T, s string, base int) {
		if base < 2 || base > 36 {
			base = 2 + (abs(base) % 35)
		}
		w, err := ParseWord(s, base)
		if err != nil {
			return
		}
		if !w.Valid(base) {
			t.Fatalf("accepted word %v invalid for base %d", w, base)
		}
		back, err := ParseWord(w.String(), base)
		if err != nil || !back.Equal(w) {
			t.Fatalf("round trip failed for %q: %v, %v", s, back, err)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Guard the minimum int, whose negation overflows.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
