package nwerr_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"nwdec/internal/nwerr"
)

func TestClassOf(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want nwerr.Class
	}{
		{"invalid", nwerr.Invalid(base), nwerr.ClassInvalid},
		{"canceled", nwerr.Canceled(base), nwerr.ClassCanceled},
		{"overload", nwerr.Overload(base), nwerr.ClassOverload},
		{"internal", nwerr.Internal(base), nwerr.ClassInternal},
		{"unclassified", base, nwerr.ClassInternal},
		{"ctx-canceled", context.Canceled, nwerr.ClassCanceled},
		{"ctx-deadline", context.DeadlineExceeded, nwerr.ClassCanceled},
		{"wrapped-ctx", fmt.Errorf("sweep: %w", context.DeadlineExceeded), nwerr.ClassCanceled},
		{"notfound", nwerr.NotFound(base), nwerr.ClassNotFound},
		{"invalidf", nwerr.Invalidf("bad count %d", -1), nwerr.ClassInvalid},
		{"overloadf", nwerr.Overloadf("%d slots busy", 8), nwerr.ClassOverload},
		{"internalf", nwerr.Internalf("stage %d failed", 3), nwerr.ClassInternal},
		{"notfoundf", nwerr.NotFoundf("no job %q", "j-0"), nwerr.ClassNotFound},
		{"rewrapped", fmt.Errorf("cli: %w", nwerr.Invalid(base)), nwerr.ClassInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := nwerr.ClassOf(tc.err); got != tc.want {
				t.Errorf("ClassOf(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// TestOutermostClassWins pins the re-classification rule: a chain carrying
// two classes resolves to the outermost one, so a boundary can override a
// lower layer's verdict.
func TestOutermostClassWins(t *testing.T) {
	err := nwerr.Internal(fmt.Errorf("retry gave up: %w", nwerr.Invalid(errors.New("bad"))))
	if got := nwerr.ClassOf(err); got != nwerr.ClassInternal {
		t.Errorf("ClassOf = %v, want internal (outermost)", got)
	}
}

func TestSentinels(t *testing.T) {
	err := fmt.Errorf("engine: %w", nwerr.Invalid(errors.New("unknown kind")))
	if !errors.Is(err, nwerr.ErrInvalid) {
		t.Error("errors.Is(err, ErrInvalid) = false through a %w chain")
	}
	if errors.Is(err, nwerr.ErrCanceled) || errors.Is(err, nwerr.ErrInternal) ||
		errors.Is(err, nwerr.ErrOverload) {
		t.Error("sentinel matched the wrong class")
	}
	if !nwerr.IsInvalid(err) {
		t.Error("IsInvalid = false")
	}
	if nwerr.IsCanceled(err) {
		t.Error("IsCanceled = true for an invalid-class error")
	}
	shed := fmt.Errorf("engine: %w", nwerr.Overload(errors.New("saturated")))
	if !errors.Is(shed, nwerr.ErrOverload) || !nwerr.IsOverload(shed) {
		t.Error("overload sentinel not matched through a %w chain")
	}
	missing := fmt.Errorf("jobs: %w", nwerr.NotFoundf("unknown job %q", "j-0"))
	if !errors.Is(missing, nwerr.ErrNotFound) || !nwerr.IsNotFound(missing) {
		t.Error("not-found sentinel not matched through a %w chain")
	}
	if nwerr.IsNotFound(err) {
		t.Error("IsNotFound = true for an invalid-class error")
	}
}

// TestClassString pins the class names — they appear in sentinel messages
// and operator-facing logs.
func TestClassString(t *testing.T) {
	cases := []struct {
		class nwerr.Class
		want  string
	}{
		{nwerr.ClassInvalid, "invalid"},
		{nwerr.ClassCanceled, "canceled"},
		{nwerr.ClassOverload, "overload"},
		{nwerr.ClassNotFound, "not_found"},
		{nwerr.ClassInternal, "internal"},
		{nwerr.Class(99), "class(99)"},
	}
	for _, tc := range cases {
		if got := tc.class.String(); got != tc.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tc.class), got, tc.want)
		}
	}
	// The sentinels themselves render their class; they never appear in
	// chains, but errors.Is diagnostics may print them.
	if got := nwerr.ErrNotFound.Error(); got != "not_found error" {
		t.Errorf("ErrNotFound.Error() = %q", got)
	}
}

// TestHTTPStatus pins the shared class→status mapping every HTTP facade
// (nwserve, the cluster peer protocol) answers with.
func TestHTTPStatus(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 200},
		{"invalid", nwerr.Invalid(base), 400},
		{"canceled", nwerr.Canceled(base), 408},
		{"ctx-deadline", context.DeadlineExceeded, 408},
		{"overload", nwerr.Overload(base), 503},
		{"notfound", nwerr.NotFound(base), 404},
		{"internal", nwerr.Internal(base), 500},
		{"unclassified", base, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := nwerr.HTTPStatus(tc.err); got != tc.want {
				t.Errorf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestTransparency pins that classification never alters the message: the
// command layer prints the cause text the user needs (e.g. "context
// deadline exceeded") while deriving the exit code from the class.
func TestTransparency(t *testing.T) {
	cause := fmt.Errorf("experiments: %w", context.DeadlineExceeded)
	err := nwerr.Canceled(cause)
	if err.Error() != cause.Error() {
		t.Errorf("message changed: %q != %q", err.Error(), cause.Error())
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("cause lost from the chain")
	}
	var e *nwerr.Error
	if !errors.As(err, &e) || e.Class != nwerr.ClassCanceled {
		t.Error("errors.As failed to recover the typed error")
	}
}

func TestNilStaysNil(t *testing.T) {
	if nwerr.Invalid(nil) != nil || nwerr.Canceled(nil) != nil ||
		nwerr.Overload(nil) != nil || nwerr.NotFound(nil) != nil ||
		nwerr.Internal(nil) != nil {
		t.Error("wrapping nil must return nil")
	}
	if nwerr.IsInvalid(nil) || nwerr.IsCanceled(nil) || nwerr.IsOverload(nil) ||
		nwerr.IsNotFound(nil) {
		t.Error("nil error must not classify")
	}
}
