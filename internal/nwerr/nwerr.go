// Package nwerr is the typed error taxonomy of the pipeline. Every error
// that crosses a subsystem boundary carries (or is assigned) one of three
// classes:
//
//   - Invalid — the request itself is malformed: an unknown kind, a bad
//     flag value, a non-positive trial count. The caller must change the
//     request; retrying cannot help. CLIs exit 2, the HTTP facade
//     answers 400.
//   - Canceled — the caller gave up: the context was canceled or its
//     deadline expired before the work finished. CLIs exit 1, the HTTP
//     facade answers 408 (the request's own clock ran out — nothing is
//     wrong with the server).
//   - Overload — the system is saturated: admission control refused the
//     work to protect the process. The request was fine and the server is
//     healthy; retrying after a backoff is the correct response. CLIs
//     exit 1, the HTTP facade answers 503 with a Retry-After header.
//   - NotFound — the request names a resource outside the served set: an
//     unknown experiment, a job id no store has seen. The request was
//     well-formed, the named thing just does not exist. CLIs exit 1, the
//     HTTP facade answers 404.
//   - Internal — the computation itself failed. CLIs exit 1, the HTTP
//     facade answers 500.
//
// Classification is structural, never textual: classes travel as wrapped
// errors in ordinary %w chains, ClassOf walks the chain with errors.As,
// and context errors are recognized with errors.Is — so the command layer
// derives exit codes without ever matching message strings. HTTPStatus
// centralizes the class→status mapping so every HTTP surface (nwserve,
// the cluster peer protocol) answers identically.
package nwerr

import (
	"context"
	"errors"
	"fmt"
)

// Class partitions errors by who has to act on them.
type Class int

// The error classes, ordered by blame: the caller (Invalid), the caller's
// impatience (Canceled), the system's saturation (Overload), the system
// itself (Internal).
const (
	// ClassInternal is the default: the computation failed.
	ClassInternal Class = iota
	// ClassInvalid marks a malformed request; retrying cannot help.
	ClassInvalid
	// ClassCanceled marks work abandoned on context cancellation or
	// deadline expiry.
	ClassCanceled
	// ClassOverload marks work refused by admission control because the
	// system is saturated; retrying after a backoff is expected to help.
	ClassOverload
	// ClassNotFound marks a well-formed request naming a resource that
	// does not exist (an unknown experiment, an unknown job id).
	ClassNotFound
)

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case ClassInvalid:
		return "invalid"
	case ClassCanceled:
		return "canceled"
	case ClassOverload:
		return "overload"
	case ClassNotFound:
		return "not_found"
	case ClassInternal:
		return "internal"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// sentinel is the errors.Is anchor of one class. It never appears in an
// error chain itself; (*Error).Is matches it by class.
type sentinel struct{ class Class }

func (s sentinel) Error() string { return s.class.String() + " error" }

// Class sentinels for errors.Is: errors.Is(err, nwerr.ErrInvalid) reports
// whether err's chain carries an Invalid classification.
var (
	ErrInvalid  error = sentinel{ClassInvalid}
	ErrCanceled error = sentinel{ClassCanceled}
	ErrOverload error = sentinel{ClassOverload}
	ErrNotFound error = sentinel{ClassNotFound}
	ErrInternal error = sentinel{ClassInternal}
)

// Error couples a class with its cause. It is transparent: Error() renders
// the cause unchanged (the class is routing metadata, not message text)
// and Unwrap exposes the cause to errors.Is/As chains.
type Error struct {
	Class Class
	Err   error
}

// Error returns the cause's message unchanged.
func (e *Error) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the class sentinels, so errors.Is(err, ErrInvalid) works
// through arbitrary %w chains.
func (e *Error) Is(target error) bool {
	s, ok := target.(sentinel)
	return ok && s.class == e.Class
}

// wrap attaches a class to err; a nil err stays nil.
func wrap(class Class, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: class, Err: err}
}

// Invalid marks err as a malformed request. A nil err stays nil.
func Invalid(err error) error { return wrap(ClassInvalid, err) }

// Canceled marks err as abandoned work. A nil err stays nil.
func Canceled(err error) error { return wrap(ClassCanceled, err) }

// Overload marks err as work shed under saturation. A nil err stays nil.
func Overload(err error) error { return wrap(ClassOverload, err) }

// NotFound marks err as naming a nonexistent resource. A nil err stays nil.
func NotFound(err error) error { return wrap(ClassNotFound, err) }

// Internal marks err as a computation failure. A nil err stays nil.
func Internal(err error) error { return wrap(ClassInternal, err) }

// Invalidf formats a new Invalid-class error; %w wrapping works.
func Invalidf(format string, args ...any) error {
	return Invalid(fmt.Errorf(format, args...))
}

// Internalf formats a new Internal-class error; %w wrapping works.
func Internalf(format string, args ...any) error {
	return Internal(fmt.Errorf(format, args...))
}

// Overloadf formats a new Overload-class error; %w wrapping works.
func Overloadf(format string, args ...any) error {
	return Overload(fmt.Errorf(format, args...))
}

// NotFoundf formats a new NotFound-class error; %w wrapping works.
func NotFoundf(format string, args ...any) error {
	return NotFound(fmt.Errorf(format, args...))
}

// ClassOf classifies an error: the outermost *Error in the chain wins;
// bare context.Canceled/DeadlineExceeded chains classify as Canceled;
// everything else — including errors that never met this package — is
// Internal. A nil error has no class; ClassOf returns ClassInternal for
// uniformity, but callers should branch on err != nil first.
func ClassOf(err error) Class {
	var e *Error
	if errors.As(err, &e) {
		return e.Class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	return ClassInternal
}

// IsInvalid reports whether err classifies as a malformed request.
func IsInvalid(err error) bool { return err != nil && ClassOf(err) == ClassInvalid }

// IsCanceled reports whether err classifies as abandoned work.
func IsCanceled(err error) bool { return err != nil && ClassOf(err) == ClassCanceled }

// IsOverload reports whether err classifies as shed work.
func IsOverload(err error) bool { return err != nil && ClassOf(err) == ClassOverload }

// IsNotFound reports whether err classifies as naming a nonexistent
// resource.
func IsNotFound(err error) bool { return err != nil && ClassOf(err) == ClassNotFound }

// HTTPStatus maps an error's class to the HTTP status every facade of the
// pipeline answers with: Invalid is 400 (fix the request), Canceled is 408
// (the caller's clock ran out), Overload is 503 (back off and retry — the
// server pairs it with a Retry-After header), NotFound is 404 (the named
// resource does not exist), Internal is 500. A nil error is 200.
func HTTPStatus(err error) int {
	if err == nil {
		return 200
	}
	switch ClassOf(err) {
	case ClassInvalid:
		return 400
	case ClassCanceled:
		return 408
	case ClassOverload:
		return 503
	case ClassNotFound:
		return 404
	default:
		return 500
	}
}
