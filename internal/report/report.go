// Package report renders the complete reproduction record — every figure of
// the paper plus the ablations — as a single Markdown document with
// paper-vs-measured commentary. The sections are assembled from the same
// structured datasets the CLIs serialize, so the documentation can never
// drift from the experiment results.
package report

import (
	"context"
	"fmt"
	"strings"

	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/experiments"
)

// Options configures report generation.
type Options struct {
	// Cfg is the platform configuration shared by all experiments.
	Cfg core.Config
	// Title heads the document.
	Title string
	// IncludeAblations adds the reproduction-only sections.
	IncludeAblations bool
	// MCTrials and Seed drive the Monte-Carlo validation section.
	MCTrials int
	Seed     uint64
	// Workers bounds the worker pool of the underlying experiments
	// (0 = GOMAXPROCS). The document is bit-identical at every worker count.
	Workers int
}

// DefaultOptions returns the standard full report configuration.
func DefaultOptions() Options {
	return Options{
		Title:            "MSPT nanowire decoder — reproduction report",
		IncludeAblations: true,
		MCTrials:         experiments.DefaultMCTrials,
		Seed:             experiments.DefaultSeed,
	}
}

// sections maps document headings to the registry experiments that fill
// them, in presentation order. The ablation subsections are only included
// when Options.IncludeAblations is set.
var sections = []struct {
	heading    string
	experiment string
	ablation   bool
}{
	{"## Fig. 5 — fabrication complexity", "fig5", false},
	{"## Fig. 6 — decoder variability", "fig6", false},
	{"## Fig. 7 — crossbar yield vs code length", "fig7", false},
	{"## Fig. 8 — effective bit area", "fig8", false},
	{"## Headline claims", "headline", false},
	{"### Arrangement (Propositions 4-5)", "arrangement", true},
	{"### Threshold-model invariance", "model", true},
	{"### Multi-valued decoders", "multivalued", true},
	{"### Mask-set economics", "masks", true},
	{"### Thermal robustness (300 K design)", "temperature", true},
	{"### Cave-depth scaling (BGC, M=10)", "scaling", true},
	{"### Monte-Carlo validation", "montecarlo", true},
}

// Generate runs every experiment and assembles the Markdown document from
// the resulting datasets. Cancelling ctx aborts generation with ctx's error.
func Generate(ctx context.Context, opt Options) (string, error) {
	r := &experiments.Runner{
		Cfg:      opt.Cfg,
		MCTrials: opt.MCTrials,
		Seed:     opt.Seed,
		Workers:  opt.Workers,
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", opt.Title)
	wroteAblationHeader := false
	for _, sec := range sections {
		if sec.ablation {
			if !opt.IncludeAblations {
				continue
			}
			if !wroteAblationHeader {
				sb.WriteString("## Ablations and extensions\n\n")
				wroteAblationHeader = true
			}
		}
		ds, err := r.Run(ctx, sec.experiment)
		if err != nil {
			return "", fmt.Errorf("report: %s: %w", sec.experiment, err)
		}
		writeSection(&sb, sec.heading, ds)
	}
	return sb.String(), nil
}

// writeSection embeds one dataset under a caller-supplied heading: the pipe
// table, then the notes as a paragraph.
func writeSection(sb *strings.Builder, heading string, ds *dataset.Dataset) {
	sb.WriteString(heading + "\n\n")
	sb.WriteString(ds.MarkdownTable())
	if len(ds.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range ds.Notes {
			sb.WriteString(n + "\n")
		}
	}
	sb.WriteString("\n")
}

// Summary returns a compact one-paragraph textual summary of the
// reproduction status, suitable for CLI footers.
func Summary(ctx context.Context, cfg core.Config) (string, error) {
	claims, err := experiments.HeadlineWorkers(ctx, cfg, 0)
	if err != nil {
		return "", err
	}
	held := 0
	for _, c := range claims {
		if c.Holds {
			held++
		}
	}
	points, err := experiments.Fig8Workers(ctx, cfg, 0)
	if err != nil {
		return "", err
	}
	min := experiments.Fig8MinBitArea(points)
	return fmt.Sprintf(
		"%d of %d headline claims hold; best decoder: %s M=%d at %.0f nm²/bit, %.1f%% yield",
		held, len(claims), min.Type, min.Length, min.BitArea, 100*min.Yield), nil
}
