// Package report renders the complete reproduction record — every figure of
// the paper plus the ablations — as a single Markdown document with
// paper-vs-measured commentary, machine-generated from the experiment
// results so the documentation can never drift from the code.
package report

import (
	"fmt"
	"strings"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/experiments"
)

// Options configures report generation.
type Options struct {
	// Cfg is the platform configuration shared by all experiments.
	Cfg core.Config
	// Title heads the document.
	Title string
	// IncludeAblations adds the reproduction-only sections.
	IncludeAblations bool
	// MCTrials and Seed drive the Monte-Carlo validation section.
	MCTrials int
	Seed     uint64
}

// DefaultOptions returns the standard full report configuration.
func DefaultOptions() Options {
	return Options{
		Title:            "MSPT nanowire decoder — reproduction report",
		IncludeAblations: true,
		MCTrials:         4,
		Seed:             2009,
	}
}

// Generate runs every experiment and assembles the Markdown document.
func Generate(opt Options) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", opt.Title)

	if err := fig5Section(&sb); err != nil {
		return "", err
	}
	if err := fig6Section(&sb); err != nil {
		return "", err
	}
	if err := fig7Section(&sb, opt.Cfg); err != nil {
		return "", err
	}
	if err := fig8Section(&sb, opt.Cfg); err != nil {
		return "", err
	}
	if err := headlineSection(&sb, opt.Cfg); err != nil {
		return "", err
	}
	if opt.IncludeAblations {
		if err := ablationSection(&sb, opt); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

func fig5Section(sb *strings.Builder) error {
	rows, err := experiments.Fig5(experiments.Fig5N)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 5 — fabrication complexity\n\n")
	sb.WriteString("| logic | base | M | Φ(TC) | Φ(GC) |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(sb, "| %s | %d | %d | %d | %d |\n", r.Logic, r.Base, r.Length, r.PhiTC, r.PhiGC)
	}
	fmt.Fprintf(sb, "\nAverage multi-valued Gray saving: **%.0f%%** (paper: 17%%).\n\n",
		100*experiments.Fig5GraySaving(rows))
	return nil
}

func fig6Section(sb *strings.Builder) error {
	surfaces, err := experiments.Fig6(experiments.Fig6N, []int{8, 10})
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 6 — decoder variability\n\n")
	sb.WriteString("| code | M | avg ‖Σ‖₁/(N·M) [σ_T²] | max ν |\n|---|---|---|---|\n")
	for _, s := range surfaces {
		fmt.Fprintf(sb, "| %s | %d | %.3g | %d |\n", s.Type, s.Length, s.AvgVariability, s.MaxNu)
	}
	fmt.Fprintf(sb, "\nAverage GC/BGC variability saving vs TC: **%.0f%%** (paper: 18%%).\n\n",
		100*experiments.Fig6VariabilitySaving(surfaces))
	return nil
}

func fig7Section(sb *strings.Builder, cfg core.Config) error {
	points, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 7 — crossbar yield vs code length\n\n")
	writeYieldTable(sb, points, false)
	return nil
}

func fig8Section(sb *strings.Builder, cfg core.Config) error {
	points, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	sb.WriteString("## Fig. 8 — effective bit area\n\n")
	writeYieldTable(sb, points, true)
	min := experiments.Fig8MinBitArea(points)
	fmt.Fprintf(sb, "\nSmallest bit area: **%.0f nm²** (%s, M=%d); paper: 169 nm² (BGC) / 175 nm² (AHC).\n\n",
		min.BitArea, min.Type, min.Length)
	return nil
}

func writeYieldTable(sb *strings.Builder, points []experiments.YieldPoint, withArea bool) {
	if withArea {
		sb.WriteString("| code | M | yield | bit area [nm²] |\n|---|---|---|---|\n")
	} else {
		sb.WriteString("| code | M | yield | Φ |\n|---|---|---|---|\n")
	}
	for _, p := range points {
		if withArea {
			fmt.Fprintf(sb, "| %s | %d | %.1f%% | %.0f |\n", p.Type, p.Length, 100*p.Yield, p.BitArea)
		} else {
			fmt.Fprintf(sb, "| %s | %d | %.1f%% | %d |\n", p.Type, p.Length, 100*p.Yield, p.Phi)
		}
	}
}

func headlineSection(sb *strings.Builder, cfg core.Config) error {
	claims, err := experiments.Headline(cfg)
	if err != nil {
		return err
	}
	sb.WriteString("## Headline claims\n\n")
	sb.WriteString("| claim | paper | measured | holds |\n|---|---|---|---|\n")
	for _, c := range claims {
		holds := "✔"
		if !c.Holds {
			holds = "✘"
		}
		fmt.Fprintf(sb, "| %s | %s | %s | %s |\n", c.Name, c.Paper, c.Measured, holds)
	}
	sb.WriteString("\n")
	return nil
}

func ablationSection(sb *strings.Builder, opt Options) error {
	sb.WriteString("## Ablations and extensions\n\n")

	arr, err := experiments.AblationArrangement([]uint64{1, 2, 3})
	if err != nil {
		return err
	}
	sb.WriteString("### Arrangement (Propositions 4-5)\n\n")
	sb.WriteString("| arrangement | Φ | ‖Σ‖₁ [σ²] | max ν | yield |\n|---|---|---|---|---|\n")
	for _, p := range arr {
		fmt.Fprintf(sb, "| %s | %d | %d | %d | %.1f%% |\n", p.Name, p.Phi, p.NuSum, p.MaxNu, 100*p.Yield)
	}

	inv, err := experiments.AblationModel()
	if err != nil {
		return err
	}
	sb.WriteString("\n### Threshold-model invariance\n\n")
	allInvariant := true
	for _, r := range inv {
		if !r.Invariant {
			allInvariant = false
		}
	}
	if allInvariant {
		sb.WriteString("Φ and ‖Σ‖₁ are identical under the physical and the " +
			"table-calibrated V_T↔N_D models for every tree-family code.\n")
	} else {
		sb.WriteString("WARNING: fabrication metrics depend on the threshold model.\n")
	}

	mv, err := experiments.MultiValued(opt.Cfg)
	if err != nil {
		return err
	}
	sb.WriteString("\n### Multi-valued decoders\n\n")
	sb.WriteString("| base | code | M | Φ | yield | bit area [nm²] |\n|---|---|---|---|---|---|\n")
	for _, p := range mv {
		fmt.Fprintf(sb, "| %d | %s | %d | %d | %.1f%% | %.0f |\n",
			p.Base, p.Type, p.Length, p.Phi, 100*p.Yield, p.BitArea)
	}

	masks, err := experiments.Masks(opt.Cfg)
	if err != nil {
		return err
	}
	sb.WriteString("\n### Mask-set economics\n\n")
	sb.WriteString("| code | M | passes (Φ) | distinct masks | reuse |\n|---|---|---|---|---|\n")
	for _, p := range masks {
		fmt.Fprintf(sb, "| %s | %d | %d | %d | %.1fx |\n",
			p.Type, p.Length, p.Passes, p.DistinctMasks, p.ReuseFactor)
	}

	temps, err := experiments.Temperature(opt.Cfg, nil)
	if err != nil {
		return err
	}
	sb.WriteString("\n### Thermal robustness (300 K design)\n\n")
	sb.WriteString("| T [K] | worst V_T drift [mV] | yield |\n|---|---|---|\n")
	for _, p := range temps {
		fmt.Fprintf(sb, "| %.0f | %.0f | %.1f%% |\n", p.TempK, 1000*p.WorstDrift, 100*p.Yield)
	}

	scalingPts, err := experiments.Scaling(opt.Cfg, []int{10, 16, 20, 26, 32})
	if err != nil {
		return err
	}
	sb.WriteString("\n### Cave-depth scaling (BGC, M=10)\n\n")
	sb.WriteString("| N wires | Φ | yield | bit area [nm²] |\n|---|---|---|---|\n")
	for _, p := range scalingPts {
		fmt.Fprintf(sb, "| %d | %d | %.1f%% | %.0f |\n",
			p.HalfCaveWires, p.Phi, 100*p.Yield, p.BitArea)
	}

	mc, err := experiments.MonteCarlo(opt.Cfg, opt.MCTrials, opt.Seed)
	if err != nil {
		return err
	}
	sb.WriteString("\n### Monte-Carlo validation\n\n")
	sb.WriteString("| code | M | analytic Y² | MC usable fraction |\n|---|---|---|---|\n")
	for _, p := range mc {
		fmt.Fprintf(sb, "| %s | %d | %.1f%% | %.1f%% |\n", p.Type, p.Length, 100*p.Analytic, 100*p.MC)
	}
	sb.WriteString("\n")
	return nil
}

// Summary returns a compact one-paragraph textual summary of the
// reproduction status, suitable for CLI footers.
func Summary(cfg core.Config) (string, error) {
	claims, err := experiments.Headline(cfg)
	if err != nil {
		return "", err
	}
	held := 0
	for _, c := range claims {
		if c.Holds {
			held++
		}
	}
	points, err := experiments.Fig8(cfg)
	if err != nil {
		return "", err
	}
	min := experiments.Fig8MinBitArea(points)
	var winner code.Type = min.Type
	return fmt.Sprintf(
		"%d of %d headline claims hold; best decoder: %s M=%d at %.0f nm²/bit, %.1f%% yield",
		held, len(claims), winner, min.Length, min.BitArea, 100*min.Yield), nil
}
