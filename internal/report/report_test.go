package report

import (
	"context"
	"strings"
	"testing"

	"nwdec/internal/core"
)

func TestGenerateFullReport(t *testing.T) {
	opt := DefaultOptions()
	opt.MCTrials = 1
	doc, err := Generate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"# MSPT nanowire decoder — reproduction report",
		"## Fig. 5 — fabrication complexity",
		"## Fig. 6 — decoder variability",
		"## Fig. 7 — crossbar yield vs code length",
		"## Fig. 8 — effective bit area",
		"## Headline claims",
		"## Ablations and extensions",
		"### Arrangement (Propositions 4-5)",
		"### Threshold-model invariance",
		"### Multi-valued decoders",
		"### Monte-Carlo validation",
		"### Mask-set economics",
		"### Thermal robustness (300 K design)",
		"### Cave-depth scaling (BGC, M=10)",
		"| ternary |",
		"paper: 17%",
		"identical under the physical and the table-calibrated",
	}
	for _, want := range wants {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(doc, "✘") {
		t.Error("report contains failed headline claims")
	}
}

func TestGenerateWithoutAblations(t *testing.T) {
	opt := DefaultOptions()
	opt.IncludeAblations = false
	opt.Title = "short"
	doc, err := Generate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc, "## Ablations") {
		t.Error("ablations included despite option")
	}
	if !strings.HasPrefix(doc, "# short\n") {
		t.Error("custom title missing")
	}
}

func TestSummary(t *testing.T) {
	s, err := Summary(context.Background(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "6 of 6 headline claims hold") {
		t.Errorf("summary = %q", s)
	}
	if !strings.Contains(s, "nm²/bit") {
		t.Errorf("summary missing bit area: %q", s)
	}
}
