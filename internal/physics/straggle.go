package physics

import (
	"fmt"
	"math"
)

// StraggleModel derives the per-dose threshold-voltage deviation σ_T from
// first principles instead of assuming the paper's 50 mV: random dopant
// fluctuation in a nanowire region of volume V makes the implanted dopant
// count Poisson-distributed, so the doping concentration carries a relative
// deviation 1/sqrt(N_D·V), which propagates to the threshold through the
// local slope dV_T/dN_D of the threshold law.
//
// This closes the loop between the geometry (region volume) and the yield
// model: thinner nanowires or shorter doping regions raise σ_T and lower
// yield, exactly the scaling pressure the paper's introduction describes.
type StraggleModel struct {
	// Model is the threshold law to differentiate.
	Model VTModel
	// RegionLength is the doping-region length along the wire in cm
	// (the mesowire pitch, 32 nm).
	RegionLength float64
	// WireWidth is the nanowire width in cm (the spacer thickness,
	// ~10 nm).
	WireWidth float64
	// WireHeight is the spacer height in cm (~300 nm as fabricated, less
	// after planarization).
	WireHeight float64
}

// DefaultStraggleModel returns the paper's geometry: 32 nm regions on
// 10 nm x 60 nm wires (the as-fabricated 300 nm spacers planarized down to
// a depletion-active 60 nm), on the default physical threshold law.
func DefaultStraggleModel() *StraggleModel {
	return &StraggleModel{
		Model:        DefaultPhysicalModel(),
		RegionLength: 32e-7,
		WireWidth:    10e-7,
		WireHeight:   60e-7,
	}
}

// Validate reports whether the geometry is meaningful.
func (s *StraggleModel) Validate() error {
	if s.Model == nil {
		return fmt.Errorf("physics: straggle model needs a threshold law")
	}
	if s.RegionLength <= 0 || s.WireWidth <= 0 || s.WireHeight <= 0 {
		return fmt.Errorf("physics: non-positive straggle geometry %+v", s)
	}
	return nil
}

// RegionVolume returns the doping-region volume in cm³.
func (s *StraggleModel) RegionVolume() float64 {
	return s.RegionLength * s.WireWidth * s.WireHeight
}

// DopantCount returns the expected number of dopant atoms in a region doped
// to concentration nd (cm^-3).
func (s *StraggleModel) DopantCount(nd float64) float64 {
	return nd * s.RegionVolume()
}

// SigmaT returns the threshold-voltage standard deviation of a single dose
// that sets the region to concentration nd:
//
//	σ_T = dV_T/dN_D · σ_N,  σ_N = sqrt(N_D / V)
//
// (Poisson count fluctuation translated back into a concentration).
func (s *StraggleModel) SigmaT(nd float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	nd = clampDoping(nd)
	// Central finite difference of the threshold law.
	h := nd * 1e-4
	slope := (s.Model.VT(nd+h) - s.Model.VT(nd-h)) / (2 * h)
	sigmaN := math.Sqrt(nd / s.RegionVolume())
	return slope * sigmaN, nil
}

// WorstCaseSigmaT returns the largest per-dose σ_T across the quantizer's
// doping levels — the value a conservative yield analysis should use.
func (s *StraggleModel) WorstCaseSigmaT(q *Quantizer) (float64, error) {
	worst := 0.0
	for _, nd := range q.DopingLevels() {
		sig, err := s.SigmaT(nd)
		if err != nil {
			return 0, err
		}
		if sig > worst {
			worst = sig
		}
	}
	return worst, nil
}
