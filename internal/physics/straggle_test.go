package physics

import (
	"math"
	"testing"
)

func TestStraggleModelValidate(t *testing.T) {
	s := DefaultStraggleModel()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.Model = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil model accepted")
	}
	bad = *s
	bad.WireWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero width accepted")
	}
}

func TestStraggleVolumeAndCount(t *testing.T) {
	s := DefaultStraggleModel()
	wantV := 32e-7 * 10e-7 * 60e-7 // 1.92e-17 cm^3
	if got := s.RegionVolume(); math.Abs(got-wantV)/wantV > 1e-12 {
		t.Errorf("RegionVolume = %g", got)
	}
	// At 5e18 cm^-3 the region holds ~96 dopants: countable, hence noisy.
	if got := s.DopantCount(5e18); math.Abs(got-96) > 1 {
		t.Errorf("DopantCount = %g, want ~96", got)
	}
}

func TestStraggleSigmaTPlausibleMagnitude(t *testing.T) {
	// The derived per-dose deviation must land in the tens-of-millivolts
	// regime the paper assumes (σ_T = 50 mV).
	s := DefaultStraggleModel()
	q, err := NewQuantizer(s.Model, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := s.WorstCaseSigmaT(q)
	if err != nil {
		t.Fatal(err)
	}
	if worst < 0.005 || worst > 0.3 {
		t.Errorf("worst-case σ_T = %g V, outside the plausible 5-300 mV band", worst)
	}
}

func TestStraggleSigmaTShrinksWithVolume(t *testing.T) {
	// Bigger regions average out dopant fluctuation.
	small := DefaultStraggleModel()
	big := DefaultStraggleModel()
	big.WireHeight *= 4
	sSmall, err := small.SigmaT(2e18)
	if err != nil {
		t.Fatal(err)
	}
	sBig, err := big.SigmaT(2e18)
	if err != nil {
		t.Fatal(err)
	}
	if sBig >= sSmall {
		t.Errorf("larger volume did not reduce σ_T: %g vs %g", sBig, sSmall)
	}
	// Quadrupling the volume halves σ_N (and σ_T).
	if ratio := sSmall / sBig; math.Abs(ratio-2) > 0.05 {
		t.Errorf("σ_T scaling ratio = %g, want ~2", ratio)
	}
}

func TestStraggleSigmaTErrorPropagation(t *testing.T) {
	s := DefaultStraggleModel()
	s.RegionLength = -1
	if _, err := s.SigmaT(2e18); err == nil {
		t.Error("invalid geometry accepted")
	}
	q, _ := NewQuantizer(DefaultPhysicalModel(), 2, 0, 1)
	if _, err := s.WorstCaseSigmaT(q); err == nil {
		t.Error("worst-case on invalid geometry accepted")
	}
}

func TestStraggleSigmaTMonotoneLevels(t *testing.T) {
	// σ_T is finite and positive at every quantizer level for ternary too.
	s := DefaultStraggleModel()
	q, _ := NewQuantizer(s.Model, 3, 0, 1)
	for k := 0; k < 3; k++ {
		sig, err := s.SigmaT(q.DopingOf(k))
		if err != nil {
			t.Fatal(err)
		}
		if sig <= 0 || math.IsInf(sig, 0) || math.IsNaN(sig) {
			t.Errorf("level %d: σ_T = %g", k, sig)
		}
	}
}
