package physics

import (
	"fmt"
	"math"
)

// Quantizer realizes the discrete ordering g of Proposition 1: it places the
// n logic values of a multi-valued addressing scheme onto equally spaced
// threshold-voltage levels inside a supply window, and — through a VTModel —
// onto the doping concentrations that produce those thresholds.
//
// With window [VMin, VMax] and spacing s = (VMax-VMin)/n, digit k sits at
// VMin + (k+0.5)·s, so every level owns a guard band of ±s/2 (the Margin):
// a region still decodes correctly as long as its actual threshold stays
// within its band. For n = 3 over [0, 0.6] V this yields exactly the
// 0.1/0.3/0.5 V levels of the paper's Example 1.
type Quantizer struct {
	model      VTModel
	n          int
	vmin, vmax float64
	vts        []float64
	dopings    []float64
}

// NewQuantizer builds a quantizer for n >= 2 logic levels over the voltage
// window [vmin, vmax].
func NewQuantizer(model VTModel, n int, vmin, vmax float64) (*Quantizer, error) {
	if model == nil {
		return nil, fmt.Errorf("physics: nil VTModel")
	}
	if n < 2 {
		return nil, fmt.Errorf("physics: need at least 2 logic levels, got %d", n)
	}
	if !(vmax > vmin) {
		return nil, fmt.Errorf("physics: invalid voltage window [%g, %g]", vmin, vmax)
	}
	q := &Quantizer{
		model:   model,
		n:       n,
		vmin:    vmin,
		vmax:    vmax,
		vts:     make([]float64, n),
		dopings: make([]float64, n),
	}
	s := (vmax - vmin) / float64(n)
	for k := 0; k < n; k++ {
		q.vts[k] = vmin + (float64(k)+0.5)*s
		q.dopings[k] = model.Doping(q.vts[k])
	}
	return q, nil
}

// N returns the number of logic levels.
func (q *Quantizer) N() int { return q.n }

// Window returns the voltage window the levels are placed in.
func (q *Quantizer) Window() (vmin, vmax float64) { return q.vmin, q.vmax }

// Margin returns half the level spacing — the maximum threshold-voltage
// excursion a region tolerates before it decodes as a neighbouring digit.
func (q *Quantizer) Margin() float64 {
	return (q.vmax - q.vmin) / (2 * float64(q.n))
}

// VTOf returns the nominal threshold voltage of a digit.
// It panics for a digit outside [0, n).
func (q *Quantizer) VTOf(digit int) float64 {
	q.check(digit)
	return q.vts[digit]
}

// DopingOf returns the doping concentration (cm^-3) realizing a digit's
// nominal threshold voltage. It panics for a digit outside [0, n).
func (q *Quantizer) DopingOf(digit int) float64 {
	q.check(digit)
	return q.dopings[digit]
}

// Levels returns a copy of all nominal threshold voltages, ascending.
func (q *Quantizer) Levels() []float64 {
	return append([]float64(nil), q.vts...)
}

// DopingLevels returns a copy of all doping levels, ascending.
func (q *Quantizer) DopingLevels() []float64 {
	return append([]float64(nil), q.dopings...)
}

// DigitOfVT returns the digit whose level is nearest to vt. Values outside
// the window clamp to the extreme digits.
func (q *Quantizer) DigitOfVT(vt float64) int {
	best, bestDist := 0, math.Inf(1)
	for k, lv := range q.vts {
		if d := math.Abs(vt - lv); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// Model returns the underlying VTModel.
func (q *Quantizer) Model() VTModel { return q.model }

func (q *Quantizer) check(digit int) {
	if digit < 0 || digit >= q.n {
		panic(fmt.Sprintf("physics: digit %d out of range [0,%d)", digit, q.n))
	}
}

// PaperExampleQuantizer returns the exact quantizer of the paper's worked
// Example 1: ternary logic, levels 0.1/0.3/0.5 V, dopings 2/4/9 x 10^18.
func PaperExampleQuantizer() *Quantizer {
	q, err := NewQuantizer(PaperExampleTable(), 3, 0, 0.6)
	if err != nil {
		panic("physics: paper example quantizer must be valid: " + err.Error())
	}
	return q
}
