// Package physics implements the device-physics mapping between channel
// doping concentration N_D and transistor threshold voltage V_T that the
// paper's Proposition 1 calls f: a monotonic non-linear bijection (after
// Sze & Ng, "Physics of Semiconductor Devices").
//
// Two interchangeable models are provided:
//
//   - PhysicalModel: the long-channel MOSFET threshold equation with
//     parameters (oxide thickness, flat-band voltage, temperature). Its
//     inverse is computed numerically by bisection, which is exact enough
//     because V_T is strictly monotonic in the doping.
//   - TableModel: a monotonic log-doping interpolation table. The
//     PaperExampleTable reproduces the paper's worked Example 1 exactly
//     (0.1 V / 0.3 V / 0.5 V at 2, 4, 9 x 10^18 cm^-3).
//
// On top of either model, Quantizer maps multi-valued logic digits
// 0..n-1 to equally spaced threshold-voltage levels and to the doping
// levels realizing them — the composition h = f ∘ g of Proposition 1.
package physics

// Physical constants in CGS-flavoured semiconductor units
// (centimetres, volts, coulombs), as customary in device physics.
const (
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
	// VacuumPermittivity in F/cm.
	VacuumPermittivity = 8.8541878128e-14
	// SiliconRelativePermittivity of crystalline silicon.
	SiliconRelativePermittivity = 11.7
	// OxideRelativePermittivity of thermal SiO2.
	OxideRelativePermittivity = 3.9
	// IntrinsicCarrierConcentration of silicon at 300 K in cm^-3.
	IntrinsicCarrierConcentration = 9.65e9
	// ThermalVoltage300K is kT/q at 300 K in volts.
	ThermalVoltage300K = 0.025852
	// SiliconBandGap at 300 K in electron-volts.
	SiliconBandGap = 1.12
)

// SiliconPermittivity is the absolute permittivity of silicon in F/cm.
const SiliconPermittivity = SiliconRelativePermittivity * VacuumPermittivity

// OxidePermittivity is the absolute permittivity of SiO2 in F/cm.
const OxidePermittivity = OxideRelativePermittivity * VacuumPermittivity

// Doping bounds accepted by the models, in cm^-3. Outside this window the
// silicon is either effectively intrinsic or degenerate and the threshold
// equation loses validity.
const (
	MinDoping = 1e14
	MaxDoping = 1e21
)
