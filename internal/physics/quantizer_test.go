package physics

import (
	"math"
	"testing"
)

func TestPaperExampleQuantizer(t *testing.T) {
	q := PaperExampleQuantizer()
	wantVT := []float64{0.1, 0.3, 0.5}
	wantND := []float64{2e18, 4e18, 9e18}
	for k := 0; k < 3; k++ {
		if got := q.VTOf(k); math.Abs(got-wantVT[k]) > 1e-12 {
			t.Errorf("VTOf(%d) = %g, want %g", k, got, wantVT[k])
		}
		if got := q.DopingOf(k); math.Abs(got-wantND[k])/wantND[k] > 1e-9 {
			t.Errorf("DopingOf(%d) = %g, want %g", k, got, wantND[k])
		}
	}
	if got := q.Margin(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Margin = %g, want 0.1", got)
	}
}

func TestQuantizerBinaryWindow(t *testing.T) {
	q, err := NewQuantizer(DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lv := q.Levels()
	if math.Abs(lv[0]-0.25) > 1e-12 || math.Abs(lv[1]-0.75) > 1e-12 {
		t.Errorf("binary levels = %v, want [0.25 0.75]", lv)
	}
	if math.Abs(q.Margin()-0.25) > 1e-12 {
		t.Errorf("binary margin = %g, want 0.25", q.Margin())
	}
	d := q.DopingLevels()
	if d[0] >= d[1] {
		t.Errorf("doping levels not increasing: %v", d)
	}
}

func TestQuantizerDigitOfVT(t *testing.T) {
	q := PaperExampleQuantizer()
	cases := []struct {
		vt   float64
		want int
	}{
		{0.1, 0}, {0.3, 1}, {0.5, 2},
		{0.19, 0}, {0.21, 1}, {-5, 0}, {5, 2},
	}
	for _, c := range cases {
		if got := q.DigitOfVT(c.vt); got != c.want {
			t.Errorf("DigitOfVT(%g) = %d, want %d", c.vt, got, c.want)
		}
	}
}

func TestQuantizerRoundTripDigits(t *testing.T) {
	for n := 2; n <= 6; n++ {
		q, err := NewQuantizer(DefaultPhysicalModel(), n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if got := q.DigitOfVT(q.VTOf(k)); got != k {
				t.Errorf("n=%d: digit %d round-trips to %d", n, k, got)
			}
		}
	}
}

func TestQuantizerValidation(t *testing.T) {
	m := DefaultPhysicalModel()
	if _, err := NewQuantizer(nil, 2, 0, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewQuantizer(m, 1, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewQuantizer(m, 2, 1, 1); err == nil {
		t.Error("empty window accepted")
	}
}

func TestQuantizerPanicsOnBadDigit(t *testing.T) {
	q := PaperExampleQuantizer()
	for _, digit := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("digit %d did not panic", digit)
				}
			}()
			q.VTOf(digit)
		}()
	}
}

func TestQuantizerWindowAndCopies(t *testing.T) {
	q := PaperExampleQuantizer()
	lo, hi := q.Window()
	if lo != 0 || hi != 0.6 {
		t.Errorf("Window = %g,%g", lo, hi)
	}
	lv := q.Levels()
	lv[0] = 99
	if q.VTOf(0) == 99 {
		t.Error("Levels leaked internal slice")
	}
	d := q.DopingLevels()
	d[0] = 99
	if q.DopingOf(0) == 99 {
		t.Error("DopingLevels leaked internal slice")
	}
	if q.N() != 3 {
		t.Errorf("N = %d", q.N())
	}
	if q.Model() == nil {
		t.Error("Model() returned nil")
	}
}
