package physics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPhysicalModelCalibration(t *testing.T) {
	m := DefaultPhysicalModel()
	if got := m.VT(2e18); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("VT(2e18) = %g, want 0.1 (calibration point)", got)
	}
}

func TestPhysicalModelMonotone(t *testing.T) {
	m := DefaultPhysicalModel()
	prev := math.Inf(-1)
	for n := MinDoping; n <= MaxDoping; n *= 1.3 {
		vt := m.VT(n)
		if vt <= prev {
			t.Fatalf("VT not strictly increasing at N=%g: %g <= %g", n, vt, prev)
		}
		prev = vt
	}
}

func TestPhysicalModelNonLinear(t *testing.T) {
	// Proposition 1 needs f non-linear; check the slope changes.
	m := DefaultPhysicalModel()
	s1 := m.VT(2e18) - m.VT(1e18)
	s2 := m.VT(9e18) - m.VT(8e18)
	if math.Abs(s1-s2) < 1e-6 {
		t.Errorf("threshold law looks linear: slopes %g vs %g", s1, s2)
	}
}

func TestPhysicalModelInverse(t *testing.T) {
	m := DefaultPhysicalModel()
	for _, n := range []float64{1e16, 5e17, 2e18, 4e18, 9e18, 3e19} {
		vt := m.VT(n)
		back := m.Doping(vt)
		if math.Abs(back-n)/n > 1e-6 {
			t.Errorf("Doping(VT(%g)) = %g, relative error too large", n, back)
		}
	}
}

func TestPhysicalModelInverseClamps(t *testing.T) {
	m := DefaultPhysicalModel()
	if got := m.Doping(-100); got != MinDoping {
		t.Errorf("Doping(very low VT) = %g, want MinDoping", got)
	}
	if got := m.Doping(100); got != MaxDoping {
		t.Errorf("Doping(very high VT) = %g, want MaxDoping", got)
	}
}

func TestClampDoping(t *testing.T) {
	if clampDoping(1) != MinDoping || clampDoping(1e30) != MaxDoping {
		t.Error("clampDoping does not clamp")
	}
	if clampDoping(5e17) != 5e17 {
		t.Error("clampDoping modified an in-range value")
	}
}

func TestPaperExampleTableExact(t *testing.T) {
	m := PaperExampleTable()
	cases := []struct{ n, vt float64 }{
		{2e18, 0.1}, {4e18, 0.3}, {9e18, 0.5},
	}
	for _, c := range cases {
		if got := m.VT(c.n); math.Abs(got-c.vt) > 1e-12 {
			t.Errorf("VT(%g) = %g, want %g", c.n, got, c.vt)
		}
		if got := m.Doping(c.vt); math.Abs(got-c.n)/c.n > 1e-9 {
			t.Errorf("Doping(%g) = %g, want %g", c.vt, got, c.n)
		}
	}
}

func TestTableModelInterpolatesMonotonically(t *testing.T) {
	m := PaperExampleTable()
	prev := math.Inf(-1)
	for n := 1e18; n <= 2e19; n *= 1.05 {
		vt := m.VT(n)
		if vt <= prev {
			t.Fatalf("table VT not increasing at %g", n)
		}
		prev = vt
	}
}

func TestTableModelRoundTripProperty(t *testing.T) {
	m := PaperExampleTable()
	f := func(raw uint16) bool {
		// Sample dopings across the calibrated span.
		n := 1e18 * math.Pow(10, float64(raw%1000)/700) // 1e18..~2.7e19
		back := m.Doping(m.VT(n))
		return math.Abs(back-n)/n < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableModelValidation(t *testing.T) {
	_, err := NewTableModel([]CalPoint{{1e18, 0.1}})
	if !errors.Is(err, ErrBadTable) {
		t.Error("single-point table must be rejected")
	}
	_, err = NewTableModel([]CalPoint{{1e18, 0.3}, {2e18, 0.1}})
	if !errors.Is(err, ErrBadTable) {
		t.Error("non-monotone VT must be rejected")
	}
	_, err = NewTableModel([]CalPoint{{-1e18, 0.1}, {2e18, 0.3}})
	if !errors.Is(err, ErrBadTable) {
		t.Error("negative doping must be rejected")
	}
	// Order independence: shuffled points are sorted internally.
	m, err := NewTableModel([]CalPoint{{9e18, 0.5}, {2e18, 0.1}, {4e18, 0.3}})
	if err != nil {
		t.Fatalf("shuffled valid table rejected: %v", err)
	}
	if got := m.VT(4e18); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("shuffled table VT(4e18) = %g", got)
	}
}

func TestPhysicalAndTableModelsAgreeInShape(t *testing.T) {
	// Both models must be monotone bijections; their digit ordering under a
	// shared quantizer must therefore be identical.
	phys := DefaultPhysicalModel()
	table := PaperExampleTable()
	for _, model := range []VTModel{phys, table} {
		if model.VT(2e18) >= model.VT(9e18) {
			t.Errorf("%T: ordering of dopings not preserved in VT", model)
		}
	}
}
