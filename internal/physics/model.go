package physics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// VTModel is the bijection f of Proposition 1 between a region's net channel
// doping (cm^-3) and the threshold voltage (V) of the decoder transistor
// formed over it. Implementations must be strictly increasing in the doping.
type VTModel interface {
	// VT returns the threshold voltage for a net channel doping in cm^-3.
	VT(doping float64) float64
	// Doping returns the net channel doping realizing the given threshold
	// voltage; it is the inverse of VT.
	Doping(vt float64) float64
}

// PhysicalModel evaluates the long-channel MOSFET threshold equation
//
//	V_T = V_FB + 2·ψ_B + sqrt(2·q·ε_si·N·2ψ_B) / C_ox
//
// with ψ_B = V_th·ln(N/n_i), for a transistor whose channel is the doped
// nanowire region and whose gate is the crossing mesowire.
type PhysicalModel struct {
	// OxideThickness of the gate dielectric in cm.
	OxideThickness float64
	// FlatBand voltage in volts; captures the gate work-function difference
	// and fixed oxide charge. It is the single calibration parameter.
	FlatBand float64
	// ThermalVoltage kT/q in volts.
	ThermalVoltage float64
	// Ni is the intrinsic carrier concentration in cm^-3 at the model's
	// temperature; zero selects the 300 K silicon value.
	Ni float64
}

// DefaultPhysicalModel returns a model with a 2.5 nm gate oxide at 300 K,
// with the flat-band voltage calibrated so that the threshold at
// 2x10^18 cm^-3 matches the 0.1 V of the paper's Example 1.
func DefaultPhysicalModel() *PhysicalModel {
	m := &PhysicalModel{
		OxideThickness: 2.5e-7, // 2.5 nm in cm
		ThermalVoltage: ThermalVoltage300K,
	}
	// Calibrate: choose V_FB so that VT(2e18 cm^-3) = 0.1 V.
	m.FlatBand = 0
	m.FlatBand = 0.1 - m.VT(2e18)
	return m
}

// Cox returns the oxide capacitance per unit area in F/cm^2.
func (m *PhysicalModel) Cox() float64 {
	return OxidePermittivity / m.OxideThickness
}

// Params returns a stable rendering of the model's calibration
// parameters. Configuration fingerprints include it so two models of the
// same type but different calibration never hash identically (a %T-only
// hash would collide them and poison any fingerprint-keyed cache).
func (m *PhysicalModel) Params() string {
	return fmt.Sprintf("tox=%g vfb=%g vth=%g ni=%g",
		m.OxideThickness, m.FlatBand, m.ThermalVoltage, m.Ni)
}

// VT implements VTModel. Doping values are clamped into
// [MinDoping, MaxDoping] to keep the logarithm well defined.
func (m *PhysicalModel) VT(doping float64) float64 {
	n := clampDoping(doping)
	ni := m.Ni
	if ni == 0 {
		ni = IntrinsicCarrierConcentration
	}
	psiB := m.ThermalVoltage * math.Log(n/ni)
	qDep := math.Sqrt(2 * ElectronCharge * SiliconPermittivity * n * 2 * psiB)
	return m.FlatBand + 2*psiB + qDep/m.Cox()
}

// AtTemperature returns a copy of the model evaluated at the given
// temperature in kelvin: the thermal voltage scales linearly and the
// intrinsic carrier concentration follows n_i ∝ T^1.5·exp(-E_g/2kT). The
// flat-band calibration is kept, so the returned model predicts how the
// thresholds of an already-fabricated decoder drift away from their design
// values when operated off the 300 K design point.
func (m *PhysicalModel) AtTemperature(tempK float64) (*PhysicalModel, error) {
	if tempK < 150 || tempK > 600 {
		return nil, fmt.Errorf("physics: temperature %g K outside the model's 150-600 K validity", tempK)
	}
	out := *m
	out.ThermalVoltage = ThermalVoltage300K * tempK / 300
	// Calibrated so n_i(300 K) equals the standard silicon value.
	c := IntrinsicCarrierConcentration /
		(math.Pow(300, 1.5) * math.Exp(-SiliconBandGap/(2*ThermalVoltage300K)))
	out.Ni = c * math.Pow(tempK, 1.5) * math.Exp(-SiliconBandGap/(2*out.ThermalVoltage))
	return &out, nil
}

// Doping implements VTModel by bisecting VT over the valid doping window.
// Thresholds outside the representable range clamp to the window edges.
func (m *PhysicalModel) Doping(vt float64) float64 {
	lo, hi := MinDoping, MaxDoping
	if vt <= m.VT(lo) {
		return lo
	}
	if vt >= m.VT(hi) {
		return hi
	}
	// Bisect in log space: VT is smooth and strictly increasing in log N.
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < 200 && lhi-llo > 1e-14; i++ {
		mid := (llo + lhi) / 2
		if m.VT(math.Exp(mid)) < vt {
			llo = mid
		} else {
			lhi = mid
		}
	}
	return math.Exp((llo + lhi) / 2)
}

func clampDoping(n float64) float64 {
	if n < MinDoping {
		return MinDoping
	}
	if n > MaxDoping {
		return MaxDoping
	}
	return n
}

// TableModel interpolates threshold voltage linearly in log-doping between
// calibration points and extrapolates with the edge slopes. Points must be
// strictly increasing in both coordinates, which preserves bijectivity.
type TableModel struct {
	logN []float64 // natural log of doping, ascending
	vt   []float64 // threshold voltage, ascending
}

// CalPoint is a (doping, threshold-voltage) calibration pair.
type CalPoint struct {
	Doping float64 // cm^-3
	VT     float64 // volts
}

// ErrBadTable reports an invalid calibration table.
var ErrBadTable = errors.New("physics: calibration table must have >= 2 points, strictly increasing in doping and VT")

// NewTableModel builds a TableModel from calibration points (any order).
func NewTableModel(points []CalPoint) (*TableModel, error) {
	if len(points) < 2 {
		return nil, ErrBadTable
	}
	pts := append([]CalPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Doping < pts[j].Doping })
	m := &TableModel{
		logN: make([]float64, len(pts)),
		vt:   make([]float64, len(pts)),
	}
	for i, p := range pts {
		if p.Doping <= 0 {
			return nil, fmt.Errorf("%w: non-positive doping %g", ErrBadTable, p.Doping)
		}
		if i > 0 && (pts[i].Doping <= pts[i-1].Doping || pts[i].VT <= pts[i-1].VT) {
			return nil, ErrBadTable
		}
		m.logN[i] = math.Log(p.Doping)
		m.vt[i] = p.VT
	}
	return m, nil
}

// PaperExampleTable returns the TableModel reproducing the paper's worked
// Example 1 exactly: digits 0/1/2 map to 0.1/0.3/0.5 V and to doping levels
// 2, 4 and 9 x 10^18 cm^-3.
func PaperExampleTable() *TableModel {
	m, err := NewTableModel([]CalPoint{
		{Doping: 2e18, VT: 0.1},
		{Doping: 4e18, VT: 0.3},
		{Doping: 9e18, VT: 0.5},
	})
	if err != nil {
		panic("physics: paper example table must be valid: " + err.Error())
	}
	return m
}

// Params returns a stable rendering of the calibration table; see
// (*PhysicalModel).Params for why fingerprints need it.
func (m *TableModel) Params() string {
	var sb strings.Builder
	for i := range m.logN {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "(%g,%g)", m.logN[i], m.vt[i])
	}
	return sb.String()
}

// VT implements VTModel.
func (m *TableModel) VT(doping float64) float64 {
	x := math.Log(clampDoping(doping))
	return interp(m.logN, m.vt, x)
}

// Doping implements VTModel.
func (m *TableModel) Doping(vt float64) float64 {
	return clampDoping(math.Exp(interp(m.vt, m.logN, vt)))
}

// interp linearly interpolates y(x) on the piecewise-linear curve defined by
// ascending xs/ys, extrapolating with the first/last segment slope.
func interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}
