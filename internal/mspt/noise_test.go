package mspt

import (
	"math"
	"testing"

	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

func TestNoiseParamsValidate(t *testing.T) {
	if err := (NoiseParams{SigmaRandom: 0.05}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (NoiseParams{SigmaRandom: -1}).Validate(); err == nil {
		t.Error("negative random sigma accepted")
	}
	if err := (NoiseParams{SigmaSystematic: -1}).Validate(); err == nil {
		t.Error("negative systematic sigma accepted")
	}
}

func TestEffectiveSigma(t *testing.T) {
	np := NoiseParams{SigmaRandom: 0.03, SigmaSystematic: 0.04}
	if got := np.EffectiveSigma(1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("EffectiveSigma(1) = %g, want 0.05", got)
	}
	if got := np.EffectiveSigma(4); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("EffectiveSigma(4) = %g, want 0.1", got)
	}
	if np.EffectiveSigma(0) != 0 {
		t.Error("zero doses should have zero sigma")
	}
}

func TestCorrelatedReducesToIIDMarginals(t *testing.T) {
	// With SigmaSystematic = 0, the marginal std of each region must match
	// the i.i.d. model σ_T·sqrt(ν).
	p := mustPlan(t, paperTreePattern())
	q := physics.PaperExampleQuantizer()
	np := NoiseParams{SigmaRandom: 0.05}
	rng := stats.NewRNG(31)
	const trials = 4000
	var sum, sumSq float64
	i, j := 0, 1 // region with ν = 3
	for tr := 0; tr < trials; tr++ {
		vt := p.SampleVTCorrelated(rng, np, q.VTOf)
		d := vt[i][j] - q.VTOf(p.Pattern()[i][j])
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	want := 0.05 * math.Sqrt(3)
	if math.Abs(std-want)/want > 0.08 {
		t.Errorf("marginal std %g, want %g", std, want)
	}
}

func TestCorrelatedMarginalsMatchEffectiveSigma(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	q := physics.PaperExampleQuantizer()
	np := NoiseParams{SigmaRandom: 0.03, SigmaSystematic: 0.04}
	rng := stats.NewRNG(37)
	const trials = 5000
	i, j := 1, 0 // ν = 2 in the Gray example
	var sumSq float64
	for tr := 0; tr < trials; tr++ {
		vt := p.SampleVTCorrelated(rng, np, q.VTOf)
		d := vt[i][j] - q.VTOf(p.Pattern()[i][j])
		sumSq += d * d
	}
	std := math.Sqrt(sumSq / trials)
	want := np.EffectiveSigma(p.Nu()[i][j])
	if math.Abs(std-want)/want > 0.08 {
		t.Errorf("marginal std %g, want %g", std, want)
	}
}

func TestSystematicNoiseCorrelatesSharedPasses(t *testing.T) {
	// Wires 0 and 1 share every pass from step 1 on; their common regions
	// must correlate strongly under a dominant systematic term, while an
	// independent-noise run stays near zero.
	p := mustPlan(t, paperGrayPattern())
	q := physics.PaperExampleQuantizer()

	strong := NoiseParams{SigmaRandom: 0.005, SigmaSystematic: 0.05}
	rng := stats.NewRNG(41)
	corr := p.PassCorrelationProbe(rng, strong, q.VTOf, 0, 2, 1, 2, 2000)
	if corr < 0.5 {
		t.Errorf("systematic correlation %g unexpectedly low", corr)
	}

	iid := NoiseParams{SigmaRandom: 0.05}
	rng = stats.NewRNG(43)
	corr = p.PassCorrelationProbe(rng, iid, q.VTOf, 0, 2, 1, 2, 2000)
	if math.Abs(corr) > 0.1 {
		t.Errorf("iid correlation %g unexpectedly high", corr)
	}
}

func TestPassCorrelationProbeDegenerate(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	q := physics.PaperExampleQuantizer()
	if got := p.PassCorrelationProbe(stats.NewRNG(1), NoiseParams{}, q.VTOf, 0, 0, 1, 1, 1); got != 0 {
		t.Errorf("degenerate probe = %g", got)
	}
}
