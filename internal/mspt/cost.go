package mspt

import "math"

// PhiPerStep returns φ_i for every lithography/doping procedure: the number
// of distinct non-zero dose values in row i of S (Definition 4). Each
// distinct dose requires its own photolithography masking and implantation
// pass, so φ_i is the number of extra fabrication steps procedure i costs.
func (p *Plan) PhiPerStep() []int {
	phis := make([]int, p.n)
	for i, row := range p.s {
		distinct := make(map[int64]bool)
		for _, v := range row {
			if v != 0 {
				distinct[v] = true
			}
		}
		phis[i] = len(distinct)
	}
	return phis
}

// Phi returns the technology complexity Φ = Σ φ_i: the total number of
// additional lithography/doping steps needed to pattern the half cave.
func (p *Plan) Phi() int {
	total := 0
	for _, phi := range p.PhiPerStep() {
		total += phi
	}
	return total
}

// Sigma returns the decoder variability matrix Σ (Definition 5):
// Σ[i][j] = σ_T² · ν[i][j], the variance of the threshold voltage of doping
// region (i, j) after ν independent implantation doses of per-dose standard
// deviation σ_T.
func (p *Plan) Sigma(sigmaT float64) [][]float64 {
	v := sigmaT * sigmaT
	out := make([][]float64, p.n)
	for i, row := range p.nu {
		o := make([]float64, p.m)
		for j, nu := range row {
			o[j] = v * float64(nu)
		}
		out[i] = o
	}
	return out
}

// SigmaNorm1 returns ‖Σ‖₁, the entrywise 1-norm of the variability matrix —
// the quantity Proposition 3 minimizes.
func (p *Plan) SigmaNorm1(sigmaT float64) float64 {
	return sigmaT * sigmaT * float64(p.NuSum())
}

// NuSum returns Σ_ij ν[i][j]; ‖Σ‖₁ = σ_T² · NuSum.
func (p *Plan) NuSum() int {
	total := 0
	for _, row := range p.nu {
		for _, nu := range row {
			total += nu
		}
	}
	return total
}

// AvgVariability returns ‖Σ‖₁ / (N·M), the paper's average variability
// figure of merit (reduced by 18% with Gray arrangements).
func (p *Plan) AvgVariability(sigmaT float64) float64 {
	return p.SigmaNorm1(sigmaT) / float64(p.n*p.m)
}

// SigmaRootNormalized returns sqrt(Σ[i][j])/σ_T = sqrt(ν[i][j]): the surface
// the paper plots in Fig. 6. It is independent of σ_T.
func (p *Plan) SigmaRootNormalized() [][]float64 {
	out := make([][]float64, p.n)
	for i, row := range p.nu {
		o := make([]float64, p.m)
		for j, nu := range row {
			o[j] = math.Sqrt(float64(nu))
		}
		out[i] = o
	}
	return out
}

// RegionSigma returns the threshold-voltage standard deviation of region
// (i, j): σ_T · sqrt(ν[i][j]).
func (p *Plan) RegionSigma(i, j int, sigmaT float64) float64 {
	return sigmaT * math.Sqrt(float64(p.nu[i][j]))
}

// MaxNu returns the largest dose-operation count in the plan — the
// worst-case region variability in units of σ_T².
func (p *Plan) MaxNu() int {
	max := 0
	for _, row := range p.nu {
		for _, nu := range row {
			if nu > max {
				max = nu
			}
		}
	}
	return max
}
