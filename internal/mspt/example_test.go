package mspt_test

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
)

// The paper's worked example end to end: the ternary tree-code patterns of
// Example 1 cost Φ = 9 fabrication steps and ‖Σ‖₁ = 22σ²; switching the
// last word to the Gray choice (Example 5) drops the costs to 7 and 18σ².
func ExampleNewPlan() {
	doses := []int64{2, 4, 9} // digit -> doping in 10^18 cm^-3
	tree := []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 0, 1, 2),
	}
	gray := []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 2, 1, 0),
	}
	for _, c := range []struct {
		name    string
		pattern []code.Word
	}{{"tree", tree}, {"gray", gray}} {
		plan, _ := mspt.NewPlan(c.pattern, 3, doses)
		fmt.Printf("%s: Φ=%d ‖Σ‖₁=%dσ²\n", c.name, plan.Phi(), plan.NuSum())
	}
	// Output:
	// tree: Φ=9 ‖Σ‖₁=22σ²
	// gray: Φ=7 ‖Σ‖₁=18σ²
}

// The fabrication-flow replay derives the same costs from the physical
// sequence of spacer definitions and implant passes.
func ExamplePlan_Run() {
	plan, _ := mspt.NewPlan([]code.Word{
		code.FromDigits(0, 1),
		code.FromDigits(1, 0),
	}, 2, []int64{2, 9})
	res := plan.Run()
	fmt.Println("litho passes:", res.LithoSteps)
	fmt.Println("final doping:", res.Doping)
	// Output:
	// litho passes: 4
	// final doping: [[2 9] [9 2]]
}
