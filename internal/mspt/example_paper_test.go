package mspt

// The tests in this file reproduce the paper's worked Examples 1-6
// bit-for-bit. They pin the semantics of the whole matrix algebra: if any of
// these fail, the reproduction has diverged from the paper.

import (
	"math"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/physics"
)

// paperDoses is the digit -> doping mapping of Example 1 in units of
// 10^18 cm^-3: digits 0/1/2 need 2/4/9.
var paperDoses = []int64{2, 4, 9}

// paperTreePattern is the pattern matrix P of Example 1 (ternary tree-code
// words 0121, 0220, 1012).
func paperTreePattern() []code.Word {
	return []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 0, 1, 2),
	}
}

// paperGrayPattern is the pattern matrix of Example 5, which replaces the
// forbidden transition 0220 => 1012 with the Gray word 1210.
func paperGrayPattern() []code.Word {
	return []code.Word{
		code.FromDigits(0, 1, 2, 1),
		code.FromDigits(0, 2, 2, 0),
		code.FromDigits(1, 2, 1, 0),
	}
}

func mustPlan(t *testing.T, pattern []code.Word) *Plan {
	t.Helper()
	p, err := NewPlan(pattern, 3, paperDoses)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExample1FinalDopingMatrix(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	wantD := [][]int64{
		{2, 4, 9, 4},
		{2, 9, 9, 2},
		{4, 2, 4, 9},
	}
	checkInt64Matrix(t, "D", p.D(), wantD)
}

func TestExample1ThresholdMatrix(t *testing.T) {
	// V = P mapped through the quantizer: digits 0/1/2 -> 0.1/0.3/0.5 V,
	// i.e. the paper's matrix [[1,3,5,3],[1,5,5,1],[3,1,3,5]] x 0.1 V.
	q := physics.PaperExampleQuantizer()
	wantV := [][]float64{
		{0.1, 0.3, 0.5, 0.3},
		{0.1, 0.5, 0.5, 0.1},
		{0.3, 0.1, 0.3, 0.5},
	}
	for i, w := range paperTreePattern() {
		for j, digit := range w {
			if got := q.VTOf(digit); math.Abs(got-wantV[i][j]) > 1e-12 {
				t.Errorf("V[%d][%d] = %g, want %g", i, j, got, wantV[i][j])
			}
		}
	}
}

func TestExample2StepDopingMatrix(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	wantS := [][]int64{
		{0, -5, 0, 2},
		{-2, 7, 5, -7},
		{4, 2, 4, 9},
	}
	checkInt64Matrix(t, "S", p.S(), wantS)
}

func TestExample3FabricationComplexity(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	// Paper: φ_1 = 2, φ_2 = 4, φ_3 = 3, Φ = 9.
	wantPhi := []int{2, 4, 3}
	got := p.PhiPerStep()
	for i := range wantPhi {
		if got[i] != wantPhi[i] {
			t.Errorf("φ_%d = %d, want %d", i+1, got[i], wantPhi[i])
		}
	}
	if p.Phi() != 9 {
		t.Errorf("Φ = %d, want 9", p.Phi())
	}
}

func TestExample4VariabilityMatrix(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	wantNu := [][]int{
		{2, 3, 2, 3},
		{2, 2, 2, 2},
		{1, 1, 1, 1},
	}
	checkIntMatrix(t, "ν", p.Nu(), wantNu)
	// ‖Σ‖₁ = 22 σ_T².
	if got := p.NuSum(); got != 22 {
		t.Errorf("‖Σ‖₁/σ² = %d, want 22", got)
	}
	sigmaT := 0.05
	if got := p.SigmaNorm1(sigmaT); math.Abs(got-22*sigmaT*sigmaT) > 1e-15 {
		t.Errorf("SigmaNorm1 = %g", got)
	}
}

func TestExample5GrayVariability(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	wantS := [][]int64{
		{0, -5, 0, 2},
		{-2, 0, 5, 0},
		{4, 9, 4, 2},
	}
	checkInt64Matrix(t, "S", p.S(), wantS)
	wantNu := [][]int{
		{2, 2, 2, 2},
		{2, 1, 2, 1},
		{1, 1, 1, 1},
	}
	checkIntMatrix(t, "ν", p.Nu(), wantNu)
	if got := p.NuSum(); got != 18 {
		t.Errorf("Gray ‖Σ‖₁/σ² = %d, want 18", got)
	}
}

func TestExample6GrayFabricationComplexity(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	wantPhi := []int{2, 2, 3}
	got := p.PhiPerStep()
	for i := range wantPhi {
		if got[i] != wantPhi[i] {
			t.Errorf("φ_%d = %d, want %d", i+1, got[i], wantPhi[i])
		}
	}
	if p.Phi() != 7 {
		t.Errorf("Gray Φ = %d, want 7", p.Phi())
	}
}

func TestPaperExamplesGrayBeatsTree(t *testing.T) {
	tree := mustPlan(t, paperTreePattern())
	gray := mustPlan(t, paperGrayPattern())
	if gray.Phi() >= tree.Phi() {
		t.Errorf("Gray Φ %d not better than tree Φ %d", gray.Phi(), tree.Phi())
	}
	if gray.NuSum() >= tree.NuSum() {
		t.Errorf("Gray ‖Σ‖₁ %d not better than tree %d", gray.NuSum(), tree.NuSum())
	}
}

func TestPaperExampleFlowsVerify(t *testing.T) {
	for _, pattern := range [][]code.Word{paperTreePattern(), paperGrayPattern()} {
		p := mustPlan(t, pattern)
		if err := p.Verify(); err != nil {
			t.Errorf("flow replay diverges from matrices: %v", err)
		}
	}
}

func checkInt64Matrix(t *testing.T, name string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s has %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("%s[%d][%d] = %d, want %d", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func checkIntMatrix(t *testing.T, name string, got, want [][]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s has %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("%s[%d][%d] = %d, want %d", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}
