package mspt

import (
	"fmt"
	"sort"
	"strings"
)

// MaskUsage describes one photolithography mask of the decoder flow: the set
// of doping-region columns it exposes, and every (step, dose) pass it is
// used in. Masks define geometry only — the same window pattern can be
// reused for different implant doses and at different steps — so the number
// of *distinct* masks, not the number of passes Φ, drives the mask-set cost
// of the process.
type MaskUsage struct {
	// Regions is the exposed column set, ascending.
	Regions []int
	// Passes lists the lithography/doping passes using this mask.
	Passes []MaskPass
}

// MaskPass is one use of a mask.
type MaskPass struct {
	// Step is the spacer-definition step the pass follows.
	Step int
	// Dose is the implantation dose in dose units.
	Dose int64
}

// MaskSet is the mask-cost analysis of a plan.
type MaskSet struct {
	// Masks lists the distinct masks, most-used first (ties: by region
	// signature).
	Masks []MaskUsage
	// Passes is the total number of lithography/doping passes (= Φ).
	Passes int
}

// DistinctMasks returns the number of distinct window patterns needed.
func (m MaskSet) DistinctMasks() int { return len(m.Masks) }

// ReuseFactor returns passes per distinct mask (>= 1); higher is cheaper.
func (m MaskSet) ReuseFactor() float64 {
	if len(m.Masks) == 0 {
		return 0
	}
	return float64(m.Passes) / float64(len(m.Masks))
}

// Masks computes the mask-reuse analysis of the plan: every
// lithography/doping pass is keyed by its exposed region set, and passes
// sharing a window pattern share a physical mask.
func (p *Plan) Masks() MaskSet {
	byKey := make(map[string]*MaskUsage)
	passes := 0
	for i := 0; i < p.n; i++ {
		for _, dose := range distinctNonZero(p.s[i]) {
			var regions []int
			for j, v := range p.s[i] {
				if v == dose {
					regions = append(regions, j)
				}
			}
			key := regionKey(regions)
			mu, ok := byKey[key]
			if !ok {
				mu = &MaskUsage{Regions: regions}
				byKey[key] = mu
			}
			mu.Passes = append(mu.Passes, MaskPass{Step: i, Dose: dose})
			passes++
		}
	}
	set := MaskSet{Passes: passes}
	for _, mu := range byKey {
		set.Masks = append(set.Masks, *mu)
	}
	sort.Slice(set.Masks, func(a, b int) bool {
		ma, mb := set.Masks[a], set.Masks[b]
		if len(ma.Passes) != len(mb.Passes) {
			return len(ma.Passes) > len(mb.Passes)
		}
		return regionKey(ma.Regions) < regionKey(mb.Regions)
	})
	return set
}

func regionKey(regions []int) string {
	parts := make([]string, len(regions))
	for i, r := range regions {
		parts[i] = fmt.Sprintf("%03d", r)
	}
	return strings.Join(parts, ",")
}
