package mspt

import (
	"fmt"
	"math"

	"nwdec/internal/stats"
)

// NoiseParams models the two variability components of an implantation
// pass. The paper's analysis uses only the independent per-region term
// (σ_T); real implanters also exhibit a per-pass systematic error — a dose
// calibration offset shared by every region the pass exposes, on every
// spacer it hits — which correlates the thresholds of wires patterned
// together and is invisible to the i.i.d. model.
type NoiseParams struct {
	// SigmaRandom is the per-dose, per-region independent threshold
	// deviation in volts (the paper's σ_T).
	SigmaRandom float64
	// SigmaSystematic is the per-pass shared threshold deviation in volts.
	SigmaSystematic float64
}

// Validate reports whether the parameters are meaningful.
func (n NoiseParams) Validate() error {
	if n.SigmaRandom < 0 || n.SigmaSystematic < 0 {
		return fmt.Errorf("mspt: negative noise sigma %+v", n)
	}
	return nil
}

// EffectiveSigma returns the marginal threshold standard deviation of a
// region dosed nu times: both components add in variance per dose, so the
// marginal distribution matches the i.i.d. model with
// σ² = ν·(σ_r² + σ_s²) — only the cross-region correlations differ.
func (n NoiseParams) EffectiveSigma(nu int) float64 {
	return math.Sqrt(float64(nu) * (n.SigmaRandom*n.SigmaRandom + n.SigmaSystematic*n.SigmaSystematic))
}

// SampleVTCorrelated draws one Monte-Carlo realization of the decoder's
// threshold voltages by replaying the fabrication flow pass by pass: every
// lithography/doping pass draws one shared systematic offset plus an
// independent random term per (spacer, region) it doses. nominal maps
// digits to nominal threshold voltages.
//
// With SigmaSystematic = 0 this is statistically identical to SampleVT.
func (p *Plan) SampleVTCorrelated(rng *stats.RNG, np NoiseParams, nominal func(digit int) float64) [][]float64 {
	vt := make([][]float64, p.n)
	for i := 0; i < p.n; i++ {
		row := make([]float64, p.m)
		for j := 0; j < p.m; j++ {
			row[j] = nominal(p.pattern[i][j])
		}
		vt[i] = row
	}
	for i := 0; i < p.n; i++ {
		for _, dose := range distinctNonZero(p.s[i]) {
			offset := rng.Normal(0, np.SigmaSystematic)
			for j, v := range p.s[i] {
				if v != dose {
					continue
				}
				for k := 0; k <= i; k++ {
					vt[k][j] += offset + rng.Normal(0, np.SigmaRandom)
				}
			}
		}
	}
	return vt
}

// PassCorrelationProbe estimates, over trials Monte-Carlo runs, the sample
// correlation between the threshold errors of two regions (i1, j1) and
// (i2, j2). Regions sharing implantation passes show positive correlation
// under a systematic component; fully independent regions stay near zero.
func (p *Plan) PassCorrelationProbe(rng *stats.RNG, np NoiseParams, nominal func(int) float64,
	i1, j1, i2, j2, trials int) float64 {
	if trials < 2 {
		return 0
	}
	xs := make([]float64, trials)
	ys := make([]float64, trials)
	for t := 0; t < trials; t++ {
		vt := p.SampleVTCorrelated(rng, np, nominal)
		xs[t] = vt[i1][j1] - nominal(p.pattern[i1][j1])
		ys[t] = vt[i2][j2] - nominal(p.pattern[i2][j2])
	}
	return stats.Correlation(xs, ys)
}
