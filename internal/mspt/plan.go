// Package mspt implements the abstract MSPT decoder model of Section 4 of
// the paper: the pattern matrix P, the final doping matrix D, the
// step-doping matrix S, the fabrication complexity Φ and the variability
// matrix Σ, together with a step-by-step fabrication-flow simulator.
//
// The central physical constraint of the Multi-Spacer Patterning Technique
// is cumulative doping: the lithography/doping procedure that patterns
// spacer i simultaneously doses every spacer defined before it. Hence the
// final doping of nanowire i is the sum of all step doses from its own
// definition onward (Proposition 2):
//
//	D[i][j] = Σ_{k >= i} S[k][j]
//
// equivalently S[i] = D[i] - D[i+1] with S[N-1] = D[N-1]. Every non-zero
// entry of S is one implantation dose received by a region, and every
// *distinct* non-zero value in a row of S needs its own mask + implant pass.
//
// Doping levels are handled in integer dose units (DefaultDoseUnit cm^-3 per
// unit) so that the zero/non-zero and distinct-value tests defining Φ and ν
// are exact.
package mspt

import (
	"fmt"
	"math"

	"nwdec/internal/code"
	"nwdec/internal/physics"
)

// DefaultDoseUnit is the doping resolution used when quantizing physical
// concentrations to integer dose units: 10^16 cm^-3, two orders of magnitude
// below the 10^18 cm^-3 scale of the paper's doping levels.
const DefaultDoseUnit = 1e16

// Plan is the complete doping plan of one half cave: the pattern matrix and
// everything derived from it. All matrices have N rows (nanowires, in
// definition order: row 0 is the first spacer defined) and M columns
// (doping regions along the nanowire).
type Plan struct {
	base  int
	n, m  int
	doses []int64 // digit -> dose units, strictly increasing, positive

	pattern []code.Word // N words of length M
	d       [][]int64   // final doping matrix D
	s       [][]int64   // step doping matrix S
	nu      [][]int     // dose-operation counts ν
	sqrtNu  []float64   // √ν, row-major: per-region noise scale of SampleVT
}

// NewPlan builds the doping plan for the given pattern rows. The pattern
// rows are the code words assigned to consecutive nanowires. doses maps each
// digit 0..base-1 to its required net doping in integer dose units and must
// be strictly increasing and positive (doping and threshold voltage are
// related by a strictly increasing bijection).
func NewPlan(pattern []code.Word, base int, doses []int64) (*Plan, error) {
	if base < 2 {
		return nil, fmt.Errorf("mspt: base must be >= 2, got %d", base)
	}
	if len(doses) != base {
		return nil, fmt.Errorf("mspt: need %d dose levels, got %d", base, len(doses))
	}
	for i, d := range doses {
		if d <= 0 {
			return nil, fmt.Errorf("mspt: dose level %d is %d, must be positive", i, d)
		}
		if i > 0 && doses[i] <= doses[i-1] {
			return nil, fmt.Errorf("mspt: dose levels must be strictly increasing, level %d (%d) <= level %d (%d)",
				i, doses[i], i-1, doses[i-1])
		}
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("mspt: empty pattern")
	}
	m := len(pattern[0])
	for i, w := range pattern {
		if len(w) != m {
			return nil, fmt.Errorf("mspt: pattern row %d has length %d, want %d", i, len(w), m)
		}
		if !w.Valid(base) {
			return nil, fmt.Errorf("mspt: pattern row %d (%v) has digits outside base %d", i, w, base)
		}
	}
	p := &Plan{
		base:    base,
		n:       len(pattern),
		m:       m,
		doses:   append([]int64(nil), doses...),
		pattern: code.CloneWords(pattern),
	}
	p.computeD()
	p.computeS()
	p.computeNu()
	return p, nil
}

// NewPlanFromGenerator assigns the first n words of the generator's
// arrangement (cyclically if n exceeds the code space) and builds the plan
// with dose levels derived from the quantizer at the given dose unit
// (cm^-3 per unit; pass 0 for DefaultDoseUnit).
func NewPlanFromGenerator(g code.Generator, n int, q *physics.Quantizer, doseUnit float64) (*Plan, error) {
	if g.Base() != q.N() {
		return nil, fmt.Errorf("mspt: generator base %d does not match quantizer levels %d", g.Base(), q.N())
	}
	words, err := code.CyclicSequence(g, n)
	if err != nil {
		return nil, err
	}
	doses, err := DoseLevels(q, doseUnit)
	if err != nil {
		return nil, err
	}
	return NewPlan(words, g.Base(), doses)
}

// DoseLevels quantizes the quantizer's doping levels into integer dose
// units. It fails if two logic levels collapse onto the same unit count,
// which would break the bijectivity of Proposition 1.
func DoseLevels(q *physics.Quantizer, doseUnit float64) ([]int64, error) {
	if doseUnit <= 0 {
		doseUnit = DefaultDoseUnit
	}
	dopings := q.DopingLevels()
	doses := make([]int64, len(dopings))
	for i, nd := range dopings {
		doses[i] = int64(math.Round(nd / doseUnit))
		if doses[i] <= 0 {
			return nil, fmt.Errorf("mspt: doping level %g below dose unit %g", nd, doseUnit)
		}
		if i > 0 && doses[i] <= doses[i-1] {
			return nil, fmt.Errorf("mspt: dose unit %g too coarse, levels %d and %d collapse", doseUnit, i-1, i)
		}
	}
	return doses, nil
}

func (p *Plan) computeD() {
	p.d = make([][]int64, p.n)
	for i, w := range p.pattern {
		row := make([]int64, p.m)
		for j, digit := range w {
			row[j] = p.doses[digit]
		}
		p.d[i] = row
	}
}

func (p *Plan) computeS() {
	p.s = make([][]int64, p.n)
	for i := 0; i < p.n; i++ {
		row := make([]int64, p.m)
		for j := 0; j < p.m; j++ {
			if i == p.n-1 {
				row[j] = p.d[i][j]
			} else {
				row[j] = p.d[i][j] - p.d[i+1][j]
			}
		}
		p.s[i] = row
	}
}

func (p *Plan) computeNu() {
	p.nu = make([][]int, p.n)
	// ν accumulates bottom-up: ν[i][j] = ν[i+1][j] + [S[i][j] != 0].
	next := make([]int, p.m)
	for i := p.n - 1; i >= 0; i-- {
		row := make([]int, p.m)
		for j := 0; j < p.m; j++ {
			row[j] = next[j]
			if p.s[i][j] != 0 {
				row[j]++
			}
		}
		p.nu[i] = row
		next = row
	}
	// The Monte-Carlo sampler scales one standard normal per region by
	// σ_T·√ν; precomputing √ν here removes the per-region square root from
	// every sampled half cave.
	p.sqrtNu = make([]float64, p.n*p.m)
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.m; j++ {
			p.sqrtNu[i*p.m+j] = math.Sqrt(float64(p.nu[i][j]))
		}
	}
}

// Base returns the logic valency n of the addressing scheme.
func (p *Plan) Base() int { return p.base }

// N returns the number of nanowires per half cave (pattern rows).
func (p *Plan) N() int { return p.n }

// M returns the number of doping regions per nanowire (pattern columns).
func (p *Plan) M() int { return p.m }

// Pattern returns a copy of the pattern matrix rows.
func (p *Plan) Pattern() []code.Word { return code.CloneWords(p.pattern) }

// Doses returns a copy of the digit -> dose-unit mapping.
func (p *Plan) Doses() []int64 { return append([]int64(nil), p.doses...) }

// D returns a copy of the final doping matrix in dose units.
func (p *Plan) D() [][]int64 { return cloneInt64(p.d) }

// S returns a copy of the step doping matrix in dose units. Negative
// entries are n-type compensation doses, positive entries p-type.
func (p *Plan) S() [][]int64 { return cloneInt64(p.s) }

// Nu returns a copy of the dose-operation count matrix ν:
// ν[i][j] = number of implantation doses region (i,j) accumulates.
func (p *Plan) Nu() [][]int { return cloneInt(p.nu) }

// NuAt returns ν[i][j] without copying the matrix — the hot-path accessor
// of the yield analysis, which reads every region count once per evaluated
// design point and must not clone N·M ints to do so.
func (p *Plan) NuAt(i, j int) int { return p.nu[i][j] }

func cloneInt64(m [][]int64) [][]int64 {
	out := make([][]int64, len(m))
	for i, row := range m {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

func cloneInt(m [][]int) [][]int {
	out := make([][]int, len(m))
	for i, row := range m {
		out[i] = append([]int(nil), row...)
	}
	return out
}
