package mspt

import (
	"math"
	"testing"
	"testing/quick"

	"nwdec/internal/code"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

func TestNewPlanValidation(t *testing.T) {
	ok := []code.Word{code.FromDigits(0, 1)}
	if _, err := NewPlan(ok, 1, []int64{1}); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := NewPlan(ok, 2, []int64{1}); err == nil {
		t.Error("short dose table accepted")
	}
	if _, err := NewPlan(ok, 2, []int64{2, 1}); err == nil {
		t.Error("non-increasing doses accepted")
	}
	if _, err := NewPlan(ok, 2, []int64{0, 1}); err == nil {
		t.Error("non-positive dose accepted")
	}
	if _, err := NewPlan(nil, 2, []int64{1, 2}); err == nil {
		t.Error("empty pattern accepted")
	}
	ragged := []code.Word{code.FromDigits(0, 1), code.FromDigits(0)}
	if _, err := NewPlan(ragged, 2, []int64{1, 2}); err == nil {
		t.Error("ragged pattern accepted")
	}
	bad := []code.Word{code.FromDigits(0, 7)}
	if _, err := NewPlan(bad, 2, []int64{1, 2}); err == nil {
		t.Error("digit outside base accepted")
	}
}

func TestPlanAccessorsReturnCopies(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	d := p.D()
	d[0][0] = 999
	if p.D()[0][0] == 999 {
		t.Error("D leaked internal storage")
	}
	s := p.S()
	s[0][0] = 999
	if p.S()[0][0] == 999 {
		t.Error("S leaked internal storage")
	}
	nu := p.Nu()
	nu[0][0] = 999
	if p.Nu()[0][0] == 999 {
		t.Error("Nu leaked internal storage")
	}
	pat := p.Pattern()
	pat[0][0] = 2
	if p.Pattern()[0][0] == 2 {
		t.Error("Pattern leaked internal storage")
	}
	doses := p.Doses()
	doses[0] = 42
	if p.Doses()[0] == 42 {
		t.Error("Doses leaked internal storage")
	}
	if p.Base() != 3 || p.N() != 3 || p.M() != 4 {
		t.Errorf("identity wrong: %d %d %d", p.Base(), p.N(), p.M())
	}
}

func TestCumulativeDopingIdentity(t *testing.T) {
	// Proposition 2: D[i][j] = sum of S[k][j] for k >= i.
	p := mustPlan(t, paperTreePattern())
	d := p.D()
	s := p.S()
	for j := 0; j < p.M(); j++ {
		var acc int64
		for i := p.N() - 1; i >= 0; i-- {
			acc += s[i][j]
			if d[i][j] != acc {
				t.Errorf("D[%d][%d] = %d, cumulative sum %d", i, j, d[i][j], acc)
			}
			acc = d[i][j]
		}
	}
}

func TestCumulativeDopingProperty(t *testing.T) {
	// For random binary patterns the cumulative identity and ν bounds hold.
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) < 4 {
			return true
		}
		const m = 4
		n := len(raw) / m
		if n > 12 {
			n = 12
		}
		pattern := make([]code.Word, n)
		for i := range pattern {
			w := make(code.Word, m)
			for j := range w {
				w[j] = int(raw[i*m+j]) % 2
			}
			pattern[i] = w
		}
		p, err := NewPlan(pattern, 2, []int64{3, 8})
		if err != nil {
			return false
		}
		// Flow replay must agree with analytic matrices.
		if err := p.Verify(); err != nil {
			return false
		}
		// ν bounds: 1 <= ν[i][j] <= N - i, non-increasing in i.
		nu := p.Nu()
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				if nu[i][j] < 1 || nu[i][j] > n-i {
					return false
				}
				if i+1 < n && nu[i][j] < nu[i+1][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLastRowAllDosedOnce(t *testing.T) {
	// The last nanowire receives exactly one dose per region: its own step.
	p := mustPlan(t, paperGrayPattern())
	nu := p.Nu()
	for j, v := range nu[p.N()-1] {
		if v != 1 {
			t.Errorf("ν[last][%d] = %d, want 1", j, v)
		}
	}
}

func TestBinaryReflectedPhiIsTwoN(t *testing.T) {
	// Fig. 5: Φ is constant for all binary (reflected) codes and equals
	// twice the number of nanowires in a half cave.
	for _, newGen := range []func() (code.Generator, error){
		func() (code.Generator, error) { return code.NewTree(2, 10) },
		func() (code.Generator, error) { return code.NewGray(2, 10) },
		func() (code.Generator, error) { return code.NewBalancedGray(2, 10) },
	} {
		g, err := newGen()
		if err != nil {
			t.Fatal(err)
		}
		words, err := g.Sequence(10)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlan(words, 2, []int64{2, 9})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Phi(); got != 20 {
			t.Errorf("%s: Φ = %d, want 2N = 20", g.Type(), got)
		}
	}
}

func TestGrayPhiAdvantageTernary(t *testing.T) {
	// Fig. 5: for ternary logic the tree code pays a fabrication overhead
	// that the Gray arrangement cancels.
	const n = 10
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := code.NewTree(3, 6)
	gc, _ := code.NewGray(3, 6)
	pt, err := NewPlanFromGenerator(tc, n, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewPlanFromGenerator(gc, n, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Phi() >= pt.Phi() {
		t.Errorf("ternary Gray Φ = %d not better than tree Φ = %d", pg.Phi(), pt.Phi())
	}
}

func TestDoseLevels(t *testing.T) {
	q := physics.PaperExampleQuantizer()
	doses, err := DoseLevels(q, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 4, 9}
	for i := range want {
		if doses[i] != want[i] {
			t.Errorf("dose[%d] = %d, want %d", i, doses[i], want[i])
		}
	}
	// Default unit.
	doses, err = DoseLevels(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doses[0] != 200 || doses[2] != 900 {
		t.Errorf("default-unit doses = %v", doses)
	}
	// Too-coarse unit collapses levels.
	if _, err := DoseLevels(q, 1e19); err == nil {
		t.Error("coarse unit accepted")
	}
}

func TestNewPlanFromGeneratorCyclic(t *testing.T) {
	// Requesting more nanowires than the space holds wraps the arrangement.
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	g, _ := code.NewTree(2, 4) // 4 words
	p, err := NewPlanFromGenerator(g, 10, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 10 {
		t.Fatalf("N = %d", p.N())
	}
	pat := p.Pattern()
	if !pat[0].Equal(pat[4]) {
		t.Error("cyclic assignment expected word 4 == word 0")
	}
}

func TestNewPlanFromGeneratorBaseMismatch(t *testing.T) {
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	g, _ := code.NewTree(3, 4)
	if _, err := NewPlanFromGenerator(g, 3, q, 0); err == nil {
		t.Error("base mismatch accepted")
	}
}

func TestSampleVTStatistics(t *testing.T) {
	// Monte-Carlo threshold samples must match the analytic Σ: the sample
	// std of region (i,j) approaches σ_T·sqrt(ν[i][j]).
	p := mustPlan(t, paperTreePattern())
	q := physics.PaperExampleQuantizer()
	const sigmaT = 0.05
	const trials = 4000
	rng := stats.NewRNG(1234)
	sums := make([][]float64, p.N())
	sqs := make([][]float64, p.N())
	for i := range sums {
		sums[i] = make([]float64, p.M())
		sqs[i] = make([]float64, p.M())
	}
	for tr := 0; tr < trials; tr++ {
		vt := p.SampleVT(rng, sigmaT, q.VTOf)
		for i := range vt {
			for j, v := range vt[i] {
				sums[i][j] += v
				sqs[i][j] += v * v
			}
		}
	}
	nu := p.Nu()
	for i := 0; i < p.N(); i++ {
		for j := 0; j < p.M(); j++ {
			mean := sums[i][j] / trials
			std := math.Sqrt(sqs[i][j]/trials - mean*mean)
			wantMean := q.VTOf(p.Pattern()[i][j])
			wantStd := sigmaT * math.Sqrt(float64(nu[i][j]))
			if math.Abs(mean-wantMean) > 0.01 {
				t.Errorf("region (%d,%d): mean %g, want %g", i, j, mean, wantMean)
			}
			if math.Abs(std-wantStd)/wantStd > 0.1 {
				t.Errorf("region (%d,%d): std %g, want %g", i, j, std, wantStd)
			}
		}
	}
}

func TestSigmaHelpers(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	const sigmaT = 0.05
	sig := p.Sigma(sigmaT)
	nu := p.Nu()
	for i := range sig {
		for j := range sig[i] {
			want := sigmaT * sigmaT * float64(nu[i][j])
			if math.Abs(sig[i][j]-want) > 1e-15 {
				t.Errorf("Σ[%d][%d] = %g, want %g", i, j, sig[i][j], want)
			}
		}
	}
	root := p.SigmaRootNormalized()
	if math.Abs(root[0][1]-math.Sqrt(3)) > 1e-12 {
		t.Errorf("normalized root = %g, want sqrt(3)", root[0][1])
	}
	if got := p.RegionSigma(0, 1, sigmaT); math.Abs(got-sigmaT*math.Sqrt(3)) > 1e-12 {
		t.Errorf("RegionSigma = %g", got)
	}
	if p.MaxNu() != 3 {
		t.Errorf("MaxNu = %d, want 3", p.MaxNu())
	}
	if got := p.AvgVariability(1); math.Abs(got-22.0/12.0) > 1e-12 {
		t.Errorf("AvgVariability = %g", got)
	}
}

func TestFlowEventLog(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	res := p.Run()
	spacers, doses := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case EventSpacer:
			spacers++
		case EventLithoDose:
			doses++
			if len(e.Regions) == 0 {
				t.Error("dose event with no regions")
			}
		}
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
	if spacers != p.N() {
		t.Errorf("%d spacer events, want %d", spacers, p.N())
	}
	if doses != p.Phi() {
		t.Errorf("%d dose events, want Φ = %d", doses, p.Phi())
	}
}

func TestDistinctNonZero(t *testing.T) {
	got := distinctNonZero([]int64{0, -5, 0, 2, -5, 2, 7})
	want := []int64{-5, 2, 7}
	if len(got) != len(want) {
		t.Fatalf("distinctNonZero = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinctNonZero = %v, want %v", got, want)
		}
	}
}
