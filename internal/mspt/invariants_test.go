package mspt

// Cross-cutting invariants of the doping algebra that the paper's
// optimization arguments rely on implicitly.

import (
	"testing"
	"testing/quick"

	"nwdec/internal/code"
)

func TestPhiAndNuInvariantUnderDoseScaling(t *testing.T) {
	// Scaling every dose level by a positive integer preserves which S
	// entries are zero and which values are distinct, so Φ and ν — and
	// therefore the whole code optimization — are invariant.
	pattern := paperTreePattern()
	base, err := NewPlan(pattern, 3, []int64{2, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{2, 5, 100} {
		scaled, err := NewPlan(pattern, 3, []int64{2 * k, 4 * k, 9 * k})
		if err != nil {
			t.Fatal(err)
		}
		if scaled.Phi() != base.Phi() {
			t.Errorf("scale %d: Φ %d != %d", k, scaled.Phi(), base.Phi())
		}
		if scaled.NuSum() != base.NuSum() {
			t.Errorf("scale %d: ‖Σ‖₁ %d != %d", k, scaled.NuSum(), base.NuSum())
		}
		nb, ns := base.Nu(), scaled.Nu()
		for i := range nb {
			for j := range nb[i] {
				if nb[i][j] != ns[i][j] {
					t.Fatalf("scale %d: ν[%d][%d] differs", k, i, j)
				}
			}
		}
	}
}

func TestPhiInvariantUnderDoseShiftProperty(t *testing.T) {
	// Adding a constant to all dose levels shifts D rows but leaves the
	// differences S[i] = D[i] - D[i+1] untouched for i < N-1; only the
	// last step's values move, and they stay distinct. ν is preserved
	// exactly; Φ can only change through collisions in the last row, which
	// a constant shift cannot create or destroy.
	f := func(shiftRaw uint8) bool {
		shift := int64(shiftRaw%50) + 1
		pattern := paperGrayPattern()
		a, err1 := NewPlan(pattern, 3, []int64{2, 4, 9})
		b, err2 := NewPlan(pattern, 3, []int64{2 + shift, 4 + shift, 9 + shift})
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Phi() != b.Phi() || a.NuSum() != b.NuSum() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayNuSumInvariantUnderReversal(t *testing.T) {
	// A Gray sequence has a constant two-digit change per step, so reading
	// the arrangement backwards redistributes ν across wires but preserves
	// ‖Σ‖₁ exactly.
	g, err := code.NewGray(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	words, err := g.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]code.Word, len(words))
	for i, w := range words {
		reversed[len(words)-1-i] = w
	}
	fwd, err := NewPlan(words, 2, []int64{200, 900})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := NewPlan(reversed, 2, []int64{200, 900})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.NuSum() != rev.NuSum() {
		t.Errorf("reversal changed ‖Σ‖₁: %d vs %d", fwd.NuSum(), rev.NuSum())
	}
	if fwd.Phi() != rev.Phi() {
		t.Errorf("reversal changed Φ: %d vs %d", fwd.Phi(), rev.Phi())
	}
}

func TestNuSumDecomposition(t *testing.T) {
	// ‖Σ‖₁/σ² = N·M (the final doping step doses every region of every
	// wire) + Σ_k c_k·(k+1), where c_k is the number of digit changes
	// between rows k and k+1 — the identity behind Proposition 4's
	// transition-counting argument.
	for _, pattern := range [][]code.Word{paperTreePattern(), paperGrayPattern()} {
		p, err := NewPlan(pattern, 3, []int64{2, 4, 9})
		if err != nil {
			t.Fatal(err)
		}
		want := p.N() * p.M()
		for k := 0; k+1 < p.N(); k++ {
			want += pattern[k].Hamming(pattern[k+1]) * (k + 1)
		}
		if got := p.NuSum(); got != want {
			t.Errorf("‖Σ‖₁ = %d, decomposition predicts %d", got, want)
		}
	}
}

func TestUniformPatternMinimizesEverything(t *testing.T) {
	// All-identical rows: no transitions at all — one dose per region, Φ
	// equal to the distinct values of a single word.
	words := []code.Word{
		code.FromDigits(0, 1, 2),
		code.FromDigits(0, 1, 2),
		code.FromDigits(0, 1, 2),
		code.FromDigits(0, 1, 2),
	}
	p, err := NewPlan(words, 3, []int64{2, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.NuSum() != 4*3 {
		t.Errorf("‖Σ‖₁ = %d, want N·M = 12", p.NuSum())
	}
	if p.Phi() != 3 {
		t.Errorf("Φ = %d, want 3 (one pass per distinct dose)", p.Phi())
	}
	if p.MaxNu() != 1 {
		t.Errorf("max ν = %d, want 1", p.MaxNu())
	}
}
