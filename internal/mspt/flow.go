package mspt

import (
	"fmt"
	"sort"

	"nwdec/internal/stats"
)

// EventKind discriminates fabrication-flow events.
type EventKind int

// Flow event kinds, in the order they occur per spacer.
const (
	// EventSpacer is the conformal deposition + anisotropic etch defining
	// one poly-Si spacer (steps 2-3 of Fig. 2).
	EventSpacer EventKind = iota
	// EventLithoDose is one photolithography masking + implantation pass
	// applying a single dose value to selected regions of all spacers
	// defined so far (Fig. 4).
	EventLithoDose
)

// Event is one entry of the fabrication-flow log.
type Event struct {
	Kind EventKind
	// Spacer is the index of the spacer being defined (EventSpacer) or the
	// step-doping procedure the pass belongs to (EventLithoDose).
	Spacer int
	// Dose is the implantation dose in dose units (EventLithoDose only).
	// Negative doses are n-type compensation implants.
	Dose int64
	// Regions are the doping-region columns exposed by the mask
	// (EventLithoDose only), ascending.
	Regions []int
}

// String renders the event for flow listings.
func (e Event) String() string {
	switch e.Kind {
	case EventSpacer:
		return fmt.Sprintf("define spacer %d", e.Spacer)
	case EventLithoDose:
		return fmt.Sprintf("litho+implant after spacer %d: dose %+d units on regions %v (hits spacers 0..%d)",
			e.Spacer, e.Dose, e.Regions, e.Spacer)
	default:
		return fmt.Sprintf("event(%d)", int(e.Kind))
	}
}

// FlowResult is the outcome of replaying the fabrication flow.
type FlowResult struct {
	// Doping is the accumulated doping of every region in dose units; by
	// Proposition 2 it must equal the plan's final doping matrix D.
	Doping [][]int64
	// DoseOps counts how many implantation doses each region received; it
	// must equal the plan's ν matrix.
	DoseOps [][]int
	// LithoSteps is the number of lithography/doping passes performed; it
	// must equal the plan's fabrication complexity Φ.
	LithoSteps int
	// Events is the full ordered fabrication log.
	Events []Event
}

// Run replays the decoder-aware fabrication flow of the plan: spacers are
// defined in order, and after each definition the corresponding step-doping
// procedure is decomposed into one lithography/implant pass per distinct
// non-zero dose value, each pass dosing all spacers defined so far.
//
// Run is the executable counterpart of Propositions 1-2 and Definitions 4-5:
// its outputs must reproduce D, ν and Φ exactly, which the test suite and
// the Verify method check.
func (p *Plan) Run() *FlowResult {
	res := &FlowResult{
		Doping:  make([][]int64, p.n),
		DoseOps: make([][]int, p.n),
	}
	for i := range res.Doping {
		res.Doping[i] = make([]int64, p.m)
		res.DoseOps[i] = make([]int, p.m)
	}
	for i := 0; i < p.n; i++ {
		res.Events = append(res.Events, Event{Kind: EventSpacer, Spacer: i})
		// Group this procedure's doses by value: one mask+implant per value.
		for _, dose := range distinctNonZero(p.s[i]) {
			var regions []int
			for j, v := range p.s[i] {
				if v == dose {
					regions = append(regions, j)
				}
			}
			res.Events = append(res.Events, Event{
				Kind: EventLithoDose, Spacer: i, Dose: dose, Regions: regions,
			})
			res.LithoSteps++
			// The implant hits every spacer defined so far (0..i) at the
			// exposed regions.
			for k := 0; k <= i; k++ {
				for _, j := range regions {
					res.Doping[k][j] += dose
					res.DoseOps[k][j]++
				}
			}
		}
	}
	return res
}

// Verify replays the flow and checks it against the plan's analytic
// matrices, returning a descriptive error on the first mismatch. It is the
// internal consistency proof that the matrix algebra and the physical flow
// agree.
func (p *Plan) Verify() error {
	res := p.Run()
	if res.LithoSteps != p.Phi() {
		return fmt.Errorf("mspt: flow used %d litho steps, Φ = %d", res.LithoSteps, p.Phi())
	}
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.m; j++ {
			if res.Doping[i][j] != p.d[i][j] {
				return fmt.Errorf("mspt: flow doping[%d][%d] = %d, D = %d", i, j, res.Doping[i][j], p.d[i][j])
			}
			if res.DoseOps[i][j] != p.nu[i][j] {
				return fmt.Errorf("mspt: flow dose ops[%d][%d] = %d, ν = %d", i, j, res.DoseOps[i][j], p.nu[i][j])
			}
		}
	}
	return nil
}

// SampleVT draws one Monte-Carlo realization of the decoder's threshold
// voltages: VT[i][j] = nominal VT of the region's digit plus the accumulated
// noise of its ν[i][j] independent doses, each contributing a Gaussian
// deviation of standard deviation sigmaT. The per-dose deviations are
// independent, so their sum is sampled as one N(0, σ_T²·ν[i][j]) draw —
// identical in distribution to dose-by-dose accumulation at a fraction of
// the generator work. nominal maps digits to nominal threshold voltages
// (e.g. physics.Quantizer.VTOf).
func (p *Plan) SampleVT(rng *stats.RNG, sigmaT float64, nominal func(digit int) float64) [][]float64 {
	flat := make([]float64, p.n*p.m)
	out := make([][]float64, p.n)
	for i := range out {
		out[i] = flat[i*p.m : (i+1)*p.m]
	}
	p.SampleVTInto(rng, sigmaT, nominal, out)
	return out
}

// SampleVTInto is SampleVT writing into caller-owned row buffers: dst must
// hold N rows of M floats (typically slices of one flat arena reused across
// draws). The generator consumes exactly the draws SampleVT makes, in the
// same row-major region order (one ziggurat draw per dosed region; undosed
// regions and σ_T = 0 consume nothing), so realizations are bit-identical
// to the allocating path — this is the scratch-buffer primitive of the
// Monte-Carlo fabrication loop, which resamples thousands of half caves
// without re-allocating the threshold matrix each time.
func (p *Plan) SampleVTInto(rng *stats.RNG, sigmaT float64, nominal func(digit int) float64, dst [][]float64) {
	for i := 0; i < p.n; i++ {
		row := dst[i]
		for j := 0; j < p.m; j++ {
			vt := nominal(p.pattern[i][j])
			if sigma := sigmaT * p.sqrtNu[i*p.m+j]; sigma > 0 {
				vt += sigma * rng.NormFloat64Fast()
			}
			row[j] = vt
		}
	}
}

// distinctNonZero returns the distinct non-zero values of row, ascending.
func distinctNonZero(row []int64) []int64 {
	set := make(map[int64]bool)
	for _, v := range row {
		if v != 0 {
			set[v] = true
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
