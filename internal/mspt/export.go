package mspt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export is the serializable view of a plan: every matrix of Sec. 4 plus
// the derived costs, suitable for downstream tooling (plotting, spreadsheet
// analysis, regression baselines).
type Export struct {
	Base    int       `json:"base"`
	N       int       `json:"n"`
	M       int       `json:"m"`
	Doses   []int64   `json:"doses"`
	Pattern [][]int   `json:"pattern"`
	D       [][]int64 `json:"d"`
	S       [][]int64 `json:"s"`
	Nu      [][]int   `json:"nu"`
	Phi     int       `json:"phi"`
	PhiPer  []int     `json:"phiPerStep"`
	NuSum   int       `json:"nuSum"`
}

// ExportView assembles the serializable view of the plan.
func (p *Plan) ExportView() Export {
	pattern := make([][]int, p.n)
	for i, w := range p.pattern {
		pattern[i] = append([]int(nil), w...)
	}
	return Export{
		Base:    p.base,
		N:       p.n,
		M:       p.m,
		Doses:   p.Doses(),
		Pattern: pattern,
		D:       p.D(),
		S:       p.S(),
		Nu:      p.Nu(),
		Phi:     p.Phi(),
		PhiPer:  p.PhiPerStep(),
		NuSum:   p.NuSum(),
	}
}

// WriteJSON writes the plan as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.ExportView())
}

// WriteCSV writes the plan's matrices as CSV: one section per matrix, each
// row prefixed with the matrix name and the nanowire index.
func (p *Plan) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"matrix", "wire"}, regionHeaders(p.m)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range p.pattern {
		rec := []string{"P", strconv.Itoa(i)}
		for _, d := range row {
			rec = append(rec, strconv.Itoa(d))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, section := range []struct {
		name string
		m    [][]int64
	}{{"D", p.d}, {"S", p.s}} {
		name := section.name
		for i, row := range section.m {
			rec := []string{name, strconv.Itoa(i)}
			for _, v := range row {
				rec = append(rec, strconv.FormatInt(v, 10))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	for i, row := range p.nu {
		rec := []string{"NU", strconv.Itoa(i)}
		for _, v := range row {
			rec = append(rec, strconv.Itoa(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func regionHeaders(m int) []string {
	out := make([]string, m)
	for j := range out {
		out[j] = fmt.Sprintf("r%d", j)
	}
	return out
}
