package mspt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/physics"
)

func TestMasksPaperExample(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	set := p.Masks()
	if set.Passes != p.Phi() {
		t.Errorf("mask passes %d != Φ %d", set.Passes, p.Phi())
	}
	// Every pass must be accounted for exactly once.
	total := 0
	for _, m := range set.Masks {
		total += len(m.Passes)
		if len(m.Regions) == 0 {
			t.Error("mask with empty window set")
		}
		for k := 1; k < len(m.Regions); k++ {
			if m.Regions[k] <= m.Regions[k-1] {
				t.Error("mask regions not ascending")
			}
		}
	}
	if total != set.Passes {
		t.Errorf("pass accounting: %d vs %d", total, set.Passes)
	}
	if set.DistinctMasks() > set.Passes {
		t.Error("more masks than passes")
	}
	if set.ReuseFactor() < 1 {
		t.Errorf("reuse factor %g below 1", set.ReuseFactor())
	}
}

func TestMasksGrayReusesAggressively(t *testing.T) {
	// A binary reflected Gray plan flips one base digit (+ complement) per
	// step: every pass exposes exactly one region pair, so at most M
	// distinct single-column... pair masks exist while Φ = 2N passes run.
	g, _ := code.NewGray(2, 10)
	words, err := g.Sequence(20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(words, 2, []int64{200, 900})
	if err != nil {
		t.Fatal(err)
	}
	set := p.Masks()
	if set.Passes != 40 {
		t.Fatalf("Φ = %d", set.Passes)
	}
	// Single-digit flips expose one column each (the flipped base digit
	// and its complement get different dose signs, hence separate passes).
	if set.DistinctMasks() > 2*p.M() {
		t.Errorf("Gray plan needs %d masks, expected <= %d", set.DistinctMasks(), 2*p.M())
	}
	if set.ReuseFactor() < 1.5 {
		t.Errorf("Gray reuse factor %g unexpectedly low", set.ReuseFactor())
	}
}

func TestMasksDeterministicOrder(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	a := p.Masks()
	b := p.Masks()
	if len(a.Masks) != len(b.Masks) {
		t.Fatal("nondeterministic mask count")
	}
	for i := range a.Masks {
		if regionKey(a.Masks[i].Regions) != regionKey(b.Masks[i].Regions) {
			t.Fatal("nondeterministic mask order")
		}
	}
	// Most-used mask first.
	for i := 1; i < len(a.Masks); i++ {
		if len(a.Masks[i].Passes) > len(a.Masks[i-1].Passes) {
			t.Error("masks not sorted by usage")
		}
	}
}

func TestExportViewAndJSON(t *testing.T) {
	p := mustPlan(t, paperTreePattern())
	v := p.ExportView()
	if v.Base != 3 || v.N != 3 || v.M != 4 || v.Phi != 9 || v.NuSum != 22 {
		t.Errorf("export view wrong: %+v", v)
	}
	if v.Pattern[2][3] != 2 || v.S[0][1] != -5 {
		t.Error("export matrices wrong")
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Phi != 9 || back.Nu[0][1] != 3 {
		t.Errorf("JSON round trip wrong: %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	p := mustPlan(t, paperGrayPattern())
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 4 matrices x 3 rows.
	if len(lines) != 1+4*3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "matrix,wire,r0") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	// D rows come before S rows (deterministic section order).
	dIdx := strings.Index(out, "\nD,")
	sIdx := strings.Index(out, "\nS,")
	if dIdx == -1 || sIdx == -1 || dIdx > sIdx {
		t.Error("CSV section order nondeterministic or missing")
	}
	if !strings.Contains(out, "S,1,-2,0,5,0") {
		t.Errorf("CSV missing paper S row:\n%s", out)
	}
}

func TestExportDigitDoseConsistency(t *testing.T) {
	// D must be the pattern mapped through the dose table.
	q := physics.PaperExampleQuantizer()
	doses, _ := DoseLevels(q, 1e18)
	p, err := NewPlan(paperTreePattern(), 3, doses)
	if err != nil {
		t.Fatal(err)
	}
	v := p.ExportView()
	for i := range v.Pattern {
		for j := range v.Pattern[i] {
			if v.D[i][j] != v.Doses[v.Pattern[i][j]] {
				t.Fatalf("D[%d][%d] inconsistent with pattern digit", i, j)
			}
		}
	}
}
