package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
)

// FSStore is the durable Store: one directory per job holding spec.json,
// one chunk-NNNNN.json checkpoint per completed chunk (the dataset's
// ordinary JSON interchange form) and one lease-NNNNN.json per chunk in
// flight. Every write lands via a temporary file renamed into place, so
// a process killed mid-write never leaves a torn checkpoint — the file
// either exists complete or not at all, which is the property
// kill/resume correctness rests on. A checkpoint damaged by other means
// (disk fault, hand editing) reads back as an ErrCorrupt-wrapped error,
// which the Runner treats as a missing chunk and recomputes.
type FSStore struct {
	root string
}

// NewFSStore opens (creating if needed) a filesystem store rooted at dir.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, nwerr.Invalidf("jobs: filesystem store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store root: %w", err)
	}
	return &FSStore{root: dir}, nil
}

// Root returns the store's root directory.
func (f *FSStore) Root() string { return f.root }

func (f *FSStore) jobDir(id string) string { return filepath.Join(f.root, id) }

func chunkFile(idx int) string { return fmt.Sprintf("chunk-%05d.json", idx) }

func leaseFile(idx int) string { return fmt.Sprintf("lease-%05d.json", idx) }

// writeAtomic lands data at path via a same-directory temp file and
// rename, the atomicity idiom of POSIX filesystems.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, err = tmp.Write(data)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		if rmErr := os.Remove(name); rmErr != nil && !os.IsNotExist(rmErr) {
			return errors.Join(err, rmErr)
		}
		return err
	}
	return nil
}

// PutSpec persists the spec under <root>/<id>/spec.json; an existing
// spec file is left untouched (specs are content-addressed).
func (f *FSStore) PutSpec(id string, spec Spec) error {
	dir := f.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: creating job dir: %w", err)
	}
	path := filepath.Join(dir, "spec.json")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding spec: %w", err)
	}
	if err := writeAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("jobs: writing spec: %w", err)
	}
	return nil
}

// GetSpec loads a persisted spec.
func (f *FSStore) GetSpec(id string) (Spec, error) {
	data, err := os.ReadFile(filepath.Join(f.jobDir(id), "spec.json"))
	if os.IsNotExist(err) {
		return Spec{}, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: reading spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Spec{}, fmt.Errorf("jobs: decoding spec of %s: %w", id, err)
	}
	return spec, nil
}

// PutChunk checkpoints one chunk dataset as JSON, atomically.
func (f *FSStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		return fmt.Errorf("jobs: encoding chunk %d of %s: %w", idx, id, err)
	}
	path := filepath.Join(f.jobDir(id), chunkFile(idx))
	if err := writeAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("jobs: writing chunk %d of %s: %w", idx, id, err)
	}
	return nil
}

// GetChunk loads one checkpointed chunk dataset.
func (f *FSStore) GetChunk(id string, idx int) (*dataset.Dataset, error) {
	data, err := os.ReadFile(filepath.Join(f.jobDir(id), chunkFile(idx)))
	if os.IsNotExist(err) {
		return nil, nwerr.NotFoundf("jobs: job %q has no chunk %d", id, idx)
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading chunk %d of %s: %w", idx, id, err)
	}
	ds, err := dataset.ParseJSON(bytes.NewReader(data))
	if err != nil {
		// A chunk file that exists but does not parse is a damaged
		// checkpoint, not a programming error: wrap ErrCorrupt so the
		// Runner treats it as missing and recomputes the chunk.
		return nil, fmt.Errorf("jobs: chunk %d of %s: %w: %v", idx, id, ErrCorrupt, err)
	}
	return ds, nil
}

// Chunks scans the job directory for checkpoint files and returns their
// indices in ascending order. Unparseable names (temp files from a
// killed write) are ignored.
func (f *FSStore) Chunks(id string) ([]int, error) {
	entries, err := os.ReadDir(f.jobDir(id))
	if os.IsNotExist(err) {
		return nil, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning job %s: %w", id, err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "chunk-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "chunk-"), ".json"))
		if err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// Delete removes the job's directory — spec, chunks and leases.
func (f *FSStore) Delete(id string) error {
	dir := f.jobDir(id)
	if _, err := os.Stat(filepath.Join(dir, "spec.json")); os.IsNotExist(err) {
		return nwerr.NotFoundf("jobs: unknown job %q", id)
	} else if err != nil {
		return fmt.Errorf("jobs: probing job %s: %w", id, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("jobs: deleting job %s: %w", id, err)
	}
	return nil
}

// leaseRecord is the JSON body of a lease file.
type leaseRecord struct {
	Node string `json:"node"`
}

// PutLease records the node computing chunk idx, atomically.
func (f *FSStore) PutLease(id string, idx int, node string) error {
	data, err := json.Marshal(leaseRecord{Node: node})
	if err != nil {
		return fmt.Errorf("jobs: encoding lease %d of %s: %w", idx, id, err)
	}
	path := filepath.Join(f.jobDir(id), leaseFile(idx))
	if err := writeAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("jobs: writing lease %d of %s: %w", idx, id, err)
	}
	return nil
}

// DeleteLease removes the lease of chunk idx; absent leases are a no-op.
func (f *FSStore) DeleteLease(id string, idx int) error {
	err := os.Remove(filepath.Join(f.jobDir(id), leaseFile(idx)))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: deleting lease %d of %s: %w", idx, id, err)
	}
	return nil
}

// Leases scans the job directory for lease files and returns index →
// node. Unreadable or unparsable lease files are skipped — a lease is
// advisory state, never worth failing a job over.
func (f *FSStore) Leases(id string) (map[int]string, error) {
	entries, err := os.ReadDir(f.jobDir(id))
	if os.IsNotExist(err) {
		return nil, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning job %s: %w", id, err)
	}
	out := make(map[int]string)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "lease-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "lease-"), ".json"))
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(f.jobDir(id), name))
		if err != nil {
			continue
		}
		var rec leaseRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		out[idx] = rec.Node
	}
	return out, nil
}

// ModTime returns the newest modification time among the job's files —
// the last moment the job's persisted state changed, which is what GC
// ages against.
func (f *FSStore) ModTime(id string) (time.Time, error) {
	dir := f.jobDir(id)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return time.Time{}, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	if err != nil {
		return time.Time{}, fmt.Errorf("jobs: scanning job %s: %w", id, err)
	}
	var newest time.Time
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		if mt := info.ModTime(); mt.After(newest) {
			newest = mt
		}
	}
	if newest.IsZero() {
		return time.Time{}, nwerr.NotFoundf("jobs: job %q has no files", id)
	}
	return newest, nil
}

// Jobs lists the ids of every job directory holding a spec, sorted.
func (f *FSStore) Jobs() ([]string, error) {
	entries, err := os.ReadDir(f.root)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(f.root, e.Name(), "spec.json")); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
