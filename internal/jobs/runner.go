package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/sweep"
)

// Options configures a Runner. The zero value is usable.
type Options struct {
	// Workers bounds the per-chunk worker pool (<= 0 selects GOMAXPROCS).
	// It is an execution detail: results are bit-identical at every
	// worker count and Workers never enters the job identity.
	Workers int
	// Executor evaluates chunks (nil selects a LocalExecutor over
	// Workers). Distribution is an executor concern: a RingExecutor here
	// routes chunks across the fleet while the Runner's checkpointing,
	// lifecycle and status semantics stay exactly as they are locally.
	Executor Executor
	// Node is this process's identity in chunk leases ("" = "local").
	// Like Workers it is an execution detail, never part of job identity.
	Node string
}

// Runner executes jobs against a Store. Each submitted job runs on its
// own goroutine, evaluating the chunk partition sequentially — chunk i
// is internally parallel on the par pool, but chunk i+1 starts only
// after chunk i is checkpointed, so the persisted chunks always form a
// contiguous prefix of the partition and partial results stream in
// order. Before computing a chunk the runner probes the store: a hit is
// served from the checkpoint (a "resumed" chunk), a miss is computed and
// checkpointed. Resume is therefore not a special mode — submitting a
// spec whose store already holds chunks is resume.
type Runner struct {
	store Store
	opts  Options
	exec  Executor
	node  string

	// ctx is the lifetime of the runner: Close cancels it, stopping
	// every job goroutine.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	running int
}

// job is the in-memory state of one submitted job.
type job struct {
	spec   Spec
	status Status
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// NewRunner creates a runner over the store. Close must be called to
// stop job goroutines; jobs interrupted by Close stay resumable.
func NewRunner(store Store, opts Options) *Runner {
	exec := opts.Executor
	if exec == nil {
		exec = &LocalExecutor{Workers: opts.Workers}
	}
	node := opts.Node
	if node == "" {
		node = "local"
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Runner{
		store:  store,
		opts:   opts,
		exec:   exec,
		node:   node,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
}

// Close cancels every running job and waits for their goroutines to
// exit. Completed chunks are already checkpointed, so closed-out jobs
// resume from where they stopped.
func (r *Runner) Close() {
	r.cancel()
	r.wg.Wait()
}

// Submit starts (or joins) the job described by spec and returns its
// status. Submission is idempotent: the id is content-addressed, so
// resubmitting a spec already running or finished in this runner returns
// the existing job's status without side effects. The obs registry of
// ctx, if any, instruments the job for its whole lifetime; ctx's
// cancellation does not — jobs outlive their submitting request and stop
// only via Cancel or Close.
func (r *Runner) Submit(ctx context.Context, spec Spec) (Status, error) {
	spec = spec.normalized()
	if err := spec.validate(); err != nil {
		return Status{}, err
	}
	points := spec.Grid.Points(spec.Base)
	if len(points) == 0 {
		return Status{}, nwerr.Invalidf("jobs: grid produced no valid design points")
	}
	id := spec.ID()
	chunks := par.Ranges(len(points), spec.Chunk)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ctx.Err(); err != nil {
		return Status{}, nwerr.Canceled(fmt.Errorf("jobs: runner closed: %w", err))
	}
	if j, ok := r.jobs[id]; ok {
		return j.status, nil
	}
	if err := r.store.PutSpec(id, spec); err != nil {
		return Status{}, err
	}
	reg := obs.From(ctx)
	jctx, jcancel := context.WithCancel(obs.Into(r.ctx, reg))
	j := &job{
		spec:   spec,
		cancel: jcancel,
		done:   make(chan struct{}),
		status: Status{
			ID:     id,
			State:  StateRunning,
			Key:    spec.Key(),
			Points: len(points),
			Chunks: len(chunks),
		},
	}
	r.jobs[id] = j
	reg.Counter("jobs/submitted").Add(1)
	r.running++
	reg.Gauge("jobs/running").Set(float64(r.running))
	r.wg.Add(1)
	go r.run(jctx, j, points, chunks)
	return j.status, nil
}

// Resume restarts a job persisted in the store: the spec is reloaded by
// id and resubmitted, so checkpointed chunks are served without
// recomputation and only the remainder is evaluated. Resuming a job
// already live in this runner returns its current status; an id no store
// has seen is a NotFound-class error.
func (r *Runner) Resume(ctx context.Context, id string) (Status, error) {
	r.mu.Lock()
	if j, ok := r.jobs[id]; ok {
		st := j.status
		r.mu.Unlock()
		return st, nil
	}
	r.mu.Unlock()
	spec, err := r.store.GetSpec(id)
	if err != nil {
		return Status{}, err
	}
	return r.Submit(ctx, spec)
}

// run executes one job's chunk loop on its own goroutine. The loop is
// sequential by design — chunk i+1 starts only after chunk i is
// checkpointed, preserving the contiguous-prefix invariant (DESIGN §14)
// — but each chunk's evaluation goes through the executor, which may
// compute it locally or route it across the fleet. Checkpointing never
// leaves this goroutine: whichever node computed a chunk, the submitting
// runner persists it, so resume byte-identity holds by construction.
func (r *Runner) run(ctx context.Context, j *job, points []sweep.Point, chunks []par.Range) {
	defer r.wg.Done()
	reg := obs.From(ctx)
	clock := reg.Clock()
	chunkNS := reg.Histogram("jobs/chunk_ns")
	id := j.status.ID
	// A lease that survived its writer marks a chunk a dead node left in
	// flight; the snapshot is advisory (a lease load failure only costs
	// the reclaim counter, never the job).
	leases, lerr := r.store.Leases(id)
	if lerr != nil {
		leases = nil
	}
	err := func() error {
		for i, rg := range chunks {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			corrupt := false
			switch _, err := r.store.GetChunk(id, i); {
			case err == nil:
				if err := r.store.DeleteLease(id, i); err != nil {
					return err
				}
				reg.Counter("jobs/chunks_resumed").Add(1)
				reg.Counter("jobs/chunks_done").Add(1)
				r.advance(j, func(s *Status) { s.Resumed++; s.Done++ })
				continue
			case errors.Is(err, ErrCorrupt):
				// A torn checkpoint is as good as missing: recompute the
				// chunk and let the atomic re-write replace the damage.
				reg.Counter("jobs/chunks_corrupt").Add(1)
				corrupt = true
			case !nwerr.IsNotFound(err):
				return err
			}
			if !corrupt && leases[i] != "" {
				reg.Counter("jobs/leases_reclaimed").Add(1)
			}
			if err := r.store.PutLease(id, i, r.node); err != nil {
				return err
			}
			var t0 time.Duration
			if clock != nil {
				t0 = clock.Now()
			}
			ds, err := r.exec.Execute(ctx, j.spec, Chunk{Index: i, Points: points[rg.Lo:rg.Hi]})
			if err != nil {
				return err
			}
			if err := r.store.PutChunk(id, i, ds); err != nil {
				return err
			}
			if err := r.store.DeleteLease(id, i); err != nil {
				return err
			}
			if clock != nil {
				chunkNS.Observe(int64(clock.Now() - t0))
			}
			reg.Counter("jobs/chunks_done").Add(1)
			r.advance(j, func(s *Status) { s.Computed++; s.Done++ })
		}
		return nil
	}()
	r.finish(j, err, reg)
}

// advance applies one status mutation under the runner lock.
func (r *Runner) advance(j *job, mut func(*Status)) {
	r.mu.Lock()
	mut(&j.status)
	r.mu.Unlock()
}

// finish records the terminal state and wakes waiters.
func (r *Runner) finish(j *job, err error, reg *obs.Registry) {
	r.mu.Lock()
	switch {
	case err == nil:
		j.status.State = StateComplete
		reg.Counter("jobs/completed").Add(1)
	case nwerr.IsCanceled(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status.State = StateCanceled
		j.status.Error = err.Error()
		reg.Counter("jobs/canceled").Add(1)
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
		reg.Counter("jobs/failed").Add(1)
	}
	r.running--
	reg.Gauge("jobs/running").Set(float64(r.running))
	r.mu.Unlock()
	close(j.done)
}

// Status reports a job's progress. Jobs live in this runner report their
// in-memory status; jobs known only to the store report Suspended (or
// Complete when every chunk is checkpointed) with resumed/computed
// counts zero — those describe a live run, not stored state. An id
// neither the runner nor the store knows is a NotFound-class error.
func (r *Runner) Status(id string) (Status, error) {
	r.mu.Lock()
	if j, ok := r.jobs[id]; ok {
		st := j.status
		r.mu.Unlock()
		return st, nil
	}
	r.mu.Unlock()
	spec, err := r.store.GetSpec(id)
	if err != nil {
		return Status{}, err
	}
	spec = spec.normalized()
	points := spec.Grid.Points(spec.Base)
	chunks := par.Ranges(len(points), spec.Chunk)
	idxs, err := r.store.Chunks(id)
	if err != nil {
		return Status{}, err
	}
	st := Status{
		ID:     id,
		State:  StateSuspended,
		Key:    spec.Key(),
		Points: len(points),
		Chunks: len(chunks),
		Done:   len(idxs),
	}
	if len(idxs) == len(chunks) {
		st.State = StateComplete
	}
	return st, nil
}

// Cancel stops a running job. Its completed chunks stay checkpointed, so
// a canceled job is resumable. Canceling a job that already reached a
// terminal state wraps ErrAlreadyComplete; canceling an id this runner
// does not own is NotFound-class (a suspended job in the store has
// nothing running to cancel).
func (r *Runner) Cancel(id string) error {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return nwerr.NotFoundf("jobs: no running job %q", id)
	}
	if j.status.State.Terminal() {
		r.mu.Unlock()
		return fmt.Errorf("jobs: cancel %s: %w", id, ErrAlreadyComplete)
	}
	r.mu.Unlock()
	j.cancel()
	return nil
}

// Wait blocks until the job reaches a terminal state in this runner, or
// ctx is done (a Canceled-class error carrying the last observed
// status). A job known only to the store is already terminal —
// Suspended or Complete — and returns immediately.
func (r *Runner) Wait(ctx context.Context, id string) (Status, error) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	r.mu.Unlock()
	if !ok {
		return r.Status(id)
	}
	select {
	case <-j.done:
		return r.Status(id)
	case <-ctx.Done():
		st, serr := r.Status(id)
		if serr != nil {
			st = Status{ID: id}
		}
		return st, nwerr.Canceled(fmt.Errorf("jobs: waiting for %s: %w", id, ctx.Err()))
	}
}

// Page is one Results response: the job's status at read time plus the
// datasets of a contiguous run of checkpointed chunks concatenated into
// one dataset (nil when the requested window is empty).
type Page struct {
	// Status is the job status observed with the page.
	Status Status
	// From is the index of the first chunk included.
	From int
	// Count is the number of chunks included.
	Count int
	// Dataset is the concatenation of the included chunks, nil when
	// Count is zero.
	Dataset *dataset.Dataset
}

// Results reads a window of the job's checkpointed output: up to max
// chunks (<= 0 means all) starting at chunk index from. Only the
// contiguous prefix of checkpointed chunks is served — the runner
// checkpoints in order, so the prefix is everything — and rows arrive in
// grid order, which makes a complete job's single-page read (0, 0)
// byte-identical to the dataset a synchronous sweep would have produced.
// Polling callers page with (done-so-far, 0) to stream increments.
func (r *Runner) Results(id string, from, max int) (Page, error) {
	st, err := r.Status(id)
	if err != nil {
		return Page{}, err
	}
	idxs, err := r.store.Chunks(id)
	if err != nil {
		return Page{}, err
	}
	// The checkpointed set is a contiguous prefix by construction; trim
	// defensively to the prefix anyway so a hand-edited store cannot
	// produce out-of-order rows.
	prefix := 0
	for _, idx := range idxs {
		if idx != prefix {
			break
		}
		prefix++
	}
	if from < 0 {
		return Page{}, nwerr.Invalidf("jobs: negative chunk offset %d", from)
	}
	if from >= prefix {
		return Page{Status: st, From: from}, nil
	}
	hi := prefix
	if max > 0 && from+max < hi {
		hi = from + max
	}
	parts := make([]*dataset.Dataset, 0, hi-from)
	for idx := from; idx < hi; idx++ {
		ds, err := r.store.GetChunk(id, idx)
		if err != nil {
			return Page{}, err
		}
		parts = append(parts, ds)
	}
	ds, err := dataset.Concat(parts...)
	if err != nil {
		return Page{}, err
	}
	return Page{Status: st, From: from, Count: hi - from, Dataset: ds}, nil
}

// Delete removes a terminal job — spec, checkpoints and leases — from
// the runner and its store. A job still running in this runner is
// refused with an Invalid-class error (cancel it first); an id neither
// the runner nor the store knows is NotFound-class from the store.
func (r *Runner) Delete(id string) error {
	r.mu.Lock()
	if j, ok := r.jobs[id]; ok {
		if !j.status.State.Terminal() {
			r.mu.Unlock()
			return nwerr.Invalidf("jobs: job %s is still running; cancel it before deleting", id)
		}
		delete(r.jobs, id)
	}
	r.mu.Unlock()
	return r.store.Delete(id)
}

// GC collects old terminal jobs from the store: every job not running in
// this runner whose state has not changed for longer than maxAge is
// deleted, except the keep most recently touched (keep <= 0 keeps none
// beyond the age test). It returns the deleted ids. Age comes from the
// store's AgeStore extension and "now" from the caller — the job layer
// never reads the clock itself — so a store without ages (MemoryStore)
// is an Invalid-class error rather than a silent no-op. A job that
// starts running between the scan and its deletion is skipped, never
// collected: Delete re-checks under the runner lock.
func (r *Runner) GC(ctx context.Context, now time.Time, maxAge time.Duration, keep int) ([]string, error) {
	ages, ok := r.store.(AgeStore)
	if !ok {
		return nil, nwerr.Invalidf("jobs: %T records no ages; GC needs an AgeStore (use the filesystem store)", r.store)
	}
	ids, err := r.store.Jobs()
	if err != nil {
		return nil, err
	}
	type candidate struct {
		id string
		mt time.Time
	}
	cands := make([]candidate, 0, len(ids))
	for _, id := range ids {
		r.mu.Lock()
		j, live := r.jobs[id]
		running := live && !j.status.State.Terminal()
		r.mu.Unlock()
		if running {
			continue
		}
		mt, err := ages.ModTime(id)
		if err != nil {
			continue // deleted (or torn) under the scan; nothing to collect
		}
		cands = append(cands, candidate{id, mt})
	}
	// Newest first, id as the deterministic tiebreak, so keep spares the
	// most recently touched jobs.
	sort.Slice(cands, func(a, b int) bool {
		if !cands[a].mt.Equal(cands[b].mt) {
			return cands[a].mt.After(cands[b].mt)
		}
		return cands[a].id < cands[b].id
	})
	var removed []string
	for i, c := range cands {
		if i < keep || now.Sub(c.mt) <= maxAge {
			continue
		}
		if err := r.Delete(c.id); err != nil {
			if nwerr.IsInvalid(err) || nwerr.IsNotFound(err) {
				continue // resumed or already gone since the scan
			}
			return removed, err
		}
		removed = append(removed, c.id)
	}
	if n := len(removed); n > 0 {
		obs.From(ctx).Counter("jobs/gc_collected").Add(int64(n))
	}
	return removed, nil
}
