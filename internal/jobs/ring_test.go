package jobs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nwdec/internal/cluster"
	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/sweep"
)

// ringSpec is a single-point-per-chunk spec with enough chunks that
// every node of a small ring owns several.
func ringSpec() Spec {
	return Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray, code.TypeHot},
			Lengths: []int{4, 6},
			SigmaTs: []float64{0.04, 0.045, 0.05, 0.055, 0.06, 0.065},
		},
		Chunk: 1,
	}
}

// chunkServer starts an httptest node serving the chunk protocol under
// the given ring identity, instrumented with its own obs registry so
// tests can count the chunks it computed.
func chunkServer(t *testing.T, name string) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.New(nil)
	h := cluster.ChunkHandler(name, func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
		return ServeChunk(ctx, 0, req)
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r.WithContext(obs.Into(r.Context(), reg)))
	}))
	return srv, reg
}

// peerChunk returns the index of a chunk of spec that the ring assigns
// to owner.
func peerChunk(t *testing.T, re *RingExecutor, spec Spec, owner string) int {
	t.Helper()
	spec = spec.normalized()
	n := len(spec.Grid.Points(spec.Base))
	for i := 0; i < n; i++ {
		if re.Ring().Owner(spec.ChunkKey(i)) == owner {
			return i
		}
	}
	t.Fatalf("ring assigns no chunk of %d to %q", n, owner)
	return -1
}

// TestRingExecutorRoutes pins the happy path: a chunk owned by a peer is
// computed there (peer_served, ring stats Served) and the dataset is
// byte-identical to a local evaluation; a chunk owned by self computes
// locally (peer_local).
func TestRingExecutorRoutes(t *testing.T) {
	spec := ringSpec()
	srvB, regB := chunkServer(t, "b")
	defer srvB.Close()
	re, err := NewRingExecutor(&LocalExecutor{}, RingOptions{
		Self:  "a",
		Peers: map[string]string{"b": srvB.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New(nil)
	ctx := obs.Into(context.Background(), reg)

	remote := peerChunk(t, re, spec, "b")
	ds, err := re.Execute(ctx, spec, chunkOf(t, spec, remote))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(localJSON(t, spec, remote)) {
		t.Error("peer-computed chunk differs from local evaluation")
	}
	if n := reg.Counter("jobs/peer_served").Value(); n != 1 {
		t.Errorf("jobs/peer_served = %d, want 1", n)
	}
	if n := regB.Counter("jobs/chunks_computed").Value(); n != 1 {
		t.Errorf("peer's jobs/chunks_computed = %d, want 1", n)
	}

	local := peerChunk(t, re, spec, "a")
	if _, err := re.Execute(ctx, spec, chunkOf(t, spec, local)); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("jobs/peer_local").Value(); n != 1 {
		t.Errorf("jobs/peer_local = %d, want 1", n)
	}
	st := re.Stats()
	if st.Name != "ring" || st.Chunks != 2 || st.Served != 1 || st.Errors != 0 {
		t.Errorf("ring stats = %+v, want chunks=2 served=1 errors=0", st)
	}
}

// TestRingExecutorFailover pins every peer-failure path the issue names:
// a 5xx response, a timeout, and a response carrying the wrong chunk key
// each fall back to local compute with the correct dataset and the
// fallback counters incremented — never an error, never a wrong result.
func TestRingExecutorFailover(t *testing.T) {
	spec := ringSpec()
	for _, tc := range []struct {
		name    string
		handler http.HandlerFunc
		timeout time.Duration
	}{
		{"peer-5xx", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}, 0},
		{"peer-timeout", func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(2 * time.Second)
		}, 50 * time.Millisecond},
		{"wrong-key", func(w http.ResponseWriter, r *http.Request) {
			// A well-formed dataset under the wrong key: a skewed peer
			// serving a different partition. Must be rejected, not stored.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			req, err := engine.UnmarshalChunkWire(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_, ds, err := ServeChunk(r.Context(), 0, req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			raw, err := ds.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set(cluster.ChunkKeyHeader, "bogus")
			w.Header().Set("Content-Type", "application/json")
			if _, err := w.Write(raw); err != nil {
				return
			}
		}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.handler)
			defer srv.Close()
			re, err := NewRingExecutor(&LocalExecutor{}, RingOptions{
				Self:    "a",
				Peers:   map[string]string{"b": srv.URL},
				Timeout: tc.timeout,
			})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.New(nil)
			idx := peerChunk(t, re, spec, "b")
			ds, err := re.Execute(obs.Into(context.Background(), reg), spec, chunkOf(t, spec, idx))
			if err != nil {
				t.Fatalf("fallback must absorb the peer failure, got %v", err)
			}
			got, err := ds.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(localJSON(t, spec, idx)) {
				t.Error("fallback dataset differs from local evaluation")
			}
			if n := reg.Counter("jobs/peer_fallback_local").Value(); n != 1 {
				t.Errorf("jobs/peer_fallback_local = %d, want 1", n)
			}
			if n := reg.Counter("jobs/peer_errors").Value(); n != 1 {
				t.Errorf("jobs/peer_errors = %d, want 1", n)
			}
			st := re.Stats()
			if st.Errors != 1 || st.Served != 0 {
				t.Errorf("ring stats = %+v, want errors=1 served=0", st)
			}
		})
	}
}

// TestRingExecutorValidation pins the constructor's rejection rules,
// mirroring cluster.NewPeerBackend.
func TestRingExecutorValidation(t *testing.T) {
	if _, err := NewRingExecutor(nil, RingOptions{Self: "a"}); !nwerr.IsInvalid(err) {
		t.Errorf("nil local: err = %v, want Invalid-class", err)
	}
	if _, err := NewRingExecutor(&LocalExecutor{}, RingOptions{}); !nwerr.IsInvalid(err) {
		t.Errorf("empty self: err = %v, want Invalid-class", err)
	}
	if _, err := NewRingExecutor(&LocalExecutor{}, RingOptions{Self: "a", Peers: map[string]string{"a": "http://x"}}); !nwerr.IsInvalid(err) {
		t.Errorf("self in peers: err = %v, want Invalid-class", err)
	}
	if _, err := NewRingExecutor(&LocalExecutor{}, RingOptions{Self: "a", Peers: map[string]string{"b": ""}}); !nwerr.IsInvalid(err) {
		t.Errorf("empty peer URL: err = %v, want Invalid-class", err)
	}
	re, err := NewRingExecutor(&LocalExecutor{}, RingOptions{Self: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.SetPeers(map[string]string{"a": "http://x"}); !nwerr.IsInvalid(err) {
		t.Errorf("SetPeers(self) = %v, want Invalid-class", err)
	}
}

// TestRingChurnDuringJob is the -race membership-churn test: SetPeers
// flips the ring repeatedly while a distributed job runs, and the job
// must still complete with output byte-identical to a single-node run —
// chunks in flight finish against the ring they routed on, later chunks
// route against the new one, and a shrunken ring only shifts work
// locally, never corrupts it.
func TestRingChurnDuringJob(t *testing.T) {
	spec := ringSpec()
	want := sweepJSON(t, spec)
	srvB, _ := chunkServer(t, "b")
	defer srvB.Close()
	re, err := NewRingExecutor(&LocalExecutor{}, RingOptions{
		Self:  "a",
		Peers: map[string]string{"b": srvB.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(NewMemoryStore(), Options{Executor: re, Node: "a"})
	defer r.Close()
	st, err := r.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		peers := map[string]string{"b": srvB.URL}
		for i := 0; i < 200; i++ {
			var set map[string]string
			if i%2 == 0 {
				set = nil // single-node ring: everything local
			} else {
				set = peers
			}
			if err := re.SetPeers(set); err != nil {
				t.Errorf("SetPeers: %v", err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	st, err = r.Wait(context.Background(), st.ID)
	<-churned
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}
	page, err := r.Results(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("churned distributed run differs from synchronous sweep output")
	}
}
