package jobs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/sweep"
)

// Executor evaluates one chunk of a job, mirroring the engine's Backend
// pattern one layer up: the Runner owns checkpointing, lifecycle and
// status — an Executor owns nothing but the computation of a chunk's
// dataset, so layers compose freely (local compute, bounded retries,
// ring routing) without any of them touching the store. That split is
// what keeps resume byte-identity trivial: whichever layer produced a
// chunk, the submitting Runner persists it into the same partition slot,
// and the chunk dataset itself is a pure function of (spec, index).
type Executor interface {
	// Execute evaluates the chunk of the spec and returns its dataset.
	// Implementations must be safe for concurrent use and must derive
	// the result only from (spec, chunk) — never from node identity.
	Execute(ctx context.Context, spec Spec, chunk Chunk) (*dataset.Dataset, error)
	// Stats reports the layer's lifetime counters.
	Stats() ExecutorStats
}

// Chunk is one unit of executor work: the index into the job's
// deterministic partition plus the grid points of that slice. Carrying
// the points keeps Execute free of re-derivation on the submitting node;
// a remote node re-derives them from the wire form instead.
type Chunk struct {
	// Index is the chunk's position in the par.Ranges partition.
	Index int
	// Points are the grid points of this chunk, in grid order.
	Points []sweep.Point
}

// ExecutorStats are the lifetime counters of one executor layer,
// mirroring engine.BackendStats. Chunks counts Execute calls; Served
// counts the calls the layer resolved through its own mechanism (local
// compute, a successful retry, a peer answer); Errors counts failures
// the layer observed — for the ring layer each error also produced a
// local fallback, so an error there is degraded locality, not a failed
// chunk.
type ExecutorStats struct {
	Name   string
	Chunks int64
	Served int64
	Errors int64
}

// execStats is the embedded atomic counter block shared by the executor
// layers.
type execStats struct {
	chunks atomic.Int64
	served atomic.Int64
	errors atomic.Int64
}

func (s *execStats) snapshot(name string) ExecutorStats {
	return ExecutorStats{
		Name:   name,
		Chunks: s.chunks.Load(),
		Served: s.served.Load(),
		Errors: s.errors.Load(),
	}
}

// LocalExecutor computes chunks in this process — the Runner's historic
// behavior extracted behind the Executor seam. Each chunk is internally
// parallel on the par pool; results are bit-identical at every worker
// count. It increments the jobs/chunks_computed counter of the context's
// registry, so in a fleet the counter tallies chunks at the node that
// actually computed them.
type LocalExecutor struct {
	// Workers bounds the per-chunk worker pool (<= 0 selects GOMAXPROCS).
	Workers int

	stats execStats
}

// Execute evaluates the chunk's points on the local par pool.
func (e *LocalExecutor) Execute(ctx context.Context, spec Spec, chunk Chunk) (*dataset.Dataset, error) {
	e.stats.chunks.Add(1)
	rows, err := sweep.EvalPoints(ctx, e.Workers, chunk.Points)
	if err != nil {
		e.stats.errors.Add(1)
		return nil, err
	}
	e.stats.served.Add(1)
	obs.From(ctx).Counter("jobs/chunks_computed").Add(1)
	return sweep.Dataset(rows), nil
}

// Stats reports the layer's lifetime counters.
func (e *LocalExecutor) Stats() ExecutorStats { return e.stats.snapshot("local") }

// Retry defaults.
const (
	// DefaultRetryAttempts is the total attempt bound of a RetryExecutor
	// (first try included).
	DefaultRetryAttempts = 3
	// DefaultRetryBackoff is the delay before the first retry; it doubles
	// per attempt.
	DefaultRetryBackoff = 50 * time.Millisecond
)

// RetryExecutor retries a failing inner executor with doubling backoff,
// but only for error classes a retry can plausibly cure: Internal (a
// flaky peer, a torn response) and Overload (a shedding node that asked
// us to come back). Invalid, NotFound and Canceled failures — and a done
// context — are surfaced immediately: retrying a request that cannot
// succeed is how fleets melt down. The backoff wait is driven by a
// timer, not the wall clock, so the deterministic-package invariant
// holds; retries surface through the jobs/retries counter and Stats.
type RetryExecutor struct {
	// Next is the wrapped executor (required).
	Next Executor
	// Attempts bounds total tries (<= 0 selects DefaultRetryAttempts).
	Attempts int
	// Backoff is the first retry delay, doubling per attempt (<= 0
	// selects DefaultRetryBackoff).
	Backoff time.Duration

	stats execStats
}

// Execute tries the inner executor up to Attempts times. Served counts
// chunks rescued by a retry (succeeded on a later attempt); first-try
// successes pass through uncounted, keeping the layer's stats a pure
// measure of its own contribution.
func (e *RetryExecutor) Execute(ctx context.Context, spec Spec, chunk Chunk) (*dataset.Dataset, error) {
	e.stats.chunks.Add(1)
	attempts := e.Attempts
	if attempts <= 0 {
		attempts = DefaultRetryAttempts
	}
	backoff := e.Backoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	var last error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			obs.From(ctx).Counter("jobs/retries").Add(1)
			if err := sleep(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		ds, err := e.Next.Execute(ctx, spec, chunk)
		if err == nil {
			if try > 0 {
				e.stats.served.Add(1)
			}
			return ds, nil
		}
		last = err
		e.stats.errors.Add(1)
		if !retryable(err) {
			break
		}
	}
	return nil, last
}

// Stats reports the layer's lifetime counters.
func (e *RetryExecutor) Stats() ExecutorStats { return e.stats.snapshot("retry") }

// retryable reports whether the error class can plausibly be cured by
// trying again.
func retryable(err error) bool {
	switch nwerr.ClassOf(err) {
	case nwerr.ClassInternal, nwerr.ClassOverload:
		return true
	}
	return false
}

// sleep waits for d or until ctx is done, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nwerr.Canceled(fmt.Errorf("jobs: retry backoff interrupted: %w", ctx.Err()))
	case <-t.C:
		return nil
	}
}

// ServeChunk is the serving side of the chunk protocol: it rebuilds the
// job spec from the wire form, re-derives the deterministic point
// partition exactly as the submitting runner did, evaluates the one
// requested chunk locally and returns the chunk's content-addressed key
// with the dataset. cmd/nwserve wires it into cluster.ChunkHandler; it
// lives here so the cluster layer never needs to import jobs.
func ServeChunk(ctx context.Context, workers int, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
	spec := Spec{Base: req.Config, Grid: req.Grid, Chunk: req.Chunk}.normalized()
	if err := spec.validate(); err != nil {
		return "", nil, err
	}
	points := spec.Grid.Points(spec.Base)
	if len(points) == 0 {
		return "", nil, nwerr.Invalidf("jobs: chunk request grid produced no valid design points")
	}
	ranges := par.Ranges(len(points), spec.Chunk)
	if req.Index < 0 || req.Index >= len(ranges) {
		return "", nil, nwerr.Invalidf("jobs: chunk index %d outside the %d-chunk partition", req.Index, len(ranges))
	}
	rg := ranges[req.Index]
	exec := LocalExecutor{Workers: workers}
	ds, err := exec.Execute(ctx, spec, Chunk{Index: req.Index, Points: points[rg.Lo:rg.Hi]})
	if err != nil {
		return "", nil, err
	}
	obs.From(ctx).Counter("jobs/peer_chunks_served").Add(1)
	return spec.ChunkKey(req.Index), ds, nil
}
