package jobs

import (
	"sort"
	"sync"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
)

// Store is the checkpoint persistence interface of the job layer,
// mirroring the Backend pattern of the engine: the Runner executes
// against any Store, and resume works across processes exactly when the
// store outlives them (FSStore does, MemoryStore does not — it exists
// for tests and for callers that only want asynchrony, not durability).
//
// All methods are safe for concurrent use. Absent ids and chunks are
// NotFound-class errors; a checkpoint miss is ordinary control flow in
// the Runner, which branches on nwerr.IsNotFound.
type Store interface {
	// PutSpec persists the spec under its id. Re-putting an existing id
	// is a no-op: specs are immutable and content-addressed, so the
	// first write is as good as any.
	PutSpec(id string, spec Spec) error
	// GetSpec loads a persisted spec.
	GetSpec(id string) (Spec, error)
	// PutChunk checkpoints one completed chunk dataset under (id, idx),
	// where idx indexes the deterministic partition of the job's points.
	PutChunk(id string, idx int, ds *dataset.Dataset) error
	// GetChunk loads one checkpointed chunk dataset. The returned
	// dataset is the caller's own copy.
	GetChunk(id string, idx int) (*dataset.Dataset, error)
	// Chunks returns the checkpointed chunk indices of a job in
	// ascending order (empty, not an error, for a job with a spec and no
	// chunks yet).
	Chunks(id string) ([]int, error)
	// Jobs lists the persisted job ids in sorted order.
	Jobs() ([]string, error)
	// Delete removes a job — spec, chunks and leases — from the store.
	// An unknown id is a NotFound-class error.
	Delete(id string) error
	// PutLease records that node is computing chunk idx of the job. A
	// lease is advisory liveness state, not identity: the runner writes
	// it before computing a chunk and deletes it after checkpointing, so
	// a lease that outlives its writer marks a chunk a dead node left
	// in flight — re-eligible for any resuming runner, never stuck.
	PutLease(id string, idx int, node string) error
	// DeleteLease removes the lease of chunk idx. Deleting an absent
	// lease is a no-op, not an error.
	DeleteLease(id string, idx int) error
	// Leases returns the live leases of a job as index → node (empty,
	// not an error, for a job with none). An unknown id is
	// NotFound-class.
	Leases(id string) (map[int]string, error)
}

// AgeStore is the optional Store extension job GC needs: the wall-clock
// time a job's state last changed. FSStore implements it from file
// modification times; MemoryStore deliberately does not — the job layer
// is a deterministic package that never reads the clock itself, so age
// only exists where the filesystem already records it, and GC's caller
// injects "now" (cmd/nwserve passes time.Now()).
type AgeStore interface {
	// ModTime returns the newest modification time among the job's
	// files. An unknown id is a NotFound-class error.
	ModTime(id string) (time.Time, error)
}

// MemoryStore is the in-process Store: checkpoints live exactly as long
// as the process, so it provides asynchrony and incremental results but
// not kill/restart durability.
type MemoryStore struct {
	mu     sync.Mutex
	specs  map[string]Spec
	chunks map[string]map[int]*dataset.Dataset
	leases map[string]map[int]string
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{
		specs:  make(map[string]Spec),
		chunks: make(map[string]map[int]*dataset.Dataset),
		leases: make(map[string]map[int]string),
	}
}

// PutSpec persists the spec; re-putting an existing id is a no-op.
func (m *MemoryStore) PutSpec(id string, spec Spec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		m.specs[id] = spec
	}
	return nil
}

// GetSpec loads a persisted spec.
func (m *MemoryStore) GetSpec(id string) (Spec, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	spec, ok := m.specs[id]
	if !ok {
		return Spec{}, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	return spec, nil
}

// PutChunk checkpoints one chunk. The dataset is cloned on the way in so
// later caller mutations never reach the store.
func (m *MemoryStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.chunks[id]
	if !ok {
		c = make(map[int]*dataset.Dataset)
		m.chunks[id] = c
	}
	c[idx] = ds.Clone()
	return nil
}

// GetChunk loads one checkpointed chunk as a private clone.
func (m *MemoryStore) GetChunk(id string, idx int) (*dataset.Dataset, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ds, ok := m.chunks[id][idx]
	if !ok {
		return nil, nwerr.NotFoundf("jobs: job %q has no chunk %d", id, idx)
	}
	return ds.Clone(), nil
}

// Chunks returns the checkpointed chunk indices in ascending order.
func (m *MemoryStore) Chunks(id string) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		return nil, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	idxs := make([]int, 0, len(m.chunks[id]))
	for idx := range m.chunks[id] {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// Jobs lists the persisted job ids in sorted order.
func (m *MemoryStore) Jobs() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.specs))
	for id := range m.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes the job's spec, chunks and leases.
func (m *MemoryStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		return nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	delete(m.specs, id)
	delete(m.chunks, id)
	delete(m.leases, id)
	return nil
}

// PutLease records the node computing chunk idx.
func (m *MemoryStore) PutLease(id string, idx int, node string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.leases[id]
	if !ok {
		l = make(map[int]string)
		m.leases[id] = l
	}
	l[idx] = node
	return nil
}

// DeleteLease removes the lease of chunk idx; absent leases are a no-op.
func (m *MemoryStore) DeleteLease(id string, idx int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.leases[id], idx)
	return nil
}

// Leases returns the live leases of the job as a private copy.
func (m *MemoryStore) Leases(id string) (map[int]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		return nil, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	out := make(map[int]string, len(m.leases[id]))
	for idx, node := range m.leases[id] {
		out[idx] = node
	}
	return out, nil
}
