package jobs

import (
	"sort"
	"sync"

	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
)

// Store is the checkpoint persistence interface of the job layer,
// mirroring the Backend pattern of the engine: the Runner executes
// against any Store, and resume works across processes exactly when the
// store outlives them (FSStore does, MemoryStore does not — it exists
// for tests and for callers that only want asynchrony, not durability).
//
// All methods are safe for concurrent use. Absent ids and chunks are
// NotFound-class errors; a checkpoint miss is ordinary control flow in
// the Runner, which branches on nwerr.IsNotFound.
type Store interface {
	// PutSpec persists the spec under its id. Re-putting an existing id
	// is a no-op: specs are immutable and content-addressed, so the
	// first write is as good as any.
	PutSpec(id string, spec Spec) error
	// GetSpec loads a persisted spec.
	GetSpec(id string) (Spec, error)
	// PutChunk checkpoints one completed chunk dataset under (id, idx),
	// where idx indexes the deterministic partition of the job's points.
	PutChunk(id string, idx int, ds *dataset.Dataset) error
	// GetChunk loads one checkpointed chunk dataset. The returned
	// dataset is the caller's own copy.
	GetChunk(id string, idx int) (*dataset.Dataset, error)
	// Chunks returns the checkpointed chunk indices of a job in
	// ascending order (empty, not an error, for a job with a spec and no
	// chunks yet).
	Chunks(id string) ([]int, error)
	// Jobs lists the persisted job ids in sorted order.
	Jobs() ([]string, error)
}

// MemoryStore is the in-process Store: checkpoints live exactly as long
// as the process, so it provides asynchrony and incremental results but
// not kill/restart durability.
type MemoryStore struct {
	mu     sync.Mutex
	specs  map[string]Spec
	chunks map[string]map[int]*dataset.Dataset
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{
		specs:  make(map[string]Spec),
		chunks: make(map[string]map[int]*dataset.Dataset),
	}
}

// PutSpec persists the spec; re-putting an existing id is a no-op.
func (m *MemoryStore) PutSpec(id string, spec Spec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		m.specs[id] = spec
	}
	return nil
}

// GetSpec loads a persisted spec.
func (m *MemoryStore) GetSpec(id string) (Spec, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	spec, ok := m.specs[id]
	if !ok {
		return Spec{}, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	return spec, nil
}

// PutChunk checkpoints one chunk. The dataset is cloned on the way in so
// later caller mutations never reach the store.
func (m *MemoryStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.chunks[id]
	if !ok {
		c = make(map[int]*dataset.Dataset)
		m.chunks[id] = c
	}
	c[idx] = ds.Clone()
	return nil
}

// GetChunk loads one checkpointed chunk as a private clone.
func (m *MemoryStore) GetChunk(id string, idx int) (*dataset.Dataset, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ds, ok := m.chunks[id][idx]
	if !ok {
		return nil, nwerr.NotFoundf("jobs: job %q has no chunk %d", id, idx)
	}
	return ds.Clone(), nil
}

// Chunks returns the checkpointed chunk indices in ascending order.
func (m *MemoryStore) Chunks(id string) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.specs[id]; !ok {
		return nil, nwerr.NotFoundf("jobs: unknown job %q", id)
	}
	idxs := make([]int, 0, len(m.chunks[id]))
	for idx := range m.chunks[id] {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// Jobs lists the persisted job ids in sorted order.
func (m *MemoryStore) Jobs() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.specs))
	for id := range m.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}
