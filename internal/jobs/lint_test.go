package jobs_test

import (
	"testing"

	"nwdec/internal/lint"
)

// TestJobsLintClean runs the full nwlint analyzer suite over the jobs
// package and asserts its registrations: jobs is a goroutine package
// (each submitted job runs on its own goroutine under the runner's
// WaitGroup), a context-entry package (Submit/Resume/Wait honor
// cancellation), and a deterministic package — the runner reads time
// only through the injected obs clock, so checkpoint contents and
// assembled results stay bit-reproducible.
func TestJobsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package from source")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	path := loader.Module + "/internal/jobs"
	if !cfg.GoroutineAllowed(path) {
		t.Error("internal/jobs is not registered as a goroutine package")
	}
	if !cfg.CtxEntry(path) {
		t.Error("internal/jobs is not registered as a context-entry package")
	}
	if !cfg.Deterministic(path) {
		t.Error("internal/jobs is not registered as a deterministic package")
	}
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.All(), cfg) {
		t.Errorf("%s", d)
	}
}
