package jobs

import (
	"context"
	"runtime"
	"testing"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
)

// gateStore blocks PutChunk after a fixed number of checkpoints until
// released, pinning a job mid-chunk so cancellation can land at a
// deterministic point.
type gateStore struct {
	Store
	allowed int
	puts    int
	reached chan struct{}
	release chan struct{}
}

func (g *gateStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	if g.puts >= g.allowed {
		select {
		case <-g.reached:
		default:
			close(g.reached)
		}
		<-g.release
	}
	g.puts++
	return g.Store.PutChunk(id, idx, ds)
}

// TestCancelMidChunkLeavesResumableStore pins the cancellation contract
// of the runner: cancel lands while a chunk is in flight, the job
// reaches StateCanceled, no worker goroutines leak, and the store holds
// exactly the completed prefix — from which a fresh runner finishes the
// job with those chunks resumed, not recomputed.
func TestCancelMidChunkLeavesResumableStore(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := testSpec()
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	const survived = 2
	gate := &gateStore{
		Store:   fs,
		allowed: survived,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := NewRunner(gate, Options{})
	st, err := r.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// Wait until the job is mid-chunk (blocked in PutChunk of chunk 2),
	// then cancel and release the gate: the persist completes, and the
	// chunk loop must observe cancellation before starting chunk 3.
	select {
	case <-gate.reached:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached the gated chunk")
	}
	if err := r.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(gate.release)

	st, err = r.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st.Error == "" {
		t.Error("canceled job carries no error message")
	}
	r.Close()

	// No leaked workers after Close.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}

	// The gated chunk's persist completed before cancellation was
	// observed, so the store holds survived+1 chunks — still a
	// contiguous, resumable prefix.
	idxs, err := fs.Chunks(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 || len(idxs) >= st.Chunks {
		t.Fatalf("store holds %d of %d chunks after cancel", len(idxs), st.Chunks)
	}
	stored := len(idxs)

	r2 := NewRunner(fs, Options{})
	defer r2.Close()
	st, err = r2.Resume(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r2.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("resumed state = %s (%s), want complete", st.State, st.Error)
	}
	if st.Resumed != stored {
		t.Errorf("resumed %d chunks, want %d served from checkpoints", st.Resumed, stored)
	}
}

// TestCloseCancelsJobs pins Runner.Close: it stops in-flight jobs, a
// closed runner refuses new submissions with a Canceled-class error, and
// Wait on the stopped job returns its terminal status.
func TestCloseCancelsJobs(t *testing.T) {
	spec := testSpec()
	gate := &gateStore{
		Store:   NewMemoryStore(),
		allowed: 1,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := NewRunner(gate, Options{})
	st, err := r.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.reached:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached the gated chunk")
	}
	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	// Close cancels the runner context before blocking on the job's
	// goroutine; hold the gate shut until the cancellation is observable
	// (a closed runner refuses submissions) so the chunk loop cannot race
	// to completion after release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := r.Submit(context.Background(), spec); nwerr.IsCanceled(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runner context never canceled after Close")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after release")
	}
	got, err := r.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Errorf("state after Close = %s, want canceled", got.State)
	}
	if _, err := r.Submit(context.Background(), spec); !nwerr.IsCanceled(err) {
		t.Errorf("Submit on closed runner = %v, want Canceled-class", err)
	}
}

// TestWaitHonorsContext pins Wait's own cancellation: a caller deadline
// abandons the wait with a Canceled-class error while the job itself
// keeps running.
func TestWaitHonorsContext(t *testing.T) {
	gate := &gateStore{
		Store:   NewMemoryStore(),
		allowed: 0,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := NewRunner(gate, Options{})
	st, err := r.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	wcancel()
	if _, err := r.Wait(wctx, st.ID); !nwerr.IsCanceled(err) {
		t.Errorf("Wait(canceled ctx) = %v, want Canceled-class", err)
	}
	close(gate.release)
	if _, err := r.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	r.Close()
}
