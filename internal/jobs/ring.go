package jobs

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"nwdec/internal/cluster"
	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// RingExecutor routes each chunk to its owning node on the cluster's
// consistent-hash ring and computes locally when this node is the owner
// — the job-layer analogue of cluster.PeerBackend. The routing key is
// Spec.ChunkKey (job id + chunk index, the same fingerprint chain as
// every other content address; Workers excluded), so every node agrees
// on each chunk's home. Any peer failure — connection, timeout, non-200,
// wrong-key response, undecodable body — falls back to computing the
// chunk locally, exactly like the request protocol: a dead node degrades
// the fleet to slower locality, never to a failed job. The submitting
// Runner still owns checkpointing, so which node computed a chunk never
// affects the persisted bytes.
//
// SetPeers rebuilds the membership at runtime (safe during running
// jobs): chunks already in flight finish against the ring they routed
// on; subsequent chunks route against the new one.
type RingExecutor struct {
	local   Executor
	self    string
	client  *http.Client
	timeout time.Duration

	mu    sync.RWMutex
	ring  *cluster.Ring
	peers map[string]string

	stats execStats
}

// RingOptions configures a RingExecutor.
type RingOptions struct {
	// Self is this node's ring identity. Chunks the ring assigns to Self
	// are computed locally.
	Self string
	// Peers maps every *other* node's ID to its base URL. Self must not
	// appear as a key.
	Peers map[string]string
	// VirtualNodes is the ring multiplicity (0 = cluster default).
	VirtualNodes int
	// Timeout bounds one peer chunk fetch (0 = cluster.DefaultPeerTimeout).
	Timeout time.Duration
	// Client issues the peer requests (nil = a private default client).
	Client *http.Client
}

// NewRingExecutor builds the routing layer over the local executor
// (normally a LocalExecutor; any Executor works). The ring membership is
// Self plus every key of Peers.
func NewRingExecutor(local Executor, opts RingOptions) (*RingExecutor, error) {
	if local == nil {
		return nil, nwerr.Invalidf("jobs: ring executor needs a local executor to fall back on")
	}
	if opts.Self == "" {
		return nil, nwerr.Invalidf("jobs: ring executor needs a non-empty node id")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = cluster.DefaultPeerTimeout
	}
	e := &RingExecutor{
		local:   local,
		self:    opts.Self,
		client:  client,
		timeout: timeout,
	}
	if err := e.setPeers(opts.Peers, opts.VirtualNodes); err != nil {
		return nil, err
	}
	return e, nil
}

// SetPeers replaces the fleet membership: the ring is rebuilt over Self
// plus every key of peers, atomically with respect to concurrent
// Execute calls. An empty map is valid and routes every chunk locally.
func (e *RingExecutor) SetPeers(peers map[string]string) error {
	return e.setPeers(peers, 0)
}

func (e *RingExecutor) setPeers(peers map[string]string, vnodes int) error {
	if _, ok := peers[e.self]; ok {
		return nwerr.Invalidf("jobs: peer set must not contain this node %q", e.self)
	}
	nodes := make([]string, 0, len(peers)+1)
	nodes = append(nodes, e.self)
	bases := make(map[string]string, len(peers))
	for id, base := range peers {
		if base == "" {
			return nwerr.Invalidf("jobs: peer %q has an empty URL", id)
		}
		nodes = append(nodes, id)
		bases[id] = strings.TrimSuffix(base, "/")
	}
	// Ring placement depends only on the membership set, but keep the
	// slice deterministic anyway (this is a deterministic package).
	sort.Strings(nodes)
	ring, err := cluster.NewRing(nodes, vnodes)
	if err != nil {
		return nwerr.Invalid(err)
	}
	e.mu.Lock()
	e.ring = ring
	e.peers = bases
	e.mu.Unlock()
	return nil
}

// Ring exposes the executor's current ring, for ownership introspection.
func (e *RingExecutor) Ring() *cluster.Ring {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ring
}

// Execute routes the chunk: local if this node owns its key (or the spec
// cannot cross the wire), otherwise fetched from the owner with fallback
// to local compute on any peer failure.
func (e *RingExecutor) Execute(ctx context.Context, spec Spec, chunk Chunk) (*dataset.Dataset, error) {
	e.stats.chunks.Add(1)
	if spec.Base.Model != nil {
		return e.local.Execute(ctx, spec, chunk)
	}
	key := spec.ChunkKey(chunk.Index)
	e.mu.RLock()
	owner := e.ring.Owner(key)
	base, ok := e.peers[owner]
	e.mu.RUnlock()
	if owner == "" || owner == e.self || !ok {
		obs.From(ctx).Counter("jobs/peer_local").Add(1)
		return e.local.Execute(ctx, spec, chunk)
	}
	ds, err := e.fetch(ctx, base, owner, spec, chunk.Index, key)
	if err != nil {
		e.stats.errors.Add(1)
		reg := obs.From(ctx)
		reg.Counter("jobs/peer_errors").Add(1)
		reg.Counter("jobs/peer_fallback_local").Add(1)
		return e.local.Execute(ctx, spec, chunk)
	}
	e.stats.served.Add(1)
	obs.From(ctx).Counter("jobs/peer_served").Add(1)
	return ds, nil
}

// Stats reports the layer's lifetime counters. Served counts chunks a
// peer computed; Errors counts peer failures, each of which also
// produced a local fallback.
func (e *RingExecutor) Stats() ExecutorStats { return e.stats.snapshot("ring") }

// fetch asks the owning node to evaluate the chunk. The owner re-derives
// the partition from the wire form, so this side sends only identity
// fields plus the index; the response's key header must echo the routing
// key — a mismatch means the peer evaluated a different partition (a
// version or configuration skew) and the response is rejected rather
// than checkpointed. Like PeerBackend.fetch, the fetch is bounded by the
// per-peer timeout but stays on the caller's goroutine: the hedge
// against a dead peer is the local fallback in Execute.
func (e *RingExecutor) fetch(ctx context.Context, base, owner string, spec Spec, idx int, key string) (ds *dataset.Dataset, err error) {
	body, err := spec.chunkWire(idx).MarshalWire()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, e.timeout)
	defer cancel()
	span := obs.From(ctx).StartSpan("jobs/peer_fetch")
	defer span.End()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+cluster.ChunkPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := e.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := hresp.Body.Close(); err == nil && cerr != nil {
			err, ds = cerr, nil
		}
	}()
	if hresp.StatusCode != http.StatusOK {
		// Drain a little for connection reuse; the text is diagnostic only.
		msg, rerr := io.ReadAll(io.LimitReader(hresp.Body, 512))
		if rerr != nil {
			msg = []byte("(unreadable body: " + rerr.Error() + ")")
		}
		return nil, nwerr.Internalf("jobs: peer %s: status %d: %s", owner, hresp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if got := hresp.Header.Get(cluster.ChunkKeyHeader); got != key {
		return nil, nwerr.Internalf("jobs: peer %s answered chunk key %q, want %q", owner, got, key)
	}
	ds, err = dataset.ParseJSON(hresp.Body)
	if err != nil {
		return nil, err
	}
	return ds, nil
}
