package jobs

import (
	"context"
	"testing"
	"time"

	"nwdec/internal/code"
	"nwdec/internal/obs"
	"nwdec/internal/sweep"
)

// fleetSpec is a 24-chunk job (one point per chunk) — enough keys that a
// three-node ring deterministically lands several chunks on every node.
func fleetSpec() Spec {
	return Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray, code.TypeHot},
			Lengths: []int{4, 6},
			SigmaTs: []float64{0.04, 0.045, 0.05, 0.055, 0.06, 0.065},
		},
		Chunk: 1,
	}
}

// TestFleetDistributesChunks is the acceptance test of the distributed
// executor: a three-node in-process fleet (submitting node a plus chunk
// servers b and c) completes a job with every node computing at least one
// chunk, the per-node compute counters accounting for every chunk exactly
// once, and the assembled dataset byte-identical to a single-node run.
func TestFleetDistributesChunks(t *testing.T) {
	spec := fleetSpec()
	want := sweepJSON(t, spec)
	srvB, regB := chunkServer(t, "b")
	defer srvB.Close()
	srvC, regC := chunkServer(t, "c")
	defer srvC.Close()

	ring, err := NewRingExecutor(&LocalExecutor{}, RingOptions{
		Self:  "a",
		Peers: map[string]string{"b": srvB.URL, "c": srvC.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(NewMemoryStore(), Options{
		Executor: &RetryExecutor{Next: ring, Backoff: time.Millisecond},
		Node:     "a",
	})
	defer r.Close()

	regA := obs.New(nil)
	ctx := obs.Into(context.Background(), regA)
	st, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}

	a := regA.Counter("jobs/chunks_computed").Value()
	b := regB.Counter("jobs/chunks_computed").Value()
	c := regC.Counter("jobs/chunks_computed").Value()
	if a == 0 || b == 0 || c == 0 {
		t.Errorf("chunks computed per node = a:%d b:%d c:%d, want every node > 0", a, b, c)
	}
	if total := a + b + c; total != int64(st.Chunks) {
		t.Errorf("fleet computed %d chunks total, want exactly %d (each chunk computed once)", total, st.Chunks)
	}
	if served := regA.Counter("jobs/peer_served").Value(); served != b+c {
		t.Errorf("jobs/peer_served = %d, want %d (sum of peer computes)", served, b+c)
	}
	if n := regA.Counter("jobs/peer_fallback_local").Value(); n != 0 {
		t.Errorf("jobs/peer_fallback_local = %d, want 0 on a healthy fleet", n)
	}

	page, err := r.Results(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("distributed dataset differs from single-node sweep output")
	}
}

// TestFleetDeadNodeFailsOver kills one chunk server mid-job and requires
// the job to complete anyway: chunks owned by the dead node are
// re-executed on the submitting node via the local fallback, and the
// assembled dataset is still byte-identical to a single-node run.
func TestFleetDeadNodeFailsOver(t *testing.T) {
	spec := fleetSpec()
	want := sweepJSON(t, spec)
	srvB, regB := chunkServer(t, "b")
	defer srvB.Close()
	srvC, regC := chunkServer(t, "c")
	defer srvC.Close()

	ring, err := NewRingExecutor(&LocalExecutor{}, RingOptions{
		Self:  "a",
		Peers: map[string]string{"b": srvB.URL, "c": srvC.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(NewMemoryStore(), Options{
		Executor: &RetryExecutor{Next: ring, Backoff: time.Millisecond},
		Node:     "a",
	})
	defer r.Close()

	regA := obs.New(nil)
	ctx := obs.Into(context.Background(), regA)
	st, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill node c as soon as it has served one chunk: in-flight requests
	// are severed, and every later chunk it owns must fail over.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for regC.Counter("jobs/chunks_computed").Value() == 0 {
			select {
			case <-r.ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		srvC.CloseClientConnections()
		srvC.Close()
	}()

	st, err = r.Wait(ctx, st.ID)
	<-killed
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete despite the dead node", st.State, st.Error)
	}
	if n := regA.Counter("jobs/peer_fallback_local").Value(); n == 0 {
		t.Error("jobs/peer_fallback_local = 0, want > 0 (dead node's chunks re-executed locally)")
	}
	a := regA.Counter("jobs/chunks_computed").Value()
	b := regB.Counter("jobs/chunks_computed").Value()
	c := regC.Counter("jobs/chunks_computed").Value()
	if a+b+c < int64(st.Chunks) {
		t.Errorf("fleet computed %d chunks across nodes, want at least %d", a+b+c, st.Chunks)
	}

	page, err := r.Results(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("failed-over dataset differs from single-node sweep output")
	}
}
