package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/physics"
	"nwdec/internal/sweep"
)

// testSpec returns a small multi-chunk job: 2 code families × 2 lengths
// × 3 sigmas = 12 valid points, chunk 2 → 6 chunks.
func testSpec() Spec {
	return Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray, code.TypeHot},
			Lengths: []int{4, 6},
			SigmaTs: []float64{0.04, 0.05, 0.06},
		},
		Chunk: 2,
	}
}

// sweepJSON renders the synchronous sweep dataset the job must reproduce.
func sweepJSON(t *testing.T, spec Spec) []byte {
	t.Helper()
	rows, err := sweep.RunWorkers(context.Background(), spec.Base, spec.Grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sweep.Dataset(rows).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runToCompletion submits spec on a fresh runner over store and returns
// the terminal status.
func runToCompletion(t *testing.T, ctx context.Context, store Store, spec Spec) Status {
	t.Helper()
	r := NewRunner(store, Options{})
	defer r.Close()
	st, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestJobMatchesSweep is the determinism golden of the job layer: a job's
// assembled results must serialize byte-identically to the dataset the
// synchronous sweep produces for the same config and grid.
func TestJobMatchesSweep(t *testing.T) {
	spec := testSpec()
	want := sweepJSON(t, spec)

	store := NewMemoryStore()
	r := NewRunner(store, Options{})
	defer r.Close()
	st, err := r.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}
	if st.Done != st.Chunks || st.Computed != st.Chunks || st.Resumed != 0 {
		t.Errorf("fresh run: done=%d computed=%d resumed=%d of %d chunks",
			st.Done, st.Computed, st.Resumed, st.Chunks)
	}
	page, err := r.Results(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Count != st.Chunks {
		t.Errorf("page.Count = %d, want %d", page.Count, st.Chunks)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("job dataset differs from synchronous sweep:\njob:   %.200s\nsweep: %.200s", got, want)
	}
}

// TestResultsPaging pins the incremental-read contract: pages concatenate
// to the full dataset, the empty window past the prefix is a nil dataset,
// and a negative offset is Invalid-class.
func TestResultsPaging(t *testing.T) {
	spec := testSpec()
	store := NewMemoryStore()
	st := runToCompletion(t, context.Background(), store, spec)
	r := NewRunner(store, Options{})
	defer r.Close()

	var rows int
	for from := 0; from < st.Chunks; from += 2 {
		page, err := r.Results(st.ID, from, 2)
		if err != nil {
			t.Fatal(err)
		}
		if page.From != from || page.Count == 0 || page.Dataset == nil {
			t.Fatalf("page(%d, 2) = from %d count %d", from, page.From, page.Count)
		}
		rows += len(page.Dataset.Rows)
	}
	if rows != st.Points {
		t.Errorf("paged rows = %d, want %d", rows, st.Points)
	}
	page, err := r.Results(st.ID, st.Chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Count != 0 || page.Dataset != nil {
		t.Errorf("past-the-end page has count %d", page.Count)
	}
	if _, err := r.Results(st.ID, -1, 0); !nwerr.IsInvalid(err) {
		t.Errorf("negative offset: err = %v, want Invalid-class", err)
	}
}

// failStore injects a PutChunk failure after a fixed number of
// successful checkpoints, simulating a process dying mid-job with a
// partial (but well-formed) store behind it.
type failStore struct {
	Store
	allowed int
	puts    int
}

func (f *failStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	if f.puts >= f.allowed {
		return fmt.Errorf("failstore: injected failure at chunk %d", idx)
	}
	f.puts++
	return f.Store.PutChunk(id, idx, ds)
}

// TestResumeBitIdentical is the kill/resume golden: a job that dies
// mid-run (partial checkpoint prefix in a durable store) and is resumed
// by a fresh runner must finish with the already-checkpointed chunks
// served from the store — not recomputed — and its final dataset must be
// byte-identical to both an uninterrupted run's and the synchronous
// sweep's.
func TestResumeBitIdentical(t *testing.T) {
	spec := testSpec()
	want := sweepJSON(t, spec)
	ctx := context.Background()

	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// First process: dies after 2 checkpointed chunks.
	const survived = 2
	broken := NewRunner(&failStore{Store: fs, allowed: survived}, Options{})
	st, err := broken.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	st, err = broken.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	broken.Close()
	if st.State != StateFailed {
		t.Fatalf("interrupted run: state = %s, want failed", st.State)
	}

	// The store now reports a suspended job with the surviving prefix.
	probe := NewRunner(fs, Options{})
	st, err = probe.Status(id)
	probe.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSuspended || st.Done != survived {
		t.Fatalf("store status = %s done=%d, want suspended done=%d", st.State, st.Done, survived)
	}

	// Second process: resumes by id alone and finishes.
	reg := obs.New(nil)
	r2 := NewRunner(fs, Options{})
	defer r2.Close()
	st, err = r2.Resume(obs.Into(ctx, reg), id)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r2.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("resumed run: state = %s (%s), want complete", st.State, st.Error)
	}
	if st.Resumed != survived || st.Computed != st.Chunks-survived {
		t.Errorf("resumed run: computed=%d resumed=%d, want %d/%d",
			st.Computed, st.Resumed, st.Chunks-survived, survived)
	}
	if got := reg.Counter("jobs/chunks_resumed").Value(); got != survived {
		t.Errorf("jobs/chunks_resumed = %d, want %d", got, survived)
	}

	page, err := r2.Results(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("resumed dataset differs from uninterrupted sweep output")
	}

	// Third process: the job is complete, so resume serves every chunk
	// from checkpoints and computes nothing — the zero-recompute
	// property the CI smoke asserts via these same counters.
	reg3 := obs.New(nil)
	r3 := NewRunner(fs, Options{})
	defer r3.Close()
	st, err = r3.Resume(obs.Into(ctx, reg3), id)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r3.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete || st.Computed != 0 || st.Resumed != st.Chunks {
		t.Errorf("re-resume: state=%s computed=%d resumed=%d, want complete 0/%d",
			st.State, st.Computed, st.Resumed, st.Chunks)
	}
	if got := reg3.Counter("jobs/chunks_computed").Value(); got != 0 {
		t.Errorf("jobs/chunks_computed = %d on a complete job, want 0", got)
	}
}

// TestSubmitIdempotent pins content-addressed submission: the same spec
// yields the same id, and resubmitting joins the existing job instead of
// starting another.
func TestSubmitIdempotent(t *testing.T) {
	spec := testSpec()
	if spec.ID() != testSpec().ID() {
		t.Fatal("equal specs derive different ids")
	}
	other := testSpec()
	other.Chunk = 3
	if spec.ID() == other.ID() {
		t.Error("different chunk sizes must derive different ids: the partition is job identity")
	}

	reg := obs.New(nil)
	ctx := obs.Into(context.Background(), reg)
	r := NewRunner(NewMemoryStore(), Options{})
	defer r.Close()
	st1, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Errorf("resubmit id %s != %s", st2.ID, st1.ID)
	}
	if got := reg.Counter("jobs/submitted").Value(); got != 1 {
		t.Errorf("jobs/submitted = %d after resubmit, want 1", got)
	}
	if _, err := r.Wait(ctx, st1.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobErrorClasses pins the nwerr classification of the job API:
// unknown ids are NotFound, finished jobs reject Cancel with
// ErrAlreadyComplete (Invalid), and unpersistable specs are Invalid.
func TestJobErrorClasses(t *testing.T) {
	ctx := context.Background()
	r := NewRunner(NewMemoryStore(), Options{})
	defer r.Close()

	if _, err := r.Status("j-nope"); !nwerr.IsNotFound(err) {
		t.Errorf("Status(unknown) = %v, want NotFound-class", err)
	}
	if _, err := r.Resume(ctx, "j-nope"); !nwerr.IsNotFound(err) {
		t.Errorf("Resume(unknown) = %v, want NotFound-class", err)
	}
	if err := r.Cancel("j-nope"); !nwerr.IsNotFound(err) {
		t.Errorf("Cancel(unknown) = %v, want NotFound-class", err)
	}
	if _, err := r.Results("j-nope", 0, 0); !nwerr.IsNotFound(err) {
		t.Errorf("Results(unknown) = %v, want NotFound-class", err)
	}

	st, err := r.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	err = r.Cancel(st.ID)
	if !errors.Is(err, ErrAlreadyComplete) || !nwerr.IsInvalid(err) {
		t.Errorf("Cancel(complete) = %v, want ErrAlreadyComplete (Invalid-class)", err)
	}

	custom := testSpec()
	custom.Base.Model = physics.DefaultPhysicalModel()
	if _, err := r.Submit(ctx, custom); !nwerr.IsInvalid(err) {
		t.Errorf("Submit(custom model) = %v, want Invalid-class", err)
	}
	if _, err := r.Submit(ctx, Spec{Grid: sweep.Grid{Lengths: []int{3}, Types: []code.Type{code.TypeGray}}}); !nwerr.IsInvalid(err) {
		t.Error("Submit(empty grid) must be Invalid-class")
	}
}

// TestSpecRoundTrip pins the persistence identity chain: a spec loaded
// back from the filesystem store derives the same id and key it was
// stored under, which is what lets a fresh process resume by id alone.
func TestSpecRoundTrip(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	spec.Base = core.Config{CodeLength: 4, SigmaT: 0.045}
	id := spec.ID()
	if err := fs.PutSpec(id, spec.normalized()); err != nil {
		t.Fatal(err)
	}
	got, err := fs.GetSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != id {
		t.Errorf("round-tripped spec derives id %s, want %s", got.ID(), id)
	}
	if got.Key() != spec.Key() {
		t.Errorf("round-tripped spec derives key %s, want %s", got.Key(), spec.Key())
	}
	ids, err := fs.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("Jobs() = %v, want [%s]", ids, id)
	}
}

// TestRangesPartitionStability pins the checkpoint addressing scheme: the
// chunk partition of a spec is a pure function of (points, chunk), so the
// indices a dead process checkpointed under mean the same thing to the
// process that resumes.
func TestRangesPartitionStability(t *testing.T) {
	spec := testSpec().normalized()
	points := spec.Grid.Points(spec.Base)
	a := par.Ranges(len(points), spec.Chunk)
	b := par.Ranges(len(points), spec.Chunk)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("partition lengths differ: %d vs %d", len(a), len(b))
	}
	covered := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Lo != covered {
			t.Fatalf("chunk %d starts at %d, want %d", i, a[i].Lo, covered)
		}
		covered = a[i].Hi
	}
	if covered != len(points) {
		t.Fatalf("partition covers %d of %d points", covered, len(points))
	}
}
