package jobs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nwdec/internal/code"
	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/sweep"
)

// gcSpec returns a small distinct job spec per sigma, so GC tests can
// populate a store with several jobs with different ids.
func gcSpec(sigma float64) Spec {
	return Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray},
			Lengths: []int{4},
			SigmaTs: []float64{sigma},
		},
		Chunk: 1,
	}
}

// touchJob backdates every file of a job's checkpoint directory, which
// is what FSStore.ModTime reads.
func touchJob(t *testing.T, root, id string, mt time.Time) {
	t.Helper()
	dir := filepath.Join(root, id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Chtimes(filepath.Join(dir, e.Name()), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeleteJob pins the Delete contract: unknown ids are NotFound, a
// running job is refused Invalid-class until canceled, and a terminal
// job disappears from both the runner and the store.
func TestDeleteJob(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateStore{
		Store:   fs,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := NewRunner(gate, Options{})
	defer r.Close()

	if err := r.Delete("j-nope"); !nwerr.IsNotFound(err) {
		t.Errorf("Delete(unknown) = %v, want NotFound-class", err)
	}

	st, err := r.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.reached:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached the gated chunk")
	}
	if err := r.Delete(st.ID); !nwerr.IsInvalid(err) {
		t.Errorf("Delete(running) = %v, want Invalid-class", err)
	}
	close(gate.release)
	if st, err = r.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}

	if err := r.Delete(st.ID); err != nil {
		t.Fatalf("Delete(terminal) = %v", err)
	}
	if _, err := r.Status(st.ID); !nwerr.IsNotFound(err) {
		t.Errorf("Status after delete = %v, want NotFound-class", err)
	}
	if _, err := fs.GetSpec(st.ID); !nwerr.IsNotFound(err) {
		t.Errorf("store GetSpec after delete = %v, want NotFound-class", err)
	}
	if err := r.Delete(st.ID); !nwerr.IsNotFound(err) {
		t.Errorf("second Delete = %v, want NotFound-class", err)
	}
}

// TestGCNeedsAges pins that GC refuses a store without modification
// times instead of silently collecting nothing.
func TestGCNeedsAges(t *testing.T) {
	r := NewRunner(NewMemoryStore(), Options{})
	defer r.Close()
	if _, err := r.GC(context.Background(), time.Unix(0, 0), time.Hour, 0); !nwerr.IsInvalid(err) {
		t.Errorf("GC over MemoryStore = %v, want Invalid-class", err)
	}
}

// TestGCCollectsOldTerminal pins the age and keep rules: jobs idle
// longer than maxAge are collected oldest-first, keep spares the most
// recently touched regardless of age, and the collected count reaches
// the metrics registry.
func TestGCCollectsOldTerminal(t *testing.T) {
	root := t.TempDir()
	fs, err := NewFSStore(root)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	ages := []time.Duration{3 * time.Hour, 2 * time.Hour, 10 * time.Minute}
	ids := make([]string, len(ages))
	for i, age := range ages {
		st := runToCompletion(t, context.Background(), fs, gcSpec(0.04+float64(i)/100))
		if st.State != StateComplete {
			t.Fatalf("seed job %d: state %s (%s)", i, st.State, st.Error)
		}
		ids[i] = st.ID
		touchJob(t, root, st.ID, now.Add(-age))
	}

	// keep=2 spares the two newest even though ids[1] is past maxAge.
	r := NewRunner(fs, Options{})
	defer r.Close()
	removed, err := r.GC(context.Background(), now, time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != ids[0] {
		t.Fatalf("GC(keep=2) removed %v, want exactly the oldest %s", removed, ids[0])
	}

	// keep=0 now collects ids[1]; ids[2] is younger than maxAge and stays.
	reg := obs.New(nil)
	removed, err = r.GC(obs.Into(context.Background(), reg), now, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != ids[1] {
		t.Fatalf("GC(keep=0) removed %v, want exactly %s", removed, ids[1])
	}
	if n := reg.Counter("jobs/gc_collected").Value(); n != 1 {
		t.Errorf("jobs/gc_collected = %d, want 1", n)
	}
	if _, err := fs.GetSpec(ids[2]); err != nil {
		t.Errorf("young job %s collected: %v", ids[2], err)
	}
}

// ageGateStore is gateStore over a concrete *FSStore, so the ModTime
// extension stays visible to GC through the wrapper.
type ageGateStore struct {
	*FSStore
	reached chan struct{}
	release chan struct{}
	puts    int
}

func (g *ageGateStore) PutChunk(id string, idx int, ds *dataset.Dataset) error {
	if g.puts >= 1 {
		select {
		case <-g.reached:
		default:
			close(g.reached)
		}
		<-g.release
	}
	g.puts++
	return g.FSStore.PutChunk(id, idx, ds)
}

// TestGCNeverCollectsRunning pins the safety rule the issue demands: a
// job still running is never collected, no matter how old its files
// look — and the same job is collectable once terminal.
func TestGCNeverCollectsRunning(t *testing.T) {
	root := t.TempDir()
	fs, err := NewFSStore(root)
	if err != nil {
		t.Fatal(err)
	}
	gate := &ageGateStore{
		FSStore: fs,
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	r := NewRunner(gate, Options{})
	defer r.Close()
	st, err := r.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.reached:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached the gated chunk")
	}

	now := time.Now()
	touchJob(t, root, st.ID, now.Add(-24*time.Hour))
	removed, err := r.GC(context.Background(), now, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("GC collected %v while the job was running", removed)
	}

	close(gate.release)
	if st, err = r.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}
	touchJob(t, root, st.ID, now.Add(-24*time.Hour))
	removed, err = r.GC(context.Background(), now, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != st.ID {
		t.Fatalf("GC after completion removed %v, want %s", removed, st.ID)
	}
}
