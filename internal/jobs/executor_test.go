package jobs

import (
	"context"
	"testing"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/sweep"
)

// chunkOf derives chunk idx of the spec the way the runner does.
func chunkOf(t *testing.T, spec Spec, idx int) Chunk {
	t.Helper()
	spec = spec.normalized()
	points := spec.Grid.Points(spec.Base)
	ranges := par.Ranges(len(points), spec.Chunk)
	if idx < 0 || idx >= len(ranges) {
		t.Fatalf("chunk %d outside %d-chunk partition", idx, len(ranges))
	}
	rg := ranges[idx]
	return Chunk{Index: idx, Points: points[rg.Lo:rg.Hi]}
}

// localJSON evaluates one chunk through a fresh LocalExecutor and
// returns its dataset JSON — the reference every other layer must match.
func localJSON(t *testing.T, spec Spec, idx int) []byte {
	t.Helper()
	exec := &LocalExecutor{}
	ds, err := exec.Execute(context.Background(), spec, chunkOf(t, spec, idx))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLocalExecutor pins the base layer: the chunk dataset matches a
// direct sweep evaluation of the same points, the chunks_computed
// counter tallies at the computing site, and stats record the call.
func TestLocalExecutor(t *testing.T) {
	spec := testSpec()
	chunk := chunkOf(t, spec, 0)
	reg := obs.New(nil)
	exec := &LocalExecutor{}
	ds, err := exec.Execute(obs.Into(context.Background(), reg), spec, chunk)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sweep.EvalPoints(context.Background(), 0, chunk.Points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Dataset(rows).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("local executor dataset differs from direct evaluation")
	}
	if n := reg.Counter("jobs/chunks_computed").Value(); n != 1 {
		t.Errorf("jobs/chunks_computed = %d, want 1", n)
	}
	st := exec.Stats()
	if st.Name != "local" || st.Chunks != 1 || st.Served != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want local 1/1/0", st)
	}
}

// scriptedExec fails its first fails calls with err, then delegates to a
// LocalExecutor.
type scriptedExec struct {
	fails int
	err   error
	calls int
	local LocalExecutor
}

func (s *scriptedExec) Execute(ctx context.Context, spec Spec, chunk Chunk) (*dataset.Dataset, error) {
	s.calls++
	if s.calls <= s.fails {
		return nil, s.err
	}
	return s.local.Execute(ctx, spec, chunk)
}

func (s *scriptedExec) Stats() ExecutorStats { return ExecutorStats{Name: "scripted"} }

// TestRetryExecutorRecovers pins the retry layer's rescue path: an inner
// executor that fails twice with an Internal-class error succeeds on the
// third attempt, the retries counter records both waits, and Served
// counts the rescued chunk.
func TestRetryExecutorRecovers(t *testing.T) {
	spec := testSpec()
	inner := &scriptedExec{fails: 2, err: nwerr.Internalf("flaky peer")}
	exec := &RetryExecutor{Next: inner, Backoff: time.Millisecond}
	reg := obs.New(nil)
	ds, err := exec.Execute(obs.Into(context.Background(), reg), spec, chunkOf(t, spec, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(localJSON(t, spec, 0)) {
		t.Error("retried dataset differs from local evaluation")
	}
	if inner.calls != 3 {
		t.Errorf("inner called %d times, want 3", inner.calls)
	}
	if n := reg.Counter("jobs/retries").Value(); n != 2 {
		t.Errorf("jobs/retries = %d, want 2", n)
	}
	st := exec.Stats()
	if st.Chunks != 1 || st.Served != 1 || st.Errors != 2 {
		t.Errorf("stats = %+v, want chunks=1 served=1 errors=2", st)
	}
}

// TestRetryExecutorGivesUp pins the class-aware give-up rules: Invalid,
// NotFound and Canceled failures surface after a single attempt (a retry
// cannot cure them), while Internal failures exhaust the attempt bound.
func TestRetryExecutorGivesUp(t *testing.T) {
	spec := testSpec()
	chunk := chunkOf(t, spec, 0)
	for _, tc := range []struct {
		name  string
		err   error
		calls int
	}{
		{"invalid", nwerr.Invalidf("bad request"), 1},
		{"notfound", nwerr.NotFoundf("no such thing"), 1},
		{"canceled", nwerr.Canceled(context.Canceled), 1},
		{"internal", nwerr.Internalf("boom"), DefaultRetryAttempts},
	} {
		inner := &scriptedExec{fails: 1 << 20, err: tc.err}
		exec := &RetryExecutor{Next: inner, Backoff: time.Millisecond}
		_, err := exec.Execute(context.Background(), spec, chunk)
		if nwerr.ClassOf(err) != nwerr.ClassOf(tc.err) {
			t.Errorf("%s: error class %v, want %v", tc.name, nwerr.ClassOf(err), nwerr.ClassOf(tc.err))
		}
		if inner.calls != tc.calls {
			t.Errorf("%s: inner called %d times, want %d", tc.name, inner.calls, tc.calls)
		}
		if st := exec.Stats(); st.Served != 0 {
			t.Errorf("%s: served = %d, want 0", tc.name, st.Served)
		}
	}
}

// TestServeChunk pins the serving side of the chunk protocol: a wire
// request rebuilds the same partition the submitter derived, the
// returned key is the chunk's content address, the dataset matches a
// local evaluation, and out-of-range or unusable requests are
// Invalid-class.
func TestServeChunk(t *testing.T) {
	spec := testSpec().normalized()
	req := engine.ChunkRequest{Config: spec.Base, Grid: spec.Grid, Chunk: spec.Chunk, Index: 1}
	reg := obs.New(nil)
	key, ds, err := ServeChunk(obs.Into(context.Background(), reg), 0, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.ChunkKey(1); key != want {
		t.Errorf("key = %s, want %s", key, want)
	}
	got, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(localJSON(t, spec, 1)) {
		t.Error("served chunk differs from local evaluation")
	}
	if n := reg.Counter("jobs/peer_chunks_served").Value(); n != 1 {
		t.Errorf("jobs/peer_chunks_served = %d, want 1", n)
	}
	if n := reg.Counter("jobs/chunks_computed").Value(); n != 1 {
		t.Errorf("jobs/chunks_computed = %d, want 1 (the serving node computed it)", n)
	}

	bad := req
	bad.Index = 99
	if _, _, err := ServeChunk(context.Background(), 0, bad); !nwerr.IsInvalid(err) {
		t.Errorf("out-of-range index: err = %v, want Invalid-class", err)
	}
	bad = req
	bad.Index = -1
	if _, _, err := ServeChunk(context.Background(), 0, bad); !nwerr.IsInvalid(err) {
		t.Errorf("negative index: err = %v, want Invalid-class", err)
	}
	if _, _, err := ServeChunk(context.Background(), 0, engine.ChunkRequest{Grid: sweep.Grid{Lengths: []int{3}}}); !nwerr.IsInvalid(err) {
		t.Errorf("empty grid: err = %v, want Invalid-class", err)
	}
}

// TestChunkKeyStability pins the routing identity: chunk keys are stable
// across processes (pure functions of spec + index), distinct per index,
// and independent of worker counts — the property the whole fleet's
// ownership agreement rests on.
func TestChunkKeyStability(t *testing.T) {
	a := testSpec().ChunkKey(0)
	b := testSpec().ChunkKey(0)
	if a != b {
		t.Error("equal specs derive different chunk keys")
	}
	if testSpec().ChunkKey(1) == a {
		t.Error("distinct indices derive the same chunk key")
	}
	other := testSpec()
	other.Chunk = 3
	if other.ChunkKey(0) == a {
		t.Error("distinct partitions derive the same chunk key")
	}
}
