// Package jobs is the asynchronous grid-job layer of the serving stack:
// it executes design-space sweeps chunk-by-chunk instead of as one
// synchronous request, persisting every completed chunk as a checkpoint
// keyed by the same content-addressed fingerprints the engine's result
// cache uses. A killed process therefore resumes a job without
// recomputing finished chunks, and — because the chunk partition is a
// pure function of the job spec and per-chunk datasets concatenate
// without re-rendering — a resumed run's final dataset is bit-identical
// to an uninterrupted run's.
//
// The identity chain is the engine's, extended one level: a job's Key is
// the engine content address of the sweep it computes (kind + config/grid
// fingerprint, Workers excluded), and the job id fingerprints (Key, chunk
// size) — the chunk size shapes the checkpoint partition, so two jobs
// over the same sweep at different granularities checkpoint under
// different ids. Chunk files are then addressed by index into the
// deterministic partition par.Ranges derives from (points, chunk), which
// is what lets a fresh process re-address another process's checkpoints.
//
// Execution details — worker counts, which chunks were resumed versus
// computed — never enter the identity chain or the persisted datasets;
// they surface only through Status and internal/obs metrics.
package jobs

import (
	"errors"

	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

// DefaultChunk is the chunk size a zero Spec.Chunk selects. It is a
// fixed constant, not the par.ChunkSize heuristic, because the heuristic
// depends on the machine's core count and the chunk partition is job
// identity — two machines must partition the same spec identically for
// one to resume the other's checkpoints.
const DefaultChunk = 32

// Spec describes one grid job: the sweep the engine would run for
// KindSweep, plus the checkpoint granularity. The JSON form is both the
// wire form (POST /jobs) and the persisted form (Store.PutSpec); worker
// counts are deliberately absent — they are an execution detail of the
// Runner, never part of the job.
type Spec struct {
	// Base is the platform configuration the grid varies over. A custom
	// threshold model (Config.Model) cannot be persisted or resumed, so
	// specs carrying one are rejected at submission.
	Base core.Config `json:"base"`
	// Grid is the parameter grid (zero = default grid).
	Grid sweep.Grid `json:"grid"`
	// Chunk is the number of grid points per checkpoint (<= 0 selects
	// DefaultChunk). It is part of the job identity: the chunk partition
	// is how checkpoints are addressed across processes.
	Chunk int `json:"chunk,omitempty"`
}

// normalized resolves the defaulted fields that participate in identity.
func (s Spec) normalized() Spec {
	if s.Chunk <= 0 {
		s.Chunk = DefaultChunk
	}
	return s
}

// Key returns the engine content address of the sweep the job computes —
// exactly the cache key a synchronous KindSweep request for the same
// config and grid would be served under.
func (s Spec) Key() string {
	return engine.Request{Kind: engine.KindSweep, Config: s.Base, Grid: s.Grid}.Key()
}

// ID derives the job id: "j-" plus a fingerprint of (sweep key, chunk
// size). Submitting the same spec always yields the same id, in any
// process on any machine — the property resume is built on.
func (s Spec) ID() string {
	s = s.normalized()
	return "j-" + dataset.Fingerprint(struct {
		Key   string
		Chunk int
	}{s.Key(), s.Chunk})
}

// ChunkKey derives the content address of one chunk of the job: a
// fingerprint of (job id, chunk index), the same fingerprint chain the
// job id itself extends. It is what the ring executor routes on — every
// node derives the same key for the same chunk, so the whole fleet
// agrees on each chunk's owner — and what the chunk protocol echoes
// back so a client can reject a response computed for the wrong chunk.
func (s Spec) ChunkKey(idx int) string {
	return dataset.Fingerprint(struct {
		Job   string
		Index int
	}{s.ID(), idx})
}

// chunkWire renders the identity fields of the spec plus one chunk index
// as the engine's chunk wire form — the body of a POST /peer/chunk.
func (s Spec) chunkWire(idx int) engine.ChunkRequest {
	s = s.normalized()
	return engine.ChunkRequest{Config: s.Base, Grid: s.Grid, Chunk: s.Chunk, Index: idx}
}

// validate rejects specs that cannot be persisted and resumed.
func (s Spec) validate() error {
	if s.Base.Model != nil {
		return nwerr.Invalidf("jobs: custom threshold models are not persistable; submit with Model nil")
	}
	return nil
}

// State is the lifecycle phase of a job.
type State string

// The job states. A job observed only in a store (no live runner owns
// it) is Suspended until every chunk is checkpointed, then Complete.
const (
	// StateRunning marks a job a live runner is executing.
	StateRunning State = "running"
	// StateComplete marks a job whose every chunk is checkpointed.
	StateComplete State = "complete"
	// StateFailed marks a job whose computation failed; Error carries the
	// message.
	StateFailed State = "failed"
	// StateCanceled marks a job abandoned by cancellation. Its completed
	// chunks remain checkpointed, so it is resumable.
	StateCanceled State = "canceled"
	// StateSuspended marks a job found in a store with no live runner:
	// a previous process checkpointed some chunks and exited. Resume
	// picks it up where it stopped.
	StateSuspended State = "suspended"
)

// Terminal reports whether the state is final for the owning runner.
// Canceled and Suspended jobs are terminal but resumable.
func (s State) Terminal() bool { return s != StateRunning }

// Status is the observable progress of a job. Counts are chunks, not
// points, except Points. Computed and Resumed partition Done: every
// finished chunk was either computed in this process or served from a
// checkpoint — a resumed run that recomputed nothing reports Computed 0.
type Status struct {
	// ID is the job id (Spec.ID).
	ID string `json:"id"`
	// State is the lifecycle phase.
	State State `json:"state"`
	// Key is the engine content address of the underlying sweep.
	Key string `json:"key"`
	// Points is the number of valid grid points the job evaluates.
	Points int `json:"points"`
	// Chunks is the total chunk count of the partition.
	Chunks int `json:"chunks"`
	// Done counts checkpointed chunks.
	Done int `json:"done"`
	// Computed counts chunks this process evaluated.
	Computed int `json:"computed"`
	// Resumed counts chunks served from existing checkpoints.
	Resumed int `json:"resumed"`
	// Error is the failure or cancellation message, empty otherwise.
	Error string `json:"error,omitempty"`
}

// ErrAlreadyComplete classifies an operation on a job that has already
// finished (canceling a complete job). It is Invalid-class: the request
// cannot succeed by retrying.
var ErrAlreadyComplete = nwerr.Invalid(errors.New("jobs: job already complete"))

// ErrCorrupt marks a checkpoint that exists but does not parse — a torn
// or hand-damaged chunk file. Stores wrap it (errors.Is-matchable) so
// the Runner can treat a corrupt chunk as missing and recompute it
// instead of failing the whole job; every write is atomic, so the next
// checkpoint of the same index simply replaces the damaged file.
var ErrCorrupt = errors.New("jobs: corrupt checkpoint")
