package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// corruptChunk overwrites a checkpoint file with bytes that cannot parse
// as a dataset — the shape a torn write or disk fault leaves behind.
func corruptChunk(t *testing.T, root, id string, idx int, data []byte) {
	t.Helper()
	path := filepath.Join(root, id, fmt.Sprintf("chunk-%05d.json", idx))
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGetChunkCorrupt pins the store-level classification: an
// unparsable checkpoint file is ErrCorrupt (distinguishable from
// NotFound), for both garbage and truncated-JSON shapes.
func TestGetChunkCorrupt(t *testing.T) {
	root := t.TempDir()
	fs, err := NewFSStore(root)
	if err != nil {
		t.Fatal(err)
	}
	st := runToCompletion(t, context.Background(), fs, testSpec())
	if st.State != StateComplete {
		t.Fatalf("seed job: state %s (%s)", st.State, st.Error)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not json at all")},
		{"truncated", []byte(`{"name":"sweep","rows":[{"co`)},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			corruptChunk(t, root, st.ID, 1, tc.data)
			_, err := fs.GetChunk(st.ID, 1)
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("GetChunk over %s file = %v, want ErrCorrupt", tc.name, err)
			}
			if nwerr.IsNotFound(err) {
				t.Error("corruption must not read as NotFound: callers treat the classes differently")
			}
		})
	}
	if _, err := fs.GetChunk(st.ID, 99); !nwerr.IsNotFound(err) {
		t.Errorf("GetChunk(missing) = %v, want NotFound-class", err)
	}
}

// TestResumeRecomputesCorruptChunk pins the runner-level recovery the
// issue demands: a resume over a damaged checkpoint treats the chunk as
// missing — recompute, overwrite, count it — instead of failing the job,
// and the final dataset is byte-identical to an undamaged run.
func TestResumeRecomputesCorruptChunk(t *testing.T) {
	spec := testSpec()
	want := sweepJSON(t, spec)
	root := t.TempDir()
	fs, err := NewFSStore(root)
	if err != nil {
		t.Fatal(err)
	}
	st := runToCompletion(t, context.Background(), fs, spec)
	if st.State != StateComplete {
		t.Fatalf("seed job: state %s (%s)", st.State, st.Error)
	}
	corruptChunk(t, root, st.ID, 2, []byte("{torn"))

	reg := obs.New(nil)
	r := NewRunner(fs, Options{})
	defer r.Close()
	if _, err = r.Resume(obs.Into(context.Background(), reg), st.ID); err != nil {
		t.Fatal(err)
	}
	st, err = r.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("resume over corrupt chunk: state = %s (%s), want complete", st.State, st.Error)
	}
	if st.Computed != 1 || st.Resumed != st.Chunks-1 {
		t.Errorf("computed=%d resumed=%d, want exactly the corrupt chunk recomputed (1/%d)",
			st.Computed, st.Resumed, st.Chunks-1)
	}
	if n := reg.Counter("jobs/chunks_corrupt").Value(); n != 1 {
		t.Errorf("jobs/chunks_corrupt = %d, want 1", n)
	}

	// The recompute overwrote the damaged file: a second read is clean.
	if _, err := fs.GetChunk(st.ID, 2); err != nil {
		t.Errorf("chunk after recovery: %v", err)
	}
	page, err := r.Results(st.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := page.Dataset.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("recovered dataset differs from undamaged sweep output")
	}
}

// TestLeases pins the lease table on both stores: put/list/delete round
// trip, absent deletes are no-ops, and unknown jobs are NotFound.
func TestLeases(t *testing.T) {
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		store Store
	}{
		{"fs", fs},
		{"memory", NewMemoryStore()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.store
			if _, err := s.Leases("j-nope"); !nwerr.IsNotFound(err) {
				t.Errorf("Leases(unknown) = %v, want NotFound-class", err)
			}
			spec := testSpec()
			id := spec.ID()
			if err := s.PutSpec(id, spec); err != nil {
				t.Fatal(err)
			}
			if err := s.PutLease(id, 0, "a"); err != nil {
				t.Fatal(err)
			}
			if err := s.PutLease(id, 3, "b"); err != nil {
				t.Fatal(err)
			}
			leases, err := s.Leases(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(leases) != 2 || leases[0] != "a" || leases[3] != "b" {
				t.Errorf("leases = %v, want {0:a 3:b}", leases)
			}
			if err := s.DeleteLease(id, 0); err != nil {
				t.Fatal(err)
			}
			if err := s.DeleteLease(id, 0); err != nil {
				t.Errorf("second DeleteLease = %v, want no-op nil", err)
			}
			if leases, err = s.Leases(id); err != nil || len(leases) != 1 {
				t.Errorf("leases after delete = %v (%v), want {3:b}", leases, err)
			}
		})
	}
}

// TestStaleLeaseReclaimed pins the dead-node story: a lease left behind
// without its checkpoint (the holder died mid-chunk) makes the chunk
// re-eligible — the resuming runner counts the reclaim, recomputes the
// chunk, and clears the lease.
func TestStaleLeaseReclaimed(t *testing.T) {
	spec := testSpec()
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Die after two checkpoints, as in TestResumeBitIdentical, then
	// plant the dead node's lease on the first unfinished chunk.
	const survived = 2
	broken := NewRunner(&failStore{Store: fs, allowed: survived}, Options{})
	st, err := broken.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = broken.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	broken.Close()
	if err := fs.PutLease(st.ID, survived, "dead-node"); err != nil {
		t.Fatal(err)
	}

	reg := obs.New(nil)
	r := NewRunner(fs, Options{Node: "a"})
	defer r.Close()
	if _, err = r.Resume(obs.Into(context.Background(), reg), st.ID); err != nil {
		t.Fatal(err)
	}
	st, err = r.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Error)
	}
	if n := reg.Counter("jobs/leases_reclaimed").Value(); n != 1 {
		t.Errorf("jobs/leases_reclaimed = %d, want 1", n)
	}
	leases, err := fs.Leases(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Errorf("leases after completion = %v, want none", leases)
	}
}
