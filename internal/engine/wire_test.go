package engine

import (
	"testing"

	"nwdec/internal/core"
	"nwdec/internal/nwerr"
	"nwdec/internal/physics"
	"nwdec/internal/sweep"
)

// TestChunkWireRoundTrip pins the chunk protocol's interchange form: the
// identity fields survive the round trip exactly (both ends re-derive
// the same point partition from them), a config carrying an in-process
// threshold model is rejected as non-wireable, and bytes that are not
// the wire form at all are Invalid-class.
func TestChunkWireRoundTrip(t *testing.T) {
	req := ChunkRequest{
		Config: core.Config{SigmaT: 0.05, MarginFactor: 1.25},
		Grid: sweep.Grid{
			Lengths: []int{4, 6},
			SigmaTs: []float64{0.04, 0.05},
		},
		Chunk: 3,
		Index: 2,
	}
	data, err := req.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalChunkWire(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunk != req.Chunk || got.Index != req.Index {
		t.Errorf("round trip changed partition identity: got chunk=%d index=%d", got.Chunk, got.Index)
	}
	if len(got.Grid.Lengths) != 2 || got.Grid.Lengths[0] != 4 ||
		len(got.Grid.SigmaTs) != 2 || got.Grid.SigmaTs[1] != 0.05 {
		t.Errorf("round trip changed grid: %+v", got.Grid)
	}
	if got.Config.SigmaT != req.Config.SigmaT || got.Config.MarginFactor != req.Config.MarginFactor {
		t.Errorf("round trip changed config: %+v", got.Config)
	}

	modeled := req
	modeled.Config.Model = physics.DefaultPhysicalModel()
	if _, err := modeled.MarshalWire(); !nwerr.IsInvalid(err) {
		t.Errorf("MarshalWire with custom model = %v, want Invalid-class", err)
	}
	if _, err := UnmarshalChunkWire([]byte("{nope")); !nwerr.IsInvalid(err) {
		t.Errorf("UnmarshalChunkWire(garbage) = %v, want Invalid-class", err)
	}
}
