package engine

import (
	"context"
	"errors"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// computeBackend is the innermost layer: it runs the request's library
// entry point and classifies the outcome. It performs no caching,
// deduplication or admission — the layers above own those — so a unit
// test can drive it directly and observe exactly one computation per
// call.
type computeBackend struct {
	stats layerStats
}

func newComputeBackend() *computeBackend {
	return &computeBackend{stats: layerStats{name: "compute"}}
}

// Stats reports the layer's lifetime counters.
func (b *computeBackend) Stats() BackendStats { return b.stats.Stats() }

// Handle dispatches the request to its kind's entry point. The response
// comes back un-cloned: the cache layer decides whether it becomes a
// cached original or goes straight to the caller. Context cancellation
// surfaces as a Canceled-class error; computation failures pass through
// for ClassOf to read as Internal.
func (b *computeBackend) Handle(ctx context.Context, req Request) (*Response, error) {
	b.stats.requests.Add(1)
	reg := obs.From(ctx)
	reg.Counter("engine/computes").Add(1)
	reg.Counter("engine/" + string(req.Kind) + "/computes").Add(1)
	span := reg.StartSpan("engine/compute/" + string(req.Kind))
	defer span.End()

	resp, err := computeKind(ctx, req)
	if err != nil {
		b.stats.errors.Add(1)
		reg.Counter("engine/compute_errors").Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, nwerr.Canceled(err)
		}
		return nil, err
	}
	b.stats.served.Add(1)
	resp.Key = req.Key()
	return resp, nil
}
