package engine

import (
	"context"
	"sync/atomic"
)

// Backend is one layer of the serving stack. The engine is a composition
// of backends, each owning exactly one cross-cutting mechanism:
//
//	singleflightBackend → cacheBackend → admissionBackend → computeBackend
//
// in request-flow order: deduplicate concurrent identical requests, serve
// repeats from the content-addressed cache, bound how many requests
// compute at once, run the library entry point. The *Engine facade
// validates requests, counts them, and hands them to the head of the
// chain — and is itself a Backend, so callers that route requests
// further (the cluster peer backend) compose over it uniformly.
//
// Every Backend must be safe for concurrent use. Handle's contract
// follows Engine.Do: the response a caller receives is its own (its
// dataset is a private clone), and errors carry the internal/nwerr
// taxonomy.
type Backend interface {
	// Handle serves one request. The request must already be validated
	// (the Engine facade does this once at the top of the chain).
	Handle(ctx context.Context, req Request) (*Response, error)
	// Stats reports the layer's lifetime counters.
	Stats() BackendStats
}

// BackendStats are the lifetime counters of one backend layer,
// independent of the obs registry (which travels per-request): they are
// always on, cost three atomic increments, and let tests and operators
// read each layer in isolation.
type BackendStats struct {
	// Name identifies the layer ("singleflight", "cache", "admission",
	// "compute", "engine", "peer").
	Name string
	// Requests counts requests that entered the layer.
	Requests int64
	// Served counts requests the layer answered itself, without
	// consulting the next layer (a cache hit, a joined flight).
	Served int64
	// Errors counts requests that left the layer with an error.
	Errors int64
}

// layerStats is the atomic counter block every backend embeds; its
// Stats method satisfies the Backend interface's stats half.
type layerStats struct {
	name     string
	requests atomic.Int64
	served   atomic.Int64
	errors   atomic.Int64
}

// Stats returns a consistent-enough snapshot of the counters (each field
// is read atomically; the fields are not mutually synchronized).
func (s *layerStats) Stats() BackendStats {
	return BackendStats{
		Name:     s.name,
		Requests: s.requests.Load(),
		Served:   s.served.Load(),
		Errors:   s.errors.Load(),
	}
}
