package engine

import (
	"container/list"
	"context"
	"sync"

	"nwdec/internal/obs"
)

// cacheBackend serves cacheable requests from the bounded,
// content-addressed LRU and stores what the layers below compute. It
// sits inside the singleflight layer, so a computed result is cached
// before the flight lands — a request arriving the instant a flight
// completes either joins it or hits the cache, never recomputes.
// Non-cacheable kinds (fabrication) pass straight through.
type cacheBackend struct {
	cache *resultCache
	next  Backend
	stats layerStats
}

func newCacheBackend(maxEntries int, maxCost int64, next Backend) *cacheBackend {
	return &cacheBackend{
		cache: newResultCache(maxEntries, maxCost),
		next:  next,
		stats: layerStats{name: "cache"},
	}
}

// Stats reports the layer's lifetime counters.
func (b *cacheBackend) Stats() BackendStats { return b.stats.Stats() }

// len returns the number of cached responses.
func (b *cacheBackend) len() int { return b.cache.len() }

// Handle serves from the cache, or delegates and caches the computed
// original. The cached original never leaves the layer: hits return a
// caller-private clone, and the computed response is cloned on the way
// out for the same reason.
func (b *cacheBackend) Handle(ctx context.Context, req Request) (*Response, error) {
	b.stats.requests.Add(1)
	if !req.Kind.cacheable() {
		return b.next.Handle(ctx, req)
	}
	reg := obs.From(ctx)
	key := req.Key()
	if resp, ok := b.cache.get(key); ok {
		reg.Counter("engine/cache/hits").Add(1)
		b.stats.served.Add(1)
		return resp.clone(req, true), nil
	}
	reg.Counter("engine/cache/misses").Add(1)
	resp, err := b.next.Handle(ctx, req)
	if err != nil {
		b.stats.errors.Add(1)
		return nil, err
	}
	evicted := b.cache.add(key, resp, resp.cost())
	if evicted > 0 {
		reg.Counter("engine/cache/evictions").Add(int64(evicted))
	}
	reg.Gauge("engine/cache/entries").Set(float64(b.cache.len()))
	reg.Gauge("engine/cache/cost").Set(float64(b.cache.costNow()))
	return resp.clone(req, false), nil
}

// cacheEntry is one cached response with its content address and weight.
type cacheEntry struct {
	key  string
	resp *Response
	cost int64
}

// resultCache is a bounded LRU over content-addressed responses. Two caps
// apply together: a maximum entry count and a maximum total cost (the sum
// of Response.cost weights); exceeding either evicts from the
// least-recently-used end. The cache is safe for concurrent use and keeps
// no metrics of its own — the engine counts hits, misses and evictions in
// the request path, where the obs registry is at hand.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxCost    int64
	cost       int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	items      map[string]*list.Element
}

func newResultCache(maxEntries int, maxCost int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxCost:    maxCost,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// add stores a response under key and returns how many entries were
// evicted to make room. A response whose cost alone exceeds the cost cap
// is not stored at all — admitting it would immediately evict everything
// else and then itself.
func (c *resultCache) add(key string, resp *Response, cost int64) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxCost {
		return 0
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.cost += cost - ent.cost
		ent.resp, ent.cost = resp, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp, cost: cost})
		c.cost += cost
	}
	for c.ll.Len() > c.maxEntries || c.cost > c.maxCost {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.cost -= ent.cost
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// costNow returns the current total cost.
func (c *resultCache) costNow() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cost
}
