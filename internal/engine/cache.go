package engine

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached response with its content address and weight.
type cacheEntry struct {
	key  string
	resp *Response
	cost int64
}

// resultCache is a bounded LRU over content-addressed responses. Two caps
// apply together: a maximum entry count and a maximum total cost (the sum
// of Response.cost weights); exceeding either evicts from the
// least-recently-used end. The cache is safe for concurrent use and keeps
// no metrics of its own — the engine counts hits, misses and evictions in
// the request path, where the obs registry is at hand.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxCost    int64
	cost       int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	items      map[string]*list.Element
}

func newResultCache(maxEntries int, maxCost int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxCost:    maxCost,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// add stores a response under key and returns how many entries were
// evicted to make room. A response whose cost alone exceeds the cost cap
// is not stored at all — admitting it would immediately evict everything
// else and then itself.
func (c *resultCache) add(key string, resp *Response, cost int64) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.maxCost {
		return 0
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.cost += cost - ent.cost
		ent.resp, ent.cost = resp, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp, cost: cost})
		c.cost += cost
	}
	for c.ll.Len() > c.maxEntries || c.cost > c.maxCost {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.cost -= ent.cost
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// costNow returns the current total cost.
func (c *resultCache) costNow() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cost
}
