package engine

import (
	"context"
	"fmt"
	"strings"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/experiments"
	"nwdec/internal/stats"
	"nwdec/internal/sweep"
)

// computeKind dispatches a validated request to its library entry point.
// Each branch produces the complete Response for its kind; Do owns
// caching, cloning and classification around it.
func computeKind(ctx context.Context, req Request) (*Response, error) {
	switch req.Kind {
	case KindDesign:
		return computeDesign(ctx, req)
	case KindOptimize:
		return computeOptimize(ctx, req)
	case KindMonteCarlo:
		return computeMonteCarlo(ctx, req)
	case KindExperiment:
		return computeExperiment(ctx, req)
	case KindSweep:
		return computeSweep(ctx, req)
	case KindCodes:
		return computeCodes(ctx, req)
	case KindFabricate:
		return computeFabricate(ctx, req)
	}
	// validate() rejects unknown kinds before admission; this is a guard
	// against a kind added without a branch.
	return nil, fmt.Errorf("engine: no compute path for kind %q", string(req.Kind))
}

func computeDesign(_ context.Context, req Request) (*Response, error) {
	d, err := core.NewDesign(req.Config)
	if err != nil {
		return nil, err
	}
	return &Response{Dataset: d.Dataset(), Design: d}, nil
}

func computeOptimize(ctx context.Context, req Request) (*Response, error) {
	types := req.Types
	if len(types) == 0 {
		types = code.AllTypes()
	}
	lengths := req.Lengths
	if len(lengths) == 0 {
		lengths = []int{4, 6, 8, 10, 12}
	}
	d, err := core.Optimize(ctx, req.Config, types, lengths, req.Objective)
	if err != nil {
		return nil, err
	}
	return &Response{Dataset: d.Dataset(), Design: d}, nil
}

func computeMonteCarlo(ctx context.Context, req Request) (*Response, error) {
	d, err := core.NewDesign(req.Config)
	if err != nil {
		return nil, err
	}
	y, err := d.MonteCarloYieldWorkers(ctx, req.Trials, req.Seed, req.Workers)
	if err != nil {
		return nil, err
	}
	cfg := d.Config
	ds := dataset.New("montecarlo_yield",
		fmt.Sprintf("Monte-Carlo cave yield (%s, M=%d, %d trials)", cfg.CodeType, cfg.CodeLength, req.Trials),
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.Col("trials", dataset.Int),
		dataset.Col("analyticYield", dataset.Float),
		dataset.Col("empiricalYield", dataset.Float),
	)
	ds.AddRow(cfg.CodeType.String(), cfg.CodeLength, req.Trials, d.Crossbar.Yield, y)
	ds.Meta.Seed = req.Seed
	ds.Meta.Trials = req.Trials
	ds.Meta.ConfigHash = req.Config.Fingerprint()
	return &Response{Dataset: ds, Design: d, Yield: y}, nil
}

func computeExperiment(ctx context.Context, req Request) (*Response, error) {
	r := &experiments.Runner{
		Cfg:      req.Config,
		MCTrials: req.Trials,
		Seed:     req.Seed,
		Workers:  req.Workers,
	}
	ds, err := r.Run(ctx, req.Experiment)
	if err != nil {
		return nil, err
	}
	return &Response{Dataset: ds}, nil
}

func computeSweep(ctx context.Context, req Request) (*Response, error) {
	rows, err := sweep.RunWorkers(ctx, req.Config, req.Grid, req.Workers)
	if err != nil {
		return nil, err
	}
	return &Response{Dataset: sweep.Dataset(rows), Rows: rows}, nil
}

func computeCodes(_ context.Context, req Request) (*Response, error) {
	cfg := req.Config.WithDefaults()
	gen, err := code.Cached(cfg.CodeType, cfg.Base, cfg.CodeLength)
	if err != nil {
		return nil, err
	}
	n := req.Count
	if n <= 0 {
		n = gen.SpaceSize()
		if n > 64 {
			n = 64
		}
	}
	words, err := code.CyclicSequence(gen, n)
	if err != nil {
		return nil, err
	}
	return &Response{Dataset: WordsDataset(cfg.CodeType, gen, words)}, nil
}

func computeFabricate(ctx context.Context, req Request) (*Response, error) {
	d, err := core.NewDesign(req.Config)
	if err != nil {
		return nil, err
	}
	// The RNG is returned alongside the memory: controllers that inject
	// faults after fabrication (nwmem) continue drawing from the same
	// stream, which keeps the whole run a pure function of the seed.
	rng := stats.NewRNG(req.Seed)
	mem, err := d.FabricateWorkers(ctx, rng, req.Workers)
	if err != nil {
		return nil, err
	}
	return &Response{Design: d, Memory: mem, RNG: rng}, nil
}

// WordsDataset packages a code-word listing with its transition
// statistics; its text rendering is the annotated sequence. It is
// exported because the dataset is the nwcodes output contract (byte-pinned
// by the CLI golden tests) and the engine's KindCodes result.
func WordsDataset(tp code.Type, gen code.Generator, words []code.Word) *dataset.Dataset {
	ds := dataset.New("nwcodes",
		fmt.Sprintf("%s word sequence (base=%d, M=%d)", tp, gen.Base(), gen.Length()),
		dataset.Col("index", dataset.Int),
		dataset.Col("word", dataset.String),
		dataset.Col("digitChanges", dataset.Int),
	)
	for i, w := range words {
		changes := 0
		if i > 0 {
			changes = w.Hamming(words[i-1])
		}
		ds.AddRow(i, w.String(), changes)
	}
	st := code.Stats(words)
	ds.Note("transitions: total=%d  per-step min/max=%d/%d  per-digit=%v (max %d)",
		st.TotalTransitions, st.MinPerStep, st.MaxPerStep, st.PerDigit, st.MaxPerDigit)
	ds.SetText(func() string { return renderWords(tp, gen, words) })
	return ds
}

// renderWords is the historical nwcodes text listing.
func renderWords(tp code.Type, gen code.Generator, words []code.Word) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  base=%d  M=%d  Ω=%d  (showing %d words)\n",
		tp, gen.Base(), gen.Length(), gen.SpaceSize(), len(words))
	if tp.Reflected() {
		sb.WriteString("words are reflected: second half is the (n-1)-complement of the first\n")
	}
	for i, w := range words {
		if i == 0 {
			fmt.Fprintf(&sb, "%3d  %s\n", i, w)
			continue
		}
		fmt.Fprintf(&sb, "%3d  %s  (%d digit changes)\n", i, w, w.Hamming(words[i-1]))
	}
	st := code.Stats(words)
	fmt.Fprintf(&sb, "\ntransitions: total=%d  per-step min/max=%d/%d  per-digit=%v (max %d)\n",
		st.TotalTransitions, st.MinPerStep, st.MaxPerStep, st.PerDigit, st.MaxPerDigit)
	return sb.String()
}

// ExperimentNames lists the experiment registry's names in presentation
// order, for CLIs and the HTTP facade to expand "all" and render help.
func ExperimentNames() []string {
	return (&experiments.Runner{}).Names()
}

// ExperimentKnown reports whether name resolves to a registry experiment,
// including aliases and case normalization. The HTTP facade uses it to
// distinguish an unknown resource (404) from a failed computation (500).
func ExperimentKnown(name string) bool {
	return (&experiments.Runner{}).Known(name)
}
