package engine_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/experiments"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// obsCtx returns a context carrying a fresh metrics registry, so tests can
// count computes, cache hits and evictions through the engine's own
// instrumentation.
func obsCtx() (context.Context, *obs.Registry) {
	reg := obs.New(nil)
	return obs.Into(context.Background(), reg), reg
}

// newEngine constructs an engine from options every test here considers
// valid, failing the test on a construction error.
func newEngine(t *testing.T, opts engine.Options) *engine.Engine {
	t.Helper()
	eng, err := engine.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestOptionsValidation: New must reject caps that would silently
// misbehave — a negative cap is neither "unlimited" nor "default" — with
// an Invalid-class error, and accept the zero value and explicit
// positive caps.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts engine.Options
		ok   bool
	}{
		{"zero-defaults", engine.Options{}, true},
		{"explicit", engine.Options{MaxEntries: 4, MaxCost: 100, MaxInFlight: 2}, true},
		{"shed", engine.Options{Shed: true}, true},
		{"negative-entries", engine.Options{MaxEntries: -1}, false},
		{"negative-cost", engine.Options{MaxCost: -5}, false},
		{"negative-inflight", engine.Options{MaxInFlight: -2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := engine.New(tc.opts)
			if tc.ok {
				if err != nil || eng == nil {
					t.Fatalf("New(%+v) = %v, %v; want an engine", tc.opts, eng, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("New(%+v) accepted invalid options", tc.opts)
			}
			if !errors.Is(err, nwerr.ErrInvalid) {
				t.Errorf("New(%+v) error %v is not ErrInvalid", tc.opts, err)
			}
			if eng != nil {
				t.Errorf("New(%+v) returned an engine alongside the error", tc.opts)
			}
		})
	}
}

// TestBackendStats: the per-layer counters must attribute work to the
// layer that did it — one cold request counts at every layer, its cached
// repeat is served by the cache layer and never reaches admission or
// compute.
func TestBackendStats(t *testing.T) {
	ctx, _ := obsCtx()
	eng := newEngine(t, engine.Options{})
	req := engine.Request{Kind: engine.KindCodes, Count: 2}
	for i := 0; i < 2; i++ {
		if _, err := eng.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	layers := make(map[string]engine.BackendStats)
	for _, st := range eng.BackendStats() {
		layers[st.Name] = st
	}
	for name, want := range map[string]engine.BackendStats{
		"engine":       {Name: "engine", Requests: 2},
		"singleflight": {Name: "singleflight", Requests: 2},
		"cache":        {Name: "cache", Requests: 2, Served: 1},
		"admission":    {Name: "admission", Requests: 1},
		"compute":      {Name: "compute", Requests: 1, Served: 1},
	} {
		if got := layers[name]; got != want {
			t.Errorf("layer %s stats = %+v, want %+v", name, got, want)
		}
	}
}

// TestConcurrentDuplicatesComputeOnce is the singleflight proof: N
// goroutines issue the identical request against one engine, and the
// engine's compute counter must record exactly one execution — every
// other caller either joined the in-flight computation or hit the cache.
// Run under -race this also exercises the flight/cache synchronization.
func TestConcurrentDuplicatesComputeOnce(t *testing.T) {
	ctx, reg := obsCtx()
	eng := newEngine(t, engine.Options{})
	req := engine.Request{Kind: engine.KindMonteCarlo, Seed: 11, Trials: 3}

	const n = 16
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		resps [n]*engine.Response
		errs  [n]error
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			resps[i], errs[i] = eng.Do(ctx, req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	if got := reg.Counter("engine/computes").Value(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d computes, want exactly 1", n, got)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if resps[i].Yield != resps[0].Yield {
			t.Errorf("request %d: yield %v differs from %v", i, resps[i].Yield, resps[0].Yield)
		}
		if resps[i].CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Errorf("%d of %d requests report CacheHit, want %d (all but the leader)", hits, n, n-1)
	}
	if got := reg.Counter("engine/cache/hits").Value() + reg.Counter("engine/flight/joined").Value(); got != n-1 {
		t.Errorf("hits+joined = %d, want %d", got, n-1)
	}
}

// TestDistinctSeedsDistinctEntries: the seed is an identity field, so two
// Monte-Carlo requests differing only in seed must occupy two cache
// entries — sharing one would serve seed A's empirical yield for seed B.
func TestDistinctSeedsDistinctEntries(t *testing.T) {
	ctx, reg := obsCtx()
	eng := newEngine(t, engine.Options{})
	a, err := eng.Do(ctx, engine.Request{Kind: engine.KindMonteCarlo, Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Do(ctx, engine.Request{Kind: engine.KindMonteCarlo, Seed: 2, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit || b.CacheHit {
		t.Error("first requests for distinct seeds must both compute")
	}
	if a.Key == b.Key {
		t.Errorf("distinct seeds share cache key %s", a.Key)
	}
	if got := eng.CacheLen(); got != 2 {
		t.Errorf("cache holds %d entries after two distinct requests, want 2", got)
	}
	if got := reg.Counter("engine/computes").Value(); got != 2 {
		t.Errorf("computes = %d, want 2", got)
	}
	again, err := eng.Do(ctx, engine.Request{Kind: engine.KindMonteCarlo, Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Yield != a.Yield {
		t.Errorf("repeat of seed 1: hit=%v yield=%v, want hit with yield %v", again.CacheHit, again.Yield, a.Yield)
	}
}

// TestEvictionRespectsEntryCap: the LRU must hold the entry cap and evict
// the least recently used key.
func TestEvictionRespectsEntryCap(t *testing.T) {
	ctx, reg := obsCtx()
	eng := newEngine(t, engine.Options{MaxEntries: 2})
	for count := 1; count <= 3; count++ {
		if _, err := eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: count}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.CacheLen(); got != 2 {
		t.Errorf("cache holds %d entries with cap 2, want 2", got)
	}
	if got := reg.Counter("engine/cache/evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Count=1 was the least recently used entry; its re-request computes.
	resp, err := eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("evicted entry served as a cache hit")
	}
	// Count=3 stayed resident.
	resp, err = eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("resident entry recomputed")
	}
}

// TestEvictionRespectsCostCap: a response heavier than the whole cost cap
// must not be admitted, and the total cached cost stays under the cap.
func TestEvictionRespectsCostCap(t *testing.T) {
	ctx, _ := obsCtx()
	// A one-word codes dataset costs 1 + 1 row × 3 columns = 4 units.
	eng := newEngine(t, engine.Options{MaxCost: 3})
	resp, err := eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("cold request reports CacheHit")
	}
	if got := eng.CacheLen(); got != 0 {
		t.Errorf("over-cost response was cached (%d entries)", got)
	}
	// With room for one such response but not two, the second insert
	// evicts the first.
	eng = newEngine(t, engine.Options{MaxCost: 5})
	if _, err := eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Do(ctx, engine.Request{Kind: engine.KindCodes, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheLen(); got != 1 {
		t.Errorf("cache holds %d entries under the cost cap, want 1", got)
	}
}

// TestWorkersExcludedFromKey: the worker count is an execution detail —
// the determinism guarantee makes results bit-identical across worker
// counts — so a result computed at one count must serve every other.
func TestWorkersExcludedFromKey(t *testing.T) {
	ctx, _ := obsCtx()
	eng := newEngine(t, engine.Options{})
	one, err := eng.Do(ctx, engine.Request{Kind: engine.KindExperiment, Experiment: "fig5", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := eng.Do(ctx, engine.Request{Kind: engine.KindExperiment, Experiment: "fig5", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.CacheHit {
		t.Error("first request reports CacheHit")
	}
	if !four.CacheHit {
		t.Error("same request at a different worker count recomputed; Workers must not key the cache")
	}
	if one.Dataset.Meta.Workers != 1 || four.Dataset.Meta.Workers != 4 {
		t.Errorf("Meta.Workers = %d/%d, want each caller's own value 1/4",
			one.Dataset.Meta.Workers, four.Dataset.Meta.Workers)
	}
	var a, b bytes.Buffer
	if err := one.Dataset.Render(&a, dataset.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if err := four.Dataset.Render(&b, dataset.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cached and computed responses serialize differently")
	}
}

// TestCachedDatasetIsPrivate: each caller gets an independent clone, so
// annotating one response never contaminates the cached original.
func TestCachedDatasetIsPrivate(t *testing.T) {
	ctx, _ := obsCtx()
	eng := newEngine(t, engine.Options{})
	req := engine.Request{Kind: engine.KindCodes, Count: 4}
	first, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	notes := len(first.Dataset.Notes)
	first.Dataset.Note("caller-local annotation")
	second, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	if len(second.Dataset.Notes) != notes {
		t.Errorf("caller mutation leaked into the cache: %d notes, want %d", len(second.Dataset.Notes), notes)
	}
}

// TestInvalidRequests: malformed requests must classify as Invalid and be
// rejected before any computation is admitted.
func TestInvalidRequests(t *testing.T) {
	ctx, reg := obsCtx()
	eng := newEngine(t, engine.Options{})
	for _, req := range []engine.Request{
		{Kind: "nope"},
		{Kind: engine.KindExperiment},
		{Kind: engine.KindMonteCarlo, Trials: 0},
		{Kind: engine.KindCodes, Count: -1},
	} {
		_, err := eng.Do(ctx, req)
		if err == nil {
			t.Errorf("request %+v accepted", req)
			continue
		}
		if !errors.Is(err, nwerr.ErrInvalid) {
			t.Errorf("request %+v: error %v is not ErrInvalid", req, err)
		}
	}
	if got := reg.Counter("engine/computes").Value(); got != 0 {
		t.Errorf("invalid requests ran %d computes, want 0", got)
	}
}

// TestCanceledContext: a dead context surfaces as a Canceled-class error
// whose message still names the cause.
func TestCanceledContext(t *testing.T) {
	ctx, reg := obsCtx()
	ctx, cancel := context.WithCancel(ctx)
	cancel()
	eng := newEngine(t, engine.Options{})
	_, err := eng.Do(ctx, engine.Request{Kind: engine.KindDesign})
	if !errors.Is(err, nwerr.ErrCanceled) {
		t.Errorf("error %v is not ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v lost its context.Canceled cause", err)
	}
	if got := reg.Counter("engine/computes").Value(); got != 0 {
		t.Errorf("canceled request ran %d computes, want 0", got)
	}
}

// TestComputeErrorsNotCached: a failing request must not poison the
// cache — the next identical request retries the computation.
func TestComputeErrorsNotCached(t *testing.T) {
	ctx, reg := obsCtx()
	eng := newEngine(t, engine.Options{})
	// An odd length is structurally invalid for a reflected code family,
	// so NewDesign fails.
	req := engine.Request{Kind: engine.KindDesign, Config: core.Config{CodeLength: 7}}
	for i := 0; i < 2; i++ {
		if _, err := eng.Do(ctx, req); err == nil {
			t.Fatalf("attempt %d: invalid design accepted", i)
		}
	}
	if got := reg.Counter("engine/computes").Value(); got != 2 {
		t.Errorf("computes = %d, want 2 (errors must not be cached)", got)
	}
	if got := eng.CacheLen(); got != 0 {
		t.Errorf("failed computation left %d cache entries", got)
	}
}

// TestFabricateUncachedDeterministic: fabrication returns mutable state,
// so it must never be cached; same-seed fabrications are nevertheless
// bit-identical, and the returned RNG continues the fabrication stream
// deterministically.
func TestFabricateUncachedDeterministic(t *testing.T) {
	ctx, _ := obsCtx()
	eng := newEngine(t, engine.Options{})
	req := engine.Request{Kind: engine.KindFabricate, Seed: 7}
	a, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit || b.CacheHit {
		t.Error("fabrication reported a cache hit; it must always compute")
	}
	if got := eng.CacheLen(); got != 0 {
		t.Errorf("fabrication left %d cache entries, want 0", got)
	}
	if a.Memory == b.Memory {
		t.Error("two fabrications share one *crossbar.Memory instance")
	}
	if af, bf := a.Memory.UsableFraction(), b.Memory.UsableFraction(); af != bf {
		t.Errorf("same-seed fabrications differ: usable %v vs %v", af, bf)
	}
	for i := 0; i < 8; i++ {
		if av, bv := a.RNG.Intn(1<<20), b.RNG.Intn(1<<20); av != bv {
			t.Fatalf("post-fabrication RNG streams diverge at draw %d: %d vs %d", i, av, bv)
		}
	}
}

// TestEngineMatchesRunner: the engine is a serving layer, not a fork of
// the pipeline — its experiment responses must serialize byte-identically
// to a direct experiments.Runner run.
func TestEngineMatchesRunner(t *testing.T) {
	ctx, _ := obsCtx()
	eng := newEngine(t, engine.Options{})
	resp, err := eng.Do(ctx, engine.Request{Kind: engine.KindExperiment, Experiment: "fig7"})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.NewRunner().Run(context.Background(), "fig7")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := resp.Dataset.Render(&a, dataset.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if err := direct.Render(&b, dataset.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("engine and runner outputs differ:\nengine: %s\nrunner: %s", a.String(), b.String())
	}
}
