package engine

import (
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/nwerr"
	"nwdec/internal/stats"
	"nwdec/internal/sweep"
)

// Kind names one request type the engine can serve. Kinds are strings so
// cache keys, metric names and HTTP routes all read the same.
type Kind string

// The request kinds, one per expensive entry point of the library.
const (
	// KindDesign resolves one decoder design (core.NewDesign).
	KindDesign Kind = "design"
	// KindOptimize sweeps the design space and returns the best design
	// under an objective (core.Optimize).
	KindOptimize Kind = "optimize"
	// KindMonteCarlo measures the empirical cave yield of a design over
	// repeated fabrications (Design.MonteCarloYieldWorkers).
	KindMonteCarlo Kind = "montecarlo"
	// KindExperiment runs one named experiment of the reproduction
	// (experiments.Runner.Run).
	KindExperiment Kind = "experiment"
	// KindSweep evaluates the batch design-space grid (sweep.RunWorkers).
	KindSweep Kind = "sweep"
	// KindCodes generates a code-word listing with transition statistics
	// (the nwcodes workload).
	KindCodes Kind = "codes"
	// KindFabricate builds one Monte-Carlo crossbar memory instance
	// (Design.FabricateWorkers). Fabrications return mutable state, so
	// this kind is never cached or deduplicated — only admitted and
	// instrumented.
	KindFabricate Kind = "fabricate"
)

// cacheable reports whether results of this kind may be cached and
// shared. Everything is, except fabrication: a *crossbar.Memory is
// mutable (the whole point is writing to it), so two requests must never
// receive the same instance.
func (k Kind) cacheable() bool { return k != KindFabricate }

// known reports whether k is one of the declared kinds.
func (k Kind) known() bool {
	switch k {
	case KindDesign, KindOptimize, KindMonteCarlo, KindExperiment,
		KindSweep, KindCodes, KindFabricate:
		return true
	}
	return false
}

// Request is one unit of work submitted to the engine. A request is fully
// described by its value: two requests with equal identity fields compute
// identical results (the determinism invariant of the pipeline), which is
// what makes content-addressed caching sound.
type Request struct {
	// Kind selects the entry point.
	Kind Kind
	// Config is the platform configuration (all kinds; KindCodes reads
	// only CodeType, Base and CodeLength from it).
	Config core.Config
	// Experiment is the registry name for KindExperiment.
	Experiment string
	// Grid is the parameter grid for KindSweep (zero = default grid).
	Grid sweep.Grid
	// Objective ranks designs for KindOptimize.
	Objective core.Objective
	// Types are the code families for KindOptimize (nil = all).
	Types []code.Type
	// Lengths are the code lengths for KindOptimize (nil = 4..12 even).
	Lengths []int
	// Count is the number of words to emit for KindCodes (0 = the whole
	// space, capped at 64 — the historical nwcodes default).
	Count int
	// Seed drives the stochastic kinds (KindMonteCarlo, KindExperiment,
	// KindFabricate).
	Seed uint64
	// Trials is the repetition count for KindMonteCarlo and the
	// Monte-Carlo experiments (KindExperiment; 0 = the runner default).
	Trials int
	// Workers bounds the worker pool (0 = GOMAXPROCS). It is an
	// execution detail: results are bit-identical at every worker count,
	// so Workers is excluded from the cache key — a request computed at
	// one worker count serves all others.
	Workers int

	// key memoizes Key(). The engine facade fills it once per Do call so
	// the backend layers below share one fingerprint computation.
	key string
}

// Key returns the request's content address: the kind plus a fingerprint
// of every identity field. The configuration contributes through
// Config.Fingerprint, which folds in the threshold model's calibration
// parameters; Workers is deliberately absent (see the field comment).
func (r Request) Key() string {
	if r.key != "" {
		return r.key
	}
	return string(r.Kind) + "/" + dataset.Fingerprint(struct {
		Config     string
		Experiment string
		Grid       sweep.Grid
		Objective  core.Objective
		Types      []code.Type
		Lengths    []int
		Count      int
		Seed       uint64
		Trials     int
	}{
		Config:     r.Config.Fingerprint(),
		Experiment: r.Experiment,
		Grid:       r.Grid,
		Objective:  r.Objective,
		Types:      r.Types,
		Lengths:    r.Lengths,
		Count:      r.Count,
		Seed:       r.Seed,
		Trials:     r.Trials,
	})
}

// validate rejects malformed requests with Invalid-class errors — and
// well-formed requests naming nonexistent experiments with NotFound-class
// ones — before any work is admitted.
func (r Request) validate() error {
	if !r.Kind.known() {
		return nwerr.Invalidf("engine: unknown request kind %q", string(r.Kind))
	}
	if r.Kind == KindExperiment && r.Experiment == "" {
		return nwerr.Invalidf("engine: experiment request needs a name")
	}
	if r.Kind == KindExperiment && !ExperimentKnown(r.Experiment) {
		return nwerr.NotFoundf("engine: unknown experiment %q", r.Experiment)
	}
	if r.Kind == KindMonteCarlo && r.Trials <= 0 {
		return nwerr.Invalidf("engine: montecarlo request needs a positive trial count, got %d", r.Trials)
	}
	if r.Count < 0 {
		return nwerr.Invalidf("engine: negative word count %d", r.Count)
	}
	return nil
}

// Response is the result of one request. Dataset is always set except for
// KindFabricate. The kind-specific payloads (Design, Rows, Yield) are
// shared between callers of the same cached result and must be treated as
// read-only; Dataset is a private clone, safe to annotate. Memory and RNG
// come only from the uncached KindFabricate, so they are exclusively the
// caller's.
type Response struct {
	// Dataset is the structured result (nil for KindFabricate).
	Dataset *dataset.Dataset
	// Design is the resolved design for KindDesign and KindOptimize.
	Design *core.Design
	// Rows are the evaluated grid points for KindSweep.
	Rows []sweep.Row
	// Yield is the measured mean usable fraction for KindMonteCarlo.
	Yield float64
	// Memory is the fabricated crossbar for KindFabricate.
	Memory *crossbar.Memory
	// RNG is the generator state after fabrication for KindFabricate, so
	// controllers can continue drawing from the same stream (fault
	// injection in nwmem depends on this).
	RNG *stats.RNG
	// CacheHit reports whether the result was served without computing:
	// from the cache, or by joining an identical in-flight request. For a
	// peer-served response it reports the owning node's verdict.
	CacheHit bool
	// Peer reports that the response was served by the request key's
	// owning node over the cluster peer protocol instead of by this
	// process (see internal/cluster). Peer responses carry the dataset
	// only: the kind-specific payloads (Design, Rows, Yield) do not cross
	// the wire.
	Peer bool
	// Key is the request's content address, for logging and HTTP headers.
	Key string
}

// clone returns the caller's private view of a response: the dataset is
// deep-copied (and stamped with the request's worker count — an execution
// detail excluded from serialization) so no caller can mutate the cached
// original.
func (r *Response) clone(req Request, hit bool) *Response {
	out := *r
	out.CacheHit = hit
	if r.Dataset != nil {
		out.Dataset = r.Dataset.Clone()
		out.Dataset.Meta.Workers = req.Workers
	}
	return &out
}

// cost estimates the cache weight of a response in cells. The unit is
// coarse — the cap exists to bound memory, not to account bytes exactly.
func (r *Response) cost() int64 {
	c := int64(1)
	if r.Dataset != nil {
		cols := len(r.Dataset.Columns)
		if cols < 1 {
			cols = 1
		}
		c += int64(len(r.Dataset.Rows)) * int64(cols)
	}
	c += int64(len(r.Rows))
	if r.Design != nil {
		c += 64
	}
	return c
}
