package engine

import (
	"context"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
)

// admissionBackend bounds how many requests may compute concurrently: a
// burst degrades to queueing (the default) or, in shed mode, to an
// immediate Overload-class rejection the HTTP facade turns into
// 503 + Retry-After — the server stays responsive under saturation
// instead of accumulating an unbounded queue of waiters.
//
// The layer sits below the cache and singleflight layers, so cached and
// deduplicated requests never consume a slot.
type admissionBackend struct {
	sem   *par.Semaphore
	shed  bool
	next  Backend
	stats layerStats
}

func newAdmissionBackend(maxInFlight int, shed bool, next Backend) *admissionBackend {
	return &admissionBackend{
		sem:   par.NewSemaphore(maxInFlight),
		shed:  shed,
		next:  next,
		stats: layerStats{name: "admission"},
	}
}

// Stats reports the layer's lifetime counters.
func (b *admissionBackend) Stats() BackendStats { return b.stats.Stats() }

// inFlight returns the number of requests currently holding a slot.
func (b *admissionBackend) inFlight() int { return b.sem.InFlight() }

// Handle admits the request through the semaphore and delegates. In
// queueing mode a full semaphore blocks until a slot frees or the
// context dies (a Canceled-class error); in shed mode it fails fast with
// an Overload-class error, which is the recoverable "back off and retry"
// signal of the taxonomy.
func (b *admissionBackend) Handle(ctx context.Context, req Request) (*Response, error) {
	b.stats.requests.Add(1)
	reg := obs.From(ctx)
	if b.shed {
		if !b.sem.TryAcquire() {
			b.stats.errors.Add(1)
			reg.Counter("engine/admission/shed").Add(1)
			return nil, nwerr.Overloadf(
				"engine: admission saturated (%d requests computing); retry later", b.sem.Cap())
		}
	} else if err := b.sem.Acquire(ctx); err != nil {
		b.stats.errors.Add(1)
		reg.Counter("engine/admission/aborted").Add(1)
		return nil, nwerr.Canceled(err)
	}
	reg.Gauge("engine/inflight").Set(float64(b.sem.InFlight()))
	defer func() {
		b.sem.Release()
		reg.Gauge("engine/inflight").Set(float64(b.sem.InFlight()))
	}()
	resp, err := b.next.Handle(ctx, req)
	if err != nil {
		b.stats.errors.Add(1)
		return nil, err
	}
	return resp, nil
}
