package engine

// flight is one in-progress computation that concurrent identical
// requests can join instead of recomputing. The leader publishes resp/err
// and then closes done; followers block on done (or their own context)
// and read the published result. The close-channel broadcast replaces the
// WaitGroup idiom, which the project reserves for internal/par.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// joinOrLead returns the existing flight for key, or registers a new one
// led by the caller. The boolean reports leadership.
func (e *Engine) joinOrLead(key string) (*flight, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	return f, true
}

// land publishes the leader's result and releases the followers. The
// flight is deregistered before done is closed, so a request arriving
// after completion starts fresh instead of observing a landed flight.
func (e *Engine) land(f *flight, key string, resp *Response, err error) {
	f.resp, f.err = resp, err
	e.mu.Lock()
	delete(e.flights, key)
	e.mu.Unlock()
	close(f.done)
}
