package engine

import (
	"context"
	"sync"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// flight is one in-progress computation that concurrent identical
// requests can join instead of recomputing. The leader publishes resp/err
// and then closes done; followers block on done (or their own context)
// and read the published result. The close-channel broadcast replaces the
// WaitGroup idiom, which the project reserves for internal/par.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
	// waiters counts joined followers; guarded by the backend's mu. The
	// leader clones its response for the flight only when someone is
	// actually waiting, so the solo fast path (every cache hit) stays
	// clone-free.
	waiters int
}

// singleflightBackend deduplicates concurrent identical requests: the
// first caller of a content address leads and descends into the chain;
// everyone else joins its flight and shares the result. It is the head
// of the cacheable chain — the cache layer runs inside the flight, so by
// the time a flight lands its result is already cached and a late
// arrival can never slip between the two and recompute.
//
// Non-cacheable kinds (fabrication) pass straight through: their results
// are mutable state that must never be shared between callers.
type singleflightBackend struct {
	next Backend

	mu      sync.Mutex
	flights map[string]*flight

	stats layerStats
}

func newSingleflightBackend(next Backend) *singleflightBackend {
	return &singleflightBackend{
		next:    next,
		flights: make(map[string]*flight),
		stats:   layerStats{name: "singleflight"},
	}
}

// Stats reports the layer's lifetime counters.
func (b *singleflightBackend) Stats() BackendStats { return b.stats.Stats() }

// Handle leads or joins the flight for the request's content address.
// A follower shares the leader's result and the leader's error —
// including a Canceled one — since no computation of its own remains to
// continue; a follower whose own context dies stops waiting and returns
// Canceled.
func (b *singleflightBackend) Handle(ctx context.Context, req Request) (*Response, error) {
	b.stats.requests.Add(1)
	if !req.Kind.cacheable() {
		return b.next.Handle(ctx, req)
	}
	key := req.Key()
	f, leader := b.joinOrLead(key)
	if !leader {
		obs.From(ctx).Counter("engine/flight/joined").Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			b.stats.errors.Add(1)
			return nil, nwerr.Canceled(ctx.Err())
		}
		if f.err != nil {
			b.stats.errors.Add(1)
			return nil, f.err
		}
		b.stats.served.Add(1)
		return f.resp.clone(req, true), nil
	}
	resp, err := b.next.Handle(ctx, req)
	b.land(f, key, resp, err)
	if err != nil {
		b.stats.errors.Add(1)
		return nil, err
	}
	return resp, nil
}

// joinOrLead returns the existing flight for key, or registers a new one
// led by the caller. The boolean reports leadership.
func (b *singleflightBackend) joinOrLead(key string) (*flight, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.flights[key]; ok {
		f.waiters++
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	b.flights[key] = f
	return f, true
}

// land publishes the leader's result and releases the followers. The
// response the leader received from the cache layer is its own private
// clone and the leader's caller is free to mutate it, so the flight
// stores a separate clone for the followers to clone from. The flight is
// deregistered before done is closed, so a request arriving after
// completion starts fresh — and finds the result already cached, because
// the cache layer ran inside the flight.
func (b *singleflightBackend) land(f *flight, key string, resp *Response, err error) {
	b.mu.Lock()
	delete(b.flights, key)
	waiters := f.waiters
	b.mu.Unlock()
	// No new follower can join once the flight is deregistered, so the
	// waiter count is final and f may be written until done closes.
	if resp != nil && waiters > 0 {
		f.resp = resp.clone(Request{}, true)
	}
	f.err = err
	close(f.done)
}
