// Package engine is the serving layer of the decoder pipeline: a typed
// request/response API fronting the expensive library entry points
// (core.NewDesign, Design.MonteCarloYieldWorkers, experiments.Runner,
// sweep.RunWorkers, crossbar fabrication) behind three cross-cutting
// mechanisms the entry points themselves stay free of:
//
//   - a bounded, content-addressed result cache: the pipeline's
//     determinism invariant makes a request's identity fields a complete
//     address for its result, so equal requests — at any worker count —
//     are served from memory;
//   - singleflight deduplication: concurrent identical requests share one
//     computation instead of racing to do the same work;
//   - admission control: a semaphore bounds the number of requests
//     computing at once, so a burst degrades to queueing instead of
//     unbounded memory and scheduler pressure.
//
// Every command-line tool and the nwserve HTTP facade submit work through
// Engine.Do. Errors carry the internal/nwerr taxonomy: malformed requests
// are Invalid, context cancellation is Canceled, everything else is
// Internal — callers branch with errors.Is instead of string matching.
//
// The engine is instrumented with internal/obs (request/compute counters
// per kind, cache hit/miss/eviction counters, in-flight gauge, per-kind
// spans) through the registry carried by the request context; with no
// registry installed the instrumentation is free.
package engine

import (
	"context"
	"errors"
	"sync"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
	"nwdec/internal/par"
)

// Cache sizing defaults. The cost unit is one dataset cell (see
// Response.cost); the default cost cap holds about a million cells —
// a few hundred times the repository's largest experiment dataset.
const (
	// DefaultMaxEntries bounds the number of cached responses.
	DefaultMaxEntries = 128
	// DefaultMaxCost bounds the total cached weight in cells.
	DefaultMaxCost int64 = 1 << 20
)

// Options configures an Engine. The zero value selects the defaults.
type Options struct {
	// MaxEntries caps the result cache's entry count
	// (0 = DefaultMaxEntries).
	MaxEntries int
	// MaxCost caps the result cache's total weight in cells
	// (0 = DefaultMaxCost).
	MaxCost int64
	// MaxInFlight caps the number of requests computing concurrently
	// (0 = GOMAXPROCS). Cached and deduplicated requests are served
	// without consuming a slot.
	MaxInFlight int
}

// Engine serves typed requests with caching, deduplication and admission
// control. Construct with New; an Engine is safe for concurrent use.
type Engine struct {
	cache *resultCache
	sem   *par.Semaphore

	mu      sync.Mutex
	flights map[string]*flight
}

// New creates an engine with the given options.
func New(opts Options) *Engine {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxCost <= 0 {
		opts.MaxCost = DefaultMaxCost
	}
	return &Engine{
		cache:   newResultCache(opts.MaxEntries, opts.MaxCost),
		sem:     par.NewSemaphore(opts.MaxInFlight),
		flights: make(map[string]*flight),
	}
}

// InFlight returns the number of requests currently computing.
func (e *Engine) InFlight() int { return e.sem.InFlight() }

// CacheLen returns the number of cached responses.
func (e *Engine) CacheLen() int { return e.cache.len() }

// Do serves one request: validate, consult the cache, join or lead the
// in-flight computation for the request's content address, and compute
// under admission control. The returned response is the caller's own —
// its dataset is a private clone — and its CacheHit field reports whether
// any computation happened on the caller's behalf.
//
// Errors are classified per internal/nwerr: a malformed request is
// Invalid (no work is admitted), ctx cancellation surfaces as Canceled,
// and computation failures pass through for ClassOf to read as Internal.
// A follower of a deduplicated flight shares the leader's result and the
// leader's error — including a Canceled one — since no computation of its
// own remains to continue.
func (e *Engine) Do(ctx context.Context, req Request) (*Response, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	reg := obs.From(ctx)
	reg.Counter("engine/requests").Add(1)
	reg.Counter("engine/" + string(req.Kind) + "/requests").Add(1)
	span := reg.StartSpan("engine/request/" + string(req.Kind))
	defer span.End()
	if err := ctx.Err(); err != nil {
		return nil, nwerr.Canceled(err)
	}

	if !req.Kind.cacheable() {
		resp, err := e.compute(ctx, req, reg)
		if err != nil {
			return nil, err
		}
		resp.CacheHit = false
		return resp, nil
	}

	key := req.Key()
	if resp, ok := e.cache.get(key); ok {
		reg.Counter("engine/cache/hits").Add(1)
		return resp.clone(req, true), nil
	}
	reg.Counter("engine/cache/misses").Add(1)

	f, leader := e.joinOrLead(key)
	if !leader {
		reg.Counter("engine/flight/joined").Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, nwerr.Canceled(ctx.Err())
		}
		if f.err != nil {
			return nil, f.err
		}
		return f.resp.clone(req, true), nil
	}

	resp, err := e.compute(ctx, req, reg)
	if err == nil {
		evicted := e.cache.add(key, resp, resp.cost())
		if evicted > 0 {
			reg.Counter("engine/cache/evictions").Add(int64(evicted))
		}
		reg.Gauge("engine/cache/entries").Set(float64(e.cache.len()))
		reg.Gauge("engine/cache/cost").Set(float64(e.cache.costNow()))
	}
	e.land(f, key, resp, err)
	if err != nil {
		return nil, err
	}
	return resp.clone(req, false), nil
}

// compute admits the request through the semaphore and runs its kind's
// entry point. The response comes back un-cloned: Do decides whether it
// becomes a cached original or goes straight to the caller.
func (e *Engine) compute(ctx context.Context, req Request, reg *obs.Registry) (*Response, error) {
	if err := e.sem.Acquire(ctx); err != nil {
		reg.Counter("engine/admission/aborted").Add(1)
		return nil, nwerr.Canceled(err)
	}
	reg.Gauge("engine/inflight").Set(float64(e.sem.InFlight()))
	defer func() {
		e.sem.Release()
		reg.Gauge("engine/inflight").Set(float64(e.sem.InFlight()))
	}()
	reg.Counter("engine/computes").Add(1)
	reg.Counter("engine/" + string(req.Kind) + "/computes").Add(1)
	span := reg.StartSpan("engine/compute/" + string(req.Kind))
	defer span.End()

	resp, err := computeKind(ctx, req)
	if err != nil {
		reg.Counter("engine/compute_errors").Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, nwerr.Canceled(err)
		}
		return nil, err
	}
	resp.Key = req.Key()
	return resp, nil
}
