// Package engine is the serving layer of the decoder pipeline: a typed
// request/response API fronting the expensive library entry points
// (core.NewDesign, Design.MonteCarloYieldWorkers, experiments.Runner,
// sweep.RunWorkers, crossbar fabrication) behind a stack of composable
// backends, each owning one cross-cutting mechanism the entry points
// themselves stay free of:
//
//   - singleflight deduplication: concurrent identical requests share one
//     computation instead of racing to do the same work;
//   - a bounded, content-addressed result cache: the pipeline's
//     determinism invariant makes a request's identity fields a complete
//     address for its result, so equal requests — at any worker count —
//     are served from memory;
//   - admission control: a semaphore bounds the number of requests
//     computing at once, so a burst degrades to queueing (or, in shed
//     mode, to an Overload-class rejection) instead of unbounded memory
//     and scheduler pressure;
//   - computation: the kind dispatch itself.
//
// The layers compose through the Backend interface, in request-flow
// order singleflight → cache → admission → compute. The Engine facade
// validates and counts requests at the top of the chain and is itself a
// Backend, which is what lets internal/cluster route request keys across
// a fleet of engines: a peer backend composes over a remote node's
// facade exactly as the local layers compose over each other.
//
// Every command-line tool and the nwserve HTTP facade submit work through
// Engine.Do. Errors carry the internal/nwerr taxonomy: malformed requests
// are Invalid, context cancellation is Canceled, shed work is Overload,
// everything else is Internal — callers branch with errors.Is instead of
// string matching.
//
// The engine is instrumented with internal/obs (request/compute counters
// per kind, cache hit/miss/eviction counters, in-flight gauge, per-kind
// spans) through the registry carried by the request context; with no
// registry installed the instrumentation is free. Each layer additionally
// keeps always-on atomic BackendStats, readable per layer through
// Engine.BackendStats.
package engine

import (
	"context"

	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// Cache sizing defaults. The cost unit is one dataset cell (see
// Response.cost); the default cost cap holds about a million cells —
// a few hundred times the repository's largest experiment dataset.
const (
	// DefaultMaxEntries bounds the number of cached responses.
	DefaultMaxEntries = 128
	// DefaultMaxCost bounds the total cached weight in cells.
	DefaultMaxCost int64 = 1 << 20
)

// Options configures an Engine. The zero value selects the defaults;
// negative caps are rejected by New with an Invalid-class error.
type Options struct {
	// MaxEntries caps the result cache's entry count
	// (0 = DefaultMaxEntries).
	MaxEntries int
	// MaxCost caps the result cache's total weight in cells
	// (0 = DefaultMaxCost).
	MaxCost int64
	// MaxInFlight caps the number of requests computing concurrently
	// (0 = GOMAXPROCS). Cached and deduplicated requests are served
	// without consuming a slot.
	MaxInFlight int
	// Shed selects the admission policy under saturation: false (the
	// default, what the CLIs want) queues until a slot frees or the
	// context dies; true (what a server under open-ended load wants)
	// fails fast with an Overload-class error the HTTP facade maps to
	// 503 + Retry-After.
	Shed bool
}

// validate rejects option values that would silently misbehave (a
// negative cap is neither "unlimited" nor "default" — it is a bug in the
// caller).
func (o Options) validate() error {
	if o.MaxEntries < 0 {
		return nwerr.Invalidf("engine: negative MaxEntries %d", o.MaxEntries)
	}
	if o.MaxCost < 0 {
		return nwerr.Invalidf("engine: negative MaxCost %d", o.MaxCost)
	}
	if o.MaxInFlight < 0 {
		return nwerr.Invalidf("engine: negative MaxInFlight %d", o.MaxInFlight)
	}
	return nil
}

// Engine is the facade over the backend stack: it validates requests,
// counts them, and hands them to the head of the chain. Construct with
// New; an Engine is safe for concurrent use and implements Backend.
type Engine struct {
	head      Backend
	flight    *singleflightBackend
	cache     *cacheBackend
	admission *admissionBackend
	compute   *computeBackend
	stats     layerStats
}

// New creates an engine with the given options. Invalid options (negative
// caps) are rejected with an Invalid-class error.
func New(opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxCost == 0 {
		opts.MaxCost = DefaultMaxCost
	}
	compute := newComputeBackend()
	admission := newAdmissionBackend(opts.MaxInFlight, opts.Shed, compute)
	cache := newCacheBackend(opts.MaxEntries, opts.MaxCost, admission)
	flight := newSingleflightBackend(cache)
	return &Engine{
		head:      flight,
		flight:    flight,
		cache:     cache,
		admission: admission,
		compute:   compute,
		stats:     layerStats{name: "engine"},
	}, nil
}

// InFlight returns the number of requests currently computing.
func (e *Engine) InFlight() int { return e.admission.inFlight() }

// CacheLen returns the number of cached responses.
func (e *Engine) CacheLen() int { return e.cache.len() }

// Stats reports the facade's lifetime counters (all requests entering
// the engine); the per-layer breakdown is BackendStats.
func (e *Engine) Stats() BackendStats { return e.stats.Stats() }

// BackendStats reports the lifetime counters of every layer, facade
// first, in request-flow order.
func (e *Engine) BackendStats() []BackendStats {
	return []BackendStats{
		e.Stats(),
		e.flight.Stats(),
		e.cache.Stats(),
		e.admission.Stats(),
		e.compute.Stats(),
	}
}

// Handle makes the Engine a Backend, so cluster routing layers compose
// over it. It is Do by another name.
func (e *Engine) Handle(ctx context.Context, req Request) (*Response, error) {
	return e.Do(ctx, req)
}

// Do serves one request: validate, then hand it to the backend chain —
// deduplicate against in-flight identical requests, consult the cache,
// and compute under admission control. The returned response is the
// caller's own — its dataset is a private clone — and its CacheHit field
// reports whether any computation happened on the caller's behalf.
//
// Errors are classified per internal/nwerr: a malformed request is
// Invalid (no work is admitted), ctx cancellation surfaces as Canceled,
// shed work is Overload, and computation failures pass through for
// ClassOf to read as Internal. A follower of a deduplicated flight
// shares the leader's result and the leader's error — including a
// Canceled one — since no computation of its own remains to continue.
func (e *Engine) Do(ctx context.Context, req Request) (*Response, error) {
	e.stats.requests.Add(1)
	if err := req.validate(); err != nil {
		e.stats.errors.Add(1)
		return nil, err
	}
	req.key = req.Key() // memoize: one fingerprint per request, not one per layer
	reg := obs.From(ctx)
	reg.Counter("engine/requests").Add(1)
	reg.Counter("engine/" + string(req.Kind) + "/requests").Add(1)
	span := reg.StartSpan("engine/request/" + string(req.Kind))
	defer span.End()
	if err := ctx.Err(); err != nil {
		e.stats.errors.Add(1)
		return nil, nwerr.Canceled(err)
	}
	resp, err := e.head.Handle(ctx, req)
	if err != nil {
		e.stats.errors.Add(1)
		return nil, err
	}
	return resp, nil
}
