package engine

// White-box tests driving each backend layer in isolation through a stub
// next-layer, the way the Backend refactor promises: admission, cache and
// singleflight are each testable without the real compute dispatch, so
// their contracts (shed on saturation, serve-from-cache, one descent per
// flight) pin down deterministically instead of racing real workloads.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"nwdec/internal/nwerr"
)

// stubBackend is a controllable next layer: it counts calls, optionally
// blocks until released, and returns a fixed response or error.
type stubBackend struct {
	mu      sync.Mutex
	calls   int
	entered chan struct{} // when set, Handle signals each entry on it
	release chan struct{} // when set, Handle blocks until it closes
	err     error
	stats   layerStats
}

func (s *stubBackend) Stats() BackendStats { return s.stats.Stats() }

func (s *stubBackend) Handle(ctx context.Context, req Request) (*Response, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.release != nil {
		<-s.release
	}
	if s.err != nil {
		return nil, s.err
	}
	return &Response{Yield: 0.5, Key: req.Key()}, nil
}

func (s *stubBackend) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestAdmissionShedsWhenSaturated: with one slot and shed mode on, a
// request arriving while the slot is held must fail fast with an
// Overload-class error — and the layer must recover as soon as the slot
// frees, with no reset or restart.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	stub := &stubBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	b := newAdmissionBackend(1, true, stub)
	req := Request{Kind: KindMonteCarlo, Trials: 1}

	done := make(chan error, 1)
	go func() {
		_, err := b.Handle(context.Background(), req)
		done <- err
	}()
	<-stub.entered // the slot is now provably held

	if _, err := b.Handle(context.Background(), req); !errors.Is(err, nwerr.ErrOverload) {
		t.Fatalf("saturated admission returned %v, want ErrOverload", err)
	}
	if got := b.Stats().Errors; got != 1 {
		t.Errorf("admission errors = %d, want 1", got)
	}

	close(stub.release)
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	// The slot is free again: the very next request is admitted.
	stub.entered, stub.release = nil, nil
	if _, err := b.Handle(context.Background(), req); err != nil {
		t.Fatalf("admission did not recover after the slot freed: %v", err)
	}
	if got := stub.callCount(); got != 2 {
		t.Errorf("next layer ran %d times, want 2 (the shed request never descended)", got)
	}
}

// TestAdmissionQueuesWithoutShed: in queueing mode a saturated semaphore
// blocks the caller instead of rejecting it, and a dead context aborts
// the wait with a Canceled-class error.
func TestAdmissionQueuesWithoutShed(t *testing.T) {
	stub := &stubBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	b := newAdmissionBackend(1, false, stub)
	req := Request{Kind: KindMonteCarlo, Trials: 1}

	done := make(chan error, 1)
	go func() {
		_, err := b.Handle(context.Background(), req)
		done <- err
	}()
	<-stub.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Handle(ctx, req); !errors.Is(err, nwerr.ErrCanceled) {
		t.Fatalf("canceled waiter returned %v, want ErrCanceled", err)
	}
	close(stub.release)
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// TestCacheBackendServesRepeats: the cache layer answers a repeated key
// itself — the next layer runs exactly once — and hands out private
// clones, never the cached original.
func TestCacheBackendServesRepeats(t *testing.T) {
	stub := &stubBackend{}
	b := newCacheBackend(4, 1<<20, stub)
	req := Request{Kind: KindMonteCarlo, Trials: 1}

	first, err := b.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || !second.CacheHit {
		t.Errorf("CacheHit = %v/%v, want false/true", first.CacheHit, second.CacheHit)
	}
	if got := stub.callCount(); got != 1 {
		t.Errorf("next layer ran %d times, want 1", got)
	}
	if first == second {
		t.Error("cache handed the same *Response to two callers")
	}
	st := b.Stats()
	if st.Requests != 2 || st.Served != 1 {
		t.Errorf("cache stats = %+v, want 2 requests, 1 served", st)
	}
}

// TestCacheBackendSkipsUncacheable: fabrication must bypass the cache
// entirely — every request descends, nothing is stored.
func TestCacheBackendSkipsUncacheable(t *testing.T) {
	stub := &stubBackend{}
	b := newCacheBackend(4, 1<<20, stub)
	req := Request{Kind: KindFabricate, Seed: 1}
	for i := 0; i < 2; i++ {
		if _, err := b.Handle(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := stub.callCount(); got != 2 {
		t.Errorf("next layer ran %d times, want 2", got)
	}
	if got := b.len(); got != 0 {
		t.Errorf("uncacheable kind left %d cache entries", got)
	}
}

// TestSingleflightDescendsOncePerFlight: concurrent identical requests
// produce exactly one descent into the next layer; followers share the
// leader's result as private clones.
func TestSingleflightDescendsOncePerFlight(t *testing.T) {
	stub := &stubBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	b := newSingleflightBackend(stub)
	req := Request{Kind: KindMonteCarlo, Trials: 1}

	const followers = 4
	var wg sync.WaitGroup
	leadErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := b.Handle(context.Background(), req)
		leadErr <- err
	}()
	<-stub.entered // the leader holds the flight open

	resps := make([]*Response, followers)
	errs := make([]error, followers)
	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = b.Handle(context.Background(), req)
		}(i)
	}
	// Wait until every follower has joined, then land the flight. Joining
	// happens before blocking on done, so once the map shows waiters the
	// count is monotonic.
	for {
		b.mu.Lock()
		joined := 0
		if f, ok := b.flights[req.Key()]; ok {
			joined = f.waiters
		}
		b.mu.Unlock()
		if joined == followers {
			break
		}
		runtime.Gosched()
	}
	close(stub.release)
	wg.Wait()
	if err := <-leadErr; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !resps[i].CacheHit {
			t.Errorf("follower %d did not report a shared result", i)
		}
	}
	if got := stub.callCount(); got != 1 {
		t.Errorf("next layer ran %d times, want 1", got)
	}
	if got := b.Stats().Served; got != followers {
		t.Errorf("singleflight served = %d, want %d", got, followers)
	}
}

// TestSingleflightLeaderErrorShared: a leader's failure propagates to its
// followers — and is not latched: the next request leads a fresh flight.
func TestSingleflightLeaderErrorShared(t *testing.T) {
	boom := errors.New("boom")
	stub := &stubBackend{err: boom}
	b := newSingleflightBackend(stub)
	req := Request{Kind: KindMonteCarlo, Trials: 1}
	if _, err := b.Handle(context.Background(), req); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	stub.err = nil
	if _, err := b.Handle(context.Background(), req); err != nil {
		t.Fatalf("flight error latched: %v", err)
	}
	if got := stub.callCount(); got != 2 {
		t.Errorf("next layer ran %d times, want 2", got)
	}
}
