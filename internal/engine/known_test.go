package engine_test

import (
	"testing"

	"nwdec/internal/engine"
)

// TestExperimentKnown pins the name resolution the HTTP facade relies on
// for its 404 mapping: registry names, the mc alias and case/space
// normalization resolve; anything else does not.
func TestExperimentKnown(t *testing.T) {
	for _, name := range engine.ExperimentNames() {
		if !engine.ExperimentKnown(name) {
			t.Errorf("registry name %q not known", name)
		}
	}
	for _, name := range []string{"mc", " FIG7 ", "Montecarlo"} {
		if !engine.ExperimentKnown(name) {
			t.Errorf("%q should resolve", name)
		}
	}
	for _, name := range []string{"", "nope", "all"} {
		if engine.ExperimentKnown(name) {
			t.Errorf("%q should not resolve", name)
		}
	}
}
