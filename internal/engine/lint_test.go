package engine_test

import (
	"testing"

	"nwdec/internal/lint"
)

// TestEngineLintClean runs the full nwlint analyzer suite over the engine
// and the error taxonomy it exports: both carry the determinism invariant
// (registered in DeterministicPkgs — a cache keyed by content addresses
// must never fold wall time or map order into results), and the engine is
// a context-entry package (its Do accepts ctx first and honors
// cancellation).
func TestEngineLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the packages from source")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	if !cfg.Deterministic(loader.Module + "/internal/engine") {
		t.Error("internal/engine is not registered as a deterministic package")
	}
	if !cfg.Deterministic(loader.Module + "/internal/nwerr") {
		t.Error("internal/nwerr is not registered as a deterministic package")
	}
	if !cfg.CtxEntry(loader.Module + "/internal/engine") {
		t.Error("internal/engine is not registered as a context-entry package")
	}
	for _, path := range []string{"/internal/engine", "/internal/nwerr"} {
		pkg, err := loader.Load(loader.Module + path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range lint.Run([]*lint.Package{pkg}, lint.All(), cfg) {
			t.Errorf("%s", d)
		}
	}
}
