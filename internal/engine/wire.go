package engine

import (
	"encoding/json"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

// wireRequest is the JSON interchange form of a Request for the cluster
// peer protocol. It mirrors the identity fields exactly — both ends of
// the protocol run the same binary, so the encoding only needs to be a
// faithful round trip, not a versioned format. Workers is deliberately
// absent: it is an execution detail excluded from the content address,
// and the owning node computes with its own worker bound.
type wireRequest struct {
	Kind       Kind           `json:"kind"`
	Config     core.Config    `json:"config"`
	Experiment string         `json:"experiment,omitempty"`
	Grid       sweep.Grid     `json:"grid"`
	Objective  core.Objective `json:"objective"`
	Types      []code.Type    `json:"types,omitempty"`
	Lengths    []int          `json:"lengths,omitempty"`
	Count      int            `json:"count,omitempty"`
	Seed       uint64         `json:"seed,omitempty"`
	Trials     int            `json:"trials,omitempty"`
}

// Wireable reports whether the request can cross the peer protocol: its
// result must be shareable (cacheable kind) and its identity fields must
// survive a JSON round trip. A custom threshold model is the one
// identity field that cannot — Config.Model is an interface, and only
// in-process callers can supply one — so such requests always compute on
// the node that received them.
func (r Request) Wireable() bool {
	return r.Kind.cacheable() && r.Config.Model == nil
}

// MarshalWire encodes the request for the peer protocol. Non-wireable
// requests are rejected with an Invalid-class error; route them locally
// instead.
func (r Request) MarshalWire() ([]byte, error) {
	if !r.Wireable() {
		return nil, nwerr.Invalidf("engine: request kind %q is not wireable", string(r.Kind))
	}
	return json.Marshal(wireRequest{
		Kind:       r.Kind,
		Config:     r.Config,
		Experiment: r.Experiment,
		Grid:       r.Grid,
		Objective:  r.Objective,
		Types:      r.Types,
		Lengths:    r.Lengths,
		Count:      r.Count,
		Seed:       r.Seed,
		Trials:     r.Trials,
	})
}

// UnmarshalWire decodes a peer-protocol request. The result still goes
// through Engine.Do's validation on the serving node; this only rejects
// bytes that are not the wire form at all.
func UnmarshalWire(data []byte) (Request, error) {
	var w wireRequest
	if err := json.Unmarshal(data, &w); err != nil {
		return Request{}, nwerr.Invalidf("engine: bad wire request: %w", err)
	}
	return Request{
		Kind:       w.Kind,
		Config:     w.Config,
		Experiment: w.Experiment,
		Grid:       w.Grid,
		Objective:  w.Objective,
		Types:      w.Types,
		Lengths:    w.Lengths,
		Count:      w.Count,
		Seed:       w.Seed,
		Trials:     w.Trials,
	}, nil
}

// ChunkRequest is the wire form of one job-chunk computation for the
// cluster chunk protocol (POST /peer/chunk): the identity fields of a
// job spec — base config, grid, chunk size — plus the index of the one
// chunk the serving node should evaluate. It lives here rather than in
// internal/jobs because both sides of the protocol need it and the
// cluster layer must not import jobs (the jobs layer composes over the
// cluster, never the reverse). The serving node re-derives the
// deterministic point partition from (config, grid, chunk) exactly as
// the submitting runner did, so an index addresses the same points on
// every node. Worker counts are deliberately absent, as everywhere in
// the identity chain.
type ChunkRequest struct {
	Config core.Config `json:"config"`
	Grid   sweep.Grid  `json:"grid"`
	Chunk  int         `json:"chunk"`
	Index  int         `json:"index"`
}

// MarshalWire encodes the chunk request for the peer protocol. A config
// carrying a custom threshold model cannot cross the wire (the same
// restriction as Request.Wireable) and is rejected as Invalid-class.
func (r ChunkRequest) MarshalWire() ([]byte, error) {
	if r.Config.Model != nil {
		return nil, nwerr.Invalidf("engine: chunk request with a custom threshold model is not wireable")
	}
	return json.Marshal(r)
}

// UnmarshalChunkWire decodes a chunk-protocol request. Validation of the
// decoded spec happens on the serving node; this only rejects bytes that
// are not the wire form at all.
func UnmarshalChunkWire(data []byte) (ChunkRequest, error) {
	var r ChunkRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return ChunkRequest{}, nwerr.Invalidf("engine: bad chunk wire request: %w", err)
	}
	return r, nil
}
