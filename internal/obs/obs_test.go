package obs_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/obs"
	"nwdec/internal/par"
)

// TestCounterGaugeHistogramConcurrent hammers one registry from many
// goroutines — metric updates, lookups and snapshots interleaved — and
// checks the totals. Run under -race (scripts/ci.sh does) this is the
// race-cleanliness gate of the metric layer.
func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	reg := obs.New(nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Look the metrics up every iteration so the registry maps
				// are exercised concurrently, not just the atomics.
				reg.Counter("test/hits").Add(1)
				reg.Gauge("test/level").Set(float64(i))
				reg.Histogram("test/latency").Observe(int64(i))
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test/hits").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := reg.Histogram("test/latency")
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if h.Min() != 0 || h.Max() != perG-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.Min(), h.Max(), perG-1)
	}
	wantSum := int64(goroutines) * perG * (perG - 1) / 2
	if h.Sum() != wantSum {
		t.Errorf("histogram sum = %d, want %d", h.Sum(), wantSum)
	}
}

// TestSnapshotDeterministicAcrossWorkerCounts runs the same instrumented
// workload at worker counts 1, 4 and 8 and checks the observability
// contract: the snapshot schema is identical, the keys come out sorted,
// the deterministic metrics (total tasks, workload counters) agree
// exactly, and snapshotting twice is byte-identical.
func TestSnapshotDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	var schema string
	for _, w := range []int{1, 4, 8} {
		reg := obs.New(nil) // no clock: every metric value is deterministic
		ctx := obs.Into(context.Background(), reg)
		err := par.ForEachN(ctx, w, n, func(ctx context.Context, i int) error {
			obs.From(ctx).Counter("test/work").Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		snap := reg.Snapshot()

		cols := make([]string, len(snap.Columns))
		for i, c := range snap.Columns {
			cols[i] = c.Name + ":" + c.Kind.String()
		}
		sig := strings.Join(cols, ",")
		if schema == "" {
			schema = sig
		} else if sig != schema {
			t.Errorf("workers=%d: schema %q != %q", w, sig, schema)
		}

		values := snapshotValues(snap)
		if got := values["par/tasks|counter"]; got != n {
			t.Errorf("workers=%d: par/tasks = %g, want %d", w, got, n)
		}
		if got := values["test/work|counter"]; got != n {
			t.Errorf("workers=%d: test/work = %g, want %d", w, got, n)
		}
		// Per-worker task counts must add up to the total even though the
		// distribution over workers is scheduling-dependent.
		var perWorker float64
		for key, v := range values {
			if strings.HasPrefix(key, "par/worker/") && strings.HasSuffix(key, "/tasks|counter") {
				perWorker += v
			}
		}
		if perWorker != n {
			t.Errorf("workers=%d: per-worker tasks sum = %g, want %d", w, perWorker, n)
		}

		// Rows come out grouped (counters, gauges, histograms) with names
		// sorted inside each group.
		prev := map[string]string{}
		for _, row := range snap.Rows {
			name, kind := row[0].(string), row[1].(string)
			group := kind
			if kind != "counter" && kind != "gauge" {
				group = "histogram"
			}
			if name < prev[group] {
				t.Errorf("workers=%d: %s names not sorted: %q after %q", w, group, name, prev[group])
			}
			prev[group] = name
		}

		if a, b := snap.CSV(), reg.Snapshot().CSV(); a != b {
			t.Errorf("workers=%d: consecutive snapshots differ:\n%s\n---\n%s", w, a, b)
		}
	}
}

// snapshotValues flattens a snapshot into metric|kind -> value.
func snapshotValues(ds *dataset.Dataset) map[string]float64 {
	out := make(map[string]float64, len(ds.Rows))
	for _, row := range ds.Rows {
		out[row[0].(string)+"|"+row[1].(string)] = row[2].(float64)
	}
	return out
}

// TestSpanNesting drives nested spans with the deterministic manual clock
// and checks the recorded paths and durations.
func TestSpanNesting(t *testing.T) {
	clock := obs.NewManualClock(time.Millisecond)
	reg := obs.New(clock)
	outer := reg.StartSpan("outer") // reads 0ms
	inner := outer.Child("inner")   // reads 1ms
	inner.End()                     // reads 2ms -> 1ms duration
	outer.End()                     // reads 3ms -> 3ms duration

	if got := reg.Histogram("span/outer/inner").Sum(); got != int64(time.Millisecond) {
		t.Errorf("inner span sum = %d, want %d", got, int64(time.Millisecond))
	}
	if got := reg.Histogram("span/outer").Sum(); got != int64(3*time.Millisecond) {
		t.Errorf("outer span sum = %d, want %d", got, int64(3*time.Millisecond))
	}
	if got := reg.Histogram("span/outer").Count(); got != 1 {
		t.Errorf("outer span count = %d, want 1", got)
	}

	// Without a clock, spans still count but record zero durations, so the
	// snapshot stays deterministic.
	nreg := obs.New(nil)
	sp := nreg.StartSpan("quiet")
	sp.End()
	if h := nreg.Histogram("span/quiet"); h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("clockless span count/sum = %d/%d, want 1/0", h.Count(), h.Sum())
	}
}

// TestDisabledIsFree is the zero-overhead contract: with no registry in
// the context, every obs operation on the resulting nil values is a no-op
// with zero allocations.
func TestDisabledIsFree(t *testing.T) {
	ctx := context.Background()
	if reg := obs.From(ctx); reg != nil {
		t.Fatalf("From(Background) = %v, want nil", reg)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		reg := obs.From(ctx)
		reg.Counter("x").Add(1)
		reg.Gauge("g").Set(1)
		reg.Histogram("h").Observe(1)
		sp := reg.StartSpan("s")
		sp.Child("c").End()
		sp.End()
		if reg.Clock() != nil {
			t.Error("nil registry has a clock")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", allocs)
	}
	// Nil-safe reads report zeros.
	var reg *obs.Registry
	if reg.Counter("x").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Error("nil metric reads not zero")
	}
	if got := reg.Snapshot(); len(got.Rows) != 0 || len(got.Columns) != 3 {
		t.Errorf("nil snapshot rows/cols = %d/%d, want 0/3", len(got.Rows), len(got.Columns))
	}
}

// TestHistogramQuantiles sanity-checks the power-of-two quantile
// estimator against an exactly known distribution.
func TestHistogramQuantiles(t *testing.T) {
	reg := obs.New(nil)
	h := reg.Histogram("q")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Min() != 1 || h.Max() != 100 || h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("summary = min %d max %d count %d sum %d", h.Min(), h.Max(), h.Count(), h.Sum())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 1 || p50 > 100 || p99 < p50 || p99 > 100 {
		t.Errorf("quantiles p50=%d p99=%d out of range", p50, p99)
	}
	// Negative observations clamp to zero instead of corrupting buckets.
	h.Observe(-5)
	if h.Min() != 0 {
		t.Errorf("negative observation min = %d, want 0", h.Min())
	}
}

// TestManualClockMonotonic checks the test clock's stepping contract.
func TestManualClockMonotonic(t *testing.T) {
	c := obs.NewManualClock(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if got, want := c.Now(), time.Duration(i)*2*time.Millisecond; got != want {
			t.Errorf("reading %d = %v, want %v", i, got, want)
		}
	}
}

// TestProfileCapture exercises the opt-in pprof/trace helpers end to end:
// all three artifacts are written and non-empty, and Stop is nil-safe.
func TestProfileCapture(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof")
	p, err := obs.StartProfile(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the trace has events.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i
	}
	if sum < 0 {
		t.Fatal("impossible")
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "trace.out"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	var nilP *obs.Profile
	if err := nilP.Stop(); err != nil {
		t.Errorf("nil profile Stop = %v", err)
	}
}
