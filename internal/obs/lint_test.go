package obs_test

import (
	"testing"

	"nwdec/internal/lint"
)

// TestObsLintClean runs the full nwlint analyzer suite over this package:
// the observability layer carries the determinism invariant (it is listed
// in DeterministicPkgs), so it must never read the wall clock, draw from
// global math/rand, create goroutines or print — the clock is injected at
// the command boundary and rendering happens through the dataset layer.
func TestObsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package from source")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if !lint.DefaultConfig(loader.Module).Deterministic(loader.Module + "/internal/obs") {
		t.Error("internal/obs is not registered as a deterministic package")
	}
	pkg, err := loader.Load(loader.Module + "/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.All(), lint.DefaultConfig(loader.Module)) {
		t.Errorf("%s", d)
	}
}
