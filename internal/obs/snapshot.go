package obs

import "nwdec/internal/dataset"

// Histogram snapshot kinds, in render order. The fixed set keeps the
// snapshot schema identical across runs and worker counts: only row
// values move, never the shape.
var histKinds = []string{"count", "sum_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"}

// Snapshot renders the registry's current state as a dataset: one row per
// counter and gauge, six rows per histogram, all sorted by metric name so
// the output order is deterministic. A nil registry snapshots to the same
// (empty) schema. The snapshot is rendered at the command boundary — to
// stderr or a file, never stdout — so experiment output stays
// byte-identical with observability on or off.
func (r *Registry) Snapshot() *dataset.Dataset {
	ds := dataset.New("metrics", "Observability metrics snapshot",
		dataset.Col("metric", dataset.String),
		dataset.Col("kind", dataset.String),
		dataset.Col("value", dataset.Float),
	)
	if r == nil {
		return ds
	}
	r.mu.Lock()
	counters := sortedNames(r.counters)
	gauges := sortedNames(r.gauges)
	histograms := sortedNames(r.histograms)
	r.mu.Unlock()
	for _, name := range counters {
		ds.AddRow(name, "counter", float64(r.Counter(name).Value()))
	}
	for _, name := range gauges {
		ds.AddRow(name, "gauge", r.Gauge(name).Value())
	}
	for _, name := range histograms {
		h := r.Histogram(name)
		for _, kind := range histKinds {
			ds.AddRow(name, kind, histValue(h, kind))
		}
	}
	return ds
}

// histValue extracts one snapshot kind from a histogram.
func histValue(h *Histogram, kind string) float64 {
	switch kind {
	case "count":
		return float64(h.Count())
	case "sum_ns":
		return float64(h.Sum())
	case "min_ns":
		return float64(h.Min())
	case "max_ns":
		return float64(h.Max())
	case "p50_ns":
		return float64(h.Quantile(0.50))
	default: // p99_ns
		return float64(h.Quantile(0.99))
	}
}
