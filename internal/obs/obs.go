// Package obs is the stdlib-only observability layer of the pipeline:
// typed counters, gauges and histograms plus lightweight spans and opt-in
// pprof/trace capture, designed so instrumentation can live inside the
// deterministic packages without ever touching their output.
//
// Three rules keep the layer compatible with the repository's determinism
// invariant (see DESIGN §9):
//
//   - Metrics never feed experiment output. A Registry travels in the
//     context (Into/From) and is rendered at the command boundary — to
//     stderr or a file, never stdout — so golden datasets stay
//     byte-identical whether or not instrumentation is enabled.
//   - Time is injected. The package never reads the wall clock itself; a
//     Clock implementation is supplied by the caller (the real monotonic
//     clock lives behind the command boundary in internal/cli, the tests
//     use ManualClock). With a nil Clock, spans still count invocations
//     but record zero durations, which keeps snapshots fully
//     deterministic.
//   - Disabled means free. Every API is nil-safe: a nil *Registry (the
//     default when no -metrics flag is set) makes every counter update,
//     span and snapshot a no-op with zero allocations, so the
//     instrumented hot paths cost nothing when observability is off.
//
// All metric state is atomic and race-clean; Snapshot renders the current
// values as a dataset with sorted keys, so two snapshots of the same
// (deterministic) run are byte-identical.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic time for spans and timing metrics. Readings are
// durations since an arbitrary fixed epoch (process start for the real
// clock); only differences are meaningful. Implementations must be safe
// for concurrent use.
type Clock interface {
	Now() time.Duration
}

// ManualClock is a deterministic test clock: every Now() returns the
// current reading and then advances it by a fixed step. It is safe for
// concurrent use.
type ManualClock struct {
	step time.Duration
	now  atomic.Int64
}

// NewManualClock returns a clock that starts at zero and advances by step
// on every reading.
func NewManualClock(step time.Duration) *ManualClock {
	return &ManualClock{step: step}
}

// Now returns the current reading and advances the clock by the step.
func (m *ManualClock) Now() time.Duration {
	return time.Duration(m.now.Add(int64(m.step)) - int64(m.step))
}

// Counter is a monotonically increasing metric (task counts, trial
// counts, accumulated nanoseconds). All methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (pool size, grid size). All methods are
// nil-safe.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of the power-of-two histogram: bucket i
// counts observations whose value needs i significant bits, so the full
// int64 range is covered.
const histBuckets = 64

// Histogram accumulates an observed distribution (span durations,
// per-task nanoseconds) in power-of-two buckets plus exact count, sum,
// min and max. All methods are nil-safe and lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values clamp to zero (durations
// from a well-behaved monotonic clock are never negative; the clamp keeps
// the bucket index total).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf returns the power-of-two bucket index of v: the number of
// significant bits (0 for value 0).
func bucketOf(v int64) int {
	i := 0
	for v > 0 {
		i++
		v >>= 1
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the power-of-two
// buckets: it walks the cumulative counts and returns the upper bound of
// the bucket holding the target rank, clamped to the exact min/max. The
// estimate is coarse (factor-of-two resolution) but allocation-free.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			upper := int64(1)<<i - 1 // largest value with i significant bits
			if i == 0 {
				upper = 0
			}
			if mx := h.Max(); upper > mx {
				upper = mx
			}
			if mn := h.Min(); upper < mn {
				upper = mn
			}
			return upper
		}
	}
	return h.Max()
}

// Registry holds the named metrics of one run. The zero value is not
// used; construct with New. A nil *Registry is the disabled state: every
// lookup returns nil and every update is a no-op.
type Registry struct {
	clock Clock

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates a registry. clock drives span and timing measurements; a
// nil clock disables durations (spans still count) and keeps every metric
// value deterministic.
func New(clock Clock) *Registry {
	return &Registry{
		clock:      clock,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Clock returns the registry's clock (nil for a nil registry or when no
// clock was injected).
func (r *Registry) Clock() Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should look the counter up once and hold the pointer.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// sortedNames returns the keys of one metric map in sorted order; the
// caller holds r.mu. The sort erases map-iteration order, which is what
// makes snapshots deterministic.
func sortedNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
