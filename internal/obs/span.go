package obs

import "time"

// Span measures one named region of work. Spans nest by path: a child of
// span "experiment/fig7" named "analyze" records under
// "span/experiment/fig7/analyze", so the snapshot reads as a call tree.
// A nil *Span (from a nil registry) is a no-op.
type Span struct {
	reg      *Registry
	path     string
	start    time.Duration
	hasClock bool
}

// StartSpan opens a span. With a clock injected the span measures
// elapsed monotonic time; without one it still counts invocations and
// records zero durations, keeping the snapshot deterministic.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{reg: r, path: name}
	if r.clock != nil {
		s.start = r.clock.Now()
		s.hasClock = true
	}
	return s
}

// Child opens a nested span whose path extends the parent's. Ending the
// parent does not end its children; callers end spans innermost-first.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.StartSpan(s.path + "/" + name)
}

// End records the span into the histogram "span/<path>" (duration in
// nanoseconds, zero without a clock). End is safe to call exactly once
// per span; calling it on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	var d time.Duration
	if s.hasClock {
		d = s.reg.clock.Now() - s.start
	}
	s.reg.Histogram("span/" + s.path).Observe(int64(d))
}
