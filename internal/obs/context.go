package obs

import "context"

// ctxKey is the private context key type of the package.
type ctxKey struct{}

// Into returns a context carrying the registry. The instrumented layers
// (par, experiments, core, sweep, crossbar) recover it with From, so one
// Into at the command boundary threads observability through the whole
// pipeline without touching any signature.
func Into(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From returns the context's registry, or nil when none was installed —
// the disabled state, in which every obs operation is a free no-op.
func From(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
