package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"runtime/trace"
)

// Profile is an in-flight pprof/trace capture started by StartProfile.
// Stop finalizes it; a nil *Profile is a no-op.
type Profile struct {
	dir   string
	cpu   *os.File
	trace *os.File
}

// StartProfile begins opt-in profiling into dir (created if absent):
// cpu.pprof receives a CPU profile, trace.out an execution trace, and
// Stop adds heap.pprof. The capture is strictly additive — it observes
// the run without changing what is computed — and is wired to the -pprof
// flag of every command.
func StartProfile(dir string) (*Profile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating profile dir: %w", err)
	}
	p := &Profile{dir: dir}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		if cerr := cpu.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	p.cpu = cpu
	tr, err := os.Create(filepath.Join(dir, "trace.out"))
	if err != nil {
		pprof.StopCPUProfile()
		if cerr := cpu.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, fmt.Errorf("obs: creating trace file: %w", err)
	}
	if err := trace.Start(tr); err != nil {
		pprof.StopCPUProfile()
		err = errors.Join(err, cpu.Close(), tr.Close())
		return nil, fmt.Errorf("obs: starting trace: %w", err)
	}
	p.trace = tr
	return p, nil
}

// Stop finalizes the capture: it stops the CPU profile and trace, writes
// heap.pprof and closes the files. The first error is returned after all
// finalization has been attempted.
func (p *Profile) Stop() error {
	if p == nil {
		return nil
	}
	var errs []error
	pprof.StopCPUProfile()
	trace.Stop()
	if p.cpu != nil {
		if err := p.cpu.Close(); err != nil {
			errs = append(errs, err)
		}
		p.cpu = nil
	}
	if p.trace != nil {
		if err := p.trace.Close(); err != nil {
			errs = append(errs, err)
		}
		p.trace = nil
	}
	heap, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if err != nil {
		errs = append(errs, err)
	} else {
		if err := pprof.WriteHeapProfile(heap); err != nil {
			errs = append(errs, err)
		}
		if err := heap.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("obs: stopping profile: %w", errors.Join(errs...))
	}
	return nil
}
