package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
)

// testNode is one in-process fleet member: an engine behind an httptest
// server exposing only the internal peer route, plus the routing backend
// the node's own clients would use.
type testNode struct {
	id      string
	eng     *engine.Engine
	srv     *httptest.Server
	backend *PeerBackend
}

// newTestCluster starts n cross-peered nodes. Every node runs its own
// engine; the rings agree because they are built from the same
// membership.
func newTestCluster(t testing.TB, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		eng, err := engine.New(engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("POST "+PeerPath, PeerHandler(eng))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{id: string(rune('a' + i)), eng: eng, srv: srv}
	}
	for i, node := range nodes {
		peers := make(map[string]string)
		for j, other := range nodes {
			if j != i {
				peers[other.id] = other.srv.URL
			}
		}
		backend, err := NewPeerBackend(node.eng, Options{Self: node.id, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		node.backend = backend
	}
	return nodes
}

// computeCount reads the engine's always-on compute-layer counter.
func computeCount(eng *engine.Engine) int64 {
	for _, st := range eng.BackendStats() {
		if st.Name == "compute" {
			return st.Requests
		}
	}
	return -1
}

// TestClusterComputesOncePerFleet is the cluster-wide coalescing proof:
// N concurrent identical requests arriving at every node of a 3-node
// fleet run exactly one computation across the whole cluster — the ring
// funnels them to one owner, and the owner's singleflight and cache
// absorb the fan-in. Run under -race this also exercises the peer path's
// synchronization.
func TestClusterComputesOncePerFleet(t *testing.T) {
	nodes := newTestCluster(t, 3)
	req := engine.Request{Kind: engine.KindCodes, Count: 3}
	owner := nodes[0].backend.Ring().Owner(req.Key())

	const perNode = 8
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
		resps []*engine.Response
	)
	for _, node := range nodes {
		for i := 0; i < perNode; i++ {
			wg.Add(1)
			go func(node *testNode) {
				defer wg.Done()
				<-start
				resp, err := node.backend.Handle(context.Background(), req)
				if err != nil {
					t.Errorf("node %s: %v", node.id, err)
					return
				}
				mu.Lock()
				resps = append(resps, resp)
				mu.Unlock()
			}(node)
		}
	}
	close(start)
	wg.Wait()

	var total int64
	for _, node := range nodes {
		c := computeCount(node.eng)
		if node.id != owner && c != 0 {
			t.Errorf("non-owner %s computed %d times, want 0", node.id, c)
		}
		total += c
	}
	if total != 1 {
		t.Errorf("fleet ran %d computations for one request key, want exactly 1", total)
	}
	if len(resps) != perNode*len(nodes) {
		t.Fatalf("%d responses, want %d", len(resps), perNode*len(nodes))
	}

	// Every response carries the same dataset bytes, whether it was
	// served locally on the owner or re-parsed from the peer protocol.
	var want bytes.Buffer
	if err := resps[0].Dataset.Render(&want, dataset.FormatJSON); err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Key != req.Key() {
			t.Errorf("response %d: key %q, want %q", i, resp.Key, req.Key())
		}
		var got bytes.Buffer
		if err := resp.Dataset.Render(&got, dataset.FormatJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("response %d serializes differently from response 0", i)
		}
	}
}

// TestClusterPeerProvenance: a request routed through a non-owning node
// reports Peer=true with the owner's hit/miss verdict — miss on first
// fetch, hit on the repeat (the owner's cache is the key's home; the
// requester deliberately does not re-cache).
func TestClusterPeerProvenance(t *testing.T) {
	nodes := newTestCluster(t, 2)
	req := engine.Request{Kind: engine.KindCodes, Count: 5}
	owner := nodes[0].backend.Ring().Owner(req.Key())
	var asker *testNode
	for _, node := range nodes {
		if node.id != owner {
			asker = node
		}
	}
	first, err := asker.backend.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Peer || first.CacheHit {
		t.Errorf("first fetch: Peer=%v CacheHit=%v, want peer miss", first.Peer, first.CacheHit)
	}
	second, err := asker.backend.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Peer || !second.CacheHit {
		t.Errorf("second fetch: Peer=%v CacheHit=%v, want peer hit", second.Peer, second.CacheHit)
	}
	if got := computeCount(asker.eng); got != 0 {
		t.Errorf("asker computed %d times, want 0", got)
	}
}

// TestClusterDeadPeerFallsBackLocal: a peer that cannot be reached
// degrades the key to local computation — the caller still gets a
// result, with Peer=false and the failure visible in the layer stats.
func TestClusterDeadPeerFallsBackLocal(t *testing.T) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	backend, err := NewPeerBackend(eng, Options{Self: "live", Peers: map[string]string{"dead": deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	// Find a request the dead node owns, so the fetch must be attempted.
	var req engine.Request
	for count := 1; ; count++ {
		req = engine.Request{Kind: engine.KindCodes, Count: count}
		if backend.Ring().Owner(req.Key()) == "dead" {
			break
		}
	}
	resp, err := backend.Handle(context.Background(), req)
	if err != nil {
		t.Fatalf("dead peer surfaced as an error: %v", err)
	}
	if resp.Peer {
		t.Error("response claims peer provenance after a failed fetch")
	}
	if resp.Dataset == nil {
		t.Error("local fallback returned no dataset")
	}
	st := backend.Stats()
	if st.Errors != 1 {
		t.Errorf("peer stats errors = %d, want 1", st.Errors)
	}
	if got := computeCount(eng); got != 1 {
		t.Errorf("local engine computed %d times, want 1", got)
	}
}

// TestClusterNonWireableStaysLocal: requests that cannot cross the wire
// (fabrication's mutable result, custom threshold models) never attempt
// a peer fetch, whoever owns their key.
func TestClusterNonWireableStaysLocal(t *testing.T) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The peer is unreachable; any attempted fetch would show up in the
	// error stats.
	backend, err := NewPeerBackend(eng, Options{Self: "live", Peers: map[string]string{"dead": "http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := backend.Handle(context.Background(), engine.Request{Kind: engine.KindFabricate, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Memory == nil || resp.Peer {
		t.Errorf("fabrication: Memory=%v Peer=%v, want local mutable result", resp.Memory, resp.Peer)
	}
	if st := backend.Stats(); st.Errors != 0 {
		t.Errorf("non-wireable request attempted %d peer fetches", st.Errors)
	}
}

// errorBackend stubs the local engine with a fixed error, for driving
// PeerHandler's status mapping.
type errorBackend struct{ err error }

func (b errorBackend) Handle(ctx context.Context, req engine.Request) (*engine.Response, error) {
	return nil, b.err
}
func (b errorBackend) Stats() engine.BackendStats { return engine.BackendStats{Name: "stub"} }

// TestPeerHandlerStatusMapping: the internal route speaks the nwerr
// taxonomy over HTTP — Overload is 503 with a Retry-After hint (the
// load-shedding contract), Canceled 408, Invalid 400 — and rejects
// bodies that are not the wire form.
func TestPeerHandlerStatusMapping(t *testing.T) {
	wire, err := engine.Request{Kind: engine.KindCodes, Count: 1}.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		backendErr error
		body       string
		status     int
		retryAfter string
	}{
		{"overload", nwerr.Overloadf("saturated"), string(wire), http.StatusServiceUnavailable, "1"},
		{"canceled", nwerr.Canceled(context.Canceled), string(wire), http.StatusRequestTimeout, ""},
		{"invalid", nwerr.Invalidf("bad"), string(wire), http.StatusBadRequest, ""},
		{"internal", errors.New("boom"), string(wire), http.StatusInternalServerError, ""},
		{"bad-wire", nil, "{not json", http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := PeerHandler(errorBackend{err: tc.backendErr})
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, PeerPath, strings.NewReader(tc.body)))
			if rec.Code != tc.status {
				t.Errorf("status = %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Errorf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
		})
	}
}

// TestPeerBackendOptions: misconfigurations fail construction with
// Invalid-class errors instead of surfacing later as routing surprises.
func TestPeerBackendOptions(t *testing.T) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"empty-self":    {Peers: map[string]string{"b": "http://x"}},
		"self-in-peers": {Self: "a", Peers: map[string]string{"a": "http://x"}},
		"empty-url":     {Self: "a", Peers: map[string]string{"b": ""}},
	} {
		if _, err := NewPeerBackend(eng, opts); !errors.Is(err, nwerr.ErrInvalid) {
			t.Errorf("%s: NewPeerBackend error = %v, want ErrInvalid", name, err)
		}
	}
}

// BenchmarkClusterRouting measures the steady-state cost of serving a
// sharded keyspace through a 3-node in-process fleet: each iteration
// routes one of 16 warm keys through one of the nodes round-robin, so
// roughly a third of fetches are local cache hits and the rest cross the
// peer protocol (ring lookup, HTTP round trip, dataset re-parse) to hit
// the owner's cache.
func BenchmarkClusterRouting(b *testing.B) {
	nodes := newTestCluster(b, 3)
	const keys = 16
	reqs := make([]engine.Request, keys)
	for i := range reqs {
		reqs[i] = engine.Request{Kind: engine.KindCodes, Count: i + 1}
	}
	ctx := context.Background()
	for _, req := range reqs {
		if _, err := nodes[0].backend.Handle(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := nodes[i%len(nodes)]
		resp, err := node.backend.Handle(ctx, reqs[i%keys])
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatalf("key %d missed every cache in steady state", i%keys)
		}
	}
}
