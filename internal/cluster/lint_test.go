package cluster_test

import (
	"testing"

	"nwdec/internal/lint"
)

// TestClusterLintClean runs the full nwlint analyzer suite over the
// cluster package and asserts its registrations: cluster is a
// context-entry package (peer fetches must honor cancellation, so the
// Backend entry points take ctx first) and is deliberately NOT a
// goroutine package — the fallback hedge is a bounded synchronous
// timeout, and only internal/par and the server binary may spawn. The
// errcheck and printbound analyzers run on every package, cluster
// included, as part of lint.All below.
func TestClusterLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package from source")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	if !cfg.CtxEntry(loader.Module + "/internal/cluster") {
		t.Error("internal/cluster is not registered as a context-entry package")
	}
	if cfg.GoroutineAllowed(loader.Module + "/internal/cluster") {
		t.Error("internal/cluster must not be allowed to create goroutines")
	}
	pkg, err := loader.Load(loader.Module + "/internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.All(), cfg) {
		t.Errorf("%s", d)
	}
}
