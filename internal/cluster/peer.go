package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/obs"
)

// PeerPath is the internal HTTP route of the peer protocol. Nodes POST
// the engine wire form of a request to the owner's PeerPath and receive
// the result dataset as JSON. The route is part of the fleet's internal
// surface, not the public API.
const PeerPath = "/peer/"

// DefaultPeerTimeout bounds one peer fetch. It must cover a full
// computation on the owner (experiments run for seconds, not
// milliseconds); a peer that cannot answer within it is treated as down
// and the request falls back to computing locally.
const DefaultPeerTimeout = 30 * time.Second

// Header names of the peer protocol.
const (
	headerCache = "X-Cache"
	headerKey   = "X-Request-Key"
)

// Options configures a PeerBackend.
type Options struct {
	// Self is this node's ID. It must be a member of Peers' key set
	// union {Self} — keys the ring assigns to Self are served locally.
	Self string
	// Peers maps every *other* node's ID to its base URL
	// (e.g. "http://10.0.0.2:8080"). Self must not appear as a key.
	Peers map[string]string
	// VirtualNodes is the ring multiplicity (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds one peer fetch (0 = DefaultPeerTimeout).
	Timeout time.Duration
	// Client issues the peer requests (nil = a private default client).
	Client *http.Client
}

// PeerBackend is an engine.Backend that routes each request to its key's
// owning node. Requests this node owns — and requests that cannot cross
// the wire (non-cacheable kinds, custom threshold models) — go straight
// to the local engine. Requests a peer owns are POSTed to the peer's
// PeerPath; any peer failure (connection, timeout, non-200, undecodable
// body) falls back to computing locally, so the cluster degrades to a
// set of independent nodes rather than an outage.
//
// Routing everything through the key's owner is what makes the fleet
// compute each key once: the owner's singleflight coalesces concurrent
// fetches from every node, and the owner's cache is the key's single
// home. Peer-served responses are deliberately *not* re-cached locally —
// the owner is the cache home, and a second fetch hitting the owner's
// warm cache is exactly the cheap path the design wants.
type PeerBackend struct {
	self    string
	ring    *Ring
	peers   map[string]string
	client  *http.Client
	timeout time.Duration
	local   engine.Backend

	requests atomic.Int64
	remote   atomic.Int64
	fallback atomic.Int64
	errors   atomic.Int64
}

// NewPeerBackend builds the routing layer over the local engine (or any
// engine.Backend). The ring membership is Self plus every key of Peers.
func NewPeerBackend(local engine.Backend, opts Options) (*PeerBackend, error) {
	if opts.Self == "" {
		return nil, nwerr.Invalidf("cluster: node needs a non-empty -node-id")
	}
	if _, ok := opts.Peers[opts.Self]; ok {
		return nil, nwerr.Invalidf("cluster: peer set must not contain this node %q", opts.Self)
	}
	nodes := make([]string, 0, len(opts.Peers)+1)
	nodes = append(nodes, opts.Self)
	peers := make(map[string]string, len(opts.Peers))
	for id, base := range opts.Peers {
		if base == "" {
			return nil, nwerr.Invalidf("cluster: peer %q has an empty URL", id)
		}
		nodes = append(nodes, id)
		peers[id] = strings.TrimSuffix(base, "/")
	}
	ring, err := NewRing(nodes, opts.VirtualNodes)
	if err != nil {
		return nil, nwerr.Invalid(err)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &PeerBackend{
		self:    opts.Self,
		ring:    ring,
		peers:   peers,
		client:  client,
		timeout: timeout,
		local:   local,
	}, nil
}

// Ring exposes the backend's ring, for ownership introspection.
func (b *PeerBackend) Ring() *Ring { return b.ring }

// Stats reports the layer's lifetime counters. Served counts requests
// answered by a peer (the layer "served" them without local compute);
// Errors counts peer fetch failures — each one also produced a local
// fallback, so an error here is degraded latency, not a failed request.
func (b *PeerBackend) Stats() engine.BackendStats {
	return engine.BackendStats{
		Name:     "peer",
		Requests: b.requests.Load(),
		Served:   b.remote.Load(),
		Errors:   b.errors.Load(),
	}
}

// Handle routes one request: local if this node owns the key (or the
// request cannot cross the wire), otherwise fetched from the owner with
// fallback to local on any peer failure.
func (b *PeerBackend) Handle(ctx context.Context, req engine.Request) (*engine.Response, error) {
	b.requests.Add(1)
	if !req.Wireable() {
		return b.local.Handle(ctx, req)
	}
	key := req.Key()
	owner := b.ring.Owner(key)
	base, ok := b.peers[owner]
	if owner == "" || owner == b.self || !ok {
		obs.From(ctx).Counter("cluster/peer/local").Add(1)
		return b.local.Handle(ctx, req)
	}
	resp, err := b.fetch(ctx, base, req, key)
	if err != nil {
		b.errors.Add(1)
		b.fallback.Add(1)
		reg := obs.From(ctx)
		reg.Counter("cluster/peer/errors").Add(1)
		reg.Counter("cluster/peer/fallback_local").Add(1)
		return b.local.Handle(ctx, req)
	}
	b.remote.Add(1)
	obs.From(ctx).Counter("cluster/peer/served").Add(1)
	return resp, nil
}

// fetch asks the owning node for the request's result. The owner runs
// the request through its own engine facade, so validation, caching,
// deduplication and admission all happen there; this side only moves
// bytes. The fetch is bounded by the per-peer timeout but stays on the
// caller's goroutine — the hedge against a dead peer is the local
// fallback in Handle, not a racing goroutine (this package is
// goroutine-free by project policy).
func (b *PeerBackend) fetch(ctx context.Context, base string, req engine.Request, key string) (resp *engine.Response, err error) {
	body, err := req.MarshalWire()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, b.timeout)
	defer cancel()
	span := obs.From(ctx).StartSpan("cluster/peer/fetch")
	defer span.End()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+PeerPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := b.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := hresp.Body.Close(); err == nil && cerr != nil {
			err, resp = cerr, nil
		}
	}()
	if hresp.StatusCode != http.StatusOK {
		// Drain a little for connection reuse; the text is diagnostic only.
		msg, rerr := io.ReadAll(io.LimitReader(hresp.Body, 512))
		if rerr != nil {
			msg = []byte("(unreadable body: " + rerr.Error() + ")")
		}
		return nil, nwerr.Internalf("cluster: peer %s: status %d: %s", base, hresp.StatusCode, strings.TrimSpace(string(msg)))
	}
	ds, err := dataset.ParseJSON(hresp.Body)
	if err != nil {
		return nil, err
	}
	return &engine.Response{
		Dataset:  ds,
		CacheHit: hresp.Header.Get(headerCache) == "hit",
		Peer:     true,
		Key:      key,
	}, nil
}

// PeerHandler serves PeerPath: it decodes the wire form of a request,
// runs it through the local backend (the node's own engine facade — NOT
// a peer backend, so a mis-routed request computes here instead of
// bouncing around the ring), and writes the result dataset as JSON.
// Errors map to status codes through nwerr.HTTPStatus; an Overload
// rejection carries Retry-After so a shedding owner pushes its peers
// into their local-fallback path with a hint to come back.
func PeerHandler(local engine.Backend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, nwerr.Invalidf("cluster: reading peer request: %w", err))
			return
		}
		req, err := engine.UnmarshalWire(body)
		if err != nil {
			writeError(w, err)
			return
		}
		resp, err := local.Handle(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		if resp.Dataset == nil {
			writeError(w, nwerr.Internalf("cluster: request %s produced no dataset", resp.Key))
			return
		}
		raw, err := resp.Dataset.JSON()
		if err != nil {
			writeError(w, nwerr.Internal(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(headerKey, resp.Key)
		if resp.CacheHit {
			w.Header().Set(headerCache, "hit")
		} else {
			w.Header().Set(headerCache, "miss")
		}
		if _, err := w.Write(raw); err != nil {
			return // client went away; nothing to salvage
		}
	})
}

// writeError maps an error to its taxonomy status (with the Retry-After
// hint on 503) and writes it as the plain-text body.
func writeError(w http.ResponseWriter, err error) {
	status := nwerr.HTTPStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}
