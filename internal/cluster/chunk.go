package cluster

import (
	"context"
	"io"
	"net/http"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
)

// ChunkPath is the internal HTTP route of the chunk protocol: the job
// layer POSTs the engine chunk wire form to a chunk's owning node and
// receives the evaluated chunk dataset as JSON. Like PeerPath it is part
// of the fleet's internal surface, not the public API. The route is more
// specific than PeerPath, so a mux serving both dispatches chunk
// requests here and everything else under /peer/ to the request handler.
const ChunkPath = "/peer/chunk"

// Chunk-protocol header names. They are exported because the job layer's
// ring executor — the client side of the protocol — verifies ChunkKeyHeader
// against the key it routed on, and operators correlate ChunkNodeHeader
// with fleet logs.
const (
	// ChunkKeyHeader carries the content-addressed chunk key the serving
	// node derived from the request. The client rejects a response whose
	// key differs from the one it routed on — the defense against a
	// misconfigured fleet serving the wrong partition.
	ChunkKeyHeader = "X-Chunk-Key"
	// ChunkNodeHeader carries the serving node's ring identity on every
	// chunk response, success or error.
	ChunkNodeHeader = "X-Job-Node"
)

// ChunkFunc evaluates one decoded chunk request on the local node and
// returns the chunk's content-addressed key plus its dataset. The
// cluster layer deliberately takes this as a function rather than
// importing the job layer: jobs composes over cluster, never the
// reverse, so the handler moves bytes and the caller (cmd/nwserve wires
// in jobs.ServeChunk) owns the evaluation semantics.
type ChunkFunc func(ctx context.Context, req engine.ChunkRequest) (key string, ds *dataset.Dataset, err error)

// ChunkHandler serves ChunkPath: it decodes the chunk wire form,
// evaluates it through eval on the caller's goroutine (this package is
// goroutine-free by project policy) and writes the chunk dataset as
// JSON with the key and node headers. Errors map to status codes
// through nwerr.HTTPStatus exactly like the request protocol, so an
// Overload rejection carries Retry-After and pushes the submitting
// runner into its local-fallback path.
func ChunkHandler(node string, eval ChunkFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ChunkNodeHeader, node)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, nwerr.Invalidf("cluster: reading chunk request: %w", err))
			return
		}
		req, err := engine.UnmarshalChunkWire(body)
		if err != nil {
			writeError(w, err)
			return
		}
		key, ds, err := eval(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		if ds == nil {
			writeError(w, nwerr.Internalf("cluster: chunk %s produced no dataset", key))
			return
		}
		raw, err := ds.JSON()
		if err != nil {
			writeError(w, nwerr.Internal(err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(ChunkKeyHeader, key)
		if _, err := w.Write(raw); err != nil {
			return // client went away; nothing to salvage
		}
	})
}
