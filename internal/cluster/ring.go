// Package cluster scales the serving layer horizontally: a deterministic
// consistent-hash ring assigns every engine request key a home node, and
// a peer backend routes cache misses to the key's owner over HTTP before
// computing locally. Combined with the engine's layered backends this
// makes every expensive computation computable once per cluster instead
// of once per node: the owner's singleflight deduplicates the fleet's
// concurrent requests, and the owner's cache is the key's single home.
//
// The package is stdlib-only and goroutine-free (the project confines
// goroutine creation to internal/par and the server binary): peer
// fetches run synchronously under a bounded per-peer timeout, and a peer
// failure falls back to computing locally, so a node never becomes
// unavailable because its peers are.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the ring's default vnode multiplicity. 128
// points per node keeps the maximum ownership imbalance within a few
// percent for small fleets while membership changes stay O(vnodes·log).
const DefaultVirtualNodes = 128

// point is one virtual node on the ring: a hash position owned by a node.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node IDs. Ownership is a pure
// function of the membership set: the same nodes produce the same ring in
// every process and across restarts (the hash is FNV-1a, not a seeded map
// hash), which is what lets every node of a fleet route keys identically
// without coordination. Membership changes move only the keys adjacent to
// the changed node's virtual points — about 1/n of the keyspace when one
// of n nodes joins or leaves — so a rolling restart does not stampede the
// fleet's caches.
//
// A Ring is safe for concurrent use: lookups take a read lock and
// SetNodes swaps the sorted point slice atomically under the write lock.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  []string
	points []point
}

// NewRing builds a ring over the given nodes with vnodes virtual points
// per node (0 selects DefaultVirtualNodes). Duplicate node IDs are
// rejected: two nodes claiming the same points would make ownership
// depend on sort order instead of membership.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	if err := r.SetNodes(nodes); err != nil {
		return nil, err
	}
	return r, nil
}

// SetNodes replaces the membership. The ring is rebuilt from scratch —
// consistent hashing makes the rebuild stable: points of surviving nodes
// do not move.
func (r *Ring) SetNodes(nodes []string) error {
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
	}
	points := make([]point, 0, len(nodes)*r.vnodes)
	for _, n := range nodes {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, point{hash: hash64(n + "#" + itoa(v)), node: n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// A full 64-bit hash collision is vanishingly rare; break the tie
		// on the node ID so ownership stays a pure function of membership.
		return points[i].node < points[j].node
	})
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)

	r.mu.Lock()
	r.nodes = sorted
	r.points = points
	r.mu.Unlock()
	return nil
}

// Owner returns the node owning key: the first virtual point at or after
// the key's hash, wrapping around the ring. An empty ring owns nothing
// and returns "".
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the membership in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// hash64 is the ring's position hash: FNV-1a, chosen because it is
// stable across processes and platforms (a seeded or map-order hash
// would give every process its own ring).
func hash64(s string) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, s) // hash writes never fail
	return h.Sum64()
}

// itoa is strconv.Itoa for the small non-negative vnode indices, inlined
// to keep the hot ring-build loop allocation-light.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
