package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// testKeys returns a deterministic keyspace shaped like engine content
// addresses (kind prefix + fingerprint-ish suffix).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("montecarlo/%016x", i*2654435761)
	}
	return keys
}

func mustRing(t *testing.T, nodes []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingDeterministicAcrossRestarts: ownership must be a pure function
// of the membership set — two independently built rings (as after a
// process restart, or on two different nodes of the fleet) agree on
// every key, regardless of the order the membership was listed in.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a := mustRing(t, []string{"n1", "n2", "n3"}, 0)
	b := mustRing(t, []string{"n3", "n1", "n2"}, 0)
	for _, key := range testKeys(4096) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingJoinMovesOnlyToNewNode: consistent hashing's defining bound —
// when a node joins, the only keys that change owner are the ones the
// new node claims (≈ 1/n of the keyspace), because surviving nodes'
// virtual points do not move. Any key moving between two old nodes
// would be a correctness bug, not just an efficiency one.
func TestRingJoinMovesOnlyToNewNode(t *testing.T) {
	keys := testKeys(8192)
	before := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 0)
	after := mustRing(t, []string{"n1", "n2", "n3", "n4", "n5"}, 0)
	moved := 0
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was == is {
			continue
		}
		if is != "n5" {
			t.Fatalf("key %q moved %q → %q on join of n5; joins must only move keys to the new node", key, was, is)
		}
		moved++
	}
	// Expect ≈ 1/5 of the keyspace; allow generous slack for vnode
	// placement variance, but far below the 4/5 a naive mod-N rehash
	// would move.
	if frac := float64(moved) / float64(len(keys)); frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys, want ≈20%% (vnode variance aside)", 100*frac)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new node owns nothing")
	}
}

// TestRingLeaveMovesOnlyDepartedKeys: the mirror bound — when a node
// leaves, only its keys move (to the survivors); keys between two
// survivors stay put.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	keys := testKeys(8192)
	before := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 0)
	after := mustRing(t, []string{"n1", "n2", "n3"}, 0)
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was != "n4" && was != is {
			t.Fatalf("key %q moved %q → %q on departure of n4; only n4's keys may move", key, was, is)
		}
		if was == "n4" && is == "n4" {
			t.Fatalf("key %q still owned by departed n4", key)
		}
	}
}

// TestRingBalance: with the default vnode multiplicity every node owns a
// meaningful share of the keyspace — no node is starved or dominant.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := mustRing(t, nodes, 0)
	keys := testKeys(10000)
	counts := make(map[string]int)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d of %d keys; want within 2x of fair share %d", n, c, len(keys), fair)
		}
	}
}

// TestRingMembershipRace: concurrent lookups while the membership churns
// must be safe (run under -race) and always return a current member.
func TestRingMembershipRace(t *testing.T) {
	r := mustRing(t, []string{"n1", "n2"}, 16)
	keys := testKeys(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, key := range keys {
					if owner := r.Owner(key); owner == "" {
						t.Error("Owner returned \"\" for a populated ring")
						return
					}
				}
				if got := r.Nodes(); len(got) < 2 {
					t.Errorf("Nodes() = %v mid-churn, want ≥2 members", got)
					return
				}
			}
		}()
	}
	memberships := [][]string{
		{"n1", "n2", "n3"},
		{"n1", "n2", "n3", "n4"},
		{"n1", "n2", "n4"},
		{"n1", "n2"},
	}
	for i := 0; i < 50; i++ {
		if err := r.SetNodes(memberships[i%len(memberships)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRingRejects: invalid membership — empty or duplicate IDs — fails
// construction and leaves an existing ring untouched.
func TestRingRejects(t *testing.T) {
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("NewRing accepted an empty node ID")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("NewRing accepted a duplicate node ID")
	}
	r := mustRing(t, []string{"a", "b"}, 0)
	if err := r.SetNodes([]string{"c", "c"}); err == nil {
		t.Error("SetNodes accepted a duplicate node ID")
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("failed SetNodes mutated the ring: %v", got)
	}
}

// TestRingEmpty: a memberless ring owns nothing rather than panicking.
func TestRingEmpty(t *testing.T) {
	r := mustRing(t, nil, 0)
	if owner := r.Owner("anything"); owner != "" {
		t.Errorf("empty ring returned owner %q", owner)
	}
	if r.Len() != 0 {
		t.Errorf("empty ring has %d members", r.Len())
	}
}
