package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

// chunkBody marshals a minimal valid chunk request.
func chunkBody(t *testing.T) []byte {
	t.Helper()
	req := engine.ChunkRequest{
		Grid:  sweep.Grid{Lengths: []int{4}, SigmaTs: []float64{0.05}},
		Chunk: 1,
		Index: 0,
	}
	body, err := req.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postChunk drives the handler with the given body.
func postChunk(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, ChunkPath, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestChunkHandlerServes pins the happy path of the serving side: the
// decoded request reaches the eval callback, and the response carries
// the dataset JSON plus the key and node headers the client checks.
func TestChunkHandlerServes(t *testing.T) {
	ds := dataset.New("chunk", "one chunk", dataset.Column{Name: "x", Kind: dataset.Float})
	ds.AddRow(1.0)
	var got engine.ChunkRequest
	h := ChunkHandler("b", func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
		got = req
		return "key-123", ds, nil
	})
	rec := postChunk(t, h, string(chunkBody(t)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body)
	}
	if got.Index != 0 || got.Chunk != 1 || len(got.Grid.Lengths) != 1 {
		t.Errorf("eval saw request %+v, want the posted wire form", got)
	}
	if k := rec.Header().Get(ChunkKeyHeader); k != "key-123" {
		t.Errorf("%s = %q, want key-123", ChunkKeyHeader, k)
	}
	if n := rec.Header().Get(ChunkNodeHeader); n != "b" {
		t.Errorf("%s = %q, want b", ChunkNodeHeader, n)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	want, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != string(want) {
		t.Error("response body differs from the dataset JSON")
	}
}

// TestChunkHandlerErrors pins the failure surface: undecodable bodies
// are 400 without reaching eval, eval failures map through the nwerr
// class table (including Retry-After on overload), and a nil dataset is
// an internal error — with the node header present on every response.
func TestChunkHandlerErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		body   string
		eval   ChunkFunc
		status int
	}{
		{"bad-json", "{not wire", nil, http.StatusBadRequest},
		{"eval-invalid", string(chunkBody(t)), func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return "", nil, nwerr.Invalidf("bad chunk")
		}, http.StatusBadRequest},
		{"eval-overload", string(chunkBody(t)), func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return "", nil, nwerr.Overloadf("busy")
		}, http.StatusServiceUnavailable},
		{"eval-internal", string(chunkBody(t)), func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return "", nil, nwerr.Internalf("boom")
		}, http.StatusInternalServerError},
		{"nil-dataset", string(chunkBody(t)), func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return "k", nil, nil
		}, http.StatusInternalServerError},
	} {
		t.Run(tc.name, func(t *testing.T) {
			evalCalled := false
			eval := tc.eval
			if eval == nil {
				eval = func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
					evalCalled = true
					return "", nil, nil
				}
			}
			rec := postChunk(t, ChunkHandler("b", eval), tc.body)
			if rec.Code != tc.status {
				t.Errorf("status = %d, want %d", rec.Code, tc.status)
			}
			if tc.eval == nil && evalCalled {
				t.Error("eval ran on an undecodable body")
			}
			if n := rec.Header().Get(ChunkNodeHeader); n != "b" {
				t.Errorf("%s = %q on error response, want b", ChunkNodeHeader, n)
			}
			if tc.status == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			if strings.TrimSpace(rec.Body.String()) == "" {
				t.Error("error response has no diagnostic body")
			}
		})
	}
}
