// Package readout models the analog sensing path of the nanowire decoder
// (after Ben Jamaa et al., TCAD'08, the paper's reference [2]): every doping
// region under a mesowire is a MOSFET in series along the nanowire, and a
// nanowire is read by comparing its source current against the leakage of
// the unselected wires sharing the contact group. Addressability becomes an
// on/off current-ratio criterion instead of the digital conduct-or-block test —
// the physical quantity behind the "small range" margin of Sec. 6.1.
package readout

import (
	"fmt"
	"math"
)

// Transistor is a simple long-channel decoder-transistor model: linear
// (triode-like) conduction above threshold and exponential subthreshold
// leakage below it.
type Transistor struct {
	// GOn is the channel conductance per volt of overdrive, in siemens
	// per volt.
	GOn float64
	// SubthresholdSlope is the gate swing per decade of leakage, in volts
	// (typically 0.08-0.1 V/dec for a poly-Si nanowire FET).
	SubthresholdSlope float64
	// GLeakFloor is the conductance floor far below threshold, in siemens.
	GLeakFloor float64
}

// DefaultTransistor returns a poly-Si nanowire FET model: 10 µS/V overdrive
// conductance, 80 mV/dec subthreshold slope, 1 pS leakage floor.
func DefaultTransistor() Transistor {
	return Transistor{
		GOn:               10e-6,
		SubthresholdSlope: 0.08,
		GLeakFloor:        1e-12,
	}
}

// Validate reports whether the model is physical.
func (t Transistor) Validate() error {
	if t.GOn <= 0 || t.SubthresholdSlope <= 0 || t.GLeakFloor <= 0 {
		return fmt.Errorf("readout: non-positive transistor parameter %+v", t)
	}
	if t.GLeakFloor >= t.GOn {
		return fmt.Errorf("readout: leakage floor %g not below on-conductance %g", t.GLeakFloor, t.GOn)
	}
	return nil
}

// Conductance returns the channel conductance at gate voltage vg for a
// device with threshold vt. Above threshold it grows linearly with the
// overdrive; below it decays exponentially until the floor.
func (t Transistor) Conductance(vg, vt float64) float64 {
	over := vg - vt
	if over >= 0 {
		g := t.GOn * over
		// The channel never conducts worse than its own weak-inversion
		// current at zero overdrive.
		if g < t.GOn*t.SubthresholdSlope {
			g = t.GOn * t.SubthresholdSlope
		}
		return g
	}
	g := t.GOn * t.SubthresholdSlope * math.Pow(10, over/t.SubthresholdSlope)
	if g < t.GLeakFloor {
		g = t.GLeakFloor
	}
	return g
}

// WireConductance returns the end-to-end conductance of a nanowire whose M
// decoder transistors (thresholds vt) are driven by the mesowire voltages
// va: series devices combine harmonically (1/G = Σ 1/G_j).
func (t Transistor) WireConductance(vt, va []float64) float64 {
	if len(vt) != len(va) {
		panic(fmt.Sprintf("readout: %d thresholds vs %d gate voltages", len(vt), len(va)))
	}
	inv := 0.0
	for j := range vt {
		inv += 1 / t.Conductance(va[j], vt[j])
	}
	if inv == 0 {
		return math.Inf(1)
	}
	return 1 / inv
}

// GroupReadout is the sensing result of addressing one wire in a contact
// group.
type GroupReadout struct {
	// Target is the index of the addressed wire within the group slice.
	Target int
	// OnCurrentRatio is the target wire's conductance divided by the sum
	// of all other wires' conductances — the sense amplifier sees the
	// parallel leakage of every unselected wire in the group.
	OnCurrentRatio float64
	// WorstOffRatio is the target conductance divided by the single
	// strongest leaker.
	WorstOffRatio float64
}

// ReadGroup evaluates the readout of addressing wire target within a group:
// vts holds each wire's sampled thresholds; va is the applied address.
func (t Transistor) ReadGroup(vts [][]float64, va []float64, target int) (GroupReadout, error) {
	if target < 0 || target >= len(vts) {
		return GroupReadout{}, fmt.Errorf("readout: target %d outside group of %d wires", target, len(vts))
	}
	on := t.WireConductance(vts[target], va)
	var leakSum, worst float64
	for k, vt := range vts {
		if k == target {
			continue
		}
		g := t.WireConductance(vt, va)
		leakSum += g
		if g > worst {
			worst = g
		}
	}
	out := GroupReadout{Target: target}
	if leakSum == 0 {
		out.OnCurrentRatio = math.Inf(1)
		out.WorstOffRatio = math.Inf(1)
		return out, nil
	}
	out.OnCurrentRatio = on / leakSum
	out.WorstOffRatio = on / worst
	return out, nil
}

// Sensable reports whether a readout distinguishes the addressed wire with
// the given minimum on/off current ratio (e.g. 10 for a simple sense
// amplifier).
func (r GroupReadout) Sensable(minRatio float64) bool {
	return r.OnCurrentRatio >= minRatio
}

// ReadPower returns the static power drawn from a sense voltage vsense while
// addressing the target wire of a group: the on-current through the selected
// wire plus the parasitic leakage of every unselected wire,
// P = V²·(G_on + ΣG_leak). Minimizing decoder leakage is what bounds the
// contact-group size on the power side, complementing the uniqueness bound.
func (t Transistor) ReadPower(vts [][]float64, va []float64, target int, vsense float64) (float64, error) {
	if target < 0 || target >= len(vts) {
		return 0, fmt.Errorf("readout: target %d outside group of %d wires", target, len(vts))
	}
	if vsense <= 0 {
		return 0, fmt.Errorf("readout: non-positive sense voltage %g", vsense)
	}
	total := 0.0
	for _, vt := range vts {
		total += t.WireConductance(vt, va)
	}
	return vsense * vsense * total, nil
}
