package readout

import (
	"fmt"

	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

// DefaultMinRatio is the on/off current ratio a simple sense amplifier
// needs to distinguish the addressed wire from the group leakage.
const DefaultMinRatio = 10

// Study is the Monte-Carlo sensing analysis of one decoder plan.
type Study struct {
	// SensableFraction is the fraction of (trial, wire) reads with an
	// on/off ratio at or above the criterion.
	SensableFraction float64
	// Ratios summarizes the observed on/off current ratios.
	Ratios stats.Summary
	// Trials is the number of fabricated half-cave instances.
	Trials int
	// MinRatio is the applied criterion.
	MinRatio float64
}

// MonteCarlo runs the sensing analysis: it fabricates the half cave trials
// times (sampling thresholds with per-dose deviation sigmaT), addresses
// every wire through the band-edge voltages, and scores the analog on/off
// ratio of each read.
func MonteCarlo(t Transistor, plan *mspt.Plan, q *physics.Quantizer,
	sigmaT, minRatio float64, trials int, rng *stats.RNG) (*Study, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if plan.Base() != q.N() {
		return nil, fmt.Errorf("readout: plan base %d does not match quantizer levels %d", plan.Base(), q.N())
	}
	if trials <= 0 {
		return nil, fmt.Errorf("readout: non-positive trial count %d", trials)
	}
	if minRatio <= 0 {
		minRatio = DefaultMinRatio
	}
	pattern := plan.Pattern()
	var ratios []float64
	sensable := 0
	for tr := 0; tr < trials; tr++ {
		vt := plan.SampleVT(rng, sigmaT, q.VTOf)
		for i := range pattern {
			va := addressVoltages(q, pattern[i])
			read, err := t.ReadGroup(vt, va, i)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, read.OnCurrentRatio)
			if read.Sensable(minRatio) {
				sensable++
			}
		}
	}
	return &Study{
		SensableFraction: float64(sensable) / float64(len(ratios)),
		Ratios:           stats.Summarize(ratios),
		Trials:           trials,
		MinRatio:         minRatio,
	}, nil
}

// addressVoltages drives each mesowire to the upper edge of the addressed
// digit's threshold band (the same scheme as the digital decoder).
func addressVoltages(q *physics.Quantizer, w []int) []float64 {
	vmin, vmax := q.Window()
	spacing := (vmax - vmin) / float64(q.N())
	va := make([]float64, len(w))
	for j, digit := range w {
		va[j] = vmin + float64(digit+1)*spacing
	}
	return va
}
