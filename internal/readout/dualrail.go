package readout

import (
	"fmt"
	"math"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

// Dual-rail drive (after DeHon et al., the paper's reference [6]): every
// decoder position carries a complementary pair of mesowires, and each
// region of a nanowire is gated by the rail matching its own code digit.
// Addressing word w drives, at every position, the rail of digit w_j high
// and all other rails low. A region therefore sees a *high* gate exactly
// when its digit matches the address digit, so an unselected wire blocks at
// every mismatched position — Hamming-many blockers instead of the single
// blocker of the band-edge scheme, which is what restores the hot codes'
// sensing margin.

// DualRailGateVoltages returns the gate voltage seen by every region of a
// wire with the given pattern under the dual-rail address w: the upper band
// edge of the region's own level when the digits match, and the lower band
// edge (one level spacing below) when they mismatch.
func DualRailGateVoltages(q *physics.Quantizer, pattern, w code.Word) ([]float64, error) {
	if len(pattern) != len(w) {
		return nil, fmt.Errorf("readout: pattern length %d vs address length %d", len(pattern), len(w))
	}
	vmin, vmax := q.Window()
	spacing := (vmax - vmin) / float64(q.N())
	out := make([]float64, len(w))
	for j := range w {
		if pattern[j] == w[j] {
			// Matched: rail high — the band edge just above the region's
			// nominal level.
			out[j] = vmin + float64(pattern[j]+1)*spacing
		} else {
			// Mismatched: rail low — a full level spacing below the
			// region's own band edge, holding the device off.
			out[j] = vmin + float64(pattern[j])*spacing
		}
	}
	return out, nil
}

// ReadGroupDualRail evaluates addressing wire target within a group under
// the dual-rail scheme: every wire's regions are gated according to their
// own digit's rail.
func (t Transistor) ReadGroupDualRail(q *physics.Quantizer, patterns []code.Word,
	vts [][]float64, target int) (GroupReadout, error) {
	if target < 0 || target >= len(vts) || len(patterns) != len(vts) {
		return GroupReadout{}, fmt.Errorf("readout: invalid dual-rail group (target %d, %d patterns, %d wires)",
			target, len(patterns), len(vts))
	}
	w := patterns[target]
	var on float64
	var leakSum, worst float64
	for k := range vts {
		va, err := DualRailGateVoltages(q, patterns[k], w)
		if err != nil {
			return GroupReadout{}, err
		}
		g := t.WireConductance(vts[k], va)
		if k == target {
			on = g
			continue
		}
		leakSum += g
		if g > worst {
			worst = g
		}
	}
	out := GroupReadout{Target: target}
	if leakSum == 0 {
		out.OnCurrentRatio = math.Inf(1)
		out.WorstOffRatio = math.Inf(1)
		return out, nil
	}
	out.OnCurrentRatio = on / leakSum
	out.WorstOffRatio = on / worst
	return out, nil
}

// MonteCarloDualRail is the dual-rail counterpart of MonteCarlo.
func MonteCarloDualRail(t Transistor, plan *mspt.Plan, q *physics.Quantizer,
	sigmaT, minRatio float64, trials int, rng *stats.RNG) (*Study, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if plan.Base() != q.N() {
		return nil, fmt.Errorf("readout: plan base %d does not match quantizer levels %d", plan.Base(), q.N())
	}
	if trials <= 0 {
		return nil, fmt.Errorf("readout: non-positive trial count %d", trials)
	}
	if minRatio <= 0 {
		minRatio = DefaultMinRatio
	}
	patterns := plan.Pattern()
	var ratios []float64
	sensable := 0
	for tr := 0; tr < trials; tr++ {
		vt := plan.SampleVT(rng, sigmaT, q.VTOf)
		for i := range patterns {
			read, err := t.ReadGroupDualRail(q, patterns, vt, i)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, read.OnCurrentRatio)
			if read.Sensable(minRatio) {
				sensable++
			}
		}
	}
	return &Study{
		SensableFraction: float64(sensable) / float64(len(ratios)),
		Ratios:           stats.Summarize(ratios),
		Trials:           trials,
		MinRatio:         minRatio,
	}, nil
}
