package readout

import (
	"math"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

func TestTransistorValidate(t *testing.T) {
	if err := DefaultTransistor().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTransistor()
	bad.GOn = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero GOn accepted")
	}
	bad = DefaultTransistor()
	bad.GLeakFloor = 1
	if err := bad.Validate(); err == nil {
		t.Error("leak floor above GOn accepted")
	}
}

func TestConductanceRegimes(t *testing.T) {
	tr := DefaultTransistor()
	// Strong inversion: linear in overdrive.
	gHigh := tr.Conductance(1.0, 0.25)
	gMid := tr.Conductance(0.75, 0.25)
	if math.Abs(gHigh/gMid-1.5) > 1e-9 {
		t.Errorf("above-threshold conductance not linear: %g vs %g", gHigh, gMid)
	}
	// Subthreshold: one slope of gate swing costs one decade.
	g1 := tr.Conductance(0.25, 0.5)
	g2 := tr.Conductance(0.25-tr.SubthresholdSlope, 0.5)
	if math.Abs(g1/g2-10) > 1e-6 {
		t.Errorf("subthreshold slope wrong: ratio %g", g1/g2)
	}
	// Deep off: clamps at the floor.
	if got := tr.Conductance(-5, 1); got != tr.GLeakFloor {
		t.Errorf("floor not applied: %g", got)
	}
	// Monotone in gate voltage.
	prev := 0.0
	for vg := -0.5; vg <= 1.5; vg += 0.01 {
		g := tr.Conductance(vg, 0.25)
		if g < prev {
			t.Fatalf("conductance decreased at vg=%g", vg)
		}
		prev = g
	}
}

func TestWireConductanceSeries(t *testing.T) {
	tr := DefaultTransistor()
	// One blocking device dominates the series chain.
	on := []float64{0.25, 0.25, 0.25}
	va := []float64{0.5, 0.5, 0.5}
	gAllOn := tr.WireConductance(on, va)
	blocked := []float64{0.25, 0.75, 0.25}
	gBlocked := tr.WireConductance(blocked, va)
	if gBlocked >= gAllOn/100 {
		t.Errorf("blocked wire conducts too well: %g vs %g", gBlocked, gAllOn)
	}
	// Series law: doubling the chain halves the conductance.
	g6 := tr.WireConductance(append(append([]float64{}, on...), on...), append(append([]float64{}, va...), va...))
	if math.Abs(g6/gAllOn-0.5) > 1e-9 {
		t.Errorf("series scaling wrong: %g vs %g", g6, gAllOn)
	}
}

func TestWireConductancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	DefaultTransistor().WireConductance([]float64{0.1}, []float64{0.5, 0.5})
}

func TestReadGroupDistinguishesNominalWires(t *testing.T) {
	// A nominal Gray-coded group must be sensable with a healthy ratio.
	g, _ := code.NewGray(2, 8)
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 12, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := DefaultTransistor()
	vt := plan.SampleVT(stats.NewRNG(1), 0, q.VTOf) // nominal
	pattern := plan.Pattern()
	for i := range pattern {
		va := addressVoltages(q, pattern[i])
		read, err := tr.ReadGroup(vt, va, i)
		if err != nil {
			t.Fatal(err)
		}
		if !read.Sensable(DefaultMinRatio) {
			t.Errorf("wire %d: on/off ratio %g below criterion", i, read.OnCurrentRatio)
		}
		if read.WorstOffRatio < read.OnCurrentRatio {
			t.Errorf("wire %d: worst-off ratio below group ratio", i)
		}
	}
}

func TestReadGroupValidation(t *testing.T) {
	tr := DefaultTransistor()
	if _, err := tr.ReadGroup(nil, nil, 0); err == nil {
		t.Error("empty group accepted")
	}
	vts := [][]float64{{0.25}, {0.75}}
	if _, err := tr.ReadGroup(vts, []float64{0.5}, 2); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestReadGroupSingleWire(t *testing.T) {
	tr := DefaultTransistor()
	read, err := tr.ReadGroup([][]float64{{0.25, 0.25}}, []float64{0.5, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(read.OnCurrentRatio, 1) {
		t.Errorf("lone wire ratio = %g, want +Inf", read.OnCurrentRatio)
	}
}

func TestMonteCarloSensability(t *testing.T) {
	g, _ := code.NewBalancedGray(2, 10)
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 20, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := DefaultTransistor()
	study, err := MonteCarlo(tr, plan, q, 0.05, 0, 40, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if study.MinRatio != DefaultMinRatio {
		t.Errorf("default ratio not applied: %g", study.MinRatio)
	}
	if study.SensableFraction < 0.5 || study.SensableFraction > 1 {
		t.Errorf("sensable fraction %g implausible", study.SensableFraction)
	}
	if study.Ratios.N != 40*20 {
		t.Errorf("ratio sample count %d", study.Ratios.N)
	}
	if study.Ratios.Median < DefaultMinRatio {
		t.Errorf("median on/off ratio %g below criterion", study.Ratios.Median)
	}
}

func TestMonteCarloSensabilityDegradesWithNoise(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 16, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := DefaultTransistor()
	quiet, err := MonteCarlo(tr, plan, q, 0.02, 10, 30, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := MonteCarlo(tr, plan, q, 0.12, 10, 30, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.SensableFraction >= quiet.SensableFraction {
		t.Errorf("noise did not degrade sensability: %g vs %g",
			noisy.SensableFraction, quiet.SensableFraction)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	q2, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	q3, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 3, 0, 1)
	plan, _ := mspt.NewPlanFromGenerator(g, 8, q2, 0)
	tr := DefaultTransistor()
	if _, err := MonteCarlo(tr, plan, q3, 0.05, 10, 5, stats.NewRNG(1)); err == nil {
		t.Error("base mismatch accepted")
	}
	if _, err := MonteCarlo(tr, plan, q2, 0.05, 10, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero trials accepted")
	}
	bad := tr
	bad.GOn = -1
	if _, err := MonteCarlo(bad, plan, q2, 0.05, 10, 5, stats.NewRNG(1)); err == nil {
		t.Error("invalid transistor accepted")
	}
}

func TestReadPower(t *testing.T) {
	g, _ := code.NewGray(2, 8)
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 12, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := DefaultTransistor()
	vt := plan.SampleVT(stats.NewRNG(2), 0, q.VTOf)
	va := addressVoltages(q, plan.Pattern()[0])
	p, err := tr.ReadPower(vt, va, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated by the selected wire: P ≈ V²·G_on.
	gOn := tr.WireConductance(vt[0], va)
	if p < 0.04*gOn || p > 0.04*gOn*1.5 {
		t.Errorf("read power %g outside the expected band around %g", p, 0.04*gOn)
	}
	// Power scales with the sense voltage squared.
	p2, err := tr.ReadPower(vt, va, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2/p-4) > 1e-9 {
		t.Errorf("power scaling %g, want 4", p2/p)
	}
	if _, err := tr.ReadPower(vt, va, -1, 0.2); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := tr.ReadPower(vt, va, 0, 0); err == nil {
		t.Error("zero sense voltage accepted")
	}
}
