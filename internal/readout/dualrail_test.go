package readout

import (
	"math"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

func dualRailFixture(t *testing.T, tp code.Type, m, n int) (*mspt.Plan, *physics.Quantizer) {
	t.Helper()
	g, err := code.New(tp, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	return plan, q
}

func TestDualRailGateVoltages(t *testing.T) {
	_, q := dualRailFixture(t, code.TypeGray, 6, 4)
	pattern := code.FromDigits(0, 1, 1)
	addr := code.FromDigits(0, 1, 0)
	va, err := DualRailGateVoltages(q, pattern, addr)
	if err != nil {
		t.Fatal(err)
	}
	// Matched digit 0: edge 0.5; matched digit 1: edge 1.0;
	// mismatched digit 1 (addr 0): its own lower edge 0.5 -> device off
	// (vt nominal 0.75 > 0.5).
	want := []float64{0.5, 1.0, 0.5}
	for j := range want {
		if math.Abs(va[j]-want[j]) > 1e-12 {
			t.Errorf("va[%d] = %g, want %g", j, va[j], want[j])
		}
	}
	if _, err := DualRailGateVoltages(q, pattern, code.FromDigits(0, 1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDualRailBlocksEveryMismatch(t *testing.T) {
	// At nominal thresholds, an unselected wire's leak under dual-rail
	// drive is set by its blocking devices in series: every mismatched
	// position adds one subthreshold blocker, so the leak scales as
	// g_block / distance — and, crucially for noise robustness, a single
	// low-drifting region can no longer unblock a multi-mismatch wire.
	plan, q := dualRailFixture(t, code.TypeHot, 6, 12)
	tr := DefaultTransistor()
	vt := plan.SampleVT(stats.NewRNG(1), 0, q.VTOf)
	patterns := plan.Pattern()
	addr := patterns[0]
	leakAt := map[int]float64{}
	for k := 1; k < len(patterns); k++ {
		va, err := DualRailGateVoltages(q, patterns[k], addr)
		if err != nil {
			t.Fatal(err)
		}
		g := tr.WireConductance(vt[k], va)
		vaOwn, _ := DualRailGateVoltages(q, patterns[k], patterns[k])
		gOwn := tr.WireConductance(vt[k], vaOwn)
		dist := patterns[k].Hamming(addr)
		// At least ~2.5 decades of suppression from the first blocker.
		if g > gOwn/500 {
			t.Errorf("wire %d at distance %d leaks too much: %g vs own %g", k, dist, g, gOwn)
		}
		leakAt[dist] = g
	}
	// Series law: the distance-4 leak is about half the distance-2 leak.
	if g2, g4 := leakAt[2], leakAt[4]; g2 > 0 && g4 > 0 {
		ratio := g2 / g4
		if math.Abs(ratio-2) > 0.2 {
			t.Errorf("series suppression ratio %g, want ~2", ratio)
		}
	} else {
		t.Fatal("hot-code group lacks distance-2 and distance-4 wires")
	}
}

func TestDualRailRecoversHotCodeMargin(t *testing.T) {
	// The finding from the band-edge readout experiment: hot codes leak
	// through single blockers. Dual-rail drive must restore their sensing
	// margin well above the single-rail level.
	plan, q := dualRailFixture(t, code.TypeArrangedHot, 6, 20)
	tr := DefaultTransistor()
	single, err := MonteCarlo(tr, plan, q, 0.05, 10, 30, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	dual, err := MonteCarloDualRail(tr, plan, q, 0.05, 10, 30, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if dual.SensableFraction <= single.SensableFraction {
		t.Errorf("dual rail did not improve sensability: %g vs %g",
			dual.SensableFraction, single.SensableFraction)
	}
	if dual.Ratios.Median <= single.Ratios.Median {
		t.Errorf("dual rail median ratio %g not above single-rail %g",
			dual.Ratios.Median, single.Ratios.Median)
	}
	if dual.SensableFraction < 0.8 {
		t.Errorf("dual-rail AHC sensable fraction only %g", dual.SensableFraction)
	}
}

func TestReadGroupDualRailValidation(t *testing.T) {
	plan, q := dualRailFixture(t, code.TypeGray, 6, 4)
	tr := DefaultTransistor()
	vt := plan.SampleVT(stats.NewRNG(1), 0, q.VTOf)
	if _, err := tr.ReadGroupDualRail(q, plan.Pattern(), vt, 9); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := tr.ReadGroupDualRail(q, plan.Pattern()[:2], vt, 0); err == nil {
		t.Error("pattern/wire count mismatch accepted")
	}
}

func TestMonteCarloDualRailValidation(t *testing.T) {
	plan, q := dualRailFixture(t, code.TypeGray, 6, 4)
	tr := DefaultTransistor()
	if _, err := MonteCarloDualRail(tr, plan, q, 0.05, 10, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero trials accepted")
	}
	q3, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 3, 0, 1)
	if _, err := MonteCarloDualRail(tr, plan, q3, 0.05, 10, 3, stats.NewRNG(1)); err == nil {
		t.Error("base mismatch accepted")
	}
	bad := tr
	bad.GOn = 0
	if _, err := MonteCarloDualRail(bad, plan, q, 0.05, 10, 3, stats.NewRNG(1)); err == nil {
		t.Error("invalid transistor accepted")
	}
}
