package crossbar

import (
	"errors"
	"math"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
	"nwdec/internal/yield"
)

func testDecoder(t *testing.T, tp code.Type, m, n int) *Decoder {
	t.Helper()
	g, err := code.New(tp, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	q, err := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mspt.NewPlanFromGenerator(g, n, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDecoderBaseMismatch(t *testing.T) {
	g, _ := code.NewGray(2, 6)
	q2, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	q3, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 3, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 4, q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(plan, q3); err == nil {
		t.Error("base mismatch accepted")
	}
}

func TestAddressVoltages(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 6, 8)
	// Binary over [0,1]: digit 0 band edge 0.5, digit 1 band edge 1.0.
	va := d.AddressVoltages(code.FromDigits(0, 1, 0))
	want := []float64{0.5, 1.0, 0.5}
	for j := range want {
		if math.Abs(va[j]-want[j]) > 1e-12 {
			t.Errorf("va[%d] = %g, want %g", j, va[j], want[j])
		}
	}
}

func TestConducts(t *testing.T) {
	va := []float64{0.5, 1.0}
	if !Conducts([]float64{0.25, 0.75}, va) {
		t.Error("nominal on-wire does not conduct")
	}
	if Conducts([]float64{0.75, 0.75}, va) {
		t.Error("blocked wire conducts")
	}
	if Conducts([]float64{0.5, 0.75}, va) {
		t.Error("threshold equal to gate voltage should not conduct")
	}
}

func TestNominalDecoderAddressesExactlyOneWire(t *testing.T) {
	// With zero variability, every code word must address exactly its own
	// nanowire — the uniqueness property of reflected and hot codes.
	for _, tp := range []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray, code.TypeHot, code.TypeArrangedHot} {
		d := testDecoder(t, tp, 8, 12)
		rng := stats.NewRNG(1)
		vt := d.SampleVT(rng, 0) // sigma 0: nominal thresholds
		unique := d.UniquelyAddressable(vt, 0, d.Plan.N())
		for i, ok := range unique {
			if !ok {
				t.Errorf("%v: wire %d not uniquely addressable at zero variability", tp, i)
			}
		}
	}
}

func TestCrossAddressingBlockedNominally(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 12)
	rng := stats.NewRNG(2)
	vt := d.SampleVT(rng, 0)
	pattern := d.Plan.Pattern()
	for i := range pattern {
		va := d.AddressVoltages(pattern[i])
		for k := range pattern {
			conducts := Conducts(vt[k], va)
			if k == i && !conducts {
				t.Errorf("wire %d does not conduct under own address", i)
			}
			if k != i && conducts {
				t.Errorf("wire %d conducts under address of wire %d", k, i)
			}
		}
	}
}

func TestMarginAddressableMatchesAnalyticYield(t *testing.T) {
	// Monte-Carlo margin addressability must converge to the analytic
	// per-wire probabilities of the yield package.
	d := testDecoder(t, code.TypeGray, 8, 12)
	a, err := yield.NewAnalyzer(yield.DefaultSigmaT, d.Q.Margin())
	if err != nil {
		t.Fatal(err)
	}
	want := a.WireProbs(d.Plan)
	const trials = 3000
	counts := make([]int, d.Plan.N())
	rng := stats.NewRNG(42)
	for tr := 0; tr < trials; tr++ {
		vt := d.SampleVT(rng, yield.DefaultSigmaT)
		for i, ok := range d.MarginAddressable(vt, a.Margin) {
			if ok {
				counts[i]++
			}
		}
	}
	for i := range want {
		got := float64(counts[i]) / trials
		if math.Abs(got-want[i]) > 0.03 {
			t.Errorf("wire %d: MC %g vs analytic %g", i, got, want[i])
		}
	}
}

func TestFunctionalYieldTracksAnalytic(t *testing.T) {
	// The full conduction-based uniqueness test is the real-device check;
	// it should track the analytic margin model within a few percent.
	d := testDecoder(t, code.TypeBalancedGray, 10, 20)
	a, err := yield.NewAnalyzer(yield.DefaultSigmaT, d.Q.Margin())
	if err != nil {
		t.Fatal(err)
	}
	analytic := a.AnalyzeHalfCave(d.Plan, geometry.ContactPlan{Groups: 1}).Yield
	const trials = 400
	total := 0
	rng := stats.NewRNG(7)
	for tr := 0; tr < trials; tr++ {
		vt := d.SampleVT(rng, yield.DefaultSigmaT)
		for _, ok := range d.UniquelyAddressable(vt, 0, d.Plan.N()) {
			if ok {
				total++
			}
		}
	}
	mc := float64(total) / float64(trials*d.Plan.N())
	if math.Abs(mc-analytic) > 0.08 {
		t.Errorf("functional MC yield %g deviates from analytic %g", mc, analytic)
	}
}

func TestBuildLayer(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact, err := geometry.DefaultParams().PlanContacts(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	layer, err := BuildLayer(d, contact, 128, yield.DefaultSigmaT, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(layer.Wires) != 128 {
		t.Fatalf("layer has %d wires", len(layer.Wires))
	}
	ambCount := 0
	for _, w := range layer.Wires {
		if w.Group != w.Index/contact.GroupWires {
			t.Fatalf("wire group %d inconsistent with index %d", w.Group, w.Index)
		}
		if w.BoundaryAmbiguous {
			ambCount++
			if w.Addressable {
				t.Fatal("boundary-ambiguous wire marked addressable")
			}
		}
		if len(w.VT) != d.Plan.M() {
			t.Fatalf("wire VT length %d", len(w.VT))
		}
	}
	if ambCount == 0 {
		t.Error("no boundary-ambiguous wires despite multiple groups")
	}
	y := layer.Yield()
	if y <= 0 || y >= 1 {
		t.Errorf("layer yield %g out of plausible range", y)
	}
}

func TestBuildLayerValidation(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 6, 8)
	contact := geometry.ContactPlan{GroupWires: 8, Groups: 1}
	if _, err := BuildLayer(d, contact, 0, 0.05, stats.NewRNG(1)); err == nil {
		t.Error("zero wires accepted")
	}
	if _, err := BuildLayer(d, contact, 8, -1, stats.NewRNG(1)); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact := geometry.ContactPlan{GroupWires: 16, Groups: 1}
	rng := stats.NewRNG(11)
	rows, err := BuildLayer(d, contact, 32, 0, rng) // zero sigma: all addressable
	if err != nil {
		t.Fatal(err)
	}
	cols, err := BuildLayer(d, contact, 32, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory(rows, cols)
	r, c := m.Size()
	if r != 32 || c != 32 {
		t.Fatalf("size = %d x %d", r, c)
	}
	if m.UsableBits() != 1024 {
		t.Fatalf("UsableBits = %d, want 1024 at zero variability", m.UsableBits())
	}
	// Write a checkerboard and read it back.
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if err := m.Write(i, j, (i+j)%2 == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			bit, err := m.Read(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if bit != ((i+j)%2 == 0) {
				t.Fatalf("bit (%d,%d) = %v", i, j, bit)
			}
		}
	}
	// Overwrite and clear.
	if err := m.Write(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if bit, _ := m.Read(3, 4); bit {
		t.Error("cleared bit still set")
	}
}

func TestMemoryDefectiveAccess(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact := geometry.ContactPlan{GroupWires: 16, Groups: 1}
	rng := stats.NewRNG(13)
	rows, _ := BuildLayer(d, contact, 16, 0, rng)
	cols, _ := BuildLayer(d, contact, 16, 0, rng)
	rows.Wires[5].Addressable = false
	m := NewMemory(rows, cols)
	err := m.Write(5, 0, true)
	var ua *ErrUnaddressable
	if !errors.As(err, &ua) || ua.Axis != "row" || ua.Index != 5 {
		t.Errorf("expected row-5 unaddressable error, got %v", err)
	}
	if _, err := m.Read(0, 99); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.Write(-1, 0, true); err == nil {
		t.Error("out-of-range write accepted")
	}
	if m.Usable(5, 0) || !m.Usable(6, 0) {
		t.Error("Usable inconsistent with defect map")
	}
	if m.UsableBits() != 15*16 {
		t.Errorf("UsableBits = %d, want %d", m.UsableBits(), 15*16)
	}
	if math.Abs(m.UsableFraction()-float64(15*16)/256) > 1e-12 {
		t.Errorf("UsableFraction = %g", m.UsableFraction())
	}
}

func TestMemoryUsableFractionMatchesAnalyticSquare(t *testing.T) {
	// Build a full 128x128 memory and check the usable fraction is near
	// the analytic Y² prediction.
	g, _ := code.NewGray(2, 10)
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 20, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := geometry.NewLayout(geometry.DefaultCrossbarSpec(), 10, g.SpaceSize())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := yield.NewAnalyzer(yield.DefaultSigmaT, q.Margin())
	want := a.AnalyzeCrossbar(plan, layout)
	rng := stats.NewRNG(99)
	const reps = 6
	sum := 0.0
	for rep := 0; rep < reps; rep++ {
		rows, err := BuildLayer(d, layout.Contact, layout.WiresPerLayer, yield.DefaultSigmaT, rng)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := BuildLayer(d, layout.Contact, layout.WiresPerLayer, yield.DefaultSigmaT, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += NewMemory(rows, cols).UsableFraction()
	}
	mc := sum / reps
	analytic := want.Yield * want.Yield
	if math.Abs(mc-analytic) > 0.12 {
		t.Errorf("MC usable fraction %g far from analytic Y² %g", mc, analytic)
	}
}

func TestBuildLayerZeroValuedContactPlan(t *testing.T) {
	// A zero ContactPlan must behave as a single undivided group rather
	// than looping forever on a zero group width.
	d := testDecoder(t, code.TypeGray, 8, 8)
	layer, err := BuildLayer(d, geometry.ContactPlan{}, 16, 0, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(layer.Wires) != 16 {
		t.Fatalf("layer has %d wires", len(layer.Wires))
	}
	for _, w := range layer.Wires {
		if w.Group != 0 {
			t.Fatalf("wire in group %d, want single group 0", w.Group)
		}
		if !w.Addressable {
			t.Fatal("zero-variability wire not addressable")
		}
	}
}
