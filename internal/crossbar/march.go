package crossbar

import "fmt"

// FaultKind classifies a crosspoint fault observed by a memory test.
type FaultKind int

// Fault kinds.
const (
	// FaultAccess marks a crosspoint whose access failed outright (a
	// defective — unaddressable — row or column wire).
	FaultAccess FaultKind = iota
	// FaultStuck marks a crosspoint that accessed successfully but read
	// back the wrong value.
	FaultStuck
)

// String names the fault kind.
func (k FaultKind) String() string {
	if k == FaultAccess {
		return "access"
	}
	return "stuck"
}

// Fault is one faulty crosspoint found by a test.
type Fault struct {
	Row, Col int
	Kind     FaultKind
}

// MarchCMinus runs the classical March C- test over the whole array through
// the functional access path:
//
//	⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇓(r0)
//
// It is the manufacturing-test counterpart of the omniscient defect map: a
// memory controller that can only read and write through the decoder
// discovers the defective wires exactly this way. Each faulty crosspoint is
// reported once, with access faults taking precedence.
func MarchCMinus(m *Memory) []Fault {
	rows, cols := m.Size()
	type cell struct{ r, c int }
	seen := make(map[cell]FaultKind)
	note := func(r, c int, k FaultKind) {
		key := cell{r, c}
		if prev, ok := seen[key]; !ok || (prev == FaultStuck && k == FaultAccess) {
			seen[key] = k
		}
	}
	// visit walks all crosspoints in ascending or descending address order.
	visit := func(ascending bool, op func(r, c int)) {
		if ascending {
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					op(r, c)
				}
			}
			return
		}
		for r := rows - 1; r >= 0; r-- {
			for c := cols - 1; c >= 0; c-- {
				op(r, c)
			}
		}
	}
	write := func(r, c int, v bool) {
		if err := m.Write(r, c, v); err != nil {
			note(r, c, FaultAccess)
		}
	}
	readExpect := func(r, c int, want bool) {
		v, err := m.Read(r, c)
		if err != nil {
			note(r, c, FaultAccess)
			return
		}
		if v != want {
			note(r, c, FaultStuck)
		}
	}
	// The six March C- elements.
	visit(true, func(r, c int) { write(r, c, false) })
	visit(true, func(r, c int) { readExpect(r, c, false); write(r, c, true) })
	visit(true, func(r, c int) { readExpect(r, c, true); write(r, c, false) })
	visit(false, func(r, c int) { readExpect(r, c, false); write(r, c, true) })
	visit(false, func(r, c int) { readExpect(r, c, true); write(r, c, false) })
	visit(false, func(r, c int) { readExpect(r, c, false) })

	faults := make([]Fault, 0, len(seen))
	visit(true, func(r, c int) {
		if k, ok := seen[cell{r, c}]; ok {
			faults = append(faults, Fault{Row: r, Col: c, Kind: k})
		}
	})
	return faults
}

// DefectMapFromFaults reconstructs the wire-level defect map from
// crosspoint faults: a wire is defective exactly when every crosspoint on
// it faulted (a single bad wire kills its whole row or column, while a
// lone stuck cell does not condemn its wires).
func DefectMapFromFaults(faults []Fault, rows, cols int) (DefectMap, error) {
	if rows <= 0 || cols <= 0 {
		return DefectMap{}, fmt.Errorf("crossbar: non-positive dimensions %dx%d", rows, cols)
	}
	rowCount := make([]int, rows)
	colCount := make([]int, cols)
	for _, f := range faults {
		if f.Row < 0 || f.Row >= rows || f.Col < 0 || f.Col >= cols {
			return DefectMap{}, fmt.Errorf("crossbar: fault at (%d,%d) outside %dx%d", f.Row, f.Col, rows, cols)
		}
		rowCount[f.Row]++
		colCount[f.Col]++
	}
	dm := DefectMap{Rows: rows, Cols: cols}
	for r, n := range rowCount {
		if n == cols {
			dm.BadRows = append(dm.BadRows, r)
		}
	}
	for c, n := range colCount {
		if n == rows {
			dm.BadCols = append(dm.BadCols, c)
		}
	}
	return dm, nil
}
