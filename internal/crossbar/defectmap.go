package crossbar

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefectMap is the persistent record of a fabricated crossbar's hard
// defects: which row and column wires failed addressability testing. A
// controller stores it after manufacturing test and rebuilds the logical
// address remap from it on every power-up.
type DefectMap struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// BadRows / BadCols list the defective wire indices, ascending.
	BadRows []int `json:"badRows"`
	BadCols []int `json:"badCols"`
}

// ExtractDefectMap reads the defect map out of a fabricated memory.
func ExtractDefectMap(m *Memory) DefectMap {
	dm := DefectMap{Rows: len(m.Rows.Wires), Cols: len(m.Cols.Wires)}
	for i, w := range m.Rows.Wires {
		if !w.Addressable {
			dm.BadRows = append(dm.BadRows, i)
		}
	}
	for i, w := range m.Cols.Wires {
		if !w.Addressable {
			dm.BadCols = append(dm.BadCols, i)
		}
	}
	return dm
}

// Validate checks internal consistency (dimensions positive, indices in
// range and strictly ascending).
func (dm DefectMap) Validate() error {
	if dm.Rows <= 0 || dm.Cols <= 0 {
		return fmt.Errorf("crossbar: non-positive defect-map dimensions %dx%d", dm.Rows, dm.Cols)
	}
	if err := checkIndices(dm.BadRows, dm.Rows, "row"); err != nil {
		return err
	}
	return checkIndices(dm.BadCols, dm.Cols, "column")
}

func checkIndices(idx []int, n int, what string) error {
	for i, v := range idx {
		if v < 0 || v >= n {
			return fmt.Errorf("crossbar: defective %s index %d outside [0, %d)", what, v, n)
		}
		if i > 0 && v <= idx[i-1] {
			return fmt.Errorf("crossbar: defective %s indices not strictly ascending at %d", what, v)
		}
	}
	return nil
}

// UsableBits returns the number of working crosspoints implied by the map.
func (dm DefectMap) UsableBits() int {
	return (dm.Rows - len(dm.BadRows)) * (dm.Cols - len(dm.BadCols))
}

// Write serializes the map as JSON.
func (dm DefectMap) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dm)
}

// ReadDefectMap parses and validates a JSON defect map.
func ReadDefectMap(r io.Reader) (DefectMap, error) {
	var dm DefectMap
	if err := json.NewDecoder(r).Decode(&dm); err != nil {
		return DefectMap{}, fmt.Errorf("crossbar: parsing defect map: %w", err)
	}
	if err := dm.Validate(); err != nil {
		return DefectMap{}, err
	}
	return dm, nil
}

// Apply marks the wires of a memory according to the map, so a logical
// remap identical to the one at test time can be rebuilt on a fresh Memory
// value. The memory dimensions must match the map.
func (dm DefectMap) Apply(m *Memory) error {
	if err := dm.Validate(); err != nil {
		return err
	}
	if len(m.Rows.Wires) != dm.Rows || len(m.Cols.Wires) != dm.Cols {
		return fmt.Errorf("crossbar: defect map %dx%d does not fit memory %dx%d",
			dm.Rows, dm.Cols, len(m.Rows.Wires), len(m.Cols.Wires))
	}
	for i := range m.Rows.Wires {
		m.Rows.Wires[i].Addressable = true
	}
	for i := range m.Cols.Wires {
		m.Cols.Wires[i].Addressable = true
	}
	for _, i := range dm.BadRows {
		m.Rows.Wires[i].Addressable = false
	}
	for _, i := range dm.BadCols {
		m.Cols.Wires[i].Addressable = false
	}
	return nil
}
