package crossbar

import (
	"fmt"
	"math"
)

// CellModel describes the resistive storage element at a crosspoint (a
// molecular switch or phase-change cell, Sec. 2.1 of the paper).
type CellModel struct {
	// ROn is the low-resistance (programmed "1") state in ohms.
	ROn float64
	// ROff is the high-resistance state in ohms.
	ROff float64
	// WriteThreshold is the voltage that switches the cell, in volts.
	WriteThreshold float64
	// SelectorOnOff is the rectification ratio of a series selector
	// (e.g. the Ge nanowire diode of the paper's reference [16]): the
	// factor by which a reverse-biased cell's resistance exceeds R_on.
	// 1 models a passive, selector-less crosspoint.
	SelectorOnOff float64
}

// DefaultCellModel returns a passive phase-change-like element: 10 kΩ on,
// 1 MΩ off, 1 V write threshold, no selector.
func DefaultCellModel() CellModel {
	return CellModel{ROn: 1e4, ROff: 1e6, WriteThreshold: 1.0, SelectorOnOff: 1}
}

// DiodeCellModel returns the element with an integrated diode selector of
// 10^4 rectification, after the Ge-nanowire-diode cell of the paper's
// reference [16].
func DiodeCellModel() CellModel {
	c := DefaultCellModel()
	c.SelectorOnOff = 1e4
	return c
}

// Validate reports whether the cell model is physical.
func (c CellModel) Validate() error {
	if c.ROn <= 0 || c.ROff <= 0 || c.WriteThreshold <= 0 {
		return fmt.Errorf("crossbar: non-positive cell parameter %+v", c)
	}
	if c.ROn >= c.ROff {
		return fmt.Errorf("crossbar: on-resistance %g not below off-resistance %g", c.ROn, c.ROff)
	}
	if c.SelectorOnOff < 1 {
		return fmt.Errorf("crossbar: selector rectification %g below 1", c.SelectorOnOff)
	}
	return nil
}

// SneakResistance returns the lumped resistance of the sneak-path network
// in the classic worst case: the selected cell is read against an all-on
// background, so current leaks through (n-1)² three-cell detours — down a
// neighbouring column, backwards across a middle cell, and up to the
// selected column. The two outer banks contribute R_on/(n-1) each; the
// middle bank is traversed in reverse, so a series selector multiplies its
// resistance by the rectification ratio:
//
//	R_sneak ≈ 2·R_on/(n-1) + SelectorOnOff·R_on/(n-1)²
//
// Without a selector the network collapses to ≈ 2R_on/(n-1) and shorts the
// stored state in any useful array size — the sneak-path problem the
// paper's reference [16] solves with an integrated nanowire diode.
func (c CellModel) SneakResistance(n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	k := float64(n - 1)
	return 2*c.ROn/k + c.SelectorOnOff*c.ROn/(k*k)
}

// OffReadRatio returns the worst-case distinguishability of a stored 0: the
// ratio between the apparent resistance when the selected cell is off
// (R_off parallel to the sneak network) and when it is on (R_on parallel to
// the sneak network). A ratio near 1 means the states are indistinguishable;
// sense amplifiers need some minimum ratio (e.g. 1.2-2).
func (c CellModel) OffReadRatio(n int) float64 {
	if n < 2 {
		return c.ROff / c.ROn
	}
	rs := c.SneakResistance(n)
	apparentOff := parallel(c.ROff, rs)
	apparentOn := parallel(c.ROn, rs)
	return apparentOff / apparentOn
}

func parallel(a, b float64) float64 {
	if math.IsInf(b, 1) {
		return a
	}
	return a * b / (a + b)
}

// BiasScheme selects the write-bias strategy for half-selected cells.
type BiasScheme int

// Write bias schemes.
const (
	// BiasHalf drives the selected row to V and column to 0 while all
	// other lines float at V/2: half-selected cells see V/2.
	BiasHalf BiasScheme = iota
	// BiasThird holds unselected rows at V/3 and unselected columns at
	// 2V/3: every unselected cell sees at most V/3, at the cost of higher
	// static power.
	BiasThird
)

// String names the scheme.
func (b BiasScheme) String() string {
	if b == BiasHalf {
		return "V/2"
	}
	return "V/3"
}

// DisturbMargin returns the ratio of the cell's write threshold to the
// largest voltage any non-selected cell sees during a write at voltage
// writeV. A margin above 1 means no disturbance; larger is safer against
// threshold variability.
func (c CellModel) DisturbMargin(writeV float64, scheme BiasScheme) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if writeV < c.WriteThreshold {
		return 0, fmt.Errorf("crossbar: write voltage %g below the cell threshold %g", writeV, c.WriteThreshold)
	}
	var worst float64
	switch scheme {
	case BiasHalf:
		worst = writeV / 2
	case BiasThird:
		worst = writeV / 3
	default:
		return 0, fmt.Errorf("crossbar: unknown bias scheme %d", int(scheme))
	}
	return c.WriteThreshold / worst, nil
}

// MaxReadableArray returns the largest square array dimension whose
// worst-case OffReadRatio still meets the required sensing ratio. It is the
// subarray-size constraint that motivates partitioning large crossbar
// memories into banks of the paper's 16 kbit scale.
func (c CellModel) MaxReadableArray(minRatio float64) int {
	if minRatio <= 1 {
		return int(^uint(0) >> 1)
	}
	// OffReadRatio decreases monotonically in n; binary search the edge.
	lo, hi := 2, 1<<20
	if c.OffReadRatio(lo) < minRatio {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.OffReadRatio(mid) >= minRatio {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
