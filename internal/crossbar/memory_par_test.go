package crossbar

import (
	"context"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/stats"
	"nwdec/internal/yield"
)

func TestBuildLayerWorkersDeterministic(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact, err := geometry.DefaultParams().PlanContacts(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int) (*Layer, *stats.RNG) {
		rng := stats.NewRNG(3)
		layer, err := BuildLayerWorkers(context.Background(), d, contact, 128, yield.DefaultSigmaT, rng, workers)
		if err != nil {
			t.Fatal(err)
		}
		return layer, rng
	}
	serial, serialRNG := build(1)
	for _, w := range []int{2, 4, 0} {
		parallel, parallelRNG := build(w)
		if len(parallel.Wires) != len(serial.Wires) {
			t.Fatalf("workers=%d: %d wires vs %d", w, len(parallel.Wires), len(serial.Wires))
		}
		for i := range serial.Wires {
			a, b := serial.Wires[i], parallel.Wires[i]
			if a.HalfCave != b.HalfCave || a.Index != b.Index || a.Group != b.Group ||
				a.BoundaryAmbiguous != b.BoundaryAmbiguous || a.Addressable != b.Addressable {
				t.Fatalf("workers=%d: wire %d metadata differs: %+v vs %+v", w, i, a, b)
			}
			for j := range a.VT {
				if a.VT[j] != b.VT[j] {
					t.Fatalf("workers=%d: wire %d VT[%d]: %g != %g", w, i, j, a.VT[j], b.VT[j])
				}
			}
		}
		// The caller's generator must be left in the same position too, so
		// downstream draws (the column layer) stay aligned.
		if serialRNG.Clone().Uint64() != parallelRNG.Clone().Uint64() {
			t.Fatalf("workers=%d: caller RNG left in a different state", w)
		}
	}
}
