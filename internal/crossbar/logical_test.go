package crossbar

import (
	"bytes"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/stats"
)

// buildTestMemory fabricates a small memory with some wires forced
// defective.
func buildTestMemory(t *testing.T, defectRows, defectCols []int) *Memory {
	t.Helper()
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact := geometry.ContactPlan{GroupWires: 16, Groups: 1}
	rng := stats.NewRNG(5)
	rows, err := BuildLayer(d, contact, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := BuildLayer(d, contact, 16, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range defectRows {
		rows.Wires[r].Addressable = false
	}
	for _, c := range defectCols {
		cols.Wires[c].Addressable = false
	}
	return NewMemory(rows, cols)
}

func TestLogicalMemoryCapacity(t *testing.T) {
	mem := buildTestMemory(t, []int{0, 5}, []int{3})
	lm := NewLogicalMemory(mem)
	if got := lm.Capacity(); got != 14*15 {
		t.Errorf("Capacity = %d, want %d", got, 14*15)
	}
	if lm.Capacity() != mem.UsableBits() {
		t.Error("logical capacity != usable bits")
	}
}

func TestLogicalMapSkipsDefects(t *testing.T) {
	mem := buildTestMemory(t, []int{0}, []int{0, 1})
	lm := NewLogicalMemory(mem)
	r, c, err := lm.Map(0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 || c != 2 {
		t.Errorf("address 0 maps to (%d,%d), want (1,2)", r, c)
	}
	// Every logical address maps to a usable crosspoint, injectively.
	seen := make(map[[2]int]bool)
	for a := 0; a < lm.Capacity(); a++ {
		r, c, err := lm.Map(a)
		if err != nil {
			t.Fatal(err)
		}
		if !mem.Usable(r, c) {
			t.Fatalf("address %d maps to defective (%d,%d)", a, r, c)
		}
		key := [2]int{r, c}
		if seen[key] {
			t.Fatalf("address %d re-maps crosspoint (%d,%d)", a, r, c)
		}
		seen[key] = true
	}
}

func TestLogicalMapBounds(t *testing.T) {
	lm := NewLogicalMemory(buildTestMemory(t, nil, nil))
	if _, _, err := lm.Map(-1); err == nil {
		t.Error("negative address accepted")
	}
	if _, _, err := lm.Map(lm.Capacity()); err == nil {
		t.Error("address == capacity accepted")
	}
}

func TestLogicalStoreLoad(t *testing.T) {
	lm := NewLogicalMemory(buildTestMemory(t, []int{2}, []int{7}))
	for a := 0; a < lm.Capacity(); a += 7 {
		if err := lm.Store(a, a%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < lm.Capacity(); a += 7 {
		v, err := lm.Load(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != (a%2 == 0) {
			t.Fatalf("address %d = %v", a, v)
		}
	}
}

func TestLogicalBytesRoundTrip(t *testing.T) {
	lm := NewLogicalMemory(buildTestMemory(t, []int{1, 3}, []int{2}))
	msg := []byte("MSPT nanowire crossbar")
	if err := lm.StoreBytes(16, msg); err != nil {
		t.Fatal(err)
	}
	back, err := lm.LoadBytes(16, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Errorf("round trip = %q", back)
	}
}

func TestLogicalBytesBounds(t *testing.T) {
	lm := NewLogicalMemory(buildTestMemory(t, nil, nil))
	huge := make([]byte, lm.Capacity()/8+1)
	if err := lm.StoreBytes(0, huge); err == nil {
		t.Error("overrun store accepted")
	}
	if _, err := lm.LoadBytes(0, lm.Capacity()/8+1); err == nil {
		t.Error("overrun load accepted")
	}
	if _, err := lm.LoadBytes(-1, 1); err == nil {
		t.Error("negative address accepted")
	}
	if _, err := lm.LoadBytes(0, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestLogicalMemoryFullyDefective(t *testing.T) {
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	lm := NewLogicalMemory(buildTestMemory(t, all, nil))
	if lm.Capacity() != 0 {
		t.Errorf("capacity = %d, want 0", lm.Capacity())
	}
	if _, _, err := lm.Map(0); err == nil {
		t.Error("mapping into empty memory accepted")
	}
}
