package crossbar

import (
	"context"
	"fmt"

	"nwdec/internal/geometry"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/stats"
)

// Wire is one fabricated nanowire of a crossbar layer.
type Wire struct {
	// HalfCave is the index of the half cave the wire belongs to.
	HalfCave int
	// Index is the wire's position within its half cave (definition order).
	Index int
	// Group is the contact group the wire belongs to within its half cave.
	Group int
	// VT holds the sampled threshold voltages of the wire's M decoder
	// regions.
	VT []float64
	// BoundaryAmbiguous marks wires lying under a contact-group boundary;
	// they may be driven by two groups and are excluded from addressing.
	BoundaryAmbiguous bool
	// Addressable is the resolved functional addressability.
	Addressable bool
}

// Layer is one fabricated crossbar layer: WiresPerLayer nanowires organized
// in half caves, each half cave an independent Monte-Carlo instance of the
// decoder plan.
type Layer struct {
	Decoder *Decoder
	Contact geometry.ContactPlan
	Wires   []Wire
}

// BuildLayer fabricates a layer: it stamps the decoder plan into as many
// half caves as needed to cover wires nanowires, samples each half cave's
// threshold voltages independently, marks boundary-ambiguous wires and
// resolves functional addressability group by group. Half caves are
// resolved on the default worker pool; the output is bit-identical to the
// serial path for the same rng state.
func BuildLayer(d *Decoder, contact geometry.ContactPlan, wires int, sigmaT float64, rng *stats.RNG) (*Layer, error) {
	return BuildLayerWorkers(context.Background(), d, contact, wires, sigmaT, rng, 0)
}

// BuildLayerWorkers is BuildLayer with a cancellation context and an
// explicit worker count (<= 0 means GOMAXPROCS, 1 is the serial path). Every
// half cave's generator is forked from rng up front in cave order — exactly
// the draws the serial loop makes — so the fabricated layer is bit-identical
// at every worker count, and rng is left in the same state. Cancelling ctx
// abandons unfinished caves and returns ctx's error.
func BuildLayerWorkers(ctx context.Context, d *Decoder, contact geometry.ContactPlan, wires int, sigmaT float64, rng *stats.RNG, workers int) (*Layer, error) {
	if wires <= 0 {
		return nil, fmt.Errorf("crossbar: non-positive wire count %d", wires)
	}
	if sigmaT < 0 {
		return nil, fmt.Errorf("crossbar: negative sigmaT %g", sigmaT)
	}
	n := d.Plan.N()
	if contact.GroupWires <= 0 {
		// A zero-valued contact plan means one undivided group.
		contact.GroupWires = n
		if contact.Groups <= 0 {
			contact.Groups = 1
		}
	}
	lossPerBoundary := 0
	if contact.Groups > 1 {
		lossPerBoundary = contact.BoundaryLost / (contact.Groups - 1)
	}
	// Mark the wires nearest each internal group boundary ambiguous; the
	// mask is identical for every half cave.
	ambiguous := make([]bool, n)
	for b := 1; b < contact.Groups; b++ {
		edge := b * contact.GroupWires
		for k := 0; k < lossPerBoundary; k++ {
			idx := edge - 1 - k/2
			if k%2 == 1 {
				idx = edge + k/2
			}
			if idx >= 0 && idx < n {
				ambiguous[idx] = true
			}
		}
	}
	caves := (wires + n - 1) / n
	// Fabrication volume accounting: counts are pure functions of the
	// layer geometry, so they are identical at every worker count.
	reg := obs.From(ctx)
	reg.Counter("crossbar/layers").Add(1)
	reg.Counter("crossbar/caves").Add(int64(caves))
	reg.Counter("crossbar/wires").Add(int64(wires))
	caveRNGs := make([]*stats.RNG, caves)
	for c := range caveRNGs {
		caveRNGs[c] = rng.Fork()
	}
	m := d.Plan.M()
	// The layer's wires and threshold matrices live in two flat arenas sized
	// up front: Wire values are written in place at cave*n+i, and each wire's
	// VT row is a subslice of vtFlat. This replaces the per-cave slice churn
	// of the old per-item path (row headers, group masks, result append) with
	// three allocations for the whole layer.
	wiresAll := make([]Wire, caves*n)
	vtFlat := make([]float64, caves*n*m)
	err := par.ForEachChunks(ctx, workers, caves, 0,
		func(cctx context.Context, clo, chi int) error {
			// Chunk-local scratch, reused across the caves of the block: row
			// headers re-pointed into vtFlat per cave, and the addressability
			// mask of one contact group. Neither escapes the chunk.
			rows := make([][]float64, n)
			unique := make([]bool, contact.GroupWires)
			for cave := clo; cave < chi; cave++ {
				if err := cctx.Err(); err != nil {
					return err
				}
				caveVT := vtFlat[cave*n*m : (cave+1)*n*m]
				for i := 0; i < n; i++ {
					rows[i] = caveVT[i*m : (i+1)*m]
				}
				d.Plan.SampleVTInto(caveRNGs[cave], sigmaT, d.Q.VTOf, rows)
				caveOut := wiresAll[cave*n : (cave+1)*n]
				for g := 0; g*contact.GroupWires < n; g++ {
					lo := g * contact.GroupWires
					hi := lo + contact.GroupWires
					if hi > n {
						hi = n
					}
					d.UniquelyAddressableInto(rows, lo, hi, unique[:hi-lo])
					for i := lo; i < hi; i++ {
						caveOut[i] = Wire{
							HalfCave:          cave,
							Index:             i,
							Group:             g,
							VT:                rows[i],
							BoundaryAmbiguous: ambiguous[i],
							Addressable:       unique[i-lo] && !ambiguous[i],
						}
					}
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &Layer{Decoder: d, Contact: contact, Wires: wiresAll[:wires]}, nil
}

// AddressableCount returns how many wires of the layer are addressable.
func (l *Layer) AddressableCount() int {
	count := 0
	for _, w := range l.Wires {
		if w.Addressable {
			count++
		}
	}
	return count
}

// Yield returns the addressable fraction of the layer.
func (l *Layer) Yield() float64 {
	return float64(l.AddressableCount()) / float64(len(l.Wires))
}

// Memory is a functional crossbar memory: bits live at the crosspoints of
// two fabricated layers, and a crosspoint is usable only when both of its
// nanowires are addressable.
type Memory struct {
	Rows, Cols *Layer
	bits       []uint64 // packed row-major bit storage
}

// ErrUnaddressable reports an access through a defective (unaddressable)
// nanowire.
type ErrUnaddressable struct {
	Axis  string // "row" or "column"
	Index int
}

func (e *ErrUnaddressable) Error() string {
	return fmt.Sprintf("crossbar: %s %d is not addressable", e.Axis, e.Index)
}

// NewMemory builds a memory from two fabricated layers.
func NewMemory(rows, cols *Layer) *Memory {
	nbits := len(rows.Wires) * len(cols.Wires)
	return &Memory{
		Rows: rows,
		Cols: cols,
		bits: make([]uint64, (nbits+63)/64),
	}
}

// Size returns the raw dimensions (rows, cols) of the memory.
func (m *Memory) Size() (int, int) { return len(m.Rows.Wires), len(m.Cols.Wires) }

// Usable reports whether the crosspoint (r, c) can store a bit.
func (m *Memory) Usable(r, c int) bool {
	return r >= 0 && r < len(m.Rows.Wires) && c >= 0 && c < len(m.Cols.Wires) &&
		m.Rows.Wires[r].Addressable && m.Cols.Wires[c].Addressable
}

// check returns a typed error when the crosspoint is not accessible.
func (m *Memory) check(r, c int) error {
	if r < 0 || r >= len(m.Rows.Wires) {
		return fmt.Errorf("crossbar: row %d out of range [0,%d)", r, len(m.Rows.Wires))
	}
	if c < 0 || c >= len(m.Cols.Wires) {
		return fmt.Errorf("crossbar: column %d out of range [0,%d)", c, len(m.Cols.Wires))
	}
	if !m.Rows.Wires[r].Addressable {
		return &ErrUnaddressable{Axis: "row", Index: r}
	}
	if !m.Cols.Wires[c].Addressable {
		return &ErrUnaddressable{Axis: "column", Index: c}
	}
	return nil
}

// Write stores a bit at crosspoint (r, c); it fails when either nanowire of
// the crosspoint is defective.
func (m *Memory) Write(r, c int, bit bool) error {
	if err := m.check(r, c); err != nil {
		return err
	}
	idx := r*len(m.Cols.Wires) + c
	if bit {
		m.bits[idx/64] |= 1 << (idx % 64)
	} else {
		m.bits[idx/64] &^= 1 << (idx % 64)
	}
	return nil
}

// Read returns the bit stored at crosspoint (r, c).
func (m *Memory) Read(r, c int) (bool, error) {
	if err := m.check(r, c); err != nil {
		return false, err
	}
	idx := r*len(m.Cols.Wires) + c
	return m.bits[idx/64]&(1<<(idx%64)) != 0, nil
}

// UsableBits returns the number of working crosspoints — the Monte-Carlo
// counterpart of the analytic effective density D_EFF = D_RAW·Y².
func (m *Memory) UsableBits() int {
	return m.Rows.AddressableCount() * m.Cols.AddressableCount()
}

// UsableFraction returns the working fraction of the raw crosspoints.
func (m *Memory) UsableFraction() float64 {
	r, c := m.Size()
	return float64(m.UsableBits()) / float64(r*c)
}
