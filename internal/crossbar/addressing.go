package crossbar

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
)

// Address identifies one nanowire of a layer through the CMOS interface: a
// contact group (selected by the lithographic contact mesowire) and a code
// word (driven on the decoder mesowires).
type Address struct {
	HalfCave int
	Group    int
	Word     code.Word
}

// String renders the address for diagnostics.
func (a Address) String() string {
	return fmt.Sprintf("halfcave %d, group %d, word %s", a.HalfCave, a.Group, a.Word)
}

// AddressOf returns the CMOS-side address of a physical wire index within a
// layer built from the given decoder plan and contact partition.
func AddressOf(d *Decoder, contact geometry.ContactPlan, wire Wire) Address {
	return Address{
		HalfCave: wire.HalfCave,
		Group:    wire.Group,
		Word:     d.Plan.Pattern()[wire.Index],
	}
}

// NominalTable is the zero-variability decode map of one contact group: for
// every applied code word, the set of wire indices (within the group window)
// that conduct.
type NominalTable struct {
	// Lo, Hi bound the group's wire window [Lo, Hi).
	Lo, Hi int
	// Conducting[w] lists the wires conducting under the address of the
	// w-th wire's word.
	Conducting [][]int
}

// NominalAddressing computes the decode table of one contact group at
// nominal thresholds (no variability). A correct decoder design yields
// exactly one conducting wire per address; duplicated code words (possible
// when the lithographic minimum group width exceeds the code space) show up
// as multi-wire rows.
func (d *Decoder) NominalAddressing(lo, hi int) (*NominalTable, error) {
	if lo < 0 || hi > d.Plan.N() || lo >= hi {
		return nil, fmt.Errorf("crossbar: invalid group window [%d, %d) for %d wires", lo, hi, d.Plan.N())
	}
	t := &NominalTable{Lo: lo, Hi: hi, Conducting: make([][]int, hi-lo)}
	for i := lo; i < hi; i++ {
		va := d.va[i]
		for k := lo; k < hi; k++ {
			// At nominal thresholds, conduction is exactly digit-wise
			// domination; use the voltage comparison (over the decoder's
			// precomputed nominal-threshold rows) to exercise the same
			// path the Monte-Carlo simulator uses.
			if Conducts(d.nominal[k], va) {
				t.Conducting[i-lo] = append(t.Conducting[i-lo], k)
			}
		}
	}
	return t, nil
}

// Unique reports whether every address selects exactly one wire.
func (t *NominalTable) Unique() bool {
	for i, wires := range t.Conducting {
		if len(wires) != 1 || wires[0] != t.Lo+i {
			return false
		}
	}
	return true
}

// Ambiguous returns the in-group indices whose address selects zero or more
// than one wire.
func (t *NominalTable) Ambiguous() []int {
	var out []int
	for i, wires := range t.Conducting {
		if len(wires) != 1 || wires[0] != t.Lo+i {
			out = append(out, t.Lo+i)
		}
	}
	return out
}

// VerifyDecoder checks the paper's uniqueness requirement for a full plan
// partitioned by the contact plan: every contact group's nominal decode
// table must be unique. It is the executable form of "the first specific
// decoder for this fabrication technology that uniquely addresses every
// nanowire".
func VerifyDecoder(d *Decoder, contact geometry.ContactPlan) error {
	n := d.Plan.N()
	group := contact.GroupWires
	if group <= 0 {
		group = n
	}
	for lo := 0; lo < n; lo += group {
		hi := lo + group
		if hi > n {
			hi = n
		}
		table, err := d.NominalAddressing(lo, hi)
		if err != nil {
			return err
		}
		if !table.Unique() {
			return fmt.Errorf("crossbar: group [%d, %d) has ambiguous addresses at wires %v",
				lo, hi, table.Ambiguous())
		}
	}
	return nil
}
