package crossbar

import (
	"strings"
	"testing"
)

// FuzzReadDefectMap hardens the defect-map parser against corrupted
// controller state: arbitrary input must either fail cleanly or yield a
// validated map.
func FuzzReadDefectMap(f *testing.F) {
	f.Add(`{"rows":4,"cols":4,"badRows":[1],"badCols":[]}`)
	f.Add(`{"rows":128,"cols":128}`)
	f.Add(`{}`)
	f.Add(`{"rows":-1}`)
	f.Add(`{"rows":2,"cols":2,"badRows":[0,0]}`)
	f.Fuzz(func(t *testing.T, input string) {
		dm, err := ReadDefectMap(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the invariants.
		if err := dm.Validate(); err != nil {
			t.Fatalf("accepted map fails validation: %v", err)
		}
		if dm.UsableBits() < 0 || dm.UsableBits() > dm.Rows*dm.Cols {
			t.Fatalf("usable bits %d out of range", dm.UsableBits())
		}
	})
}
