package crossbar

import (
	"math"
	"testing"
)

func TestCellModelValidate(t *testing.T) {
	if err := DefaultCellModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCellModel()
	bad.ROn = 2e6
	if err := bad.Validate(); err == nil {
		t.Error("on >= off accepted")
	}
	bad = DefaultCellModel()
	bad.WriteThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	bad = DefaultCellModel()
	bad.SelectorOnOff = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-unity selector accepted")
	}
}

func TestSneakResistanceScaling(t *testing.T) {
	c := DefaultCellModel()
	// 2 R_on/(n-1) + R_on/(n-1)^2 for a passive cell.
	want := 2e4/3 + 1e4/9
	if got := c.SneakResistance(4); math.Abs(got-want) > 1e-6 {
		t.Errorf("SneakResistance(4) = %g, want %g", got, want)
	}
	if !math.IsInf(c.SneakResistance(1), 1) {
		t.Error("single-wire array should have no sneak path")
	}
	// Monotone decreasing with array size.
	prev := math.Inf(1)
	for n := 2; n <= 1024; n *= 2 {
		r := c.SneakResistance(n)
		if r >= prev {
			t.Fatalf("sneak resistance not decreasing at n=%d", n)
		}
		prev = r
	}
}

func TestOffReadRatioDegradesWithSize(t *testing.T) {
	c := DefaultCellModel()
	// Tiny array: nearly the full R_off/R_on contrast.
	if got := c.OffReadRatio(1); math.Abs(got-100) > 1e-9 {
		t.Errorf("isolated contrast = %g, want 100", got)
	}
	prev := math.Inf(1)
	for n := 2; n <= 4096; n *= 2 {
		r := c.OffReadRatio(n)
		if r >= prev {
			t.Fatalf("read ratio not degrading at n=%d", n)
		}
		if r < 1 {
			t.Fatalf("ratio below 1 at n=%d", n)
		}
		prev = r
	}
	// At very large n the sneak network shorts both states: ratio -> 1.
	if r := c.OffReadRatio(1 << 16); r > 1.01 {
		t.Errorf("huge array ratio = %g, want ~1", r)
	}
}

func TestMaxReadableArray(t *testing.T) {
	c := DefaultCellModel()
	limit := c.MaxReadableArray(1.5)
	if limit < 2 {
		t.Fatalf("limit = %d", limit)
	}
	if c.OffReadRatio(limit) < 1.5 {
		t.Errorf("ratio at limit %d is %g, below 1.5", limit, c.OffReadRatio(limit))
	}
	if c.OffReadRatio(limit+1) >= 1.5 {
		t.Errorf("limit %d not tight", limit)
	}
	// A passive 128-wire layer is nearly unreadable — the sneak-path
	// problem — while the diode-isolated cell of reference [16] restores a
	// usable sensing ratio.
	if c.OffReadRatio(128) > 1.1 {
		t.Errorf("passive 128-wire layer unexpectedly readable: ratio %g", c.OffReadRatio(128))
	}
	diode := DiodeCellModel()
	if diode.OffReadRatio(128) < 1.3 {
		t.Errorf("diode-isolated 128-wire layer unreadable: ratio %g", diode.OffReadRatio(128))
	}
	if diode.MaxReadableArray(1.5) < 128 {
		t.Errorf("diode cell cannot support the paper's layer size: max %d", diode.MaxReadableArray(1.5))
	}
	// Impossible demands yield 0; trivial demands are unbounded.
	if c.MaxReadableArray(1000) != 0 {
		t.Error("unreachable ratio should give 0")
	}
	if c.MaxReadableArray(1.0) != int(^uint(0)>>1) {
		t.Error("ratio 1 should be unbounded")
	}
}

func TestDisturbMargin(t *testing.T) {
	c := DefaultCellModel()
	half, err := c.DisturbMargin(1.2, BiasHalf)
	if err != nil {
		t.Fatal(err)
	}
	third, err := c.DisturbMargin(1.2, BiasThird)
	if err != nil {
		t.Fatal(err)
	}
	// V/3 biasing always leaves more margin than V/2.
	if third <= half {
		t.Errorf("V/3 margin %g not above V/2 margin %g", third, half)
	}
	if math.Abs(half-1.0/0.6) > 1e-9 {
		t.Errorf("V/2 margin = %g", half)
	}
	if math.Abs(third-1.0/0.4) > 1e-9 {
		t.Errorf("V/3 margin = %g", third)
	}
	if BiasHalf.String() != "V/2" || BiasThird.String() != "V/3" {
		t.Error("scheme names wrong")
	}
}

func TestDisturbMarginValidation(t *testing.T) {
	c := DefaultCellModel()
	if _, err := c.DisturbMargin(0.5, BiasHalf); err == nil {
		t.Error("write below threshold accepted")
	}
	if _, err := c.DisturbMargin(1.2, BiasScheme(9)); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad := c
	bad.ROn = -1
	if _, err := bad.DisturbMargin(1.2, BiasHalf); err == nil {
		t.Error("invalid cell accepted")
	}
}
