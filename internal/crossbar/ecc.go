package crossbar

import "fmt"

// ECCMemory layers a Hamming(7,4) single-error-correcting code over a
// LogicalMemory: every data nibble is stored as a 7-bit codeword, so a
// single flipped crosspoint per codeword — a soft defect the static defect
// map cannot see, e.g. a marginal molecular switch — is corrected on read.
// Together with the defect-avoiding logical remap this forms the two-level
// defect-tolerance stack the paper's introduction calls for.
type ECCMemory struct {
	lm *LogicalMemory
	// corrected counts single-bit corrections performed on reads.
	corrected int
}

// NewECCMemory wraps a logical memory with the Hamming layer.
func NewECCMemory(lm *LogicalMemory) *ECCMemory {
	return &ECCMemory{lm: lm}
}

// CapacityNibbles returns how many 4-bit data nibbles fit.
func (e *ECCMemory) CapacityNibbles() int { return e.lm.Capacity() / 7 }

// CapacityBytes returns how many full bytes fit (two nibbles each).
func (e *ECCMemory) CapacityBytes() int { return e.CapacityNibbles() / 2 }

// Corrected returns the number of single-bit errors corrected so far.
func (e *ECCMemory) Corrected() int { return e.corrected }

// hammingEncode expands a 4-bit nibble into a 7-bit codeword. Bit layout is
// the classical one (1-indexed positions; parity at 1, 2, 4):
//
//	pos:  1  2  3  4  5  6  7
//	bit: p1 p2 d0 p3 d1 d2 d3
func hammingEncode(nibble byte) [7]bool {
	d := [4]bool{nibble&1 != 0, nibble&2 != 0, nibble&4 != 0, nibble&8 != 0}
	var c [7]bool
	c[2], c[4], c[5], c[6] = d[0], d[1], d[2], d[3]
	c[0] = c[2] != c[4] != c[6] // p1 covers positions 1,3,5,7
	c[1] = c[2] != c[5] != c[6] // p2 covers positions 2,3,6,7
	c[3] = c[4] != c[5] != c[6] // p3 covers positions 4,5,6,7
	return c
}

// hammingDecode recovers the nibble from a 7-bit codeword, correcting at
// most one flipped bit. It returns the nibble and whether a correction was
// applied.
func hammingDecode(c [7]bool) (byte, bool) {
	s1 := c[0] != c[2] != c[4] != c[6]
	s2 := c[1] != c[2] != c[5] != c[6]
	s3 := c[3] != c[4] != c[5] != c[6]
	syndrome := 0
	if s1 {
		syndrome |= 1
	}
	if s2 {
		syndrome |= 2
	}
	if s3 {
		syndrome |= 4
	}
	corrected := false
	if syndrome != 0 {
		c[syndrome-1] = !c[syndrome-1]
		corrected = true
	}
	var nibble byte
	if c[2] {
		nibble |= 1
	}
	if c[4] {
		nibble |= 2
	}
	if c[5] {
		nibble |= 4
	}
	if c[6] {
		nibble |= 8
	}
	return nibble, corrected
}

// StoreNibble writes one 4-bit value at nibble address addr.
func (e *ECCMemory) StoreNibble(addr int, nibble byte) error {
	if addr < 0 || addr >= e.CapacityNibbles() {
		return fmt.Errorf("crossbar: nibble address %d outside [0, %d)", addr, e.CapacityNibbles())
	}
	if nibble > 0xf {
		return fmt.Errorf("crossbar: nibble value %#x exceeds 4 bits", nibble)
	}
	cw := hammingEncode(nibble)
	for i, bit := range cw {
		if err := e.lm.Store(7*addr+i, bit); err != nil {
			return err
		}
	}
	return nil
}

// LoadNibble reads one 4-bit value, correcting a single bit error.
func (e *ECCMemory) LoadNibble(addr int) (byte, error) {
	if addr < 0 || addr >= e.CapacityNibbles() {
		return 0, fmt.Errorf("crossbar: nibble address %d outside [0, %d)", addr, e.CapacityNibbles())
	}
	var cw [7]bool
	for i := range cw {
		bit, err := e.lm.Load(7*addr + i)
		if err != nil {
			return 0, err
		}
		cw[i] = bit
	}
	nibble, corrected := hammingDecode(cw)
	if corrected {
		e.corrected++
	}
	return nibble, nil
}

// StoreBytes writes data starting at byte address addr.
func (e *ECCMemory) StoreBytes(addr int, data []byte) error {
	if addr < 0 || addr+len(data) > e.CapacityBytes() {
		return fmt.Errorf("crossbar: %d bytes at %d overrun ECC capacity %d", len(data), addr, e.CapacityBytes())
	}
	for i, b := range data {
		if err := e.StoreNibble(2*(addr+i), b&0xf); err != nil {
			return err
		}
		if err := e.StoreNibble(2*(addr+i)+1, b>>4); err != nil {
			return err
		}
	}
	return nil
}

// LoadBytes reads n bytes starting at byte address addr.
func (e *ECCMemory) LoadBytes(addr, n int) ([]byte, error) {
	if addr < 0 || n < 0 || addr+n > e.CapacityBytes() {
		return nil, fmt.Errorf("crossbar: %d bytes at %d overrun ECC capacity %d", n, addr, e.CapacityBytes())
	}
	out := make([]byte, n)
	for i := range out {
		lo, err := e.LoadNibble(2 * (addr + i))
		if err != nil {
			return nil, err
		}
		hi, err := e.LoadNibble(2*(addr+i) + 1)
		if err != nil {
			return nil, err
		}
		out[i] = lo | hi<<4
	}
	return out, nil
}

// FlipRawBit flips the stored value of one underlying logical bit — a test
// hook modelling a soft crosspoint fault underneath the ECC layer.
func (e *ECCMemory) FlipRawBit(bitAddr int) error {
	v, err := e.lm.Load(bitAddr)
	if err != nil {
		return err
	}
	return e.lm.Store(bitAddr, !v)
}
