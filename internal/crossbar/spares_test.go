package crossbar

import (
	"math"
	"testing"
	"testing/quick"

	"nwdec/internal/stats"
)

func TestSpareWiresZeroFailure(t *testing.T) {
	s, err := SpareWires(128, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("perfect process needs %d spares, want 0", s)
	}
}

func TestSpareWiresGrowWithFailureProb(t *testing.T) {
	prev := -1
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2} {
		s, err := SpareWires(128, p, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Errorf("p=%g: spares %d not above %d", p, s, prev)
		}
		prev = s
		// Expectation check: spares must at least cover the mean loss.
		if float64(s) < 128*p {
			t.Errorf("p=%g: %d spares below the expected loss %.1f", p, s, 128*p)
		}
	}
}

func TestSpareWiresMeetConfidence(t *testing.T) {
	const required, p, conf = 128, 0.07, 0.99
	s, err := SpareWires(required, p, conf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CapacityConfidence(required+s, required, p)
	if err != nil {
		t.Fatal(err)
	}
	if got < conf {
		t.Errorf("confidence with %d spares = %g, want >= %g", s, got, conf)
	}
	if s > 0 {
		less, err := CapacityConfidence(required+s-1, required, p)
		if err != nil {
			t.Fatal(err)
		}
		if less >= conf {
			t.Errorf("spare count %d not minimal", s)
		}
	}
}

func TestSpareWiresValidation(t *testing.T) {
	if _, err := SpareWires(0, 0.1, 0.9); err == nil {
		t.Error("zero required accepted")
	}
	if _, err := SpareWires(10, 1.0, 0.9); err == nil {
		t.Error("certain failure accepted")
	}
	if _, err := SpareWires(10, 0.1, 1.0); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestCapacityConfidenceEdges(t *testing.T) {
	c, err := CapacityConfidence(10, 0, 0.5)
	if err != nil || c != 1 {
		t.Errorf("requiring 0 wires: %g, %v", c, err)
	}
	c, err = CapacityConfidence(10, 10, 0)
	if err != nil || c != 1 {
		t.Errorf("perfect process full capacity: %g, %v", c, err)
	}
	if _, err := CapacityConfidence(0, 0, 0.5); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := CapacityConfidence(4, 9, 0.5); err == nil {
		t.Error("required above total accepted")
	}
}

func TestBinomialTailMatchesMonteCarlo(t *testing.T) {
	const n, p, k = 40, 0.85, 34
	want := stats.BinomialTailGE(n, p, k)
	rng := stats.NewRNG(33)
	const trials = 60000
	hit := 0
	for tr := 0; tr < trials; tr++ {
		count := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				count++
			}
		}
		if count >= k {
			hit++
		}
	}
	got := float64(hit) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC tail %g vs analytic %g", got, want)
	}
}

func TestBinomialTailProperties(t *testing.T) {
	f := func(nRaw, kRaw, pRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 2)
		p := float64(pRaw) / 255
		tail := stats.BinomialTailGE(n, p, k)
		if k <= 0 && tail != 1 {
			return false
		}
		if k > n && tail != 0 {
			return false
		}
		return tail >= 0 && tail <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
