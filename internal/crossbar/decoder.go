// Package crossbar is a behavioural simulator of an MSPT nanowire crossbar
// memory: it instantiates every nanowire of both layers with Monte-Carlo
// sampled threshold voltages, resolves functional addressability through the
// actual conduction test (a nanowire conducts when every decoder transistor
// along it is turned on by the applied mesowire voltages), and exposes a
// bit-level read/write memory over the working crosspoints.
//
// The simulator is the executable cross-check of the analytic yield model in
// package yield: both consume the same decoder plan, and the test suite
// verifies that the Monte-Carlo addressable fraction converges to the
// analytic prediction.
package crossbar

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

// Decoder couples a doping plan with the voltage quantizer that defines the
// addressing levels.
type Decoder struct {
	Plan *mspt.Plan
	Q    *physics.Quantizer
}

// NewDecoder validates that the plan and quantizer agree on the logic base.
func NewDecoder(plan *mspt.Plan, q *physics.Quantizer) (*Decoder, error) {
	if plan.Base() != q.N() {
		return nil, fmt.Errorf("crossbar: plan base %d does not match quantizer levels %d", plan.Base(), q.N())
	}
	return &Decoder{Plan: plan, Q: q}, nil
}

// AddressVoltages returns the mesowire voltage pattern that addresses the
// given code word: each mesowire is driven to the upper edge of the word
// digit's threshold band, so a transistor conducts exactly when its actual
// threshold is below that edge. Nominally a nanowire with pattern p conducts
// under the address w iff p <= w digit-wise, which for reflected codes (and
// for fixed-weight hot codes) holds only for p == w — the uniqueness
// argument of the paper's decoder.
func (d *Decoder) AddressVoltages(w code.Word) []float64 {
	vmin, vmax := d.Q.Window()
	spacing := (vmax - vmin) / float64(d.Q.N())
	va := make([]float64, len(w))
	for j, digit := range w {
		va[j] = vmin + float64(digit+1)*spacing
	}
	return va
}

// Conducts reports whether a nanowire with the sampled threshold voltages vt
// conducts under the applied mesowire voltages va: every decoder transistor
// must be on (threshold strictly below its gate voltage).
func Conducts(vt, va []float64) bool {
	for j := range vt {
		if vt[j] >= va[j] {
			return false
		}
	}
	return true
}

// SampleVT draws one Monte-Carlo realization of the decoder's threshold
// voltages with per-dose deviation sigmaT.
func (d *Decoder) SampleVT(rng *stats.RNG, sigmaT float64) [][]float64 {
	return d.Plan.SampleVT(rng, sigmaT, d.Q.VTOf)
}

// UniquelyAddressable reports, for one sampled half cave, which wires are
// functionally addressable: wire i (within the index window [lo, hi) of one
// contact group) is addressable iff it conducts under its own address and no
// other wire of the same group conducts under that address.
func (d *Decoder) UniquelyAddressable(vt [][]float64, lo, hi int) []bool {
	pattern := d.Plan.Pattern()
	out := make([]bool, hi-lo)
	for i := lo; i < hi; i++ {
		va := d.AddressVoltages(pattern[i])
		if !Conducts(vt[i], va) {
			continue
		}
		unique := true
		for k := lo; k < hi; k++ {
			if k != i && Conducts(vt[k], va) {
				unique = false
				break
			}
		}
		out[i-lo] = unique
	}
	return out
}

// MarginAddressable reports which wires satisfy the analytic addressability
// criterion on a sampled threshold matrix: every region stays within margin
// of its nominal level. This is the Monte-Carlo counterpart of
// yield.Analyzer and is used to validate the analytic model.
func (d *Decoder) MarginAddressable(vt [][]float64, margin float64) []bool {
	pattern := d.Plan.Pattern()
	out := make([]bool, d.Plan.N())
	for i := range out {
		ok := true
		for j := 0; j < d.Plan.M(); j++ {
			nominal := d.Q.VTOf(pattern[i][j])
			if diff := vt[i][j] - nominal; diff > margin || diff < -margin {
				ok = false
				break
			}
		}
		out[i] = ok
	}
	return out
}
