// Package crossbar is a behavioural simulator of an MSPT nanowire crossbar
// memory: it instantiates every nanowire of both layers with Monte-Carlo
// sampled threshold voltages, resolves functional addressability through the
// actual conduction test (a nanowire conducts when every decoder transistor
// along it is turned on by the applied mesowire voltages), and exposes a
// bit-level read/write memory over the working crosspoints.
//
// The simulator is the executable cross-check of the analytic yield model in
// package yield: both consume the same decoder plan, and the test suite
// verifies that the Monte-Carlo addressable fraction converges to the
// analytic prediction.
package crossbar

import (
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

// Decoder couples a doping plan with the voltage quantizer that defines the
// addressing levels.
//
// Construction precomputes the three read-only matrices every Monte-Carlo
// resolution consults per wire — the pattern rows, the per-wire address
// voltages and the nominal thresholds — so the fabrication hot loop shares
// them across workers without cloning or re-deriving anything. The caches
// are pure functions of (plan, quantizer) and never written after
// NewDecoder returns, which keeps concurrent layer builds race-clean.
type Decoder struct {
	Plan *mspt.Plan
	Q    *physics.Quantizer

	// pattern is a private copy of the plan's pattern rows (the public
	// accessor clones per call, far too expensive per half cave).
	pattern []code.Word
	// va[i] is AddressVoltages(pattern[i]): the mesowire drive pattern
	// addressing wire i. Rows are slices of one flat backing array.
	va [][]float64
	// nominal[i][j] is the zero-variability threshold of region (i, j).
	nominal [][]float64
}

// NewDecoder validates that the plan and quantizer agree on the logic base.
func NewDecoder(plan *mspt.Plan, q *physics.Quantizer) (*Decoder, error) {
	if plan.Base() != q.N() {
		return nil, fmt.Errorf("crossbar: plan base %d does not match quantizer levels %d", plan.Base(), q.N())
	}
	d := &Decoder{Plan: plan, Q: q, pattern: plan.Pattern()}
	n, m := plan.N(), plan.M()
	vaFlat := make([]float64, n*m)
	nomFlat := make([]float64, n*m)
	d.va = make([][]float64, n)
	d.nominal = make([][]float64, n)
	for i := 0; i < n; i++ {
		d.va[i] = vaFlat[i*m : (i+1)*m]
		d.nominal[i] = nomFlat[i*m : (i+1)*m]
		d.addressVoltagesInto(d.pattern[i], d.va[i])
		for j := 0; j < m; j++ {
			d.nominal[i][j] = q.VTOf(d.pattern[i][j])
		}
	}
	return d, nil
}

// AddressVoltages returns the mesowire voltage pattern that addresses the
// given code word: each mesowire is driven to the upper edge of the word
// digit's threshold band, so a transistor conducts exactly when its actual
// threshold is below that edge. Nominally a nanowire with pattern p conducts
// under the address w iff p <= w digit-wise, which for reflected codes (and
// for fixed-weight hot codes) holds only for p == w — the uniqueness
// argument of the paper's decoder.
func (d *Decoder) AddressVoltages(w code.Word) []float64 {
	va := make([]float64, len(w))
	d.addressVoltagesInto(w, va)
	return va
}

// addressVoltagesInto writes the drive pattern for w into dst with the
// exact arithmetic of AddressVoltages.
func (d *Decoder) addressVoltagesInto(w code.Word, dst []float64) {
	vmin, vmax := d.Q.Window()
	spacing := (vmax - vmin) / float64(d.Q.N())
	for j, digit := range w {
		dst[j] = vmin + float64(digit+1)*spacing
	}
}

// Conducts reports whether a nanowire with the sampled threshold voltages vt
// conducts under the applied mesowire voltages va: every decoder transistor
// must be on (threshold strictly below its gate voltage).
func Conducts(vt, va []float64) bool {
	for j := range vt {
		if vt[j] >= va[j] {
			return false
		}
	}
	return true
}

// SampleVT draws one Monte-Carlo realization of the decoder's threshold
// voltages with per-dose deviation sigmaT.
func (d *Decoder) SampleVT(rng *stats.RNG, sigmaT float64) [][]float64 {
	return d.Plan.SampleVT(rng, sigmaT, d.Q.VTOf)
}

// UniquelyAddressable reports, for one sampled half cave, which wires are
// functionally addressable: wire i (within the index window [lo, hi) of one
// contact group) is addressable iff it conducts under its own address and no
// other wire of the same group conducts under that address.
func (d *Decoder) UniquelyAddressable(vt [][]float64, lo, hi int) []bool {
	out := make([]bool, hi-lo)
	d.UniquelyAddressableInto(vt, lo, hi, out)
	return out
}

// UniquelyAddressableInto is UniquelyAddressable writing into a
// caller-owned buffer of length hi-lo — the zero-allocation variant the
// fabrication loop calls once per contact group per half cave, reusing one
// scratch buffer across its whole scheduling chunk. The address voltages
// come from the decoder's precomputed cache, so the resolution makes no
// allocations at all.
func (d *Decoder) UniquelyAddressableInto(vt [][]float64, lo, hi int, out []bool) {
	for i := lo; i < hi; i++ {
		va := d.va[i]
		if !Conducts(vt[i], va) {
			out[i-lo] = false
			continue
		}
		unique := true
		for k := lo; k < hi; k++ {
			if k != i && Conducts(vt[k], va) {
				unique = false
				break
			}
		}
		out[i-lo] = unique
	}
}

// MarginAddressable reports which wires satisfy the analytic addressability
// criterion on a sampled threshold matrix: every region stays within margin
// of its nominal level. This is the Monte-Carlo counterpart of
// yield.Analyzer and is used to validate the analytic model.
func (d *Decoder) MarginAddressable(vt [][]float64, margin float64) []bool {
	out := make([]bool, d.Plan.N())
	m := d.Plan.M()
	for i := range out {
		ok := true
		nom := d.nominal[i]
		for j := 0; j < m; j++ {
			if diff := vt[i][j] - nom[j]; diff > margin || diff < -margin {
				ok = false
				break
			}
		}
		out[i] = ok
	}
	return out
}
