package crossbar

import (
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/stats"
)

func TestNominalAddressingUniqueForAllFamilies(t *testing.T) {
	for _, tp := range code.AllTypes() {
		m := 8
		if !tp.Reflected() {
			m = 6
		}
		d := testDecoder(t, tp, m, 16)
		table, err := d.NominalAddressing(0, d.Plan.N())
		if err != nil {
			t.Fatal(err)
		}
		if !table.Unique() {
			t.Errorf("%v: nominal addressing ambiguous at %v", tp, table.Ambiguous())
		}
	}
}

func TestVerifyDecoderWholePlan(t *testing.T) {
	d := testDecoder(t, code.TypeBalancedGray, 10, 20)
	contact, err := geometry.DefaultParams().PlanContacts(20, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDecoder(d, contact); err != nil {
		t.Errorf("unique decoder rejected: %v", err)
	}
}

func TestVerifyDecoderDetectsDuplicates(t *testing.T) {
	// Force duplicated code words inside one group: cyclic assignment of a
	// 4-word space across 8 wires in a single 8-wire group.
	g, _ := code.NewTree(2, 4) // space size 4
	q, _ := physics.NewQuantizer(physics.DefaultPhysicalModel(), 2, 0, 1)
	plan, err := mspt.NewPlanFromGenerator(g, 8, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyDecoder(d, geometry.ContactPlan{GroupWires: 8, Groups: 1})
	if err == nil {
		t.Fatal("duplicated codes within a group not detected")
	}
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unexpected error: %v", err)
	}
	// With the proper 4-wire groups the same plan verifies.
	if err := VerifyDecoder(d, geometry.ContactPlan{GroupWires: 4, Groups: 2}); err != nil {
		t.Errorf("correctly partitioned plan rejected: %v", err)
	}
}

func TestNominalAddressingWindowValidation(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 8)
	if _, err := d.NominalAddressing(-1, 4); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := d.NominalAddressing(0, 9); err == nil {
		t.Error("hi beyond N accepted")
	}
	if _, err := d.NominalAddressing(4, 4); err == nil {
		t.Error("empty window accepted")
	}
}

func TestAddressOf(t *testing.T) {
	d := testDecoder(t, code.TypeGray, 8, 16)
	contact := geometry.ContactPlan{GroupWires: 8, Groups: 2}
	layer, err := BuildLayer(d, contact, 32, 0, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	w := layer.Wires[19] // half cave 1, index 3, group 0
	addr := AddressOf(d, contact, w)
	if addr.HalfCave != 1 || addr.Group != 0 {
		t.Errorf("address = %+v", addr)
	}
	if !addr.Word.Equal(d.Plan.Pattern()[3]) {
		t.Errorf("address word = %v", addr.Word)
	}
	if !strings.Contains(addr.String(), "halfcave 1") {
		t.Error("address string incomplete")
	}
}

func TestNominalTableAmbiguousEmptyForUnique(t *testing.T) {
	d := testDecoder(t, code.TypeHot, 6, 12)
	table, err := d.NominalAddressing(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if amb := table.Ambiguous(); len(amb) != 0 {
		t.Errorf("unexpected ambiguity: %v", amb)
	}
}
