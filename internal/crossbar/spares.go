package crossbar

import (
	"fmt"

	"nwdec/internal/stats"
)

// SpareWires returns the smallest number of spare nanowires a crossbar
// layer must provision so that, with independent per-wire failure
// probability failProb, at least required wires are addressable with the
// given confidence. This is the provisioning rule a memory architect pairs
// with the defect-avoiding logical remap: fabricate required+spares wires,
// map out the failures, expose exactly required logical rows.
func SpareWires(required int, failProb, confidence float64) (int, error) {
	if required <= 0 {
		return 0, fmt.Errorf("crossbar: non-positive required wire count %d", required)
	}
	if failProb < 0 || failProb >= 1 {
		return 0, fmt.Errorf("crossbar: failure probability %g outside [0, 1)", failProb)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("crossbar: confidence %g outside (0, 1)", confidence)
	}
	okProb := 1 - failProb
	maxSpares := 20 * required
	for spares := 0; spares <= maxSpares; spares++ {
		if stats.BinomialTailGE(required+spares, okProb, required) >= confidence {
			return spares, nil
		}
	}
	return 0, fmt.Errorf("crossbar: no spare count up to %d reaches confidence %g at failure probability %g",
		maxSpares, confidence, failProb)
}

// CapacityConfidence returns the probability that a layer of total wires
// with independent per-wire failure probability failProb still delivers at
// least required addressable wires.
func CapacityConfidence(total, required int, failProb float64) (float64, error) {
	if total <= 0 || required < 0 || required > total {
		return 0, fmt.Errorf("crossbar: invalid wire counts total=%d required=%d", total, required)
	}
	if failProb < 0 || failProb > 1 {
		return 0, fmt.Errorf("crossbar: failure probability %g outside [0, 1]", failProb)
	}
	return stats.BinomialTailGE(total, 1-failProb, required), nil
}
