package crossbar

import (
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/stats"
)

func TestMarchCMinusCleanMemory(t *testing.T) {
	mem := buildTestMemory(t, nil, nil)
	if faults := MarchCMinus(mem); len(faults) != 0 {
		t.Errorf("clean memory reported %d faults", len(faults))
	}
}

func TestMarchCMinusFindsDefectiveWires(t *testing.T) {
	mem := buildTestMemory(t, []int{2, 10}, []int{5})
	faults := MarchCMinus(mem)
	// Two bad rows (16 cells each) + one bad column (16 cells) minus the
	// two overlapping crosspoints counted once.
	want := 2*16 + 16 - 2
	if len(faults) != want {
		t.Fatalf("found %d faults, want %d", len(faults), want)
	}
	for _, f := range faults {
		if f.Kind != FaultAccess {
			t.Errorf("fault (%d,%d) has kind %v, want access", f.Row, f.Col, f.Kind)
		}
		if f.Row != 2 && f.Row != 10 && f.Col != 5 {
			t.Errorf("fault (%d,%d) off the defective wires", f.Row, f.Col)
		}
	}
}

func TestMarchReconstructsDefectMap(t *testing.T) {
	mem := buildTestMemory(t, []int{0, 7, 15}, []int{3, 4})
	faults := MarchCMinus(mem)
	dm, err := DefectMapFromFaults(faults, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := ExtractDefectMap(mem)
	if len(dm.BadRows) != len(want.BadRows) || len(dm.BadCols) != len(want.BadCols) {
		t.Fatalf("reconstructed %+v, want %+v", dm, want)
	}
	for i := range want.BadRows {
		if dm.BadRows[i] != want.BadRows[i] {
			t.Errorf("BadRows[%d] = %d, want %d", i, dm.BadRows[i], want.BadRows[i])
		}
	}
	for i := range want.BadCols {
		if dm.BadCols[i] != want.BadCols[i] {
			t.Errorf("BadCols[%d] = %d, want %d", i, dm.BadCols[i], want.BadCols[i])
		}
	}
	if dm.UsableBits() != mem.UsableBits() {
		t.Errorf("usable bits %d, want %d", dm.UsableBits(), mem.UsableBits())
	}
}

func TestMarchEndToEndWithMonteCarloFabrication(t *testing.T) {
	// Fabricate with real variability, then verify that pure functional
	// testing reconstructs the same defect map the builder recorded.
	d := testDecoder(t, code.TypeBalancedGray, 10, 20)
	contact, err := geometry.DefaultParams().PlanContacts(20, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(21)
	rows, err := BuildLayer(d, contact, 64, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := BuildLayer(d, contact, 64, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(rows, cols)
	faults := MarchCMinus(mem)
	dm, err := DefectMapFromFaults(faults, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := ExtractDefectMap(mem)
	if dm.UsableBits() != want.UsableBits() {
		t.Errorf("march-test map has %d usable bits, builder map %d",
			dm.UsableBits(), want.UsableBits())
	}
	if len(dm.BadRows) != len(want.BadRows) || len(dm.BadCols) != len(want.BadCols) {
		t.Errorf("march map %+v, builder map %+v", dm, want)
	}
}

func TestDefectMapFromFaultsValidation(t *testing.T) {
	if _, err := DefectMapFromFaults(nil, 0, 4); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := DefectMapFromFaults([]Fault{{Row: 9, Col: 0}}, 4, 4); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultAccess.String() != "access" || FaultStuck.String() != "stuck" {
		t.Error("fault kind names wrong")
	}
}

func TestMarchDetectsStuckCell(t *testing.T) {
	// A stuck-at fault (not a wire defect) must be classified FaultStuck
	// and must not condemn its wires in the reconstruction.
	mem := buildTestMemory(t, nil, nil)
	// Simulate a stuck-at-1 cell by pre-setting it and making writes to it
	// ineffective: the bit-storage model has no per-cell stuck mode, so we
	// emulate it by flipping the bit between March elements via a wrapper.
	// Instead, verify the classification path directly on a mismatch:
	faults := []Fault{{Row: 1, Col: 1, Kind: FaultStuck}}
	dm, err := DefectMapFromFaults(faults, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(dm.BadRows) != 0 || len(dm.BadCols) != 0 {
		t.Errorf("lone stuck cell condemned wires: %+v", dm)
	}
	_ = mem
}
