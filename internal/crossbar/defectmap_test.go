package crossbar

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtractDefectMap(t *testing.T) {
	mem := buildTestMemory(t, []int{2, 9}, []int{4})
	dm := ExtractDefectMap(mem)
	if dm.Rows != 16 || dm.Cols != 16 {
		t.Errorf("dimensions %dx%d", dm.Rows, dm.Cols)
	}
	if len(dm.BadRows) != 2 || dm.BadRows[0] != 2 || dm.BadRows[1] != 9 {
		t.Errorf("BadRows = %v", dm.BadRows)
	}
	if len(dm.BadCols) != 1 || dm.BadCols[0] != 4 {
		t.Errorf("BadCols = %v", dm.BadCols)
	}
	if dm.UsableBits() != mem.UsableBits() {
		t.Errorf("usable bits %d vs %d", dm.UsableBits(), mem.UsableBits())
	}
	if err := dm.Validate(); err != nil {
		t.Errorf("extracted map invalid: %v", err)
	}
}

func TestDefectMapRoundTrip(t *testing.T) {
	mem := buildTestMemory(t, []int{0, 7}, []int{1, 15})
	dm := ExtractDefectMap(mem)
	var buf bytes.Buffer
	if err := dm.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDefectMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.UsableBits() != dm.UsableBits() || len(back.BadRows) != 2 {
		t.Errorf("round trip = %+v", back)
	}
	// Apply onto a fresh (all-good) memory and compare the remaps.
	fresh := buildTestMemory(t, nil, nil)
	if err := back.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.UsableBits() != mem.UsableBits() {
		t.Errorf("applied map yields %d usable bits, want %d", fresh.UsableBits(), mem.UsableBits())
	}
	if fresh.Usable(0, 0) || fresh.Usable(3, 1) || !fresh.Usable(3, 2) {
		t.Error("applied defect pattern wrong")
	}
}

func TestDefectMapValidate(t *testing.T) {
	bad := []DefectMap{
		{Rows: 0, Cols: 4},
		{Rows: 4, Cols: 4, BadRows: []int{4}},
		{Rows: 4, Cols: 4, BadRows: []int{-1}},
		{Rows: 4, Cols: 4, BadRows: []int{2, 2}},
		{Rows: 4, Cols: 4, BadCols: []int{3, 1}},
	}
	for i, dm := range bad {
		if err := dm.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, dm)
		}
	}
	good := DefectMap{Rows: 4, Cols: 4, BadRows: []int{1, 3}, BadCols: nil}
	if err := good.Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
}

func TestReadDefectMapErrors(t *testing.T) {
	if _, err := ReadDefectMap(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadDefectMap(strings.NewReader(`{"rows":2,"cols":2,"badRows":[5]}`)); err == nil {
		t.Error("invalid indices accepted")
	}
}

func TestDefectMapApplyDimensionMismatch(t *testing.T) {
	mem := buildTestMemory(t, nil, nil)
	dm := DefectMap{Rows: 8, Cols: 8}
	if err := dm.Apply(mem); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
