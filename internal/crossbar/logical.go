package crossbar

import (
	"fmt"
)

// LogicalMemory exposes the usable crosspoints of a defective crossbar as a
// dense, contiguous bit address space — the defect-tolerance layer the
// paper's introduction motivates ("innovative defect tolerance methods at
// all design levels"). It is built once from the fabricated memory's defect
// map: unaddressable rows and columns are skipped, and logical address a
// maps to the a-th usable crosspoint in row-major order.
type LogicalMemory struct {
	mem *Memory
	// usableRows/usableCols are the physical indices of addressable wires.
	usableRows []int
	usableCols []int
}

// NewLogicalMemory builds the remapping layer over a fabricated memory.
func NewLogicalMemory(mem *Memory) *LogicalMemory {
	lm := &LogicalMemory{mem: mem}
	for i, w := range mem.Rows.Wires {
		if w.Addressable {
			lm.usableRows = append(lm.usableRows, i)
		}
	}
	for i, w := range mem.Cols.Wires {
		if w.Addressable {
			lm.usableCols = append(lm.usableCols, i)
		}
	}
	return lm
}

// Capacity returns the number of logical bit addresses.
func (lm *LogicalMemory) Capacity() int {
	return len(lm.usableRows) * len(lm.usableCols)
}

// Map translates a logical address to its physical (row, col) crosspoint.
func (lm *LogicalMemory) Map(addr int) (row, col int, err error) {
	if addr < 0 || addr >= lm.Capacity() {
		return 0, 0, fmt.Errorf("crossbar: logical address %d outside [0, %d)", addr, lm.Capacity())
	}
	row = lm.usableRows[addr/len(lm.usableCols)]
	col = lm.usableCols[addr%len(lm.usableCols)]
	return row, col, nil
}

// Store writes a bit at a logical address.
func (lm *LogicalMemory) Store(addr int, bit bool) error {
	r, c, err := lm.Map(addr)
	if err != nil {
		return err
	}
	return lm.mem.Write(r, c, bit)
}

// Load reads the bit at a logical address.
func (lm *LogicalMemory) Load(addr int) (bool, error) {
	r, c, err := lm.Map(addr)
	if err != nil {
		return false, err
	}
	return lm.mem.Read(r, c)
}

// StoreBytes writes a byte slice starting at logical bit address addr
// (LSB-first within each byte). It fails without partial-write rollback if
// the data overruns the capacity; callers should check Capacity first.
func (lm *LogicalMemory) StoreBytes(addr int, data []byte) error {
	if addr < 0 || addr+8*len(data) > lm.Capacity() {
		return fmt.Errorf("crossbar: %d bytes at address %d overrun capacity %d bits",
			len(data), addr, lm.Capacity())
	}
	for i, b := range data {
		for bit := 0; bit < 8; bit++ {
			if err := lm.Store(addr+8*i+bit, b&(1<<bit) != 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadBytes reads n bytes starting at logical bit address addr.
func (lm *LogicalMemory) LoadBytes(addr, n int) ([]byte, error) {
	if addr < 0 || n < 0 || addr+8*n > lm.Capacity() {
		return nil, fmt.Errorf("crossbar: %d bytes at address %d overrun capacity %d bits",
			n, addr, lm.Capacity())
	}
	out := make([]byte, n)
	for i := range out {
		for bit := 0; bit < 8; bit++ {
			v, err := lm.Load(addr + 8*i + bit)
			if err != nil {
				return nil, err
			}
			if v {
				out[i] |= 1 << bit
			}
		}
	}
	return out, nil
}
