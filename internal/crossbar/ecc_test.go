package crossbar

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHammingEncodeDecodeAllNibbles(t *testing.T) {
	for n := byte(0); n < 16; n++ {
		cw := hammingEncode(n)
		got, corrected := hammingDecode(cw)
		if got != n || corrected {
			t.Errorf("nibble %#x: decode = %#x, corrected %v", n, got, corrected)
		}
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	for n := byte(0); n < 16; n++ {
		for pos := 0; pos < 7; pos++ {
			cw := hammingEncode(n)
			cw[pos] = !cw[pos]
			got, corrected := hammingDecode(cw)
			if got != n {
				t.Errorf("nibble %#x, flip %d: decode = %#x", n, pos, got)
			}
			if !corrected {
				t.Errorf("nibble %#x, flip %d: correction not reported", n, pos)
			}
		}
	}
}

func eccUnderTest(t *testing.T) *ECCMemory {
	t.Helper()
	mem := buildTestMemory(t, []int{3}, []int{7, 8})
	return NewECCMemory(NewLogicalMemory(mem))
}

func TestECCCapacity(t *testing.T) {
	e := eccUnderTest(t)
	// 15 x 14 = 210 usable bits -> 30 nibbles -> 15 bytes.
	if e.CapacityNibbles() != 30 || e.CapacityBytes() != 15 {
		t.Errorf("capacity = %d nibbles, %d bytes", e.CapacityNibbles(), e.CapacityBytes())
	}
}

func TestECCNibbleRoundTrip(t *testing.T) {
	e := eccUnderTest(t)
	for a := 0; a < e.CapacityNibbles(); a++ {
		if err := e.StoreNibble(a, byte(a%16)); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < e.CapacityNibbles(); a++ {
		v, err := e.LoadNibble(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != byte(a%16) {
			t.Fatalf("nibble %d = %#x", a, v)
		}
	}
	if e.Corrected() != 0 {
		t.Errorf("spurious corrections: %d", e.Corrected())
	}
}

func TestECCBytesRoundTripWithFaultInjection(t *testing.T) {
	e := eccUnderTest(t)
	msg := []byte("nanowires!")
	if err := e.StoreBytes(0, msg); err != nil {
		t.Fatal(err)
	}
	// Flip one raw bit in every stored codeword.
	for cw := 0; cw < 2*len(msg); cw++ {
		if err := e.FlipRawBit(7*cw + cw%7); err != nil {
			t.Fatal(err)
		}
	}
	back, err := e.LoadBytes(0, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Errorf("round trip under faults = %q", back)
	}
	if e.Corrected() != 2*len(msg) {
		t.Errorf("corrected %d errors, want %d", e.Corrected(), 2*len(msg))
	}
}

func TestECCValidation(t *testing.T) {
	e := eccUnderTest(t)
	if err := e.StoreNibble(-1, 0); err == nil {
		t.Error("negative nibble address accepted")
	}
	if err := e.StoreNibble(0, 0x1f); err == nil {
		t.Error("oversized nibble accepted")
	}
	if _, err := e.LoadNibble(e.CapacityNibbles()); err == nil {
		t.Error("out-of-range load accepted")
	}
	if err := e.StoreBytes(0, make([]byte, e.CapacityBytes()+1)); err == nil {
		t.Error("overrun store accepted")
	}
	if _, err := e.LoadBytes(0, e.CapacityBytes()+1); err == nil {
		t.Error("overrun load accepted")
	}
}

func TestECCPropertyRandomData(t *testing.T) {
	e := eccUnderTest(t)
	f := func(data []byte, flipRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > e.CapacityBytes() {
			data = data[:e.CapacityBytes()]
		}
		if err := e.StoreBytes(0, data); err != nil {
			return false
		}
		// One random single-bit fault inside the written region.
		bit := int(flipRaw) % (14 * len(data))
		if err := e.FlipRawBit(bit); err != nil {
			return false
		}
		back, err := e.LoadBytes(0, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
