package core

import (
	"math"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/stats"
)

func TestDesignFabricate(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := d.Fabricate(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	r, c := mem.Size()
	if r != d.Layout.WiresPerLayer || c != d.Layout.WiresPerLayer {
		t.Errorf("memory size %dx%d", r, c)
	}
	if mem.UsableFraction() <= 0 {
		t.Error("no usable crosspoints")
	}
}

func TestDesignMonteCarloYieldMatchesAnalytic(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := d.MonteCarloYield(5, 17)
	if err != nil {
		t.Fatal(err)
	}
	analytic := d.Yield() * d.Yield()
	if math.Abs(mc-analytic) > 0.1 {
		t.Errorf("MC %g far from analytic %g", mc, analytic)
	}
	if _, err := d.MonteCarloYield(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestDesignMonteCarloDeterministic(t *testing.T) {
	d, _ := NewDesign(Config{CodeType: code.TypeGray})
	a, err := d.MonteCarloYield(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.MonteCarloYield(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic MC yield: %g vs %g", a, b)
	}
}

func TestDesignVerifyUniqueAddressing(t *testing.T) {
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		d, err := NewDesign(Config{CodeType: tp, CodeLength: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.VerifyUniqueAddressing(); err != nil {
			t.Errorf("%v: %v", tp, err)
		}
	}
}
