package core

import (
	"context"
	"runtime"
	"testing"

	"nwdec/internal/code"
)

func TestMonteCarloYieldWorkersDeterministic(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeTree, CodeLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := d.MonteCarloYieldWorkers(context.Background(), 6, 2009, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0), 0} {
		parallel, err := d.MonteCarloYieldWorkers(context.Background(), 6, 2009, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if parallel != serial {
			t.Errorf("workers=%d: yield %v != serial %v", w, parallel, serial)
		}
	}
}

func TestSweepWorkersDeterministic(t *testing.T) {
	types := []code.Type{code.TypeTree, code.TypeBalancedGray}
	lengths := []int{6, 8, 10}
	serial, err := SweepWorkers(context.Background(), Config{}, types, lengths, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepWorkers(context.Background(), Config{}, types, lengths, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d vs %d points", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Type != p.Type || s.Length != p.Length ||
			s.Design.Yield() != p.Design.Yield() || s.Design.BitArea() != p.Design.BitArea() {
			t.Errorf("point %d differs: %v M=%d Y=%g vs %v M=%d Y=%g",
				i, s.Type, s.Length, s.Design.Yield(), p.Type, p.Length, p.Design.Yield())
		}
	}
}
