package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/yield"
)

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Base != 2 || cfg.CodeLength != 10 {
		t.Errorf("defaults: base %d, M %d", cfg.Base, cfg.CodeLength)
	}
	if cfg.Spec.RawBits != 16384 || cfg.Spec.HalfCaveWires != 20 {
		t.Errorf("default spec: %+v", cfg.Spec)
	}
	if cfg.SigmaT != yield.DefaultSigmaT || cfg.VMax != 1 {
		t.Errorf("default sigma/window: %g %g", cfg.SigmaT, cfg.VMax)
	}
	if cfg.Model == nil || cfg.DoseUnit == 0 || cfg.MarginFactor == 0 {
		t.Error("default model/unit/margin missing")
	}
	hot := Config{CodeType: code.TypeHot}.WithDefaults()
	if hot.CodeLength != 6 {
		t.Errorf("hot default length = %d, want 6", hot.CodeLength)
	}
}

func TestNewDesignDefaultsProducePlausibleDecoder(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		t.Fatal(err)
	}
	if d.Yield() <= 0.5 || d.Yield() > 1 {
		t.Errorf("default BGC yield %g out of expected range", d.Yield())
	}
	if d.BitArea() < 100 || d.BitArea() > 500 {
		t.Errorf("default BGC bit area %g nm² implausible", d.BitArea())
	}
	if d.Phi != 2*d.Config.Spec.HalfCaveWires {
		t.Errorf("binary reflected Φ = %d, want 2N", d.Phi)
	}
}

func TestNewDesignErrors(t *testing.T) {
	if _, err := NewDesign(Config{CodeType: code.TypeTree, CodeLength: 7}); err == nil {
		t.Error("odd tree length accepted")
	}
	if _, err := NewDesign(Config{CodeType: code.TypeHot, CodeLength: 7}); err == nil {
		t.Error("hot length not divisible by base accepted")
	}
	if _, err := NewDesign(Config{Base: 1}); err == nil {
		t.Error("base 1 accepted")
	}
	bad := Config{}
	bad.Spec = geometry.DefaultCrossbarSpec()
	bad.Spec.NanowirePitch = 0
	if _, err := NewDesign(bad); err == nil {
		t.Error("broken geometry accepted")
	}
}

func TestDesignReportMentionsKeyNumbers(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeGray, CodeLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := d.Report()
	for _, want := range []string{"GC", "M=8", "Φ", "yield", "bit area"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestPaperOrderingHolds(t *testing.T) {
	// The paper's qualitative result at M=8: BGC >= GC >= TC in yield, and
	// the same ordering reversed in bit area.
	var designs []*Design
	for _, tp := range []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray} {
		d, err := NewDesign(Config{CodeType: tp, CodeLength: 8})
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
	}
	tc, gc, bgc := designs[0], designs[1], designs[2]
	if !(bgc.Yield() >= gc.Yield() && gc.Yield() > tc.Yield()) {
		t.Errorf("yield ordering violated: TC %g, GC %g, BGC %g",
			tc.Yield(), gc.Yield(), bgc.Yield())
	}
	if !(bgc.BitArea() <= gc.BitArea() && gc.BitArea() < tc.BitArea()) {
		t.Errorf("area ordering violated: TC %g, GC %g, BGC %g",
			tc.BitArea(), gc.BitArea(), bgc.BitArea())
	}
}

func TestSweepSkipsInvalidLengths(t *testing.T) {
	pts, err := Sweep(Config{}, []code.Type{code.TypeGray, code.TypeHot}, []int{4, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Length == 7 {
			t.Error("length 7 should be skipped for both families")
		}
	}
	// Gray: 4,6,8; hot: 4,6,8 => 6 points.
	if len(pts) != 6 {
		t.Errorf("got %d sweep points, want 6", len(pts))
	}
}

func TestSweepAllInvalid(t *testing.T) {
	if _, err := Sweep(Config{}, []code.Type{code.TypeGray}, []int{3, 5}); err == nil {
		t.Error("all-invalid sweep should error")
	}
}

func TestOptimizeMinBitArea(t *testing.T) {
	types := []code.Type{code.TypeTree, code.TypeGray, code.TypeBalancedGray, code.TypeHot, code.TypeArrangedHot}
	lengths := []int{4, 6, 8, 10}
	best, err := Optimize(context.Background(), Config{}, types, lengths, MinBitArea)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's winners: an optimized code (BGC or AHC).
	if tp := best.Config.CodeType; tp != code.TypeBalancedGray && tp != code.TypeArrangedHot {
		t.Errorf("optimizer picked %v, expected an optimized code family", tp)
	}
	// Exhaustively confirm optimality.
	pts, err := Sweep(Config{}, types, lengths)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Design.BitArea() < best.BitArea()-1e-9 {
			t.Errorf("optimizer missed better design %v M=%d (%g < %g)",
				p.Type, p.Length, p.Design.BitArea(), best.BitArea())
		}
	}
}

func TestOptimizeMaxYield(t *testing.T) {
	types := []code.Type{code.TypeTree, code.TypeBalancedGray}
	best, err := Optimize(context.Background(), Config{}, types, []int{6, 8, 10}, MaxYield)
	if err != nil {
		t.Fatal(err)
	}
	if best.Config.CodeType != code.TypeBalancedGray {
		t.Errorf("max-yield winner %v, want BGC", best.Config.CodeType)
	}
	pts, _ := Sweep(Config{}, types, []int{6, 8, 10})
	for _, p := range pts {
		if p.Design.Yield() > best.Yield()+1e-12 {
			t.Error("optimizer missed higher-yield design")
		}
	}
}

func TestOptimizeMinPhi(t *testing.T) {
	// Ternary logic: Gray must win the Φ objective against the tree code.
	cfg := Config{Base: 3}
	best, err := Optimize(context.Background(), cfg, []code.Type{code.TypeTree, code.TypeGray}, []int{6, 8}, MinPhi)
	if err != nil {
		t.Fatal(err)
	}
	if best.Config.CodeType != code.TypeGray {
		t.Errorf("min-Φ winner %v, want GC", best.Config.CodeType)
	}
}

func TestValidLength(t *testing.T) {
	if !validLength(code.TypeGray, 2, 8) || validLength(code.TypeGray, 2, 7) {
		t.Error("tree-family length rule wrong")
	}
	if !validLength(code.TypeHot, 3, 6) || validLength(code.TypeHot, 3, 8) {
		t.Error("hot-family length rule wrong")
	}
	if validLength(code.TypeGray, 2, 0) {
		t.Error("zero length accepted")
	}
	// Base defaulting inside validLength.
	if !validLength(code.TypeHot, 0, 6) {
		t.Error("default base not applied")
	}
}

func TestYieldAndAreaConsistent(t *testing.T) {
	d, err := NewDesign(Config{CodeType: code.TypeGray})
	if err != nil {
		t.Fatal(err)
	}
	wantArea := d.Layout.Area() / (float64(d.Config.Spec.RawBits) * d.Yield() * d.Yield())
	if math.Abs(d.BitArea()-wantArea) > 1e-9 {
		t.Errorf("bit area %g inconsistent with yield: want %g", d.BitArea(), wantArea)
	}
}
