package core

import (
	"context"
	"fmt"

	"nwdec/internal/crossbar"
	"nwdec/internal/obs"
	"nwdec/internal/par"
	"nwdec/internal/stats"
)

// Decoder returns the functional decoder of the design, for use with the
// crossbar simulator.
func (d *Design) Decoder() (*crossbar.Decoder, error) {
	return crossbar.NewDecoder(d.Plan, d.Quantizer)
}

// Fabricate builds one Monte-Carlo instance of the designed crossbar
// memory: both layers are fabricated with the design's variability and the
// layout's contact partition.
func (d *Design) Fabricate(rng *stats.RNG) (*crossbar.Memory, error) {
	return d.FabricateWorkers(context.Background(), rng, 0)
}

// FabricateWorkers is Fabricate with a cancellation context and an explicit
// worker count for the layer builds (<= 0 means GOMAXPROCS). The memory is
// bit-identical at every worker count for the same rng state.
func (d *Design) FabricateWorkers(ctx context.Context, rng *stats.RNG, workers int) (*crossbar.Memory, error) {
	dec, err := d.Decoder()
	if err != nil {
		return nil, err
	}
	rows, err := crossbar.BuildLayerWorkers(ctx, dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng, workers)
	if err != nil {
		return nil, err
	}
	cols, err := crossbar.BuildLayerWorkers(ctx, dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng, workers)
	if err != nil {
		return nil, err
	}
	return crossbar.NewMemory(rows, cols), nil
}

// MonteCarloYield measures the mean usable crosspoint fraction over trials
// independent fabrications — the empirical counterpart of the analytic Y².
// It runs on the default worker pool.
func (d *Design) MonteCarloYield(trials int, seed uint64) (float64, error) {
	return d.MonteCarloYieldWorkers(context.Background(), trials, seed, 0)
}

// MonteCarloYieldWorkers is MonteCarloYield with a cancellation context and
// an explicit worker count (<= 0 means GOMAXPROCS). Each trial fabricates
// from its own jump substream of the seed and the mean is reduced in trial
// order, so the result is bit-identical at every worker count. Trials are
// scheduled in contiguous chunks, and each chunk materializes only its own
// block of substreams through the lazy fan-out — no worker count pays the
// up-front cost of jumping out all trials eagerly. Cancelling ctx abandons
// unfinished trials and returns ctx's error.
func (d *Design) MonteCarloYieldWorkers(ctx context.Context, trials int, seed uint64, workers int) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("core: non-positive trial count %d", trials)
	}
	reg := obs.From(ctx)
	span := reg.StartSpan("core/montecarlo_yield")
	defer span.End()
	reg.Counter("core/montecarlo_yield/trials").Add(int64(trials))
	sub := stats.NewRNG(seed).Substreams()
	fracs := make([]float64, trials)
	err := par.ForEachChunks(ctx, workers, trials, 0,
		func(cctx context.Context, lo, hi int) error {
			rngs := sub.Block(uint64(lo), hi-lo)
			for t := lo; t < hi; t++ {
				if err := cctx.Err(); err != nil {
					return err
				}
				// Caves stay serial inside a trial: the trial fan-out
				// already saturates the pool.
				mem, err := d.FabricateWorkers(cctx, rngs[t-lo], 1)
				if err != nil {
					return err
				}
				fracs[t] = mem.UsableFraction()
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, f := range fracs {
		sum += f
	}
	return sum / float64(trials), nil
}

// VerifyUniqueAddressing checks the nominal uniqueness of the design's
// decoder across its contact partition.
func (d *Design) VerifyUniqueAddressing() error {
	dec, err := d.Decoder()
	if err != nil {
		return err
	}
	return crossbar.VerifyDecoder(dec, d.Layout.Contact)
}
