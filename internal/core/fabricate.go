package core

import (
	"fmt"

	"nwdec/internal/crossbar"
	"nwdec/internal/stats"
)

// Decoder returns the functional decoder of the design, for use with the
// crossbar simulator.
func (d *Design) Decoder() (*crossbar.Decoder, error) {
	return crossbar.NewDecoder(d.Plan, d.Quantizer)
}

// Fabricate builds one Monte-Carlo instance of the designed crossbar
// memory: both layers are fabricated with the design's variability and the
// layout's contact partition.
func (d *Design) Fabricate(rng *stats.RNG) (*crossbar.Memory, error) {
	dec, err := d.Decoder()
	if err != nil {
		return nil, err
	}
	rows, err := crossbar.BuildLayer(dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng)
	if err != nil {
		return nil, err
	}
	cols, err := crossbar.BuildLayer(dec, d.Layout.Contact, d.Layout.WiresPerLayer, d.Config.SigmaT, rng)
	if err != nil {
		return nil, err
	}
	return crossbar.NewMemory(rows, cols), nil
}

// MonteCarloYield measures the mean usable crosspoint fraction over trials
// independent fabrications — the empirical counterpart of the analytic Y².
func (d *Design) MonteCarloYield(trials int, seed uint64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("core: non-positive trial count %d", trials)
	}
	rng := stats.NewRNG(seed)
	sum := 0.0
	for i := 0; i < trials; i++ {
		mem, err := d.Fabricate(rng)
		if err != nil {
			return 0, err
		}
		sum += mem.UsableFraction()
	}
	return sum / float64(trials), nil
}

// VerifyUniqueAddressing checks the nominal uniqueness of the design's
// decoder across its contact partition.
func (d *Design) VerifyUniqueAddressing() error {
	dec, err := d.Decoder()
	if err != nil {
		return err
	}
	return crossbar.VerifyDecoder(dec, d.Layout.Contact)
}
