package core

import (
	"fmt"

	"nwdec/internal/dataset"
)

// Fingerprint returns a short stable hex hash of the configuration for
// dataset metadata and for content-addressed caching in the engine layer.
// The threshold model is represented by its type name plus — when the
// model exposes a Params() string hook, as the physics models do — its
// calibration parameters: hashing the interface value directly would
// render a pointer address, which differs between runs, and a type name
// alone would collide two models of the same type with different
// calibration.
func (c Config) Fingerprint() string {
	view := c
	view.Model = nil
	model := fmt.Sprintf("%T", c.Model)
	if p, ok := c.Model.(interface{ Params() string }); ok {
		model += "{" + p.Params() + "}"
	}
	return dataset.Fingerprint(struct {
		Config Config
		Model  string
	}{view, model})
}

// Dataset packages the design's summary analysis as a one-row structured
// dataset; its text rendering is the full Report.
func (d *Design) Dataset() *dataset.Dataset {
	ds := dataset.New("design", "MSPT nanowire decoder design",
		dataset.Col("code", dataset.String),
		dataset.Col("base", dataset.Int),
		dataset.Col("M", dataset.Int),
		dataset.Col("spaceSize", dataset.Int),
		dataset.Col("halfCaveWires", dataset.Int),
		dataset.Col("contactGroups", dataset.Int),
		dataset.ColUnit("phi", "steps", dataset.Int),
		dataset.ColUnit("avgVariability", "σ_T²·V²", dataset.Float),
		dataset.Col("yield", dataset.Float),
		dataset.Col("effectiveBits", dataset.Float),
		dataset.ColUnit("bitArea", "nm²", dataset.Float),
	)
	ds.AddRow(
		d.Config.CodeType.String(),
		d.Config.Base,
		d.Config.CodeLength,
		d.Generator.SpaceSize(),
		d.Config.Spec.HalfCaveWires,
		d.Layout.Contact.Groups,
		d.Phi,
		d.AvgVariability,
		d.Crossbar.Yield,
		d.Crossbar.EffectiveBits,
		d.Crossbar.BitArea,
	)
	ds.Meta.ConfigHash = d.Config.Fingerprint()
	ds.SetText(d.Report)
	return ds
}
