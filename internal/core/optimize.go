package core

import (
	"context"
	"fmt"
	"sort"

	"nwdec/internal/code"
	"nwdec/internal/obs"
	"nwdec/internal/par"
)

// SweepPoint is one evaluated configuration in a design-space sweep.
type SweepPoint struct {
	Type   code.Type
	Length int
	Design *Design
}

// Sweep evaluates the base configuration across every combination of the
// given code types and code lengths. Combinations that are structurally
// invalid for a family (e.g. a hot-code length not divisible by the base)
// are skipped silently, so callers can pass one shared length grid. It runs
// on the default worker pool.
func Sweep(base Config, types []code.Type, lengths []int) ([]SweepPoint, error) {
	return SweepWorkers(context.Background(), base, types, lengths, 0)
}

// SweepWorkers is Sweep with a cancellation context and an explicit worker
// count (<= 0 means GOMAXPROCS). Every design point is a pure function of
// the base configuration, so the output is bit-identical at every worker
// count. Cancelling ctx abandons unfinished points and returns ctx's error.
func SweepWorkers(ctx context.Context, base Config, types []code.Type, lengths []int, workers int) ([]SweepPoint, error) {
	type unit struct {
		tp code.Type
		m  int
	}
	var units []unit
	for _, tp := range types {
		for _, m := range lengths {
			if !validLength(tp, base.Base, m) {
				continue
			}
			units = append(units, unit{tp: tp, m: m})
		}
	}
	reg := obs.From(ctx)
	span := reg.StartSpan("core/sweep")
	defer span.End()
	reg.Counter("core/sweep/points").Add(int64(len(units)))
	points, err := par.Map(ctx, workers, units,
		func(_ context.Context, _ int, u unit) (SweepPoint, error) {
			cfg := base
			cfg.CodeType = u.tp
			cfg.CodeLength = u.m
			d, err := NewDesign(cfg)
			if err != nil {
				return SweepPoint{}, fmt.Errorf("core: sweep %v M=%d: %w", u.tp, u.m, err)
			}
			return SweepPoint{Type: u.tp, Length: u.m, Design: d}, nil
		})
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("core: sweep produced no valid configurations")
	}
	return points, nil
}

// validLength reports whether length m is structurally valid for the family.
func validLength(tp code.Type, base, m int) bool {
	if base == 0 {
		base = 2
	}
	if m <= 0 {
		return false
	}
	if tp.Reflected() {
		return m%2 == 0
	}
	return m%base == 0
}

// Objective ranks designs in an optimization.
type Objective int

// Optimization objectives.
const (
	// MinBitArea minimizes the effective area per working bit — the
	// paper's headline figure of merit.
	MinBitArea Objective = iota
	// MaxYield maximizes the cave yield.
	MaxYield
	// MinPhi minimizes the fabrication complexity, breaking ties on bit
	// area.
	MinPhi
)

// Optimize sweeps the design space and returns the best design under the
// objective. Ties break deterministically on (type order, shorter length).
// Cancelling ctx aborts the underlying sweep with ctx's error.
func Optimize(ctx context.Context, base Config, types []code.Type, lengths []int, obj Objective) (*Design, error) {
	points, err := SweepWorkers(ctx, base, types, lengths, 0)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(points, func(i, j int) bool {
		a, b := points[i], points[j]
		switch obj {
		case MaxYield:
			if a.Design.Yield() != b.Design.Yield() {
				return a.Design.Yield() > b.Design.Yield()
			}
		case MinPhi:
			if a.Design.Phi != b.Design.Phi {
				return a.Design.Phi < b.Design.Phi
			}
			if a.Design.BitArea() != b.Design.BitArea() {
				return a.Design.BitArea() < b.Design.BitArea()
			}
		default: // MinBitArea
			if a.Design.BitArea() != b.Design.BitArea() {
				return a.Design.BitArea() < b.Design.BitArea()
			}
		}
		return a.Length < b.Length
	})
	return points[0].Design, nil
}
