package core

import (
	"testing"

	"nwdec/internal/physics"
)

// TestFingerprintModelParams is the regression test for the %T-only model
// hash: two models of the same Go type but different calibration must
// fingerprint differently, because the fingerprint keys the engine's
// result cache — a collision would serve one calibration's designs for
// the other.
func TestFingerprintModelParams(t *testing.T) {
	base := Config{}.WithDefaults()

	shifted := base
	m := *physics.DefaultPhysicalModel()
	m.FlatBand += 0.05
	shifted.Model = &m
	if base.Fingerprint() == shifted.Fingerprint() {
		t.Errorf("same-type models with different FlatBand share fingerprint %s", base.Fingerprint())
	}

	tblA, err := physics.NewTableModel([]physics.CalPoint{{Doping: 2e18, VT: 0.1}, {Doping: 9e18, VT: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	tblB, err := physics.NewTableModel([]physics.CalPoint{{Doping: 2e18, VT: 0.1}, {Doping: 9e18, VT: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	cfgA, cfgB := base, base
	cfgA.Model, cfgB.Model = tblA, tblB
	if cfgA.Fingerprint() == cfgB.Fingerprint() {
		t.Errorf("table models with different points share fingerprint %s", cfgA.Fingerprint())
	}

	// Different model types still differ, and equal configurations still
	// agree — the fix must not destabilize the hash.
	cfgTable := base
	cfgTable.Model = physics.PaperExampleTable()
	if cfgTable.Fingerprint() == base.Fingerprint() {
		t.Error("table model and physical model share a fingerprint")
	}
	if base.Fingerprint() != (Config{}.WithDefaults()).Fingerprint() {
		t.Error("equal configurations fingerprint differently")
	}

	// The nil-model form is what the committed golden datasets pin
	// (experiments fingerprint the pre-defaults config); it must not move.
	if got := (Config{}).Fingerprint(); got != "f381ff593ac1424e" {
		t.Errorf("zero-config fingerprint moved to %s; golden datasets depend on it", got)
	}
}
