// Package core is the top of the library: the MSPT nanowire-decoder
// designer. Given a code family, a logic valency and a code length it
// assembles the full design — code arrangement, doping plan, fabrication
// complexity, variability, crossbar layout, yield and effective bit area —
// and offers parameter sweeps and an optimizer that picks the best decoder
// for a crossbar, reproducing the design-space exploration of Sec. 6 of the
// paper.
package core

import (
	"fmt"
	"strings"

	"nwdec/internal/code"
	"nwdec/internal/geometry"
	"nwdec/internal/mspt"
	"nwdec/internal/physics"
	"nwdec/internal/yield"
)

// Config specifies one decoder design problem. The zero value of every
// field selects the paper's default platform; see WithDefaults.
type Config struct {
	// CodeType selects the code family (default: balanced Gray).
	CodeType code.Type
	// Base is the logic valency n (default 2).
	Base int
	// CodeLength is the total code length M (default 10 for tree-based
	// families, 6 for hot codes).
	CodeLength int
	// Spec is the crossbar organization (default: the paper's 16 kbit
	// platform with 20 wires per half cave).
	Spec geometry.CrossbarSpec
	// SigmaT is the per-dose threshold deviation in volts (default 50 mV).
	SigmaT float64
	// VMin, VMax bound the threshold-voltage window (default [0, 1] V: the
	// paper's 1 V supply).
	VMin, VMax float64
	// MarginFactor scales the geometric half-spacing margin (default
	// yield.DefaultMarginFactor).
	MarginFactor float64
	// Model maps doping to threshold voltage (default
	// physics.DefaultPhysicalModel).
	Model physics.VTModel
	// DoseUnit is the doping quantization in cm^-3 (default
	// mspt.DefaultDoseUnit).
	DoseUnit float64
}

// WithDefaults returns the configuration with every zero field replaced by
// the paper's default platform value.
func (c Config) WithDefaults() Config {
	if c.Base == 0 {
		c.Base = 2
	}
	if c.CodeLength == 0 {
		if c.CodeType.Reflected() {
			c.CodeLength = 10
		} else {
			c.CodeLength = 6
		}
	}
	if c.Spec.RawBits == 0 {
		c.Spec = geometry.DefaultCrossbarSpec()
	}
	if c.SigmaT == 0 {
		c.SigmaT = yield.DefaultSigmaT
	}
	if c.VMin == 0 && c.VMax == 0 {
		c.VMax = 1
	}
	if c.MarginFactor == 0 {
		c.MarginFactor = yield.DefaultMarginFactor
	}
	if c.Model == nil {
		c.Model = physics.DefaultPhysicalModel()
	}
	if c.DoseUnit == 0 {
		c.DoseUnit = mspt.DefaultDoseUnit
	}
	return c
}

// Design is a fully resolved decoder design with its complete analysis.
type Design struct {
	Config    Config
	Generator code.Generator
	Quantizer *physics.Quantizer
	Plan      *mspt.Plan
	Layout    *geometry.Layout
	Analyzer  yield.Analyzer

	// Phi is the fabrication complexity (extra litho/doping steps per half
	// cave).
	Phi int
	// AvgVariability is ‖Σ‖₁/(N·M) in V².
	AvgVariability float64
	// Crossbar is the yield / density / bit-area analysis.
	Crossbar yield.Crossbar
}

// NewDesign resolves a configuration into a complete decoder design. The
// code generator comes from the process-wide memoization cache: the same
// arrangement search (notably the balanced-Gray and arranged-hot
// backtracking) is re-derived by every figure and sweep, so it is paid once
// per (type, base, length) per process.
func NewDesign(cfg Config) (*Design, error) {
	cfg = cfg.WithDefaults()
	gen, err := code.Cached(cfg.CodeType, cfg.Base, cfg.CodeLength)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	q, err := physics.NewQuantizer(cfg.Model, cfg.Base, cfg.VMin, cfg.VMax)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	plan, err := mspt.NewPlanFromGenerator(gen, cfg.Spec.HalfCaveWires, q, cfg.DoseUnit)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	layout, err := geometry.NewLayout(cfg.Spec, cfg.CodeLength, gen.SpaceSize())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	analyzer := yield.Analyzer{SigmaT: cfg.SigmaT, Margin: q.Margin() * cfg.MarginFactor}
	if err := analyzer.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	d := &Design{
		Config:         cfg,
		Generator:      gen,
		Quantizer:      q,
		Plan:           plan,
		Layout:         layout,
		Analyzer:       analyzer,
		Phi:            plan.Phi(),
		AvgVariability: plan.AvgVariability(cfg.SigmaT),
	}
	d.Crossbar = analyzer.AnalyzeCrossbar(plan, layout)
	return d, nil
}

// Yield returns the cave yield of the design.
func (d *Design) Yield() float64 { return d.Crossbar.Yield }

// BitArea returns the effective bit area in nm².
func (d *Design) BitArea() float64 { return d.Crossbar.BitArea }

// Report renders a human-readable design summary.
func (d *Design) Report() string {
	var sb strings.Builder
	cfg := d.Config
	fmt.Fprintf(&sb, "MSPT nanowire decoder design — %s, base %d, M=%d\n",
		cfg.CodeType, cfg.Base, cfg.CodeLength)
	fmt.Fprintf(&sb, "  crossbar: %d raw bits, %d wires/layer, %d caves, N=%d wires/half-cave\n",
		cfg.Spec.RawBits, d.Layout.WiresPerLayer, d.Layout.Caves, cfg.Spec.HalfCaveWires)
	fmt.Fprintf(&sb, "  code space Ω=%d, contact groups/half-cave=%d (%d wires each, %d lost)\n",
		d.Generator.SpaceSize(), d.Layout.Contact.Groups, d.Layout.Contact.GroupWires, d.Layout.Contact.Lost())
	fmt.Fprintf(&sb, "  fabrication complexity Φ=%d steps (%.2f per wire)\n",
		d.Phi, float64(d.Phi)/float64(cfg.Spec.HalfCaveWires))
	fmt.Fprintf(&sb, "  avg variability ‖Σ‖₁/(N·M) = %.4g V² (max ν=%d)\n",
		d.AvgVariability, d.Plan.MaxNu())
	fmt.Fprintf(&sb, "  cave yield Y=%.1f%%, D_EFF=%.0f bits, bit area=%.1f nm²\n",
		100*d.Crossbar.Yield, d.Crossbar.EffectiveBits, d.Crossbar.BitArea)
	fmt.Fprintf(&sb, "  geometry: side %.0f nm (array %.0f + decoder %.0f + contacts %.0f)\n",
		d.Layout.Side, d.Layout.ArraySpan, d.Layout.DecoderSpan, d.Layout.ContactSpan)
	return sb.String()
}
