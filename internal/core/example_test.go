package core_test

import (
	"context"
	"fmt"

	"nwdec/internal/code"
	"nwdec/internal/core"
)

// A complete decoder design on the paper's default 16 kbit platform: the
// balanced Gray code with M = 10 yields the paper's best tree-family
// operating point.
func ExampleNewDesign() {
	design, _ := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	fmt.Printf("Φ = %d steps\n", design.Phi)
	fmt.Printf("yield = %.1f%%\n", 100*design.Yield())
	fmt.Printf("bit area = %.0f nm²\n", design.BitArea())
	// Output:
	// Φ = 40 steps
	// yield = 93.0%
	// bit area = 192 nm²
}

// The optimizer explores every family and length and lands on an optimized
// code, mirroring the paper's conclusion.
func ExampleOptimize() {
	best, _ := core.Optimize(context.Background(), core.Config{}, code.AllTypes(),
		[]int{4, 6, 8, 10}, core.MinBitArea)
	fmt.Printf("%s M=%d\n", best.Config.CodeType, best.Config.CodeLength)
	// Output:
	// AHC M=6
}
