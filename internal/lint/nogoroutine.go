package lint

import (
	"go/ast"
	"go/types"
)

// NoGoroutine enforces concurrency containment: internal/par is the
// only place goroutines are created or WaitGroups used, so the
// determinism argument (ordered reduction over a bounded pool) has to
// be made exactly once. Everything else expresses parallelism through
// par.ForEach/par.Map or their chunked forms (par.ForEachChunks,
// par.ForEachChunked, par.MapChunked, par.MapNChunked).
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "go statements and sync.WaitGroup only inside internal/par (and tests)",
	Run:  runNoGoroutine,
}

func runNoGoroutine(p *Pass) {
	if p.Cfg.GoroutineAllowed(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "goroutine creation is contained in internal/par; use par.ForEach/par.Map or the chunked variants (par.ForEachChunks, par.MapChunked) so execution stays deterministic and bounded")
			case *ast.SelectorExpr:
				if n.Sel.Name != "WaitGroup" {
					return true
				}
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync" {
						p.Reportf(n.Pos(), "sync.WaitGroup is contained in internal/par; use the par pool instead")
					}
				}
			}
			return true
		})
	}
}
