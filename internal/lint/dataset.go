package lint

import (
	"nwdec/internal/dataset"
)

// Dataset packages diagnostics as a structured dataset, so the -json
// mode of cmd/nwlint rides the same rendering pipeline as the
// experiment results.
func Dataset(diags []Diagnostic) *dataset.Dataset {
	ds := dataset.New("nwlint", "nwlint diagnostics",
		dataset.Col("file", dataset.String),
		dataset.Col("line", dataset.Int),
		dataset.Col("col", dataset.Int),
		dataset.Col("rule", dataset.String),
		dataset.Col("message", dataset.String),
	)
	ds.Meta.Experiment = "nwlint"
	for _, d := range diags {
		ds.AddRow(d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
	}
	return ds
}
