package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset resolves positions for the files.
	Fset *token.FileSet
	// Files are the parsed sources (non-test files only), with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker fact tables.
	Info *types.Info
}

// Loader loads module packages from source with full type information.
// Imports inside the module are resolved recursively by the loader
// itself; standard-library imports fall back to the go/importer source
// importer, so the whole pipeline needs nothing beyond the stdlib and a
// GOROOT. The loader caches by import path and is not safe for
// concurrent use.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// Module is the module path parsed from go.mod.
	Module string
	// Root is the module root directory.
	Root string

	pkgs     map[string]*Package
	fallback types.ImporterFrom
}

// NewLoader creates a loader rooted at the module containing dir: it
// walks up from dir to the nearest go.mod and parses the module path.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{Fset: fset, Module: module, Root: root, pkgs: make(map[string]*Package)}
	if f, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		l.fallback = f
	} else {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return l, nil
}

// ModulePackages lists the import paths of every package in the module,
// sorted. Directories named testdata, hidden directories and
// underscore-prefixed directories are skipped, matching the go tool's
// "./..." expansion.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(dir)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// Load returns the type-checked package at the given module import
// path, loading (and caching) it on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(path, l.Module)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the non-test sources of dir under the
// given import path. The self-tests use it to load fixture packages
// under paths the rules match against.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if pkg, ok := l.pkgs[asPath]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", asPath, err)
	}
	pkg := &Package{Path: asPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[asPath] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal imports are
// loaded from source by the loader itself; everything else (the
// standard library) is delegated to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.ImportFrom(path, dir, mode)
}
