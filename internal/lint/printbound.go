package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PrintBound enforces output discipline: direct stdout writes
// (fmt.Print*, os.Stdout, the print builtins) are confined to the
// command layer (any package main), internal/cli, internal/report and
// the renderers. Library packages return data — datasets, strings,
// errors — and the edge decides how to present it.
var PrintBound = &Analyzer{
	Name: "printbound",
	Doc:  "direct stdout output only in cmd/*, internal/cli, internal/report and renderers",
	Run:  runPrintBound,
}

func runPrintBound(p *Pass) {
	if p.Pkg.Name() == "main" || p.Cfg.PrintAllowed(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					strings.HasPrefix(fn.Name(), "Print") {
					p.Reportf(n.Pos(), "fmt.%s writes to stdout from a library package; return data or write through an injected io.Writer", fn.Name())
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
						p.Reportf(n.Pos(), "builtin %s writes to stderr from a library package; return data instead", b.Name())
					}
				}
			case *ast.SelectorExpr:
				if n.Sel.Name != "Stdout" {
					return true
				}
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
						p.Reportf(n.Pos(), "os.Stdout referenced from a library package; accept an io.Writer instead")
					}
				}
			}
			return true
		})
	}
}
