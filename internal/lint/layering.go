package lint

import (
	"go/ast"
	"strconv"
)

// Layering pins the package DAG (DESIGN §12, §13): the Backend
// composition only works because the engine never knows the cluster
// exists (the cluster routes over the engine facade, not the reverse),
// observability sits strictly below the pipeline it instruments, and the
// text renderers are reachable only from the edges, so library results
// stay data. The allowed DAG is declared in one table
// (Config.Layering); every module-internal import of every package is
// checked against it, which makes an architecture regression a CI
// failure instead of a review catch.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "module imports must respect the declared package DAG (engine ↛ cluster, obs below the pipeline, renderers only at the edges)",
	Run:  runLayering,
}

func runLayering(p *Pass) {
	self := p.Cfg.rel(p.Path)
	if self == "" {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rel := p.Cfg.rel(path)
			if rel == "" {
				continue // outside the module
			}
			checkImport(p, imp, self, rel)
		}
	}
}

// checkImport applies the layering table to one module-internal import
// edge: self imports rel.
func checkImport(p *Pass, imp *ast.ImportSpec, self, rel string) {
	for _, rule := range p.Cfg.Layering {
		if underLayer(self, rule.Pkg) {
			for _, deny := range rule.Deny {
				if underLayer(rel, deny) {
					p.Reportf(imp.Pos(), "%s must not import %s: %s", self, rel, rule.Why)
				}
			}
		}
		if underLayer(rel, rule.Pkg) && rule.Importers != nil {
			allowed := false
			for _, pre := range rule.Importers {
				if underLayer(self, pre) {
					allowed = true
					break
				}
			}
			if !allowed {
				p.Reportf(imp.Pos(), "%s may not import %s (allowed importers: %v): %s", self, rel, rule.Importers, rule.Why)
			}
		}
	}
}

// underLayer reports whether the module-relative path rel is the layer
// pkg or below it. A pkg ending in "/" matches the whole subtree by
// prefix ("cmd/" covers every command).
func underLayer(rel, pkg string) bool {
	if len(pkg) > 0 && pkg[len(pkg)-1] == '/' {
		return len(rel) >= len(pkg) && rel[:len(pkg)] == pkg
	}
	return rel == pkg || (len(rel) > len(pkg) && rel[:len(pkg)] == pkg && rel[len(pkg)] == '/')
}
