package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwdec/internal/lint"
)

// TestApplyFixesGolden is the end-to-end auto-fix proof: the fixes
// fixture carries an unwrapped fmt.Errorf cause and a stale suppression
// directive, both diagnostics carry fixes, and applying them reproduces
// the checked-in golden file byte for byte. ApplyFixes itself writes
// nothing — this test would corrupt the fixture otherwise.
func TestApplyFixesGolden(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "fixes"), "nwdec/internal/fixesfx")
	if err != nil {
		t.Fatal(err)
	}
	// determinism runs (so the stale directive is classified) but the
	// fixture path is not a deterministic package, matching a directive
	// that outlived its violation.
	analyzers, err := lint.ByName("errcheck,determinism")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, lint.DefaultConfig(loader.Module))
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unwrapped Errorf + stale directive):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Fatalf("diagnostic carries no fix: %s", d)
		}
	}

	files, err := lint.ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("got %d file fixes, want 1", len(files))
	}
	f := files[0]
	if filepath.Base(f.Path) != "fixes.go" {
		t.Errorf("fix path = %s, want fixes.go", f.Path)
	}
	if f.Applied != 2 {
		t.Errorf("applied %d fixes, want 2", f.Applied)
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "golden", "fixes.go.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(f.New) != string(golden) {
		t.Errorf("fixed content does not match golden:\n--- got ---\n%s\n--- want ---\n%s", f.New, golden)
	}

	// The source on disk must be untouched.
	raw, err := os.ReadFile(f.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(f.Old) {
		t.Errorf("ApplyFixes modified the source file on disk")
	}
}

// TestFileFixDiff pins the -diff preview shape: headers, hunk markers,
// and the changed lines with -/+ prefixes.
func TestFileFixDiff(t *testing.T) {
	f := lint.FileFix{
		Path: "x.go",
		Old:  []byte("a\nb old\nc\n"),
		New:  []byte("a\nb new\nc\n"),
	}
	d := f.Diff()
	for _, want := range []string{
		"--- x.go\n",
		"+++ x.go (fixed)\n",
		"@@ -2 +2 @@\n",
		"-b old\n",
		"+b new\n",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "-a\n") || strings.Contains(d, "+c\n") {
		t.Errorf("diff contains unchanged lines:\n%s", d)
	}
}

// TestApplyFixesConflict proves overlapping fixes degrade safely: the
// first fix lands, the overlapping one is skipped, and the result stays
// consistent.
func TestApplyFixesConflict(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "fixes"), "nwdec/internal/fixconflict")
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := lint.ByName("errcheck")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, lint.DefaultConfig(loader.Module))
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%v", len(diags), diags)
	}
	// Duplicate the diagnostic: the second application of the same fix
	// overlaps the first and must be skipped.
	diags = append(diags, diags[0])
	files, err := lint.ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Applied != 1 {
		t.Fatalf("files = %+v, want one file with one applied fix", files)
	}
	if !strings.Contains(string(files[0].New), "%w") {
		t.Errorf("fix was not applied:\n%s", files[0].New)
	}
}
