package lint

import "strings"

// Config maps the project's layering conventions onto package paths so
// the analyzers know where each invariant applies. Paths are
// module-relative ("internal/code"); a listed path covers the package
// itself and everything below it.
type Config struct {
	// Module is the module path diagnostics and matching are relative to.
	Module string
	// DeterministicPkgs are the packages whose output must be
	// bit-deterministic: no wall clock, no global math/rand, no map
	// iteration feeding output order.
	DeterministicPkgs []string
	// GoroutinePkgs are the only packages allowed to create goroutines
	// or use sync.WaitGroup (the parallel execution engine).
	GoroutinePkgs []string
	// CtxEntryPkgs are the packages whose exported long-running entry
	// points (parallel *Workers functions, Run/RunAll) must accept a
	// context.Context.
	CtxEntryPkgs []string
	// PrintAllowedPkgs are the non-main packages that may write to
	// stdout directly (the CLI surface, the report generator and the
	// renderers). Packages named main are always allowed.
	PrintAllowedPkgs []string
	// Layering is the allowed package DAG, one row per governed package
	// (rule "layering"). See LayerRule.
	Layering []LayerRule
	// WireParity lists the identity/wire struct pairs whose fields must
	// stay in round-trip parity (rule "wireparity").
	WireParity []WireSpec
}

// LayerRule is one row of the layering table. Pkg names the governed
// package (module-relative; a trailing "/" matches the subtree). Deny
// lists packages Pkg must never import; Importers, when non-nil,
// restricts who may import Pkg to the listed packages (same matching).
// Why is the one-line architectural reason, quoted in diagnostics.
type LayerRule struct {
	Pkg       string
	Deny      []string
	Importers []string
	Why       string
}

// WireSpec declares one wire-parity contract: in package Pkg, every
// exported field of Struct except those in Exclude must appear in Wire
// and be set explicitly in the Marshal and Unmarshal conversions, and
// the excluded fields must not appear in Wire at all.
type WireSpec struct {
	Pkg       string
	Struct    string
	Wire      string
	Marshal   string
	Unmarshal string
	Exclude   []string
}

// DefaultConfig returns the project configuration for the given module
// path (normally "nwdec").
func DefaultConfig(module string) *Config {
	return &Config{
		Module: module,
		DeterministicPkgs: []string{
			"internal/code",
			"internal/core",
			"internal/crossbar",
			"internal/dataset",
			"internal/engine",
			"internal/experiments",
			"internal/geometry",
			"internal/jobs",
			"internal/mspt",
			"internal/nwerr",
			"internal/obs",
			"internal/physics",
			"internal/readout",
			"internal/stats",
			"internal/sweep",
			"internal/yield",
		},
		GoroutinePkgs: []string{"internal/jobs", "internal/par", "cmd/nwserve"},
		CtxEntryPkgs: []string{
			"internal/cluster",
			"internal/core",
			"internal/engine",
			"internal/experiments",
			"internal/jobs",
			"internal/sweep",
		},
		PrintAllowedPkgs: []string{
			"internal/cli",
			"internal/report",
			"internal/textplot",
			"internal/viz",
		},
		Layering: []LayerRule{
			// The Backend composition hinges on the cluster routing over
			// the engine facade, never the reverse (DESIGN §12).
			{Pkg: "internal/engine", Deny: []string{"internal/cluster", "internal/jobs"},
				Why: "the cluster composes over the engine's Backend facade; a reverse edge would make the layering circular"},
			// The job layer composes over the engine's identity scheme and
			// the sweep primitives; nothing below it may reach back up.
			{Pkg: "internal/sweep", Deny: []string{"internal/jobs"},
				Why: "jobs partitions and checkpoints sweeps from above; a reverse edge would make the layering circular"},
			// The ring executor routes job chunks over the cluster's ring
			// and chunk protocol; the cluster side takes a ChunkFunc so it
			// never needs jobs types (DESIGN §15).
			{Pkg: "internal/cluster", Deny: []string{"internal/jobs"},
				Why: "jobs composes its ring executor over the cluster; a reverse edge would make the layering circular"},
			// Observability instruments the pipeline from below; it must
			// never depend on what it measures (DESIGN §9).
			{Pkg: "internal/obs", Deny: []string{"internal/engine", "internal/experiments", "internal/jobs", "internal/par", "internal/cluster"},
				Why: "obs sits below everything it instruments; an upward edge would let metrics feed back into results"},
			// The pool depends on obs only; pulling pipeline packages into
			// par would invert the execution layering.
			{Pkg: "internal/par", Deny: []string{"internal/engine", "internal/experiments", "internal/cluster", "internal/jobs", "internal/sweep"},
				Why: "par is the bottom execution layer; workloads call into it, never the reverse"},
			// Renderers are reachable only from the edges: commands,
			// examples, the CLI surface and the result layers that own
			// text output.
			{Pkg: "internal/textplot", Importers: []string{"cmd/", "examples/", "scripts/", "internal/cli", "internal/dataset", "internal/experiments", "internal/report", "internal/viz"},
				Why: "library packages return data; text rendering belongs to the edges and the dataset/report layers"},
			{Pkg: "internal/viz", Importers: []string{"cmd/", "examples/", "scripts/", "internal/report"},
				Why: "library packages return data; visualization belongs to the command layer"},
		},
		WireParity: []WireSpec{
			{Pkg: "internal/engine", Struct: "Request", Wire: "wireRequest",
				Marshal: "MarshalWire", Unmarshal: "UnmarshalWire",
				Exclude: []string{"Workers"}},
		},
	}
}

// rel strips the module prefix from an import path; a path outside the
// module returns "".
func (c *Config) rel(path string) string {
	if path == c.Module {
		return "."
	}
	if strings.HasPrefix(path, c.Module+"/") {
		return strings.TrimPrefix(path, c.Module+"/")
	}
	return ""
}

// matches reports whether the module-relative form of path is one of the
// listed package paths or below one.
func (c *Config) matches(path string, list []string) bool {
	rel := c.rel(path)
	if rel == "" {
		return false
	}
	for _, p := range list {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Deterministic reports whether path carries the bit-determinism
// invariant.
func (c *Config) Deterministic(path string) bool {
	return c.matches(path, c.DeterministicPkgs)
}

// GoroutineAllowed reports whether path may create goroutines.
func (c *Config) GoroutineAllowed(path string) bool {
	return c.matches(path, c.GoroutinePkgs)
}

// CtxEntry reports whether path's exported long-running entry points
// must accept a context.
func (c *Config) CtxEntry(path string) bool {
	return c.matches(path, c.CtxEntryPkgs)
}

// PrintAllowed reports whether a non-main package at path may write to
// stdout.
func (c *Config) PrintAllowed(path string) bool {
	return c.matches(path, c.PrintAllowedPkgs)
}
