package lint

import "strings"

// Config maps the project's layering conventions onto package paths so
// the analyzers know where each invariant applies. Paths are
// module-relative ("internal/code"); a listed path covers the package
// itself and everything below it.
type Config struct {
	// Module is the module path diagnostics and matching are relative to.
	Module string
	// DeterministicPkgs are the packages whose output must be
	// bit-deterministic: no wall clock, no global math/rand, no map
	// iteration feeding output order.
	DeterministicPkgs []string
	// GoroutinePkgs are the only packages allowed to create goroutines
	// or use sync.WaitGroup (the parallel execution engine).
	GoroutinePkgs []string
	// CtxEntryPkgs are the packages whose exported long-running entry
	// points (parallel *Workers functions, Run/RunAll) must accept a
	// context.Context.
	CtxEntryPkgs []string
	// PrintAllowedPkgs are the non-main packages that may write to
	// stdout directly (the CLI surface, the report generator and the
	// renderers). Packages named main are always allowed.
	PrintAllowedPkgs []string
}

// DefaultConfig returns the project configuration for the given module
// path (normally "nwdec").
func DefaultConfig(module string) *Config {
	return &Config{
		Module: module,
		DeterministicPkgs: []string{
			"internal/code",
			"internal/core",
			"internal/crossbar",
			"internal/dataset",
			"internal/engine",
			"internal/experiments",
			"internal/geometry",
			"internal/mspt",
			"internal/nwerr",
			"internal/obs",
			"internal/physics",
			"internal/readout",
			"internal/stats",
			"internal/sweep",
			"internal/yield",
		},
		GoroutinePkgs: []string{"internal/par", "cmd/nwserve"},
		CtxEntryPkgs: []string{
			"internal/cluster",
			"internal/core",
			"internal/engine",
			"internal/experiments",
			"internal/sweep",
		},
		PrintAllowedPkgs: []string{
			"internal/cli",
			"internal/report",
			"internal/textplot",
			"internal/viz",
		},
	}
}

// rel strips the module prefix from an import path; a path outside the
// module returns "".
func (c *Config) rel(path string) string {
	if path == c.Module {
		return "."
	}
	if strings.HasPrefix(path, c.Module+"/") {
		return strings.TrimPrefix(path, c.Module+"/")
	}
	return ""
}

// matches reports whether the module-relative form of path is one of the
// listed package paths or below one.
func (c *Config) matches(path string, list []string) bool {
	rel := c.rel(path)
	if rel == "" {
		return false
	}
	for _, p := range list {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Deterministic reports whether path carries the bit-determinism
// invariant.
func (c *Config) Deterministic(path string) bool {
	return c.matches(path, c.DeterministicPkgs)
}

// GoroutineAllowed reports whether path may create goroutines.
func (c *Config) GoroutineAllowed(path string) bool {
	return c.matches(path, c.GoroutinePkgs)
}

// CtxEntry reports whether path's exported long-running entry points
// must accept a context.
func (c *Config) CtxEntry(path string) bool {
	return c.matches(path, c.CtxEntryPkgs)
}

// PrintAllowed reports whether a non-main package at path may write to
// stdout.
func (c *Config) PrintAllowed(path string) bool {
	return c.matches(path, c.PrintAllowedPkgs)
}
