package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces atomicity coherence: a struct field that any
// code accesses through the sync/atomic package-level functions
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.bits), ...) must be
// accessed atomically at every site — one plain read or write next to
// atomic ones is a data race the race detector only catches when the
// schedule cooperates, and exactly the silent-invariant break the
// hot-path counters (obs metrics, engine BackendStats, cluster ring
// state) cannot afford.
//
// The rule is fact-passing: the pass over a field's defining package
// exports an AtomicFieldFact for every field it sees accessed
// atomically, and every downstream package's pass (the runner analyzes
// packages in dependency order) flags plain accesses against the union
// of imported and locally-collected facts. Fields of the typed
// sync/atomic kinds (atomic.Int64 and friends) are safe by construction
// — the type system forbids plain access — which is why the repository's
// own counters use them; this rule exists to keep the legacy address-of
// style from ever mixing in.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
}

// AtomicFieldFact marks a struct field as atomically accessed. It is
// exported for the defining package's fields so downstream packages
// inherit the constraint.
type AtomicFieldFact struct{}

// AFact marks AtomicFieldFact as a fact type.
func (*AtomicFieldFact) AFact() {}

func runAtomicField(p *Pass) {
	// Phase 1: collect the fields this package accesses atomically, and
	// remember the selector nodes inside atomic calls so phase 2 does not
	// flag the atomic sites themselves.
	atomicFields := make(map[types.Object]bool)
	atomicSites := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvOf(fn) != nil {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(p, sel); fld != nil {
					atomicFields[fld] = true
					atomicSites[sel] = true
				}
			}
			return true
		})
	}
	for fld := range atomicFields {
		p.ExportObjectFact(fld, &AtomicFieldFact{})
	}

	// Phase 2: every other access to a marked field — marked here or in
	// any imported package — is a mixed plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			fld := fieldOf(p, sel)
			if fld == nil {
				return true
			}
			if !atomicFields[fld] && !p.ImportObjectFact(fld, &AtomicFieldFact{}) {
				return true
			}
			p.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere; this plain access races with it — use the atomic API here too (or migrate the field to a typed atomic)", fld.Name())
			return true
		})
	}
}

// fieldOf resolves sel to the struct field it selects, or nil when the
// selector is a package qualifier, method, or non-field value.
func fieldOf(p *Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
